//! Trace tooling: record a scenario, export it to CSV, re-import it, and
//! analyze the round-tripped trace — the workflow for handing traces to
//! external plotting or replaying them in another process.
//!
//! Run: `cargo run --release --example trace_tooling`

use zhuyi_repro::core::prelude::*;
use zhuyi_repro::model::pipeline::{analyze_trace, PipelineConfig};
use zhuyi_repro::model::{TolerableLatencyEstimator, ZhuyiConfig};
use zhuyi_repro::perception::rig::CameraRig;
use zhuyi_repro::scenarios::catalog::{Scenario, ScenarioId};
use zhuyi_repro::sim::io::{trace_from_csv, trace_to_csv};
use zhuyi_repro::sim::metrics::run_metrics;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Record.
    let scenario = Scenario::build(ScenarioId::ChallengingCutIn, 0);
    let trace = scenario.run_at(Fpr(30.0));
    println!(
        "recorded {} scenes over {} ({} events)",
        trace.scenes.len(),
        trace.duration(),
        trace.events.len()
    );

    // 2. Export.
    let csv = trace_to_csv(&trace);
    let path = std::env::temp_dir().join("zhuyi_challenging_cut_in.csv");
    std::fs::write(&path, &csv)?;
    println!("exported {} bytes to {}", csv.len(), path.display());

    // 3. Re-import and verify integrity.
    let restored = trace_from_csv(&std::fs::read_to_string(&path)?)?;
    assert_eq!(restored.scenes.len(), trace.scenes.len());
    let metrics = run_metrics(&restored);
    println!(
        "round-trip ok; min TTC {}, min frontal gap {}",
        metrics.min_ttc.map_or("-".into(), |t| t.to_string()),
        metrics.min_gap.map_or("-".into(), |g| g.to_string()),
    );

    // 4. The re-imported trace feeds the Zhuyi pipeline like a fresh one.
    let estimator = TolerableLatencyEstimator::new(ZhuyiConfig::paper())?;
    let analysis = analyze_trace(
        &restored.scenes,
        scenario.road.path(),
        &CameraRig::drive_av(),
        &estimator,
        &PipelineConfig {
            stride: 50,
            ..Default::default()
        },
    );
    println!(
        "Zhuyi on the restored trace: max per-camera requirement {}",
        analysis.max_camera_fpr().expect("steps analyzed")
    );
    Ok(())
}
