//! Online safety check and work prioritization (paper §3.2, Fig. 3).
//!
//! Drives the *Vehicle following* scenario with the Zhuyi runtime in the
//! loop. Every 100 ms the runtime estimates per-camera requirements from
//! the perceived world model, checks them against the actual rates, and
//! re-prioritizes a fixed frame budget toward the cameras that matter —
//! the front camera when the lead vehicle slams its brakes.
//!
//! Run: `cargo run --release --example online_safety_check`

use zhuyi_repro::core::prelude::*;
use zhuyi_repro::perception::camera::CameraKind;
use zhuyi_repro::perception::system::RatePlan;
use zhuyi_repro::prediction::kinematic::ConstantAcceleration;
use zhuyi_repro::runtime::prioritize::BudgetAllocator;
use zhuyi_repro::runtime::system::{drive, RuntimeConfig, ZhuyiRuntime};
use zhuyi_repro::scenarios::catalog::{Scenario, ScenarioId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::build(ScenarioId::VehicleFollowing, 0);
    // A constrained system: 40 frames/second shared by five cameras
    // (instead of the paper's fully provisioned 5 x 30).
    let sim = scenario.simulation(RatePlan::Uniform(Fpr(8.0)))?;
    let runtime = ZhuyiRuntime::new(RuntimeConfig {
        budget: Some(BudgetAllocator {
            total: Fpr(40.0),
            min_per_camera: Fpr(1.0),
            max_per_camera: Fpr(30.0),
        }),
        apply_allocation: true,
        ..Default::default()
    })?;

    let rig = zhuyi_repro::perception::rig::CameraRig::drive_av();
    let front = rig.find(CameraKind::FrontWide).expect("front camera");
    let rear = rig.find(CameraKind::Rear).expect("rear camera");

    let (trace, decisions) = drive(sim, &runtime, &ConstantAcceleration);

    println!("vehicle following at 70 mph on a 40-frames/s budget\n");
    println!(" t(s) | front req | alarm | granted front | granted rear");
    println!("------+-----------+-------+---------------+-------------");
    for d in decisions.iter().step_by(10) {
        let front_req = d
            .estimates
            .camera(CameraKind::FrontWide)
            .map_or(0.0, |c| c.fpr().value());
        let (gf, gr) = d.allocation.as_ref().map_or((f64::NAN, f64::NAN), |a| {
            (a.rates[front.0].value(), a.rates[rear.0].value())
        });
        println!(
            " {:>4.1} | {front_req:>6.1}    | {} | {gf:>10.1}    | {gr:>8.1}",
            d.time.value(),
            if d.verdict.safe { "  -  " } else { "ALARM" },
        );
    }

    println!(
        "\nrun outcome: {}, {} control decisions, {} alarms",
        if trace.collided() {
            "COLLISION"
        } else {
            "no collision"
        },
        decisions.len(),
        decisions.iter().filter(|d| !d.verdict.safe).count()
    );
    println!(
        "When the lead brakes (t = 3 s) the front requirement spikes; the\n\
         allocator shifts budget from the idle cameras to the front camera."
    );
    Ok(())
}
