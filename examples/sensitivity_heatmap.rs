//! Sensitivity heat map (paper Fig. 8): how the minimum safe FPR varies
//! with ego speed and actor end velocity at a fixed available distance.
//!
//! Prints a compact character map: '.' for <= 2 FPR, digits for higher
//! finite requirements, '+' for above 30 FPR, '#' for unavoidable
//! collisions.
//!
//! Run: `cargo run --release --example sensitivity_heatmap [-- <gap-m>]`

use zhuyi_repro::core::prelude::*;
use zhuyi_repro::model::sensitivity::{paper_axis, sweep_fixed_gap, CellOutcome};
use zhuyi_repro::model::ZhuyiConfig;

fn glyph(cell: &CellOutcome) -> char {
    match cell {
        CellOutcome::RequiredFpr(f) if *f <= 2.0 => '.',
        CellOutcome::RequiredFpr(f) if *f < 10.0 => {
            char::from_digit(f.round() as u32, 10).unwrap_or('9')
        }
        CellOutcome::RequiredFpr(_) => '*',
        CellOutcome::AboveLimit => '+',
        CellOutcome::Unavoidable => '#',
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gap: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30.0);
    let axis = paper_axis();
    let grid = sweep_fixed_gap(
        ZhuyiConfig::paper(),
        Meters(gap),
        &axis,
        &axis,
        Fpr(1.0), // paper setting: no confirmation-delay term in the sweep
    )?;

    println!("minimum safe FPR, s_n = {gap} m");
    println!("rows: ego speed 0..70 mph (top to bottom)");
    println!("cols: actor end velocity 0..70 mph (left to right)");
    println!("legend: '.' <=2 FPR, digit = FPR, '*' >=10, '+' above 30, '#' unavoidable\n");
    for (i, ve) in grid.ego_speeds.iter().enumerate() {
        let row: String = grid.cells[i].iter().map(glyph).collect();
        println!("{:>3.0} mph  {row}", ve.value());
    }

    let (finite, above, unavoidable) = grid.census();
    println!(
        "\n{finite} feasible cells, {above} above the 30-FPR limit, {unavoidable} unavoidable"
    );
    println!("(compare with `cargo run -p zhuyi-bench --bin fig8_sensitivity` for full values)");
    Ok(())
}
