//! Scenario sweep, fleet-style: probe one Table-1 scenario at several
//! camera rates, find where it stops colliding, and compare Zhuyi's
//! offline estimates for the safe runs — the paper's pre-deployment
//! workflow in miniature (§3.1).
//!
//! This used to be a hand-rolled sequential loop; it now expands into a
//! fleet plan (one collision probe per rate plus one Zhuyi analysis per
//! rate) and runs through the `zhuyi-fleet` worker pool, merging results
//! deterministically.
//!
//! Run: `cargo run --release --example scenario_sweep [-- <scenario-index 0..8>]`

use zhuyi_repro::fleet::{pool, run_sweep, JobOutcome, PredictorChoice, SweepPlan};
use zhuyi_repro::scenarios::catalog::ScenarioId;

fn main() {
    let index: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1); // default: Cut-out fast, the hardest scenario
    let id = *ScenarioId::ALL
        .get(index)
        .unwrap_or(&ScenarioId::CutOutFast);
    println!("scenario: {} (ego {})\n", id.name(), id.ego_speed());

    let rates = [1.0, 2.0, 4.0, 6.0, 10.0, 30.0];
    let mut builder = SweepPlan::builder().scenarios([id]).seeds([0]);
    for &fpr in &rates {
        builder = builder
            .probe(fpr, false)
            .analyze(fpr, PredictorChoice::Oracle, 20);
    }
    let store = run_sweep(&builder.build(), pool::default_workers());

    println!("  FPR | outcome    | max Zhuyi estimate over cameras/time");
    println!("  ----+------------+-------------------------------------");
    // Jobs alternate probe/analyze per rate, in plan order.
    for pair in store.results().chunks(2) {
        let [probe, analysis] = pair else { continue };
        let (JobOutcome::Probe(p), JobOutcome::Analysis(a)) = (&probe.outcome, &analysis.outcome)
        else {
            continue;
        };
        let fpr = match &probe.job.spec.kind {
            zhuyi_repro::fleet::JobKind::Probe { plan, .. } => plan.min_rate(),
            _ => continue,
        };
        if p.collided {
            let when = p.collision_time.map_or("-".to_string(), |t| format!("{t}"));
            println!("  {fpr:>3} | COLLISION  | at {when} (Zhuyi N/A)");
        } else {
            let estimate = a
                .max_camera_fpr
                .map_or("-".to_string(), |f| format!("{f:.1} FPR"));
            println!("  {fpr:>3} | safe       | {estimate}");
        }
    }

    println!(
        "\nThe first safe row is the scenario's minimum required FPR; Zhuyi's\n\
         estimates for the safe runs should sit at or above it (conservative)."
    );
}
