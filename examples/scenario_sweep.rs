//! Scenario sweep: run one of the paper's Table-1 scenarios closed-loop
//! at several camera frame rates, watch where it starts colliding, and
//! compare against Zhuyi's offline estimate for the safe runs.
//!
//! This is the paper's pre-deployment workflow in miniature: scenario
//! testing at fixed FPRs to find the minimum required rate, then the Zhuyi
//! model run over the recorded traces to check its estimates are
//! conservative (estimate >= MRF).
//!
//! Run: `cargo run --release --example scenario_sweep [-- <scenario-index 0..8>]`

use zhuyi_repro::core::prelude::*;
use zhuyi_repro::model::pipeline::{analyze_trace, PipelineConfig};
use zhuyi_repro::model::{TolerableLatencyEstimator, ZhuyiConfig};
use zhuyi_repro::perception::rig::CameraRig;
use zhuyi_repro::scenarios::catalog::{Scenario, ScenarioId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let index: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1); // default: Cut-out fast, the hardest scenario
    let id = *ScenarioId::ALL.get(index).unwrap_or(&ScenarioId::CutOutFast);
    let scenario = Scenario::build(id, 0);
    println!(
        "scenario: {} (ego {} in lane {})\n",
        id.name(),
        id.ego_speed(),
        scenario.ego_lane
    );

    let estimator = TolerableLatencyEstimator::new(ZhuyiConfig::paper())?;
    let rig = CameraRig::drive_av();

    println!("  FPR | outcome    | max Zhuyi estimate over cameras/time");
    println!("  ----+------------+-------------------------------------");
    for fpr in [1.0, 2.0, 4.0, 6.0, 10.0, 30.0] {
        let trace = scenario.run_at(Fpr(fpr));
        if let Some((t, actor)) = trace.collision() {
            println!("  {fpr:>3} | COLLISION  | with {actor} at {t} (Zhuyi N/A)");
            continue;
        }
        let config = PipelineConfig {
            current_latency: Seconds(1.0 / fpr),
            stride: 20,
            ..Default::default()
        };
        let analysis = analyze_trace(&trace.scenes, scenario.road.path(), &rig, &estimator, &config);
        let max_est = analysis
            .max_camera_fpr()
            .map_or("-".to_string(), |f| format!("{:.1} FPR", f.value()));
        println!("  {fpr:>3} | safe       | {max_est}");
    }

    println!(
        "\nThe first safe row is the scenario's minimum required FPR; Zhuyi's\n\
         estimates for the safe runs should sit at or above it (conservative)."
    );
    Ok(())
}
