//! Pre-deployment safety report (paper §3.1): the designer-feedback
//! artifact for every Table-1 scenario.
//!
//! For each scenario this runs the closed-loop test once at 30 FPR,
//! applies the offline Zhuyi pipeline to the trace, and prints outcome,
//! surrogate safety metrics (minimum TTC / frontal gap), per-camera peak
//! requirements and the fraction of a 3×30-FPR provisioning the scenario
//! needs.
//!
//! Run: `cargo run --release --example pre_deployment_report`

use zhuyi_repro::core::prelude::*;
use zhuyi_repro::model::pipeline::PipelineConfig;
use zhuyi_repro::model::{TolerableLatencyEstimator, ZhuyiConfig};
use zhuyi_repro::perception::rig::CameraRig;
use zhuyi_repro::runtime::report::ScenarioReport;
use zhuyi_repro::scenarios::catalog::{Scenario, ScenarioId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let estimator = TolerableLatencyEstimator::new(ZhuyiConfig::paper())?;
    let rig = CameraRig::drive_av();
    let pipeline = PipelineConfig {
        current_latency: Seconds(1.0 / 30.0),
        stride: 25,
        ..Default::default()
    };

    println!("pre-deployment safety report (all scenarios @ 30 FPR)\n");
    for id in ScenarioId::ALL {
        let scenario = Scenario::build(id, 0);
        let trace = scenario.run_at(Fpr(30.0));
        let report = ScenarioReport::from_trace(
            id.name(),
            &trace,
            scenario.road.path(),
            &rig,
            &estimator,
            &pipeline,
        );
        println!("{report}");
    }
    println!(
        "Use these reports to spot where \"a different resource allocation for\n\
         different sensors can provide a safer drive\" (paper 3.1) — e.g. every\n\
         front-only scenario leaves both side cameras at their 1-FPR floor."
    );
    Ok(())
}
