//! Quickstart: estimate the tolerable perception latency for a handful of
//! everyday driving situations, straight from the library's public API.
//!
//! Run: `cargo run --example quickstart`

use zhuyi_repro::core::prelude::*;
use zhuyi_repro::model::future::{ConstantAccelActor, StationaryActor};
use zhuyi_repro::model::{EgoKinematics, TolerableLatencyEstimator, ZhuyiConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The model with the paper's exact parameters (C1 = C2 = 0.9,
    // C3 = 4.9 m/s^2, C4 = 1.1, K = 5, M = 10, l in [33 ms, 1 s]).
    let estimator = TolerableLatencyEstimator::new(ZhuyiConfig::paper())?;

    // The system currently processes camera frames at 30 FPR.
    let current_latency = Seconds(1.0 / 30.0);

    println!("situation -> tolerable latency (minimum FPR)\n");

    let situations: Vec<(&str, EgoKinematics, Box<dyn zhuyi::future::ActorFuture>)> = vec![
        (
            "city driving, stopped car 60 m ahead (ego 20 m/s)",
            EgoKinematics::new(MetersPerSecond(20.0), MetersPerSecondSquared::ZERO),
            Box::new(StationaryActor::new(Meters(60.0))),
        ),
        (
            "highway following, lead braking hard 50 m ahead (ego 70 mph)",
            EgoKinematics::new(Mph(70.0).into(), MetersPerSecondSquared::ZERO),
            Box::new(ConstantAccelActor::new(
                Meters(50.0),
                Mph(70.0).into(),
                MetersPerSecondSquared(-6.5),
            )),
        ),
        (
            "lead pulling away (ego 25 m/s, lead 32 m/s)",
            EgoKinematics::new(MetersPerSecond(25.0), MetersPerSecondSquared::ZERO),
            Box::new(ConstantAccelActor::new(
                Meters(30.0),
                MetersPerSecond(32.0),
                MetersPerSecondSquared::ZERO,
            )),
        ),
        (
            "too close to stop: obstacle 15 m ahead at 25 m/s",
            EgoKinematics::new(MetersPerSecond(25.0), MetersPerSecondSquared::ZERO),
            Box::new(StationaryActor::new(Meters(15.0))),
        ),
    ];

    for (name, ego, future) in &situations {
        let estimate = estimator.tolerable_latency(*ego, future.as_ref(), current_latency);
        println!(
            "{name}\n    -> {} ({}), outcome {:?}\n",
            estimate.latency,
            estimate.fpr(),
            estimate.outcome
        );
    }

    println!(
        "Reading the output: a 1.000 s latency means 1 FPR is enough; the\n\
         paper's default systems process 30 FPR on every camera all the time."
    );

    // Every estimate is explainable — the full Eq. 1/2 arithmetic behind it:
    let (name, ego, future) = &situations[0];
    println!("\nwhy ({name}):");
    println!(
        "  {}",
        estimator.explain(*ego, future.as_ref(), current_latency)
    );
    Ok(())
}
