//! Determinism guarantees: identical seeds reproduce identical traces and
//! identical Zhuyi estimates — the property that makes the Table-1
//! methodology (seeded repeats instead of GPU nondeterminism) sound.

use zhuyi_repro::core::prelude::*;
use zhuyi_repro::model::pipeline::{analyze_trace, PipelineConfig};
use zhuyi_repro::model::{TolerableLatencyEstimator, ZhuyiConfig};
use zhuyi_repro::perception::rig::CameraRig;
use zhuyi_repro::scenarios::catalog::{Scenario, ScenarioId};
use zhuyi_repro::sim::io::trace_to_csv;

#[test]
fn same_seed_reproduces_the_exact_trace() {
    for seed in [0u64, 7] {
        let a = Scenario::build(ScenarioId::ChallengingCutIn, seed).run_at(Fpr(10.0));
        let b = Scenario::build(ScenarioId::ChallengingCutIn, seed).run_at(Fpr(10.0));
        // Bit-exact: the serialized traces match byte for byte.
        assert_eq!(
            trace_to_csv(&a),
            trace_to_csv(&b),
            "seed {seed} produced differing traces"
        );
        assert_eq!(a.events.len(), b.events.len());
    }
}

#[test]
fn different_seeds_differ() {
    let a = Scenario::build(ScenarioId::CutIn, 1).run_at(Fpr(30.0));
    let b = Scenario::build(ScenarioId::CutIn, 2).run_at(Fpr(30.0));
    assert_ne!(trace_to_csv(&a), trace_to_csv(&b));
}

#[test]
fn analysis_is_deterministic() {
    let scenario = Scenario::build(ScenarioId::VehicleFollowing, 0);
    let trace = scenario.run_at(Fpr(30.0));
    let estimator = TolerableLatencyEstimator::new(ZhuyiConfig::paper()).expect("valid");
    let cfg = PipelineConfig {
        stride: 50,
        ..Default::default()
    };
    let rig = CameraRig::drive_av();
    let a = analyze_trace(&trace.scenes, scenario.road.path(), &rig, &estimator, &cfg);
    let b = analyze_trace(&trace.scenes, scenario.road.path(), &rig, &estimator, &cfg);
    assert_eq!(a, b);
}
