//! Integration tests of the post-deployment loop: online estimation,
//! safety checking and budget prioritization driving a live simulation.

use zhuyi_repro::core::prelude::*;
use zhuyi_repro::perception::camera::CameraKind;
use zhuyi_repro::perception::system::RatePlan;
use zhuyi_repro::prediction::kinematic::{ConstantAcceleration, ConstantVelocity};
use zhuyi_repro::prediction::maneuver::{ManeuverConfig, ManeuverPredictor};
use zhuyi_repro::runtime::prioritize::BudgetAllocator;
use zhuyi_repro::runtime::system::{drive, RuntimeConfig, ZhuyiRuntime};
use zhuyi_repro::scenarios::catalog::{Scenario, ScenarioId};

#[test]
fn online_loop_survives_every_scenario_at_30_fpr() {
    let runtime = ZhuyiRuntime::new(RuntimeConfig::default()).expect("valid config");
    for id in [
        ScenarioId::CutIn,
        ScenarioId::VehicleFollowing,
        ScenarioId::FrontRightActivity2,
    ] {
        let sim = Scenario::build(id, 0)
            .simulation(RatePlan::Uniform(Fpr(30.0)))
            .expect("valid plan");
        let (trace, decisions) = drive(sim, &runtime, &ConstantVelocity);
        assert!(!trace.collided(), "{id} collided with the runtime attached");
        assert!(!decisions.is_empty());
        // Every decision carries a full camera vector.
        for d in &decisions {
            assert_eq!(d.estimates.cameras.len(), 5);
        }
    }
}

#[test]
fn prioritized_budget_keeps_hard_scenario_safe() {
    // Cut-out fast needs ~6 FPR on the front camera (MRF 6). A uniform
    // split of a 35-frame budget gives each camera 7 FPR — safe but with
    // zero headroom. The Zhuyi-prioritized allocation instead starves the
    // idle cameras and gives the front camera up to 30.
    let scenario = Scenario::build(ScenarioId::CutOutFast, 0);
    let sim = scenario
        .simulation(RatePlan::Uniform(Fpr(7.0)))
        .expect("valid plan");
    let runtime = ZhuyiRuntime::new(RuntimeConfig {
        budget: Some(BudgetAllocator {
            total: Fpr(35.0),
            min_per_camera: Fpr(1.0),
            max_per_camera: Fpr(30.0),
        }),
        apply_allocation: true,
        ..Default::default()
    })
    .expect("valid config");
    let (trace, decisions) = drive(sim, &runtime, &ConstantAcceleration);
    assert!(
        !trace.collided(),
        "prioritized budget failed to keep the run safe"
    );
    // The allocator must have granted the front camera a super-uniform
    // share at some point.
    let rig = zhuyi_repro::perception::rig::CameraRig::drive_av();
    let front = rig.find(CameraKind::FrontWide).expect("front camera");
    let boosted = decisions
        .iter()
        .filter_map(|d| d.allocation.as_ref())
        .any(|a| a.rates[front.0].value() > 7.0 + 1e-9);
    assert!(boosted, "front camera never received extra budget");
}

#[test]
fn multi_hypothesis_prediction_is_more_conservative() {
    let scenario = Scenario::build(ScenarioId::CutIn, 0);
    let runtime = ZhuyiRuntime::new(RuntimeConfig::default()).expect("valid config");

    let sim1 = scenario
        .simulation(RatePlan::Uniform(Fpr(30.0)))
        .expect("valid plan");
    let (_, cv) = drive(sim1, &runtime, &ConstantVelocity);

    let sim2 = scenario
        .simulation(RatePlan::Uniform(Fpr(30.0)))
        .expect("valid plan");
    let maneuver = ManeuverPredictor::new(scenario.road.path().clone(), ManeuverConfig::default());
    let (_, mh) = drive(sim2, &runtime, &maneuver);

    let min_front = |ds: &[zhuyi_repro::runtime::RuntimeDecision]| {
        ds.iter()
            .filter_map(|d| {
                d.estimates
                    .camera(CameraKind::FrontWide)
                    .map(|c| c.latency.value())
            })
            .fold(f64::INFINITY, f64::min)
    };
    // Worst-case aggregation over a hypothesis set that includes braking
    // futures can only tighten the estimate.
    assert!(
        min_front(&mh) <= min_front(&cv) + 1e-9,
        "maneuver set must be at least as conservative as CV"
    );
}

/// The Fig.-1 story closed end to end: a 12-camera rig under a budget of
/// 36% of full provisioning (the paper's measured need) still grants every
/// camera at least its floor and concentrates surplus on demand.
#[test]
fn hyperion_twelve_camera_budget_allocates() {
    use zhuyi_repro::model::camera_fpr::CameraEstimate;
    use zhuyi_repro::perception::rig::CameraId;
    use zhuyi_repro::perception::rig::CameraRig;
    use zhuyi_repro::runtime::prioritize::BudgetAllocator;

    let rig = CameraRig::hyperion_12();
    assert_eq!(rig.len(), 12);
    // 36% of 12 x 30 FPR.
    let allocator = BudgetAllocator {
        total: Fpr(0.36 * 12.0 * 30.0),
        min_per_camera: Fpr(1.0),
        max_per_camera: Fpr(30.0),
    };
    // A demanding front camera (33 ms), a moderate side, ten idle.
    let estimates: Vec<CameraEstimate> = rig
        .iter()
        .map(|(id, cam)| CameraEstimate {
            camera: id,
            kind: cam.kind(),
            latency: match id.0 {
                1 => Seconds(0.033),
                2 => Seconds(0.25),
                _ => Seconds(1.0),
            },
            limiting_actor: None,
        })
        .collect();
    let allocation = allocator.allocate(&estimates).expect("valid allocator");
    assert!(allocation.satisfied, "36% budget covers this scene");
    assert!(
        allocation.rates[1].value() >= 30.0 - 1e-6,
        "front gets its 30"
    );
    assert!(allocation.rates[2].value() >= 4.0, "side gets its 4");
    for (i, rate) in allocation.rates.iter().enumerate() {
        assert!(rate.value() >= 1.0 - 1e-9, "camera {i} starved");
        assert!(rate.value() <= 30.0 + 1e-9, "camera {i} over cap");
    }
    assert!(allocation.granted_total().value() <= allocator.total.value() + 1e-6);
    let _ = CameraId(0); // silence unused import on some cfgs
}

#[test]
fn underprovisioned_system_alarms_before_collision_risk() {
    // Vehicle following at 2 FPR stays collision-free (MRF < 1) but the
    // estimates during the braking transient exceed 2 FPR, so the check
    // must alarm at least once — the "online safety check" use case.
    let scenario = Scenario::build(ScenarioId::VehicleFollowing, 0);
    let sim = scenario
        .simulation(RatePlan::Uniform(Fpr(2.0)))
        .expect("valid plan");
    let runtime = ZhuyiRuntime::new(RuntimeConfig::default()).expect("valid config");
    let (trace, decisions) = drive(sim, &runtime, &ConstantAcceleration);
    assert!(!trace.collided());
    assert!(
        decisions.iter().any(|d| !d.verdict.safe),
        "no alarm despite running at 2 FPR through a hard-braking episode"
    );
    // And the alarm names the front camera.
    let alarmed_front = decisions
        .iter()
        .flat_map(|d| d.verdict.alarms.iter())
        .any(|a| a.kind == CameraKind::FrontWide);
    assert!(alarmed_front);
}
