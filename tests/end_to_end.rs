//! Cross-crate integration tests: the full pre-deployment pipeline
//! (scenario → simulation → trace → Zhuyi analysis) and the paper's
//! headline claims on small configurations.

use zhuyi_repro::core::prelude::*;
use zhuyi_repro::model::pipeline::{analyze_trace, PipelineConfig};
use zhuyi_repro::model::{SearchOutcome, TolerableLatencyEstimator, ZhuyiConfig};
use zhuyi_repro::perception::camera::CameraKind;
use zhuyi_repro::perception::rig::CameraRig;
use zhuyi_repro::scenarios::catalog::{Scenario, ScenarioId};

fn analyze(id: ScenarioId, fpr: f64, stride: usize) -> zhuyi_repro::model::TraceAnalysis {
    let scenario = Scenario::build(id, 0);
    let trace = scenario.run_at(Fpr(fpr));
    assert!(
        !trace.collided(),
        "{id}: reference run at {fpr} FPR must be collision-free"
    );
    let estimator = TolerableLatencyEstimator::new(ZhuyiConfig::paper()).expect("valid config");
    let config = PipelineConfig {
        current_latency: Seconds(1.0 / fpr),
        stride,
        ..Default::default()
    };
    analyze_trace(
        &trace.scenes,
        scenario.road.path(),
        &CameraRig::drive_av(),
        &estimator,
        &config,
    )
}

/// The paper's central validation: for every scenario, the Zhuyi estimate
/// obtained from a safe 30-FPR run must be at least the scenario's
/// minimum required FPR.
#[test]
fn estimates_are_conservative_for_all_scenarios() {
    // (scenario, MRF measured by the av-scenarios probe at seed 0)
    let mrf: [(ScenarioId, f64); 9] = [
        (ScenarioId::CutOut, 2.0),
        (ScenarioId::CutOutFast, 6.0),
        (ScenarioId::CutIn, 1.0),
        (ScenarioId::ChallengingCutIn, 3.0),
        (ScenarioId::ChallengingCutInCurved, 4.0),
        (ScenarioId::VehicleFollowing, 1.0),
        (ScenarioId::FrontRightActivity1, 1.0),
        (ScenarioId::FrontRightActivity2, 1.0),
        (ScenarioId::FrontRightActivity3, 1.0),
    ];
    for (id, required) in mrf {
        let analysis = analyze(id, 30.0, 25);
        let estimate = analysis
            .max_camera_fpr()
            .expect("analysis produced steps")
            .value();
        assert!(
            estimate + 1e-9 >= required,
            "{id}: estimate {estimate:.1} FPR below MRF {required}"
        );
    }
}

/// The paper's headline: at most ~36% of a 3-camera 30-FPR provisioning
/// is ever needed in the studied scenarios.
#[test]
fn fraction_of_provisioned_resources_is_bounded() {
    let cameras = [CameraKind::FrontWide, CameraKind::Left, CameraKind::Right];
    let mut worst: f64 = 0.0;
    for id in [
        ScenarioId::CutOut,
        ScenarioId::CutOutFast,
        ScenarioId::FrontRightActivity1,
    ] {
        let analysis = analyze(id, 30.0, 25);
        let sum = analysis
            .max_total_fpr(&cameras)
            .expect("analysis produced steps")
            .value();
        worst = worst.max(sum / 90.0);
    }
    assert!(
        worst <= 0.40,
        "fraction {worst:.2} exceeds the paper's ~36% bound"
    );
    assert!(worst >= 0.03, "fraction {worst:.2} suspiciously small");
}

/// Lowering the FPR below the MRF must actually produce collisions — the
/// causal chain (frame sampling → confirmation → stale planning) works
/// end to end.
#[test]
fn low_rate_causes_collision_in_hard_scenarios() {
    for (id, unsafe_fpr) in [(ScenarioId::CutOutFast, 3.0), (ScenarioId::CutOut, 1.0)] {
        let trace = Scenario::build(id, 0).run_at(Fpr(unsafe_fpr));
        assert!(
            trace.collided(),
            "{id} at {unsafe_fpr} FPR should collide (below MRF)"
        );
    }
}

/// Side cameras stay unconstrained in the front-only Cut-in scenario
/// (paper Fig. 6: "the tolerable latency for side cameras is 1000 ms").
#[test]
fn cut_in_side_cameras_idle() {
    let analysis = analyze(ScenarioId::CutIn, 30.0, 25);
    for kind in [CameraKind::Left, CameraKind::Right] {
        for (t, latency) in analysis.camera_latency_series(kind) {
            assert_eq!(
                latency,
                Seconds(1.0),
                "{kind} camera constrained at t={t} in a front-only scenario"
            );
        }
    }
    // The front camera, by contrast, is constrained at some point.
    let front_min = analysis
        .camera_latency_series(CameraKind::FrontWide)
        .iter()
        .map(|(_, l)| l.value())
        .fold(f64::INFINITY, f64::min);
    assert!(front_min < 1.0, "front camera never constrained");
}

/// The ego's braking episodes coincide with tightened front-camera
/// requirements shortly before them (the Fig. 4-6 correlation).
#[test]
fn requirement_tightens_before_braking() {
    let analysis = analyze(ScenarioId::CutOutFast, 30.0, 10);
    // Find the first hard-braking step.
    let brake_t = analysis
        .steps
        .iter()
        .find(|s| s.ego_accel.value() < -3.0)
        .map(|s| s.time.value())
        .expect("cut-out fast must brake hard");
    // In the two seconds before it, the front camera must have tightened.
    let tight = analysis
        .steps
        .iter()
        .filter(|s| s.time.value() > brake_t - 2.0 && s.time.value() <= brake_t)
        .filter_map(|s| {
            s.cameras
                .iter()
                .find(|c| c.kind == CameraKind::FrontWide)
                .map(|c| c.latency.value())
        })
        .fold(f64::INFINITY, f64::min);
    assert!(
        tight < 0.2,
        "front latency only reached {tight}s before braking at t={brake_t}"
    );
}

/// Infeasible situations are flagged, not silently clamped.
#[test]
fn infeasible_outcome_is_reported() {
    use zhuyi_repro::model::future::StationaryActor;
    use zhuyi_repro::model::EgoKinematics;
    let estimator = TolerableLatencyEstimator::new(ZhuyiConfig::paper()).expect("valid");
    let est = estimator.tolerable_latency(
        EgoKinematics::new(MetersPerSecond(30.0), MetersPerSecondSquared::ZERO),
        &StationaryActor::new(Meters(5.0)),
        Seconds(1.0 / 30.0),
    );
    assert_eq!(est.outcome, SearchOutcome::Infeasible);
}
