//! Tier-1 smoke of the fleet subsystem through the facade: a compact
//! multi-scenario sweep must merge deterministically at every worker
//! count and reproduce the Table-1 headline orderings.

use zhuyi_repro::fleet::{run_sweep, JobOutcome, SweepPlan};
use zhuyi_repro::scenarios::catalog::{Mrf, ScenarioId};

#[test]
fn fleet_sweep_is_deterministic_and_matches_table1_shapes() {
    let plan = SweepPlan::builder()
        .scenarios([
            ScenarioId::CutOut,
            ScenarioId::CutIn,
            ScenarioId::VehicleFollowing,
        ])
        .seeds([0])
        .min_safe_fpr(vec![1, 2, 4, 30])
        .build();

    let sequential = run_sweep(&plan, 1);
    let parallel = run_sweep(&plan, 3);
    assert_eq!(
        sequential.to_csv(),
        parallel.to_csv(),
        "worker count changed the merged results"
    );
    assert_eq!(sequential.to_json(), parallel.to_json());

    let mrf_of = |id: ScenarioId| {
        sequential
            .results()
            .iter()
            .find(|r| r.job.spec.scenario == id.into())
            .map(|r| match &r.outcome {
                JobOutcome::MinSafeFpr(m) => m.mrf,
                other => panic!("expected MSF outcome, got {other:?}"),
            })
            .expect("scenario present in sweep")
    };
    // Table 1: Cut-out needs 2 FPR; Cut-in and Vehicle following survive
    // the lowest tested rate.
    assert_eq!(mrf_of(ScenarioId::CutOut), Mrf::Fpr(2));
    assert_eq!(mrf_of(ScenarioId::CutIn), Mrf::BelowMinimumTested);
    assert_eq!(
        mrf_of(ScenarioId::VehicleFollowing),
        Mrf::BelowMinimumTested
    );
}
