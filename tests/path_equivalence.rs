//! Cross-path equivalence harness: the same fuzzed registry corpus must
//! export byte-identical results through every execution path the fleet
//! layer offers — the per-seed per-rate loop, the rate-batched lockstep
//! loop (all candidate rates of one instance as lanes of one sim), and
//! the seed×rate-batched loop (whole blocks of jittered instances, each
//! with its own road geometry, advanced through one shared tick loop).
//!
//! The batched paths earn their speed from aggressive sharing (one actor
//! step per tick for all rate lanes, interleaved groups over different
//! roads) and from safe-suffix certificates retiring lanes early, so the
//! pin here is deliberately end-to-end: CSV, JSON, and kept probe traces
//! all compared as bytes over a 50+ scenario generated corpus. A second
//! test drives the same corpus through the low-level seed-batched sweep
//! API and asserts the certificate machinery actually fired both ways —
//! retirements *and* declines — so the equivalence above can't pass by
//! quietly skipping the interesting paths.

use std::sync::Arc;

use zhuyi_repro::core::units::Fpr;
use zhuyi_repro::fleet::{run_sweep_with, ExecOptions, SweepPlan};
use zhuyi_repro::registry::{FuzzConfig, ScenarioSource};
use zhuyi_repro::scenarios::sweep::{collides_seed_batched_with_stats, SweepContext};
use zhuyi_repro::telemetry;

/// The pinned corpus: `(prefix, count, seed)` fully determine the
/// definitions, byte for byte, so every CI run sees the same scenarios.
const CORPUS_PREFIX: &str = "path-eq";
const CORPUS_COUNT: usize = 50;
const CORPUS_SEED: u64 = 20221207;

/// The candidate grid the MSF jobs search. Spread so low rates collide,
/// high rates survive, and the binary localization has real work.
const GRID: &[u32] = &[1, 2, 4, 8, 15, 30];

fn corpus() -> Vec<ScenarioSource> {
    let defs = FuzzConfig {
        prefix: CORPUS_PREFIX.to_string(),
        count: CORPUS_COUNT,
        seed: CORPUS_SEED,
    }
    .generate();
    assert_eq!(defs.len(), CORPUS_COUNT);
    defs.into_iter().map(Into::into).collect()
}

#[test]
fn fuzzed_corpus_exports_identically_through_every_execution_path() {
    // Two jitter seeds per scenario: seed blocks then hold genuinely
    // different road geometry (jitter perturbs the road itself), and the
    // fuzz templates make ~a quarter of the corpus curved, so blocks mix
    // straight and curved groups in one lockstep loop.
    let plan = SweepPlan::builder()
        .sources(corpus())
        .seeds([0, 1])
        .probe(30.0, true)
        .min_safe_fpr(GRID.to_vec())
        .build();

    let per_seed = run_sweep_with(
        &plan,
        2,
        ExecOptions {
            batch_lanes: 1,
            ..ExecOptions::default()
        },
    );
    let rate_batched = run_sweep_with(&plan, 2, ExecOptions::default());
    let seed_rate_batched = run_sweep_with(
        &plan,
        2,
        ExecOptions {
            seed_blocks: 64,
            ..ExecOptions::default()
        },
    );

    assert_eq!(
        per_seed.to_csv(),
        rate_batched.to_csv(),
        "rate-batched CSV diverged from the per-seed path"
    );
    assert_eq!(
        per_seed.to_csv(),
        seed_rate_batched.to_csv(),
        "seed-batched CSV diverged from the per-seed path"
    );
    assert_eq!(
        per_seed.to_json(),
        rate_batched.to_json(),
        "rate-batched JSON diverged from the per-seed path"
    );
    assert_eq!(
        per_seed.to_json(),
        seed_rate_batched.to_json(),
        "seed-batched JSON diverged from the per-seed path"
    );
    // Probe jobs keep full traces; they ride alone through the blocked
    // path (only MSF jobs block), but their bytes must still come out
    // identical — file names and CSV contents both.
    assert_eq!(
        per_seed.kept_traces(),
        rate_batched.kept_traces(),
        "rate-batched traces diverged from the per-seed path"
    );
    assert_eq!(
        per_seed.kept_traces(),
        seed_rate_batched.kept_traces(),
        "seed-batched traces diverged from the per-seed path"
    );
    assert!(
        !per_seed.kept_traces().is_empty(),
        "trace comparison compared nothing"
    );
}

#[test]
fn telemetry_changes_no_exported_byte_and_records_the_sweep() {
    // Telemetry's "out of band" contract, end to end: the same corpus
    // swept with a registry installed must export the exact bytes of the
    // uninstrumented sweep — while the snapshot proves the sweep was
    // actually observed (phase ticks, certificate declines, one wall
    // time per job). Seed blocks keep the certificate machinery (and so
    // the decline counters) in play, per the test above.
    let plan = SweepPlan::builder()
        .sources(corpus())
        .seeds([0, 1])
        .probe(30.0, true)
        .min_safe_fpr(GRID.to_vec())
        .build();
    let options = ExecOptions {
        seed_blocks: 64,
        ..ExecOptions::default()
    };

    let off = run_sweep_with(&plan, 2, options);
    let registry = Arc::new(telemetry::Registry::new());
    let on = {
        let _guard = telemetry::install(&registry);
        run_sweep_with(&plan, 2, options)
    };
    let snapshot = registry.snapshot();

    assert_eq!(
        off.to_csv(),
        on.to_csv(),
        "telemetry changed the exported CSV bytes"
    );
    assert_eq!(
        off.to_json(),
        on.to_json(),
        "telemetry changed the exported JSON bytes"
    );
    assert_eq!(
        off.kept_traces(),
        on.kept_traces(),
        "telemetry changed the kept probe traces"
    );

    assert!(
        snapshot.phase_ticks.iter().sum::<u64>() > 0,
        "instrumented sweep recorded no tick phases"
    );
    assert!(
        snapshot.cert_declines.iter().sum::<u64>() > 0,
        "instrumented sweep recorded no certificate declines"
    );
    assert_eq!(
        snapshot.jobs.len(),
        plan.len(),
        "every job must have exactly one wall-time record"
    );
}

#[test]
fn seed_batched_corpus_exercises_certificate_retirement_and_decline() {
    // Same corpus, one group per scenario, every group in one lockstep
    // loop. The stats must show both certificate outcomes: lanes retired
    // early (the speed half) and attempts declined (the caution half) —
    // otherwise the byte-equivalence above never stressed the paths
    // where batched execution could actually diverge.
    let rates: Vec<Fpr> = GRID.iter().map(|&c| Fpr(f64::from(c))).collect();
    let scenarios: Vec<_> = corpus().iter().map(|source| source.build(1)).collect();
    let mut contexts: Vec<SweepContext> = scenarios.iter().map(SweepContext::new).collect();
    let (verdicts, stats) = collides_seed_batched_with_stats(&mut contexts, &rates);

    assert_eq!(verdicts.len(), CORPUS_COUNT);
    assert!(
        verdicts.iter().flatten().any(|&collided| collided),
        "corpus produced no collisions; the grid no longer stresses the boundary"
    );
    assert!(
        verdicts.iter().flatten().any(|&collided| !collided),
        "corpus produced no safe runs; the grid no longer stresses the boundary"
    );
    assert!(
        stats.certified_lanes > 0 && stats.ticks_retired > 0,
        "no lane was certificate-retired: the batched fast path went unexercised ({stats:?})"
    );
    assert!(
        stats.cert_declines > 0,
        "no certificate attempt declined: the conservative path went unexercised ({stats:?})"
    );
    assert!(
        stats.idle_lane_ticks > 0,
        "no tick took the verdict-only idle fast path ({stats:?})"
    );
}
