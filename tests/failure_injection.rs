//! Failure-injection integration tests: frame loss degrades the effective
//! processing rate, collisions reappear below the MRF, and the Zhuyi
//! safety check notices the shortfall.

use zhuyi_repro::core::prelude::*;
use zhuyi_repro::perception::dropout::DropPolicy;
use zhuyi_repro::perception::system::RatePlan;
use zhuyi_repro::prediction::kinematic::ConstantAcceleration;
use zhuyi_repro::runtime::system::{drive, RuntimeConfig, ZhuyiRuntime};
use zhuyi_repro::scenarios::catalog::{Scenario, ScenarioId};
use zhuyi_repro::sim::engine::Simulation;

fn sim_with_drops(id: ScenarioId, fpr: f64, policy: DropPolicy) -> Simulation {
    let scenario = Scenario::build(id, 0);
    let mut sim = scenario
        .simulation(RatePlan::Uniform(Fpr(fpr)))
        .expect("uniform plan is valid");
    let perception = sim.perception().clone().with_drop_policy(policy);
    *sim.perception_mut() = perception;
    sim
}

/// Cut-out fast has MRF 6. Running at 8 FPR is safe; dropping every other
/// frame (effective 4 FPR) pushes it below the MRF and the collision
/// returns — frame loss is exactly a rate reduction.
#[test]
fn half_rate_drop_reintroduces_collision() {
    let healthy = sim_with_drops(ScenarioId::CutOutFast, 8.0, DropPolicy::None).run();
    assert!(!healthy.collided(), "8 FPR must be safe (MRF 6)");

    let degraded = sim_with_drops(ScenarioId::CutOutFast, 8.0, DropPolicy::EveryNth(2)).run();
    assert!(
        degraded.collided(),
        "8 FPR with 50% frame loss (effective 4) must collide"
    );
}

/// A mild loss pattern that keeps the effective rate above the MRF stays
/// safe.
#[test]
fn mild_drop_above_mrf_stays_safe() {
    // 10 FPR with 1-in-5 loss: effective 8 >= MRF 6.
    let trace = sim_with_drops(ScenarioId::CutOutFast, 10.0, DropPolicy::EveryNth(5)).run();
    assert!(!trace.collided());
}

/// The online safety check flags the braking episode when the configured
/// rate leaves no margin for the injected burst loss; and burst loss is
/// *harsher* than its average-rate equivalent (the gaps concatenate), so
/// even the "<1 MRF" following scenario collides at very low rates.
#[test]
fn safety_check_alarms_under_bursty_loss() {
    let burst = DropPolicy::Burst {
        period: 6,
        length: 3,
    };
    // 4 FPR + 50% burst loss: survives, but the check must alarm.
    let scenario = Scenario::build(ScenarioId::VehicleFollowing, 0);
    let mut sim = scenario
        .simulation(RatePlan::Uniform(Fpr(4.0)))
        .expect("valid plan");
    *sim.perception_mut() = sim.perception().clone().with_drop_policy(burst);
    let runtime = ZhuyiRuntime::new(RuntimeConfig::default()).expect("valid config");
    let (trace, decisions) = drive(sim, &runtime, &ConstantAcceleration);
    assert!(!trace.collided());
    assert!(
        decisions.iter().any(|d| !d.verdict.safe),
        "no alarm despite burst loss through a braking episode"
    );

    // 2 FPR + the same burst: the effective gaps exceed what even this
    // MRF-<1 scenario tolerates.
    let mut sim = Scenario::build(ScenarioId::VehicleFollowing, 0)
        .simulation(RatePlan::Uniform(Fpr(2.0)))
        .expect("valid plan");
    *sim.perception_mut() = sim.perception().clone().with_drop_policy(burst);
    assert!(sim.run().collided(), "bursty loss at 2 FPR must be fatal");
}

/// Dropped frames are reported per tick so a watchdog could detect the
/// fault directly.
#[test]
fn drop_reports_are_visible() {
    let mut sim = sim_with_drops(ScenarioId::VehicleFollowing, 30.0, DropPolicy::EveryNth(2));
    let mut dropped = 0usize;
    for _ in 0..200 {
        let scene = sim.snapshot();
        let report = sim.perception_mut().tick(&scene);
        dropped += report.dropped.len();
        if sim.step() != zhuyi_repro::sim::engine::StepOutcome::Running {
            break;
        }
    }
    assert!(dropped > 0, "drop policy never reported a lost frame");
}
