//! Facade crate for the **Zhuyi** (DAC 2022) reproduction.
//!
//! Zhuyi estimates, at every instant of a driving scenario, the minimum
//! per-camera sensor frame processing rate (FPR) an autonomous vehicle must
//! sustain to stay collision-free, by running a kinematics-based
//! tolerable-latency search per surrounding actor and aggregating per camera
//! field of view.
//!
//! (See `docs/ARCHITECTURE.md` in the repository for the three-layer
//! architecture: av-core data model → av-sim streaming observer loop →
//! zhuyi-fleet sharded sweeps.)
//!
//! This crate re-exports the whole workspace so examples and downstream
//! users need a single dependency:
//!
//! - `core` ([`av_core`]) — units, geometry, Frenet paths, kinematic states
//! - `model` ([`zhuyi`]) — the Zhuyi estimator (the paper's contribution)
//! - `perception` ([`av_perception`]) — camera rig, frame sampling, world model
//! - `prediction` ([`av_prediction`]) — trajectory predictors
//! - `sim` ([`av_sim`]) — closed-loop driving simulator
//! - `scenarios` ([`av_scenarios`]) — the nine Table-1 scenarios
//! - `runtime` ([`zhuyi_runtime`]) — online safety check & work prioritization
//! - `compute` ([`compute_model`]) — Figure-1 compute-demand model
//! - `fleet` ([`zhuyi_fleet`]) — parallel fleet-scale scenario sweeps
//! - `distd` ([`zhuyi_distd`]) — multi-process sharded sweep coordinator/workers
//! - `registry` ([`zhuyi_registry`]) — declarative scenario definitions,
//!   registry lookup, and corpus generators
//! - `telemetry` ([`zhuyi_telemetry`]) — zero-overhead-when-off metrics
//!   registry, tick-phase profiling, and flight recorder
//!
//! # Quickstart
//!
//! ```
//! use zhuyi_repro::model::{ActorEstimate, TolerableLatencyEstimator, ZhuyiConfig};
//! use zhuyi_repro::core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Ego doing 20 m/s, 60 m behind a stopped obstacle.
//! let config = ZhuyiConfig::paper();
//! let estimator = TolerableLatencyEstimator::new(config)?;
//! let ego = VehicleState::new(Vec2::ZERO, Radians(0.0), MetersPerSecond(20.0),
//!                             MetersPerSecondSquared(0.0));
//! let obstacle = Agent::new(ActorId(1), ActorKind::StaticObstacle, Dimensions::OBSTACLE,
//!                           VehicleState::at_rest(Vec2::new(60.0, 0.0), Radians(0.0)));
//! let estimate: ActorEstimate = estimator.estimate_stationary_actor(&ego, &obstacle);
//! assert!(estimate.latency < Seconds(1.0)); // the obstacle constrains the ego
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use av_core as core;
pub use av_perception as perception;
pub use av_prediction as prediction;
pub use av_scenarios as scenarios;
pub use av_sim as sim;
pub use compute_model as compute;
pub use zhuyi as model;
pub use zhuyi_distd as distd;
pub use zhuyi_fleet as fleet;
pub use zhuyi_registry as registry;
pub use zhuyi_runtime as runtime;
pub use zhuyi_telemetry as telemetry;
