//! Compute-demand model for multi-camera AV perception (paper Fig. 1).
//!
//! The paper's motivating figure projects the Tera-Operations-Per-Second
//! (TOPS) demand of running state-of-the-art camera perception — the
//! MLPerf SSD-Large (SSD-ResNet34) object detector at 1200×1200 — on all
//! 12 cameras of a Hyperion-class vehicle, inflated 20% for the additional
//! camera models that reuse extracted features, against the capability of
//! NVIDIA DRIVE AGX Xavier and Jetson AGX Orin SoCs.
//!
//! ```
//! use compute_model::{PerceptionWorkload, Soc};
//!
//! let demand = PerceptionWorkload::paper_default().tops_demand(30.0);
//! // A 12-camera 30-FPR system wants far more than Xavier offers.
//! assert!(demand > Soc::xavier().peak_tops());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use serde::{Deserialize, Serialize};

/// Giga-operations per frame of SSD-ResNet34 ("SSD-Large") at 1200×1200,
/// from the MLPerf inference suite (~433 GFLOPs ≈ 433 Gops per image).
pub const SSD_LARGE_GOPS_PER_FRAME: f64 = 433.0;

/// An in-vehicle SoC with a peak inference throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Soc {
    name: String,
    peak_tops: f64,
}

impl Soc {
    /// Creates an SoC description.
    ///
    /// # Panics
    ///
    /// Panics if `peak_tops` is not positive and finite.
    pub fn new(name: impl Into<String>, peak_tops: f64) -> Self {
        assert!(
            peak_tops > 0.0 && peak_tops.is_finite(),
            "peak TOPS must be positive and finite, got {peak_tops}"
        );
        Self {
            name: name.into(),
            peak_tops,
        }
    }

    /// NVIDIA DRIVE AGX Xavier (30 INT8 TOPS).
    pub fn xavier() -> Self {
        Self::new("DRIVE AGX Xavier", 30.0)
    }

    /// NVIDIA Jetson AGX Orin (275 INT8 TOPS).
    pub fn orin() -> Self {
        Self::new("Jetson AGX Orin", 275.0)
    }

    /// The SoC's marketing name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Peak throughput in TOPS.
    pub fn peak_tops(&self) -> f64 {
        self.peak_tops
    }

    /// `true` when this SoC can sustain `demand_tops` of perception work.
    pub fn sustains(&self, demand_tops: f64) -> bool {
        self.peak_tops + 1e-9 >= demand_tops
    }

    /// The largest uniform per-camera FPR this SoC sustains for a
    /// workload.
    pub fn max_sustainable_fpr(&self, workload: &PerceptionWorkload) -> f64 {
        self.peak_tops / workload.tops_demand(1.0)
    }
}

/// The camera-perception workload of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerceptionWorkload {
    /// Number of cameras processed.
    pub cameras: u32,
    /// Giga-ops per processed frame (detector cost).
    pub gops_per_frame: f64,
    /// Multiplier for additional per-camera models (lane detection, free
    /// space, occlusion...) that reuse extracted features. The paper uses
    /// 1.2 (+20%).
    pub feature_reuse_overhead: f64,
}

impl PerceptionWorkload {
    /// The paper's exact Fig.-1 assumptions: 12 cameras, SSD-Large at
    /// 1200×1200, +20% for feature-sharing models.
    pub fn paper_default() -> Self {
        Self {
            cameras: 12,
            gops_per_frame: SSD_LARGE_GOPS_PER_FRAME,
            feature_reuse_overhead: 1.2,
        }
    }

    /// TOPS demand at a uniform per-camera frame rate.
    ///
    /// # Panics
    ///
    /// Panics if `fpr` is negative or non-finite.
    pub fn tops_demand(&self, fpr: f64) -> f64 {
        assert!(
            fpr >= 0.0 && fpr.is_finite(),
            "frame rate must be non-negative and finite, got {fpr}"
        );
        self.cameras as f64 * self.gops_per_frame * self.feature_reuse_overhead * fpr / 1000.0
    }

    /// The Fig.-1 data series: `(fpr, demand)` rows for the given rates.
    pub fn demand_series(&self, rates: &[f64]) -> Vec<(f64, f64)> {
        rates.iter().map(|&f| (f, self.tops_demand(f))).collect()
    }

    /// Scales the demand by the *fraction of frames actually processed*,
    /// which is how a Zhuyi-prioritized system (paper: 36% or fewer
    /// frames) maps back onto Fig. 1.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn tops_demand_at_fraction(&self, fpr: f64, fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be within [0, 1], got {fraction}"
        );
        self.tops_demand(fpr) * fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure_magnitudes() {
        let w = PerceptionWorkload::paper_default();
        // 12 cameras x 433 Gops x 1.2 x 30 FPR = 187 TOPS.
        let demand_30 = w.tops_demand(30.0);
        assert!((demand_30 - 187.0).abs() < 1.0, "demand {demand_30}");
        // Xavier (30 TOPS) cannot sustain even 10 FPR; Orin sustains 30.
        assert!(!Soc::xavier().sustains(w.tops_demand(10.0)));
        assert!(Soc::orin().sustains(demand_30));
    }

    #[test]
    fn xavier_caps_out_below_6_fpr() {
        let w = PerceptionWorkload::paper_default();
        let max = Soc::xavier().max_sustainable_fpr(&w);
        assert!(
            (4.0..6.0).contains(&max),
            "Xavier sustainable FPR {max} out of expected band"
        );
    }

    #[test]
    fn demand_is_linear_in_rate() {
        let w = PerceptionWorkload::paper_default();
        assert!((w.tops_demand(20.0) - 2.0 * w.tops_demand(10.0)).abs() < 1e-9);
        assert_eq!(w.tops_demand(0.0), 0.0);
    }

    #[test]
    fn series_matches_pointwise() {
        let w = PerceptionWorkload::paper_default();
        let series = w.demand_series(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(series.len(), 4);
        for (f, d) in series {
            assert!((d - w.tops_demand(f)).abs() < 1e-12);
        }
    }

    #[test]
    fn zhuyi_fraction_scales_demand() {
        let w = PerceptionWorkload::paper_default();
        // At the paper's 36% fraction, the 30-FPR demand fits on Orin with
        // lots of headroom.
        let d = w.tops_demand_at_fraction(30.0, 0.36);
        assert!((d - 187.0 * 0.36).abs() < 1.0);
        assert!(Soc::orin().sustains(d));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn fraction_out_of_range_panics() {
        let _ = PerceptionWorkload::paper_default().tops_demand_at_fraction(30.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_soc_rejected() {
        let _ = Soc::new("broken", 0.0);
    }
}
