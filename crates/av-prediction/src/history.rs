//! Track history: estimating motion derivatives from past observations.
//!
//! The perceived world model only carries instantaneous states. To feed
//! the CTRV predictor (turn rate) or smooth a noisy acceleration, the
//! online system keeps a short rolling history per track and estimates
//! the derivatives from it by finite differences over the window.

use crate::kinematic::Ctrv;
use av_core::prelude::*;
use std::collections::VecDeque;

/// A bounded rolling window of observed states for one actor.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackHistory {
    samples: VecDeque<(Seconds, VehicleState)>,
    capacity: usize,
}

impl TrackHistory {
    /// Creates a history keeping the most recent `capacity` observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` — derivatives need at least two samples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "history needs at least two samples");
        Self {
            samples: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Records an observation. Out-of-order observations (time not after
    /// the newest sample) are ignored.
    pub fn push(&mut self, time: Seconds, state: VehicleState) {
        if let Some((latest, _)) = self.samples.back() {
            if time.value() <= latest.value() {
                return;
            }
        }
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back((time, state));
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no observation is stored.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The most recent observation.
    pub fn latest(&self) -> Option<(Seconds, VehicleState)> {
        self.samples.back().copied()
    }

    /// The time span covered by the window.
    pub fn span(&self) -> Seconds {
        match (self.samples.front(), self.samples.back()) {
            (Some((first, _)), Some((last, _))) => *last - *first,
            _ => Seconds::ZERO,
        }
    }

    /// Average heading change rate over the window (rad/s), or `None`
    /// with fewer than two samples.
    pub fn turn_rate(&self) -> Option<Radians> {
        let (t0, s0) = self.samples.front()?;
        let (t1, s1) = self.samples.back()?;
        let dt = (*t1 - *t0).value();
        if dt <= 1e-9 {
            return None;
        }
        let dh = (s1.heading - s0.heading).normalized().value();
        Some(Radians(dh / dt))
    }

    /// Average longitudinal acceleration over the window, or `None` with
    /// fewer than two samples.
    pub fn mean_acceleration(&self) -> Option<MetersPerSecondSquared> {
        let (t0, s0) = self.samples.front()?;
        let (t1, s1) = self.samples.back()?;
        let dt = (*t1 - *t0).value();
        if dt <= 1e-9 {
            return None;
        }
        Some(MetersPerSecondSquared((s1.speed - s0.speed).value() / dt))
    }

    /// A CTRV predictor parameterized by the estimated turn rate.
    pub fn ctrv(&self) -> Option<Ctrv> {
        self.turn_rate().map(Ctrv::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::TrajectoryPredictor;

    fn state(heading: f64, speed: f64) -> VehicleState {
        VehicleState::new(
            Vec2::ZERO,
            Radians(heading),
            MetersPerSecond(speed),
            MetersPerSecondSquared::ZERO,
        )
    }

    #[test]
    fn turn_rate_from_heading_trend() {
        let mut h = TrackHistory::new(10);
        for i in 0..5 {
            let t = i as f64 * 0.1;
            h.push(Seconds(t), state(0.05 * t, 10.0));
        }
        let rate = h.turn_rate().expect("two samples");
        assert!((rate.value() - 0.05).abs() < 1e-9);
        assert!(h.ctrv().is_some());
    }

    #[test]
    fn turn_rate_handles_wraparound() {
        use std::f64::consts::PI;
        let mut h = TrackHistory::new(4);
        // Heading crosses the ±pi seam: 3.1 -> -3.1 is +0.083 rad of
        // actual left turn, not -6.2.
        h.push(Seconds(0.0), state(PI - 0.04, 10.0));
        h.push(Seconds(1.0), state(-PI + 0.04, 10.0));
        let rate = h.turn_rate().expect("two samples");
        assert!((rate.value() - 0.08).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn acceleration_from_speed_trend() {
        let mut h = TrackHistory::new(10);
        h.push(Seconds(0.0), state(0.0, 20.0));
        h.push(Seconds(0.5), state(0.0, 18.0));
        h.push(Seconds(1.0), state(0.0, 16.0));
        let a = h.mean_acceleration().expect("samples");
        assert!((a.value() + 4.0).abs() < 1e-9);
        assert!((h.span().value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut h = TrackHistory::new(3);
        for i in 0..6 {
            h.push(Seconds(i as f64), state(0.0, i as f64));
        }
        assert_eq!(h.len(), 3);
        // Window now spans t=3..5 with speeds 3..5: accel = 1.
        assert!((h.mean_acceleration().expect("full").value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_order_pushes_ignored() {
        let mut h = TrackHistory::new(4);
        h.push(Seconds(1.0), state(0.0, 10.0));
        h.push(Seconds(0.5), state(0.0, 99.0));
        h.push(Seconds(1.0), state(0.0, 99.0));
        assert_eq!(h.len(), 1);
        assert_eq!(
            h.latest().expect("one sample").1.speed,
            MetersPerSecond(10.0)
        );
    }

    #[test]
    fn single_sample_has_no_derivatives() {
        let mut h = TrackHistory::new(4);
        assert!(h.is_empty());
        h.push(Seconds(0.0), state(0.0, 10.0));
        assert!(h.turn_rate().is_none());
        assert!(h.mean_acceleration().is_none());
        assert!(h.ctrv().is_none());
    }

    #[test]
    fn estimated_ctrv_predicts_curved_motion() {
        // An actor turning left at 0.1 rad/s observed twice; the derived
        // CTRV rollout must curve left.
        let mut h = TrackHistory::new(4);
        h.push(Seconds(0.0), state(0.0, 10.0));
        h.push(Seconds(1.0), state(0.1, 10.0));
        let ctrv = h.ctrv().expect("rate estimated");
        let agent = Agent::new(
            ActorId(1),
            ActorKind::Vehicle,
            Dimensions::CAR,
            state(0.1, 10.0),
        );
        let futures = ctrv.predict(&agent, Seconds(1.0), Seconds(5.0));
        let end = futures[0].sample(Seconds(6.0));
        assert!(
            end.position.y > 1.0,
            "did not curve left: {:?}",
            end.position
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_capacity_rejected() {
        let _ = TrackHistory::new(1);
    }
}
