//! Single-hypothesis kinematic predictors: constant velocity, constant
//! acceleration, and constant turn rate & velocity (CTRV).

use crate::predictor::{rollout, TrajectoryPredictor};
use av_core::prelude::*;

/// Predicts the actor continues at its current speed and heading.
///
/// ```
/// use av_core::prelude::*;
/// use av_prediction::kinematic::ConstantVelocity;
/// use av_prediction::predictor::TrajectoryPredictor;
///
/// let agent = Agent::new(ActorId(1), ActorKind::Vehicle, Dimensions::CAR,
///     VehicleState::new(Vec2::ZERO, Radians(0.0), MetersPerSecond(10.0),
///                       MetersPerSecondSquared(-2.0)));
/// let futures = ConstantVelocity.predict(&agent, Seconds(0.0), Seconds(2.0));
/// assert_eq!(futures.len(), 1);
/// // Deceleration is ignored: 20 m covered in 2 s.
/// assert!((futures[0].sample(Seconds(2.0)).position.x - 20.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConstantVelocity;

impl TrajectoryPredictor for ConstantVelocity {
    fn predict(&self, agent: &Agent, now: Seconds, horizon: Seconds) -> Vec<Trajectory> {
        let base = VehicleState {
            accel: MetersPerSecondSquared::ZERO,
            ..agent.state
        };
        vec![rollout(now, horizon, 1.0, |dt| {
            base.predict_constant_accel(dt)
        })]
    }
}

/// Predicts the actor holds its current acceleration (speed clamped at
/// zero: a braking vehicle stops and stays stopped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConstantAcceleration;

impl TrajectoryPredictor for ConstantAcceleration {
    fn predict(&self, agent: &Agent, now: Seconds, horizon: Seconds) -> Vec<Trajectory> {
        let base = agent.state;
        vec![rollout(now, horizon, 1.0, |dt| {
            base.predict_constant_accel(dt)
        })]
    }
}

/// Constant turn rate and velocity (CTRV): the actor holds its speed while
/// its heading changes at a fixed rate — the standard model for curved-road
/// traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ctrv {
    /// Heading change rate (rad/s); positive turns left.
    pub turn_rate: Radians,
}

impl Ctrv {
    /// Creates a CTRV predictor with the given turn rate (rad/s).
    pub fn new(turn_rate: Radians) -> Self {
        Self { turn_rate }
    }

    /// The turn rate matching travel along a circular arc of signed
    /// `radius` at `speed` (positive radius turns left).
    ///
    /// # Panics
    ///
    /// Panics if `radius` is zero.
    pub fn for_arc(radius: Meters, speed: MetersPerSecond) -> Self {
        assert!(radius.value() != 0.0, "arc radius must be nonzero");
        Self {
            turn_rate: Radians(speed.value() / radius.value()),
        }
    }
}

impl TrajectoryPredictor for Ctrv {
    fn predict(&self, agent: &Agent, now: Seconds, horizon: Seconds) -> Vec<Trajectory> {
        let s0 = agent.state;
        let omega = self.turn_rate.value();
        let v = s0.speed.value().max(0.0);
        vec![rollout(now, horizon, 1.0, move |dt| {
            let t = dt.value();
            let h0 = s0.heading.value();
            let (dx, dy) = if omega.abs() < 1e-9 {
                (v * t * h0.cos(), v * t * h0.sin())
            } else {
                // Closed-form CTRV displacement.
                (
                    v / omega * ((h0 + omega * t).sin() - h0.sin()),
                    v / omega * (h0.cos() - (h0 + omega * t).cos()),
                )
            };
            VehicleState {
                position: s0.position + Vec2::new(dx, dy),
                heading: Radians(h0 + omega * t).normalized(),
                speed: MetersPerSecond(v),
                accel: MetersPerSecondSquared::ZERO,
            }
        })]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::TrajectoryPredictor;
    use std::f64::consts::FRAC_PI_2;

    fn agent(v: f64, a: f64) -> Agent {
        Agent::new(
            ActorId(1),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::new(
                Vec2::ZERO,
                Radians(0.0),
                MetersPerSecond(v),
                MetersPerSecondSquared(a),
            ),
        )
    }

    #[test]
    fn constant_acceleration_brakes_to_stop() {
        let futures = ConstantAcceleration.predict(&agent(10.0, -5.0), Seconds(0.0), Seconds(5.0));
        let end = futures[0].sample(Seconds(5.0));
        assert!((end.position.x - 10.0).abs() < 1e-9);
        assert_eq!(end.speed, MetersPerSecond::ZERO);
    }

    #[test]
    fn cv_and_ca_agree_without_acceleration() {
        let a = agent(15.0, 0.0);
        let cv = ConstantVelocity.predict(&a, Seconds(0.0), Seconds(3.0));
        let ca = ConstantAcceleration.predict(&a, Seconds(0.0), Seconds(3.0));
        let p1 = cv[0].sample(Seconds(3.0)).position;
        let p2 = ca[0].sample(Seconds(3.0)).position;
        assert!((p1 - p2).norm() < 1e-9);
    }

    #[test]
    fn ctrv_quarter_circle() {
        // 10 m/s on a 100 m-radius left arc: after a quarter period the
        // heading has advanced pi/2 and the position is (100, 100)-ish
        // relative to the turn center at (0, 100).
        let ctrv = Ctrv::for_arc(Meters(100.0), MetersPerSecond(10.0));
        let quarter = Seconds(100.0 * FRAC_PI_2 / 10.0);
        let futures = ctrv.predict(&agent(10.0, 0.0), Seconds(0.0), quarter);
        let end = futures[0].sample(quarter);
        assert!((end.position.x - 100.0).abs() < 0.5, "x={}", end.position.x);
        assert!((end.position.y - 100.0).abs() < 0.5, "y={}", end.position.y);
        assert!((end.heading.value() - FRAC_PI_2).abs() < 1e-6);
    }

    #[test]
    fn ctrv_zero_rate_degenerates_to_cv() {
        let ctrv = Ctrv::new(Radians(0.0));
        let futures = ctrv.predict(&agent(12.0, 0.0), Seconds(0.0), Seconds(2.0));
        let end = futures[0].sample(Seconds(2.0));
        assert!((end.position.x - 24.0).abs() < 1e-9);
        assert!(end.position.y.abs() < 1e-9);
    }
}
