//! Trajectory predictors for the Zhuyi (DAC 2022) reproduction.
//!
//! Paper Eq. 4 aggregates tolerable latencies over a set `T` of predicted
//! trajectories per actor, "given by a trajectory predictor". The paper
//! leverages learned predictors (MultiPath, PredictionNet); this crate
//! substitutes predictors that produce the same artifact — time-stamped
//! trajectories with probabilities — from kinematic state:
//!
//! - [`oracle::OraclePredictor`] — ground truth from a recorded trace
//!   (pre-deployment, |T| = 1),
//! - [`kinematic::ConstantVelocity`], [`kinematic::ConstantAcceleration`],
//!   [`kinematic::Ctrv`] — single-hypothesis rollouts (online),
//! - [`maneuver::ManeuverPredictor`] — a multi-hypothesis set (keep lane /
//!   brake / lane changes) with prior probabilities.
//!
//! # Example
//!
//! ```
//! use av_core::prelude::*;
//! use av_prediction::prelude::*;
//!
//! let lead = Agent::new(ActorId(1), ActorKind::Vehicle, Dimensions::CAR,
//!     VehicleState::new(Vec2::new(50.0, 0.0), Radians(0.0),
//!                       MetersPerSecond(20.0), MetersPerSecondSquared(-4.0)));
//! let futures = ConstantAcceleration.predict(&lead, Seconds(0.0), Seconds(6.0));
//! // The lead stops after 5 s, 50 m further on.
//! let end = futures[0].sample(Seconds(6.0));
//! assert!((end.position.x - 100.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod history;
pub mod kinematic;
pub mod maneuver;
pub mod oracle;
pub mod predictor;

/// Glob import of the crate's main types.
pub mod prelude {
    pub use crate::history::TrackHistory;
    pub use crate::kinematic::{ConstantAcceleration, ConstantVelocity, Ctrv};
    pub use crate::maneuver::{ManeuverConfig, ManeuverPredictor};
    pub use crate::oracle::OraclePredictor;
    pub use crate::predictor::{rollout, TrajectoryPredictor, ROLLOUT_DT};
}
