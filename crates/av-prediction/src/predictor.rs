//! The trajectory-predictor interface and rollout helpers.
//!
//! Post-deployment, Zhuyi consumes *predicted* future trajectories (the set
//! `T` of paper Eq. 4) produced from the perceived world model. The paper
//! leverages existing predictors (MultiPath, PredictionNet); this workspace
//! substitutes kinematic and maneuver-based predictors that produce the
//! same artifact: a set of time-stamped trajectories with probabilities.

use av_core::prelude::*;
use av_core::trajectory::TrajectoryPoint;

/// Produces a set of predicted future trajectories for one actor.
///
/// Implementations must return trajectories whose sample times start at
/// `now` and extend to roughly `now + horizon`, and whose probabilities are
/// positive (they need not sum to one; Zhuyi's aggregation normalizes).
pub trait TrajectoryPredictor {
    /// Predicts futures for `agent` as perceived at `now`.
    fn predict(&self, agent: &Agent, now: Seconds, horizon: Seconds) -> Vec<Trajectory>;
}

/// Sampling interval used by the kinematic rollouts.
pub const ROLLOUT_DT: Seconds = Seconds(0.1);

/// Rolls a state forward under a per-step transition function, producing a
/// trajectory of `probability`.
///
/// The transition receives the elapsed time from `now` and must return the
/// state at that offset (closed-form transitions keep rollouts exact).
pub fn rollout(
    now: Seconds,
    horizon: Seconds,
    probability: f64,
    state_at: impl Fn(Seconds) -> VehicleState,
) -> Trajectory {
    let steps = (horizon.value() / ROLLOUT_DT.value()).ceil().max(1.0) as usize;
    let points = (0..=steps)
        .map(|i| {
            let dt = Seconds(ROLLOUT_DT.value() * i as f64);
            let s = state_at(dt);
            TrajectoryPoint {
                time: now + dt,
                position: s.position,
                heading: s.heading,
                speed: s.speed,
                accel: s.accel,
            }
        })
        .collect();
    Trajectory::new(points, probability).expect("rollout times strictly increase")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollout_produces_monotone_times() {
        let state = VehicleState::new(
            Vec2::ZERO,
            Radians(0.0),
            MetersPerSecond(10.0),
            MetersPerSecondSquared::ZERO,
        );
        let traj = rollout(Seconds(5.0), Seconds(3.0), 1.0, |dt| {
            state.predict_constant_accel(dt)
        });
        assert_eq!(traj.start_time(), Seconds(5.0));
        assert!((traj.end_time().value() - 8.0).abs() < 1e-9);
        let s = traj.sample(Seconds(6.5));
        assert!((s.position.x - 15.0).abs() < 1e-9);
    }

    #[test]
    fn rollout_tiny_horizon_still_valid() {
        let state = VehicleState::at_rest(Vec2::ZERO, Radians(0.0));
        let traj = rollout(Seconds(0.0), Seconds(0.01), 0.5, |dt| {
            state.predict_constant_accel(dt)
        });
        assert!(traj.points().len() >= 2);
        assert_eq!(traj.probability(), 0.5);
    }
}
