//! Multi-hypothesis maneuver prediction.
//!
//! The substitute for learned predictors like MultiPath [Chai et al. 2019]:
//! each actor gets a small set of hypotheses — keep lane, brake, accelerate
//! and lane changes toward adjacent lanes — with fixed prior probabilities.
//! Zhuyi's Eq. 4 then aggregates tolerable latencies across the set.

use crate::predictor::{rollout, TrajectoryPredictor};
use av_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of the maneuver hypothesis set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ManeuverConfig {
    /// Probability of continuing in lane at constant speed.
    pub p_keep: f64,
    /// Probability of braking at [`ManeuverConfig::brake_decel`].
    pub p_brake: f64,
    /// Probability of each lane change (left and right get this each when
    /// the target lane exists).
    pub p_lane_change: f64,
    /// Deceleration magnitude of the brake hypothesis.
    pub brake_decel: MetersPerSecondSquared,
    /// Duration of a lane-change maneuver.
    pub lane_change_duration: Seconds,
    /// Lane width used to aim lane-change hypotheses.
    pub lane_width: Meters,
    /// Number of lanes on the road (lane 0 is the rightmost).
    pub lanes: u32,
}

impl Default for ManeuverConfig {
    fn default() -> Self {
        Self {
            p_keep: 0.5,
            p_brake: 0.2,
            p_lane_change: 0.15,
            brake_decel: MetersPerSecondSquared(3.0),
            lane_change_duration: Seconds(3.0),
            lane_width: Meters(3.7),
            lanes: 3,
        }
    }
}

/// Multi-hypothesis predictor over a road reference path.
///
/// Lane membership is derived from the actor's lateral Frenet offset on the
/// reference path (lane 0 centered at d = 0, lane i at d = i·width).
#[derive(Debug, Clone)]
pub struct ManeuverPredictor {
    path: Path,
    config: ManeuverConfig,
}

impl ManeuverPredictor {
    /// Creates a predictor over `path` (the road's rightmost-lane
    /// centerline).
    pub fn new(path: Path, config: ManeuverConfig) -> Self {
        Self { path, config }
    }

    /// The configured hypothesis set parameters.
    pub fn config(&self) -> &ManeuverConfig {
        &self.config
    }

    /// The lane index nearest to lateral offset `d` (clamped to the road).
    fn lane_of(&self, d: Meters) -> i64 {
        let idx = (d.value() / self.config.lane_width.value()).round() as i64;
        idx.clamp(0, self.config.lanes as i64 - 1)
    }

    /// Rolls out a lane-keeping or lane-changing hypothesis along the path.
    fn lane_rollout(
        &self,
        agent: &Agent,
        now: Seconds,
        horizon: Seconds,
        probability: f64,
        accel: MetersPerSecondSquared,
        target_lane: i64,
    ) -> Trajectory {
        let f0 = self.path.project(agent.state.position);
        let d0 = f0.d;
        let d1 = Meters(target_lane as f64 * self.config.lane_width.value());
        let t_lc = self.config.lane_change_duration.value();
        let path = self.path.clone();
        let v0 = agent.state.speed;
        rollout(now, horizon, probability, move |dt| {
            let (ds, v) = distance_speed_after(v0, accel, dt);
            // Smoothstep lateral blend over the lane-change duration.
            let u = (dt.value() / t_lc).clamp(0.0, 1.0);
            let blend = u * u * (3.0 - 2.0 * u);
            let d = Meters(d0.value() + (d1.value() - d0.value()) * blend);
            let pose = path.pose_at(f0.s + ds);
            let left = Vec2::from_heading(pose.heading).perp();
            VehicleState {
                position: pose.position + left * d.value(),
                heading: pose.heading,
                speed: v,
                accel,
            }
        })
    }
}

impl TrajectoryPredictor for ManeuverPredictor {
    fn predict(&self, agent: &Agent, now: Seconds, horizon: Seconds) -> Vec<Trajectory> {
        let cfg = &self.config;
        let lane = self.lane_of(self.path.project(agent.state.position).d);
        let mut futures = Vec::with_capacity(4);
        futures.push(self.lane_rollout(
            agent,
            now,
            horizon,
            cfg.p_keep,
            MetersPerSecondSquared::ZERO,
            lane,
        ));
        futures.push(self.lane_rollout(
            agent,
            now,
            horizon,
            cfg.p_brake,
            MetersPerSecondSquared(-cfg.brake_decel.value().abs()),
            lane,
        ));
        for target in [lane - 1, lane + 1] {
            if target >= 0 && target < cfg.lanes as i64 {
                futures.push(self.lane_rollout(
                    agent,
                    now,
                    horizon,
                    cfg.p_lane_change,
                    MetersPerSecondSquared::ZERO,
                    target,
                ));
            }
        }
        futures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn road() -> Path {
        Path::straight(Vec2::ZERO, Radians(0.0), Meters(2000.0))
    }

    fn actor_in_lane(lane: f64, v: f64) -> Agent {
        Agent::new(
            ActorId(1),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::new(
                Vec2::new(50.0, lane * 3.7),
                Radians(0.0),
                MetersPerSecond(v),
                MetersPerSecondSquared::ZERO,
            ),
        )
    }

    #[test]
    fn middle_lane_actor_gets_four_hypotheses() {
        let p = ManeuverPredictor::new(road(), ManeuverConfig::default());
        let futures = p.predict(&actor_in_lane(1.0, 15.0), Seconds(0.0), Seconds(4.0));
        assert_eq!(futures.len(), 4); // keep, brake, left, right
        let total: f64 = futures.iter().map(|t| t.probability()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn edge_lane_actor_loses_one_lane_change() {
        let p = ManeuverPredictor::new(road(), ManeuverConfig::default());
        let futures = p.predict(&actor_in_lane(0.0, 15.0), Seconds(0.0), Seconds(4.0));
        assert_eq!(futures.len(), 3);
        let futures = p.predict(&actor_in_lane(2.0, 15.0), Seconds(0.0), Seconds(4.0));
        assert_eq!(futures.len(), 3);
    }

    #[test]
    fn keep_hypothesis_stays_in_lane() {
        let p = ManeuverPredictor::new(road(), ManeuverConfig::default());
        let futures = p.predict(&actor_in_lane(1.0, 15.0), Seconds(0.0), Seconds(4.0));
        let keep = &futures[0];
        let end = keep.sample(Seconds(4.0));
        assert!((end.position.y - 3.7).abs() < 1e-6);
        assert!((end.position.x - 110.0).abs() < 1e-6);
    }

    #[test]
    fn lane_change_hypothesis_reaches_adjacent_lane() {
        let p = ManeuverPredictor::new(road(), ManeuverConfig::default());
        let futures = p.predict(&actor_in_lane(1.0, 15.0), Seconds(0.0), Seconds(5.0));
        // Hypotheses: keep, brake, left(lane 0), right(lane 2).
        let lat_ends: Vec<f64> = futures
            .iter()
            .map(|t| t.sample(Seconds(5.0)).position.y)
            .collect();
        assert!(lat_ends.iter().any(|y| (y - 0.0).abs() < 0.05));
        assert!(lat_ends.iter().any(|y| (y - 7.4).abs() < 0.05));
    }

    #[test]
    fn brake_hypothesis_slows_down() {
        let p = ManeuverPredictor::new(road(), ManeuverConfig::default());
        let futures = p.predict(&actor_in_lane(1.0, 9.0), Seconds(0.0), Seconds(4.0));
        let brake = &futures[1];
        let end = brake.sample(Seconds(4.0));
        assert_eq!(end.speed, MetersPerSecond::ZERO); // 9 m/s / 3 m/s^2 = 3 s
    }

    #[test]
    fn off_road_lateral_clamps_to_valid_lane() {
        let p = ManeuverPredictor::new(road(), ManeuverConfig::default());
        // Actor laterally beyond lane 2: treated as lane 2, so only a
        // right... er, left change toward lane 1 plus keep/brake.
        let futures = p.predict(&actor_in_lane(5.0, 10.0), Seconds(0.0), Seconds(3.0));
        assert_eq!(futures.len(), 3);
    }
}
