//! The oracle predictor: ground-truth futures read from a recorded trace.
//!
//! Pre-deployment (§3.1) "the actor's location at future time-steps is
//! known, i.e., the size of the set T is one". The oracle wraps a scenario
//! trace and serves each actor's actual future as a single trajectory with
//! probability one.

use crate::predictor::TrajectoryPredictor;
use av_core::prelude::*;
use av_core::scene::Scene;
use av_core::trajectory::TrajectoryPoint;

/// Ground-truth predictor over a recorded trace.
#[derive(Debug, Clone)]
pub struct OraclePredictor {
    scenes: Vec<Scene>,
    /// Subsampling interval for served trajectories.
    spacing: Seconds,
}

impl OraclePredictor {
    /// Wraps a time-ordered trace. `spacing` subsamples the served future
    /// (interpolation covers the gaps); pass the trace resolution for exact
    /// replay.
    pub fn new(scenes: Vec<Scene>, spacing: Seconds) -> Self {
        Self {
            scenes,
            spacing: Seconds(spacing.value().max(1e-6)),
        }
    }

    /// The wrapped trace.
    pub fn scenes(&self) -> &[Scene] {
        &self.scenes
    }
}

impl TrajectoryPredictor for OraclePredictor {
    fn predict(&self, agent: &Agent, now: Seconds, horizon: Seconds) -> Vec<Trajectory> {
        let mut points: Vec<TrajectoryPoint> = Vec::new();
        let mut next_sample = now.value();
        for scene in &self.scenes {
            if scene.time.value() + 1e-12 < next_sample {
                continue;
            }
            if (scene.time - now).value() > horizon.value() {
                break;
            }
            let Some(actor) = scene.actor(agent.id) else {
                if points.is_empty() {
                    continue;
                }
                break; // future ends when the actor despawns
            };
            points.push(TrajectoryPoint {
                time: scene.time,
                position: actor.state.position,
                heading: actor.state.heading,
                speed: actor.state.speed,
                accel: actor.state.accel,
            });
            next_sample = scene.time.value() + self.spacing.value();
        }
        Trajectory::new(points, 1.0).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(n: usize) -> Vec<Scene> {
        (0..n)
            .map(|k| {
                let t = k as f64 * 0.1;
                let ego = Agent::new(
                    ActorId::EGO,
                    ActorKind::Vehicle,
                    Dimensions::CAR,
                    VehicleState::at_rest(Vec2::ZERO, Radians(0.0)),
                );
                let actor = Agent::new(
                    ActorId(1),
                    ActorKind::Vehicle,
                    Dimensions::CAR,
                    VehicleState::new(
                        Vec2::new(10.0 + 5.0 * t, 0.0),
                        Radians(0.0),
                        MetersPerSecond(5.0),
                        MetersPerSecondSquared::ZERO,
                    ),
                );
                Scene::new(Seconds(t), ego, vec![actor])
            })
            .collect()
    }

    fn probe() -> Agent {
        Agent::new(
            ActorId(1),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::at_rest(Vec2::ZERO, Radians(0.0)),
        )
    }

    #[test]
    fn oracle_returns_single_ground_truth_future() {
        let oracle = OraclePredictor::new(trace(50), Seconds(0.1));
        let futures = oracle.predict(&probe(), Seconds(1.0), Seconds(2.0));
        assert_eq!(futures.len(), 1);
        let t = &futures[0];
        assert_eq!(t.probability(), 1.0);
        // At absolute t=2.0 the actor is at 10 + 5*2 = 20.
        assert!((t.sample(Seconds(2.0)).position.x - 20.0).abs() < 1e-9);
    }

    #[test]
    fn oracle_respects_horizon() {
        let oracle = OraclePredictor::new(trace(100), Seconds(0.1));
        let futures = oracle.predict(&probe(), Seconds(0.0), Seconds(1.0));
        assert!((futures[0].end_time().value() - 1.0).abs() < 0.11);
    }

    #[test]
    fn unknown_actor_yields_no_future() {
        let oracle = OraclePredictor::new(trace(10), Seconds(0.1));
        let stranger = Agent::new(
            ActorId(42),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::at_rest(Vec2::ZERO, Radians(0.0)),
        );
        assert!(oracle
            .predict(&stranger, Seconds(0.0), Seconds(1.0))
            .is_empty());
    }

    #[test]
    fn query_past_trace_end_is_empty() {
        let oracle = OraclePredictor::new(trace(10), Seconds(0.1));
        let futures = oracle.predict(&probe(), Seconds(100.0), Seconds(1.0));
        assert!(futures.is_empty());
    }
}
