//! Property-based tests of the foundation types: units arithmetic,
//! geometry, Frenet paths, trajectories and the kinematic integrator.

use av_core::prelude::*;
use proptest::prelude::*;

proptest! {
    // ---------------- units ----------------

    #[test]
    fn mph_mps_round_trip(v in -200.0..200.0f64) {
        let back = Mph::from(MetersPerSecond::from(Mph(v))).value();
        prop_assert!((back - v).abs() < 1e-9);
    }

    #[test]
    fn fpr_latency_are_inverse(f in 0.1..1000.0f64) {
        let latency = Fpr(f).latency();
        let back = Fpr::from_latency(latency);
        prop_assert!((back.value() - f).abs() / f < 1e-12);
    }

    #[test]
    fn angle_normalization_is_idempotent_and_bounded(a in -50.0..50.0f64) {
        let n = Radians(a).normalized();
        prop_assert!(n.value() > -std::f64::consts::PI - 1e-12);
        prop_assert!(n.value() <= std::f64::consts::PI + 1e-12);
        let twice = n.normalized();
        prop_assert!((twice.value() - n.value()).abs() < 1e-12);
        // Same direction: sin/cos must match the original angle.
        prop_assert!((n.sin() - a.sin()).abs() < 1e-9);
        prop_assert!((n.cos() - a.cos()).abs() < 1e-9);
    }

    // ---------------- geometry ----------------

    #[test]
    fn rotation_preserves_norm(x in -100.0..100.0f64, y in -100.0..100.0f64, a in -7.0..7.0f64) {
        let v = Vec2::new(x, y);
        let r = v.rotated(Radians(a));
        prop_assert!((r.norm() - v.norm()).abs() < 1e-9);
    }

    #[test]
    fn rect_intersection_is_symmetric(
        cx in -20.0..20.0f64, cy in -20.0..20.0f64,
        h1 in -3.2..3.2f64, h2 in -3.2..3.2f64,
    ) {
        let a = OrientedRect::new(Vec2::ZERO, Radians(h1), Meters(4.5), Meters(1.8));
        let b = OrientedRect::new(Vec2::new(cx, cy), Radians(h2), Meters(4.5), Meters(1.8));
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn rect_contains_its_center_and_corners(
        cx in -20.0..20.0f64, cy in -20.0..20.0f64, h in -3.2..3.2f64,
    ) {
        let r = OrientedRect::new(Vec2::new(cx, cy), Radians(h), Meters(4.5), Meters(1.8));
        prop_assert!(r.contains(r.center()));
        for corner in r.corners() {
            // Corners are boundary points; nudge inward.
            let inward = corner.lerp(r.center(), 1e-6);
            prop_assert!(r.contains(inward));
        }
    }

    #[test]
    fn far_apart_rects_never_intersect(
        d in 10.0..1000.0f64, angle in -3.2..3.2f64, h in -3.2..3.2f64,
    ) {
        // Centers separated by more than the diagonal sum cannot overlap.
        let offset = Vec2::from_heading(Radians(angle)) * d;
        let a = OrientedRect::new(Vec2::ZERO, Radians(h), Meters(4.5), Meters(1.8));
        let b = OrientedRect::new(offset, Radians(-h), Meters(4.5), Meters(1.8));
        if d > 4.85 {
            // 4.85 = diagonal of a 4.5 x 1.8 rectangle.
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn segment_hit_implies_nearby(
        sx in -50.0..50.0f64, sy in -50.0..50.0f64,
        ex in -50.0..50.0f64, ey in -50.0..50.0f64,
    ) {
        let r = OrientedRect::new(Vec2::new(0.0, 0.0), Radians(0.4), Meters(4.5), Meters(1.8));
        let a = Vec2::new(sx, sy);
        let b = Vec2::new(ex, ey);
        if r.intersects_segment(a, b) {
            // Some point of the segment is within the rect's circumradius.
            let mut close = false;
            for i in 0..=100 {
                let p = a.lerp(b, i as f64 / 100.0);
                if p.norm() <= 2.5 {
                    close = true;
                    break;
                }
            }
            prop_assert!(close, "segment claimed to hit but never近 the rect");
        }
    }

    // ---------------- paths ----------------

    #[test]
    fn straight_path_frenet_round_trip(
        s in 0.0..500.0f64, d in -10.0..10.0f64, heading in -3.0..3.0f64,
    ) {
        let path = Path::straight(Vec2::new(3.0, -7.0), Radians(heading), Meters(500.0));
        let world = path.frenet_to_world(FrenetPose::new(Meters(s), Meters(d)));
        let back = path.project(world);
        prop_assert!((back.s.value() - s).abs() < 1e-6);
        prop_assert!((back.d.value() - d).abs() < 1e-6);
    }

    #[test]
    fn arc_path_frenet_round_trip(
        s in 5.0..295.0f64, d in -7.4..7.4f64, radius in 150.0..800.0f64,
    ) {
        let path = Path::arc(Vec2::ZERO, Radians(0.0), Meters(radius), Meters(300.0), Meters(1.0));
        let world = path.frenet_to_world(FrenetPose::new(Meters(s), Meters(d)));
        let back = path.project(world);
        prop_assert!((back.s.value() - s).abs() < 0.05, "s {} vs {}", back.s, s);
        prop_assert!((back.d.value() - d).abs() < 0.02, "d {} vs {}", back.d, d);
    }

    #[test]
    fn path_pose_heading_is_tangent(s in 0.0..290.0f64, radius in 100.0..500.0f64) {
        let path = Path::arc(Vec2::ZERO, Radians(0.0), Meters(radius), Meters(300.0), Meters(0.5));
        let pose = path.pose_at(Meters(s));
        let ahead = path.pose_at(Meters(s + 0.5));
        let chord = (ahead.position - pose.position).heading();
        let diff = (chord - pose.heading).normalized().value().abs();
        prop_assert!(diff < 0.02, "heading off tangent by {diff}");
    }

    // ---------------- scenes (AoS <-> SoA) ----------------

    #[test]
    fn scene_columns_round_trip_is_lossless(
        t in 0.0..100.0f64,
        n in 0usize..6,
        x0 in -500.0..500.0f64, y0 in -20.0..20.0f64,
        dx in 1.0..80.0f64, h in -3.2..3.2f64,
        v in 0.0..40.0f64, a in -8.0..4.0f64,
    ) {
        use av_core::scene::{Scene, SceneColumns};
        let mk = |i: usize| {
            let kind = if i.is_multiple_of(2) { ActorKind::Vehicle } else { ActorKind::StaticObstacle };
            let dims = if i.is_multiple_of(2) { Dimensions::CAR } else { Dimensions::OBSTACLE };
            Agent::new(
                ActorId(i as u32),
                kind,
                dims,
                VehicleState::new(
                    Vec2::new(x0 + dx * i as f64, y0 + i as f64),
                    Radians(h + 0.1 * i as f64),
                    MetersPerSecond(v + i as f64),
                    MetersPerSecondSquared(a),
                ),
            )
        };
        let scene = Scene::new(Seconds(t), mk(0), (1..=n).map(mk).collect());
        // Whole-scene conversion is exact in both directions.
        let columns = SceneColumns::from_scene(&scene);
        prop_assert_eq!(&columns.to_scene(), &scene);
        // The incremental (push-based) build matches the bulk build.
        let mut pushed = SceneColumns::new(scene.time, scene.ego);
        for actor in &scene.actors {
            pushed.push_actor(*actor);
        }
        prop_assert_eq!(&pushed, &columns);
        // In-place refills are equivalent to fresh conversions.
        let other = Scene::new(Seconds(t + 1.0), mk(1), vec![mk(2), mk(3)]);
        let mut refilled = columns.clone();
        refilled.fill_from_scene(&other);
        prop_assert_eq!(&refilled, &SceneColumns::from_scene(&other));
        let mut written = scene.clone();
        refilled.write_scene(&mut written);
        prop_assert_eq!(written, other);
    }

    // ---------------- kinematics ----------------

    #[test]
    fn integrator_never_reverses(
        v0 in 0.0..50.0f64, a in -10.0..5.0f64, t in 0.0..30.0f64,
    ) {
        let (d, v) = distance_speed_after(
            MetersPerSecond(v0),
            MetersPerSecondSquared(a),
            Seconds(t),
        );
        prop_assert!(d.value() >= -1e-12);
        prop_assert!(v.value() >= 0.0);
    }

    #[test]
    fn integrator_distance_is_monotone_in_time(
        v0 in 0.0..50.0f64, a in -10.0..5.0f64, t in 0.0..20.0f64, dt in 0.0..5.0f64,
    ) {
        let (d1, _) = distance_speed_after(MetersPerSecond(v0), MetersPerSecondSquared(a), Seconds(t));
        let (d2, _) = distance_speed_after(MetersPerSecond(v0), MetersPerSecondSquared(a), Seconds(t + dt));
        prop_assert!(d2.value() + 1e-9 >= d1.value());
    }

    #[test]
    fn integrator_matches_two_phase_composition(
        v0 in 0.0..50.0f64, a in -8.0..4.0f64, t1 in 0.0..10.0f64, t2 in 0.0..10.0f64,
    ) {
        // Integrating t1+t2 at once equals integrating t1 then t2 — but
        // only while the vehicle has not stopped (after a stop the
        // acceleration no longer applies in the composed variant).
        let (d_whole, v_whole) =
            distance_speed_after(MetersPerSecond(v0), MetersPerSecondSquared(a), Seconds(t1 + t2));
        let (d1, v_mid) =
            distance_speed_after(MetersPerSecond(v0), MetersPerSecondSquared(a), Seconds(t1));
        if v_mid.value() > 0.0 {
            let (d2, v2) =
                distance_speed_after(v_mid, MetersPerSecondSquared(a), Seconds(t2));
            prop_assert!((d_whole.value() - (d1 + d2).value()).abs() < 1e-6);
            prop_assert!((v_whole.value() - v2.value()).abs() < 1e-9);
        }
    }

    // ---------------- trajectories ----------------

    #[test]
    fn trajectory_sampling_stays_within_hull(
        v in 0.0..40.0f64, n in 2..50usize, query in 0.0..10.0f64,
    ) {
        use av_core::trajectory::{Trajectory, TrajectoryPoint};
        let points: Vec<TrajectoryPoint> = (0..n)
            .map(|i| {
                let t = i as f64 * 0.2;
                TrajectoryPoint {
                    time: Seconds(t),
                    position: Vec2::new(v * t, 0.0),
                    heading: Radians(0.0),
                    speed: MetersPerSecond(v),
                    accel: MetersPerSecondSquared::ZERO,
                }
            })
            .collect();
        let end = points.last().expect("nonempty").time;
        let traj = Trajectory::new(points, 1.0).expect("valid");
        let s = traj.sample(Seconds(query));
        // Constant-velocity input: the sample must lie exactly on the line
        // (interpolation inside, extrapolation outside).
        let expected = v * query.clamp(0.0, f64::INFINITY).min(end.value())
            + v * (query - end.value()).max(0.0);
        prop_assert!((s.position.x - expected).abs() < 1e-9);
    }
}
