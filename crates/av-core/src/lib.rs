//! Shared foundation types for the Zhuyi (DAC 2022) reproduction.
//!
//! This crate provides the vocabulary every other crate in the workspace
//! speaks:
//!
//! - [`units`] — strongly-typed physical quantities ([`units::Meters`],
//!   [`units::Seconds`], [`units::Fpr`], ...),
//! - [`geometry`] — planar vectors and oriented-rectangle collision tests,
//! - [`path`] — arc-length-parameterized road centerlines and Frenet
//!   coordinates (needed for the paper's curved-road scenario),
//! - [`state`] — ego/actor kinematic state and the closed-form
//!   constant-acceleration integrator the whole system relies on,
//! - [`trajectory`] — time-stamped future trajectories with probabilities
//!   (the set `T` of paper Eq. 4).
//!
//! # Example
//!
//! ```
//! use av_core::prelude::*;
//!
//! // An ego doing 70 mph on a straight 3-lane road.
//! let road = Path::straight(Vec2::ZERO, Radians(0.0), Meters(1000.0));
//! let ego = VehicleState::new(
//!     road.frenet_to_world(FrenetPose::new(Meters(50.0), Meters(0.0))),
//!     Radians(0.0),
//!     Mph(70.0).into(),
//!     MetersPerSecondSquared(0.0),
//! );
//! assert!(ego.speed.value() > 31.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod geometry;
pub mod path;
pub mod scene;
pub mod state;
pub mod trajectory;
pub mod units;

/// Convenient glob import of the most common types.
///
/// ```
/// use av_core::prelude::*;
/// let _ = Meters(1.0) + Meters(2.0);
/// ```
pub mod prelude {
    pub use crate::geometry::{OrientedRect, PreparedRect, Vec2};
    pub use crate::path::{FrenetPose, Path, PathFrame, PathPose, ProjectionHint};
    pub use crate::scene::{Scene, SceneColumns};
    pub use crate::state::{
        distance_speed_after, ActorId, ActorKind, Agent, Dimensions, VehicleState,
    };
    pub use crate::trajectory::{Trajectory, TrajectoryPoint};
    pub use crate::units::{
        Fpr, Meters, MetersPerSecond, MetersPerSecondSquared, Mph, Radians, Seconds,
    };
}
