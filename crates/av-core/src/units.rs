//! Strongly-typed physical quantities.
//!
//! The Zhuyi model mixes distances, velocities, accelerations, latencies and
//! frame rates in a single search loop; newtypes keep those from being
//! accidentally interchanged ([C-NEWTYPE]). All quantities are `f64` in SI
//! units; conversions to the paper's mph / milliseconds are explicit.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements arithmetic shared by every scalar quantity newtype.
macro_rules! scalar_quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw `f64` value in SI units.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps to `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` or either bound is NaN.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// `true` when the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $unit)
            }
        }
    };
}

scalar_quantity!(
    /// A duration or point in scenario time, in seconds.
    ///
    /// ```
    /// use av_core::units::Seconds;
    /// let latency = Seconds::from_millis(33.0);
    /// assert!((latency.value() - 0.033).abs() < 1e-12);
    /// ```
    Seconds,
    "s"
);

scalar_quantity!(
    /// A longitudinal distance in meters.
    ///
    /// ```
    /// use av_core::units::{Meters, MetersPerSecond, Seconds};
    /// let d: Meters = MetersPerSecond(10.0) * Seconds(2.0);
    /// assert_eq!(d, Meters(20.0));
    /// ```
    Meters,
    "m"
);

scalar_quantity!(
    /// A speed in meters per second.
    ///
    /// ```
    /// use av_core::units::{MetersPerSecond, Mph};
    /// let v = MetersPerSecond::from(Mph(70.0));
    /// assert!((v.value() - 31.2928).abs() < 1e-4);
    /// ```
    MetersPerSecond,
    "m/s"
);

scalar_quantity!(
    /// An acceleration in meters per second squared. Negative values
    /// decelerate.
    MetersPerSecondSquared,
    "m/s^2"
);

scalar_quantity!(
    /// An angle in radians. Positive is counter-clockwise in the world frame.
    Radians,
    "rad"
);

/// Conversion factor between miles per hour and meters per second.
const MPH_TO_MPS: f64 = 0.44704;

/// A speed in miles per hour, the unit Table 1 of the paper reports ego
/// speeds in.
///
/// ```
/// use av_core::units::{MetersPerSecond, Mph};
/// assert!((Mph::from(MetersPerSecond(31.2928)).value() - 70.0).abs() < 1e-9);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Mph(pub f64);

impl Mph {
    /// Returns the raw value in miles per hour.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl From<Mph> for MetersPerSecond {
    #[inline]
    fn from(mph: Mph) -> Self {
        MetersPerSecond(mph.0 * MPH_TO_MPS)
    }
}

impl From<MetersPerSecond> for Mph {
    #[inline]
    fn from(mps: MetersPerSecond) -> Self {
        Mph(mps.0 / MPH_TO_MPS)
    }
}

impl fmt::Display for Mph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} mph", self.0)
    }
}

impl Seconds {
    /// Creates a duration from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Self {
        Seconds(ms / 1e3)
    }

    /// Returns the duration in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }
}

impl Radians {
    /// Creates an angle from degrees.
    #[inline]
    pub fn from_degrees(deg: f64) -> Self {
        Radians(deg.to_radians())
    }

    /// Returns the angle in degrees.
    #[inline]
    pub fn as_degrees(self) -> f64 {
        self.0.to_degrees()
    }

    /// Normalizes the angle to `(-pi, pi]`.
    #[inline]
    pub fn normalized(self) -> Self {
        let mut a = self.0 % std::f64::consts::TAU;
        if a <= -std::f64::consts::PI {
            a += std::f64::consts::TAU;
        } else if a > std::f64::consts::PI {
            a -= std::f64::consts::TAU;
        }
        Radians(a)
    }

    /// Sine of the angle.
    #[inline]
    pub fn sin(self) -> f64 {
        self.0.sin()
    }

    /// Cosine of the angle.
    #[inline]
    pub fn cos(self) -> f64 {
        self.0.cos()
    }
}

// Cross-unit arithmetic: only the physically meaningful combinations.

impl Mul<Seconds> for MetersPerSecond {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: Seconds) -> Meters {
        Meters(self.0 * rhs.0)
    }
}

impl Mul<MetersPerSecond> for Seconds {
    type Output = Meters;
    #[inline]
    fn mul(self, rhs: MetersPerSecond) -> Meters {
        Meters(self.0 * rhs.0)
    }
}

impl Mul<Seconds> for MetersPerSecondSquared {
    type Output = MetersPerSecond;
    #[inline]
    fn mul(self, rhs: Seconds) -> MetersPerSecond {
        MetersPerSecond(self.0 * rhs.0)
    }
}

impl Mul<MetersPerSecondSquared> for Seconds {
    type Output = MetersPerSecond;
    #[inline]
    fn mul(self, rhs: MetersPerSecondSquared) -> MetersPerSecond {
        MetersPerSecond(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Meters {
    type Output = MetersPerSecond;
    #[inline]
    fn div(self, rhs: Seconds) -> MetersPerSecond {
        MetersPerSecond(self.0 / rhs.0)
    }
}

impl Div<MetersPerSecond> for Meters {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: MetersPerSecond) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Div<Seconds> for MetersPerSecond {
    type Output = MetersPerSecondSquared;
    #[inline]
    fn div(self, rhs: Seconds) -> MetersPerSecondSquared {
        MetersPerSecondSquared(self.0 / rhs.0)
    }
}

impl Div<MetersPerSecondSquared> for MetersPerSecond {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: MetersPerSecondSquared) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

/// A sensor frame processing rate in frames per second.
///
/// The reciprocal of the maximum tolerable latency (paper Eq. 5). `Fpr`
/// intentionally does not implement general arithmetic: rates are derived
/// from latencies and compared, never integrated.
///
/// ```
/// use av_core::units::{Fpr, Seconds};
/// let rate = Fpr::from_latency(Seconds::from_millis(167.0));
/// assert!((rate.value() - 6.0).abs() < 0.05);
/// assert!(rate < Fpr(30.0));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Fpr(pub f64);

impl Fpr {
    /// The zero rate (no frames need processing).
    pub const ZERO: Self = Self(0.0);

    /// Converts a tolerable latency into the minimum processing rate,
    /// `FPR = 1 / l` (paper Eq. 5).
    ///
    /// A non-positive latency maps to `f64::INFINITY` (no achievable rate).
    #[inline]
    pub fn from_latency(latency: Seconds) -> Self {
        if latency.0 > 0.0 {
            Fpr(1.0 / latency.0)
        } else {
            Fpr(f64::INFINITY)
        }
    }

    /// The per-frame latency implied by this rate, `l = 1 / FPR`.
    ///
    /// A non-positive rate maps to `f64::INFINITY` seconds.
    #[inline]
    pub fn latency(self) -> Seconds {
        if self.0 > 0.0 {
            Seconds(1.0 / self.0)
        } else {
            Seconds(f64::INFINITY)
        }
    }

    /// Returns the raw value in frames per second.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Rounds up to the next whole frame rate, as a hardware scheduler
    /// would provision.
    #[inline]
    pub fn ceil(self) -> Self {
        Fpr(self.0.ceil())
    }

    /// Returns the larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Fpr(self.0.max(other.0))
    }

    /// Returns the smaller of `self` and `other`.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Fpr(self.0.min(other.0))
    }

    /// `true` when the value is finite (not NaN or infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Add for Fpr {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Fpr(self.0 + rhs.0)
    }
}

impl Sum for Fpr {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Fpr(iter.map(|q| q.0).sum())
    }
}

impl fmt::Display for Fpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} FPR", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mph_round_trips_through_mps() {
        for v in [0.0, 20.0, 40.0, 60.0, 70.0] {
            let back = Mph::from(MetersPerSecond::from(Mph(v)));
            assert!((back.value() - v).abs() < 1e-9, "{v} mph");
        }
    }

    #[test]
    fn paper_speeds_convert_as_expected() {
        // Table 1 ego speeds: 20 mph ~ 8.94 m/s, 70 mph ~ 31.29 m/s.
        assert!((MetersPerSecond::from(Mph(20.0)).value() - 8.9408).abs() < 1e-4);
        assert!((MetersPerSecond::from(Mph(70.0)).value() - 31.2928).abs() < 1e-4);
    }

    #[test]
    fn kinematic_dimensional_analysis() {
        let v = MetersPerSecond(10.0);
        let t = Seconds(3.0);
        let a = MetersPerSecondSquared(2.0);
        assert_eq!(v * t, Meters(30.0));
        assert_eq!(a * t, MetersPerSecond(6.0));
        assert_eq!(Meters(30.0) / t, v);
        assert_eq!(Meters(30.0) / v, t);
        assert_eq!(v / a, Seconds(5.0));
        assert_eq!(v / MetersPerSecond(2.0), 5.0);
    }

    #[test]
    fn fpr_latency_reciprocity() {
        let l = Seconds::from_millis(100.0);
        let fpr = Fpr::from_latency(l);
        assert!((fpr.value() - 10.0).abs() < 1e-12);
        assert!((fpr.latency().value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn fpr_degenerate_latency_is_infinite_rate() {
        assert!(!Fpr::from_latency(Seconds::ZERO).is_finite());
        assert!(!Fpr::from_latency(Seconds(-1.0)).is_finite());
        assert!(!Fpr::ZERO.latency().is_finite());
    }

    #[test]
    fn angle_normalization() {
        use std::f64::consts::PI;
        assert!((Radians(3.0 * PI).normalized().value() - PI).abs() < 1e-12);
        assert!((Radians(-3.0 * PI).normalized().value() - PI).abs() < 1e-12);
        assert!((Radians(0.5).normalized().value() - 0.5).abs() < 1e-12);
        assert!((Radians::from_degrees(120.0).as_degrees() - 120.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_millis_round_trip() {
        let s = Seconds::from_millis(33.0);
        assert!((s.as_millis() - 33.0).abs() < 1e-12);
    }

    #[test]
    fn quantity_ordering_and_clamp() {
        assert!(Meters(1.0) < Meters(2.0));
        assert_eq!(Meters(5.0).clamp(Meters(0.0), Meters(3.0)), Meters(3.0));
        assert_eq!(Meters(-5.0).abs(), Meters(5.0));
        assert_eq!(Meters(1.0).max(Meters(2.0)), Meters(2.0));
        assert_eq!(Meters(1.0).min(Meters(2.0)), Meters(1.0));
    }

    #[test]
    fn sum_of_quantities() {
        let total: Meters = [Meters(1.0), Meters(2.0), Meters(3.0)].into_iter().sum();
        assert_eq!(total, Meters(6.0));
        let rate: Fpr = [Fpr(1.0), Fpr(2.0)].into_iter().sum();
        assert_eq!(rate, Fpr(3.0));
    }

    #[test]
    fn display_formats_contain_unit() {
        assert!(format!("{}", Meters(1.5)).contains('m'));
        assert!(format!("{}", Fpr(30.0)).contains("FPR"));
        assert!(format!("{}", Mph(70.0)).contains("mph"));
    }
}
