//! World snapshots: the ego and all actors at one instant.
//!
//! A recorded scenario trace is a time-ordered sequence of [`Scene`]s; the
//! Zhuyi pipeline walks that sequence, and the online system builds the same
//! snapshot from the perceived world model.
//!
//! Two layouts describe the same snapshot:
//!
//! - [`Scene`] is the array-of-structs (AoS) form — one [`Agent`] per
//!   actor. It is what traces record, what serialization sees, and what
//!   any consumer that wants whole agents reads.
//! - [`SceneColumns`] is the struct-of-arrays (SoA) form — parallel
//!   position/heading/speed/accel/dims columns. It is what the simulation
//!   hot loop rebuilds in place every tick, so that perception visibility,
//!   the bounding-circle collision prefilter and streaming metric folds
//!   sweep contiguous memory instead of striding through whole agents.
//!
//! Conversion between the two is lossless in both directions (pinned by a
//! proptest round-trip in `tests/proptests.rs`).

use crate::geometry::Vec2;
use crate::state::{ActorId, ActorKind, Agent, Dimensions};
use crate::units::{MetersPerSecond, MetersPerSecondSquared, Radians, Seconds};
use serde::{Deserialize, Serialize};

/// The ego and every actor at one instant of scenario time.
///
/// ```
/// use av_core::prelude::*;
/// use av_core::scene::Scene;
///
/// let ego = Agent::new(ActorId::EGO, ActorKind::Vehicle, Dimensions::CAR,
///                      VehicleState::at_rest(Vec2::ZERO, Radians(0.0)));
/// let scene = Scene::new(Seconds(0.0), ego, vec![]);
/// assert!(scene.actor(ActorId(1)).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    /// Scenario time of this snapshot.
    pub time: Seconds,
    /// The ego vehicle.
    pub ego: Agent,
    /// All surrounding actors (excluding the ego).
    pub actors: Vec<Agent>,
}

impl Scene {
    /// Creates a snapshot.
    pub fn new(time: Seconds, ego: Agent, actors: Vec<Agent>) -> Self {
        Self { time, ego, actors }
    }

    /// Looks up an actor by id.
    pub fn actor(&self, id: ActorId) -> Option<&Agent> {
        self.actors.iter().find(|a| a.id == id)
    }

    /// Iterates over the ego followed by every actor.
    pub fn agents(&self) -> impl Iterator<Item = &Agent> {
        std::iter::once(&self.ego).chain(self.actors.iter())
    }
}

/// The struct-of-arrays form of a [`Scene`]: the ego as one [`Agent`] and
/// every actor split into parallel columns.
///
/// All columns always have the same length (one entry per actor, in the
/// same order the AoS scene stores them); the accessors below return
/// plain slices so hot loops can sweep a single field — every actor
/// position, say — as contiguous memory. The fields are private precisely
/// to protect that same-length invariant: actors enter through
/// [`SceneColumns::push_actor`] or [`SceneColumns::fill_from_scene`] only.
///
/// Conversion to and from [`Scene`] is lossless: `Agent`s are decomposed
/// field-by-field and reassembled bit-for-bit.
///
/// Deserialization trusts its input: a hand-crafted serialized form with
/// unequal column lengths would violate the invariant the constructors
/// protect (a validating deserializer belongs with any move to real
/// serde — the in-workspace shim generates no deserialization code).
///
/// ```
/// use av_core::prelude::*;
/// use av_core::scene::{Scene, SceneColumns};
///
/// let ego = Agent::new(ActorId::EGO, ActorKind::Vehicle, Dimensions::CAR,
///                      VehicleState::at_rest(Vec2::ZERO, Radians(0.0)));
/// let actor = Agent::new(ActorId(1), ActorKind::Vehicle, Dimensions::CAR,
///                        VehicleState::at_rest(Vec2::new(30.0, 0.0), Radians(0.0)));
/// let scene = Scene::new(Seconds(0.0), ego, vec![actor]);
/// let columns = SceneColumns::from_scene(&scene);
/// assert_eq!(columns.positions(), &[Vec2::new(30.0, 0.0)]);
/// assert_eq!(columns.to_scene(), scene); // lossless round trip
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneColumns {
    /// Scenario time of this snapshot.
    pub time: Seconds,
    /// The ego vehicle (a single entity; splitting it buys nothing).
    pub ego: Agent,
    ids: Vec<ActorId>,
    kinds: Vec<ActorKind>,
    positions: Vec<Vec2>,
    headings: Vec<Radians>,
    speeds: Vec<MetersPerSecond>,
    accels: Vec<MetersPerSecondSquared>,
    dims: Vec<Dimensions>,
}

impl SceneColumns {
    /// An empty (no actors) snapshot at `time` with the given ego.
    pub fn new(time: Seconds, ego: Agent) -> Self {
        Self {
            time,
            ego,
            ids: Vec::new(),
            kinds: Vec::new(),
            positions: Vec::new(),
            headings: Vec::new(),
            speeds: Vec::new(),
            accels: Vec::new(),
            dims: Vec::new(),
        }
    }

    /// Builds the SoA form of `scene`.
    pub fn from_scene(scene: &Scene) -> Self {
        let mut columns = Self::new(scene.time, scene.ego);
        for actor in &scene.actors {
            columns.push_actor(*actor);
        }
        columns
    }

    /// Rebuilds this snapshot in place from `scene`, reusing every
    /// column's allocation.
    pub fn fill_from_scene(&mut self, scene: &Scene) {
        self.time = scene.time;
        self.ego = scene.ego;
        self.clear_actors();
        for actor in &scene.actors {
            self.push_actor(*actor);
        }
    }

    /// Appends one actor, decomposed into the columns.
    pub fn push_actor(&mut self, agent: Agent) {
        self.ids.push(agent.id);
        self.kinds.push(agent.kind);
        self.positions.push(agent.state.position);
        self.headings.push(agent.state.heading);
        self.speeds.push(agent.state.speed);
        self.accels.push(agent.state.accel);
        self.dims.push(agent.dims);
    }

    /// Removes every actor (the ego and time stay), keeping capacity.
    pub fn clear_actors(&mut self) {
        self.ids.clear();
        self.kinds.clear();
        self.positions.clear();
        self.headings.clear();
        self.speeds.clear();
        self.accels.clear();
        self.dims.clear();
    }

    /// Number of actors (excluding the ego).
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no actors are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Actor identities, in actor order.
    #[inline]
    pub fn ids(&self) -> &[ActorId] {
        &self.ids
    }

    /// Actor kinds, in actor order.
    #[inline]
    pub fn kinds(&self) -> &[ActorKind] {
        &self.kinds
    }

    /// Actor center positions, in actor order.
    #[inline]
    pub fn positions(&self) -> &[Vec2] {
        &self.positions
    }

    /// Actor headings, in actor order.
    #[inline]
    pub fn headings(&self) -> &[Radians] {
        &self.headings
    }

    /// Actor speeds, in actor order.
    #[inline]
    pub fn speeds(&self) -> &[MetersPerSecond] {
        &self.speeds
    }

    /// Actor accelerations, in actor order.
    #[inline]
    pub fn accels(&self) -> &[MetersPerSecondSquared] {
        &self.accels
    }

    /// Actor footprints, in actor order.
    #[inline]
    pub fn dims(&self) -> &[Dimensions] {
        &self.dims
    }

    /// Reassembles actor `index` as a whole [`Agent`], bit-for-bit equal
    /// to the one that was pushed.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn actor(&self, index: usize) -> Agent {
        Agent {
            id: self.ids[index],
            kind: self.kinds[index],
            dims: self.dims[index],
            state: crate::state::VehicleState {
                position: self.positions[index],
                heading: self.headings[index],
                speed: self.speeds[index],
                accel: self.accels[index],
            },
        }
    }

    /// Iterates the actors as reassembled [`Agent`]s, in actor order.
    pub fn actors(&self) -> impl Iterator<Item = Agent> + '_ {
        (0..self.len()).map(|i| self.actor(i))
    }

    /// Converts back to the AoS [`Scene`].
    pub fn to_scene(&self) -> Scene {
        Scene::new(self.time, self.ego, self.actors().collect())
    }

    /// Writes this snapshot into an existing [`Scene`], reusing its actor
    /// allocation — the in-place counterpart of [`SceneColumns::to_scene`]
    /// used when a trace-recording observer needs the AoS form of the hot
    /// loop's SoA scratch.
    pub fn write_scene(&self, scene: &mut Scene) {
        scene.time = self.time;
        scene.ego = self.ego;
        scene.actors.clear();
        scene.actors.extend(self.actors());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Vec2;
    use crate::state::{ActorKind, Dimensions, VehicleState};
    use crate::units::Radians;

    fn agent(id: u32, x: f64) -> Agent {
        Agent::new(
            ActorId(id),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::at_rest(Vec2::new(x, 0.0), Radians(0.0)),
        )
    }

    #[test]
    fn actor_lookup() {
        let scene = Scene::new(
            Seconds(1.0),
            agent(0, 0.0),
            vec![agent(1, 10.0), agent(2, 20.0)],
        );
        assert_eq!(
            scene.actor(ActorId(2)).map(|a| a.state.position.x),
            Some(20.0)
        );
        assert!(scene.actor(ActorId(9)).is_none());
    }

    #[test]
    fn agents_iterates_ego_first() {
        let scene = Scene::new(Seconds(0.0), agent(0, 0.0), vec![agent(1, 10.0)]);
        let ids: Vec<_> = scene.agents().map(|a| a.id).collect();
        assert_eq!(ids, vec![ActorId::EGO, ActorId(1)]);
    }

    #[test]
    fn columns_round_trip_is_lossless() {
        let scene = Scene::new(
            Seconds(2.5),
            agent(0, 1.0),
            vec![agent(1, 10.0), agent(2, 20.0)],
        );
        let columns = SceneColumns::from_scene(&scene);
        assert_eq!(columns.len(), 2);
        assert_eq!(columns.to_scene(), scene);
        // Per-actor reassembly matches the AoS agents bit-for-bit.
        for (i, actor) in scene.actors.iter().enumerate() {
            assert_eq!(columns.actor(i), *actor);
        }
    }

    #[test]
    fn columns_fill_and_write_reuse_buffers() {
        let a = Scene::new(Seconds(0.0), agent(0, 0.0), vec![agent(1, 10.0)]);
        let b = Scene::new(
            Seconds(1.0),
            agent(0, 5.0),
            vec![agent(1, 15.0), agent(2, 30.0)],
        );
        let mut columns = SceneColumns::from_scene(&a);
        columns.fill_from_scene(&b);
        assert_eq!(columns.to_scene(), b);
        // write_scene overwrites stale contents entirely.
        let mut out = a.clone();
        columns.write_scene(&mut out);
        assert_eq!(out, b);
    }

    #[test]
    fn columns_expose_contiguous_fields() {
        let scene = Scene::new(
            Seconds(0.0),
            agent(0, 0.0),
            vec![agent(1, 10.0), agent(2, 20.0)],
        );
        let columns = SceneColumns::from_scene(&scene);
        assert_eq!(
            columns.positions(),
            &[Vec2::new(10.0, 0.0), Vec2::new(20.0, 0.0)]
        );
        assert_eq!(columns.ids(), &[ActorId(1), ActorId(2)]);
        assert_eq!(columns.dims().len(), 2);
        assert_eq!(columns.actors().count(), 2);
        assert!(!columns.is_empty());
    }
}
