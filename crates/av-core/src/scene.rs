//! World snapshots: the ego and all actors at one instant.
//!
//! A recorded scenario trace is a time-ordered sequence of [`Scene`]s; the
//! Zhuyi pipeline walks that sequence, and the online system builds the same
//! snapshot from the perceived world model.

use crate::state::{ActorId, Agent};
use crate::units::Seconds;
use serde::{Deserialize, Serialize};

/// The ego and every actor at one instant of scenario time.
///
/// ```
/// use av_core::prelude::*;
/// use av_core::scene::Scene;
///
/// let ego = Agent::new(ActorId::EGO, ActorKind::Vehicle, Dimensions::CAR,
///                      VehicleState::at_rest(Vec2::ZERO, Radians(0.0)));
/// let scene = Scene::new(Seconds(0.0), ego, vec![]);
/// assert!(scene.actor(ActorId(1)).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    /// Scenario time of this snapshot.
    pub time: Seconds,
    /// The ego vehicle.
    pub ego: Agent,
    /// All surrounding actors (excluding the ego).
    pub actors: Vec<Agent>,
}

impl Scene {
    /// Creates a snapshot.
    pub fn new(time: Seconds, ego: Agent, actors: Vec<Agent>) -> Self {
        Self { time, ego, actors }
    }

    /// Looks up an actor by id.
    pub fn actor(&self, id: ActorId) -> Option<&Agent> {
        self.actors.iter().find(|a| a.id == id)
    }

    /// Iterates over the ego followed by every actor.
    pub fn agents(&self) -> impl Iterator<Item = &Agent> {
        std::iter::once(&self.ego).chain(self.actors.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Vec2;
    use crate::state::{ActorKind, Dimensions, VehicleState};
    use crate::units::Radians;

    fn agent(id: u32, x: f64) -> Agent {
        Agent::new(
            ActorId(id),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::at_rest(Vec2::new(x, 0.0), Radians(0.0)),
        )
    }

    #[test]
    fn actor_lookup() {
        let scene = Scene::new(
            Seconds(1.0),
            agent(0, 0.0),
            vec![agent(1, 10.0), agent(2, 20.0)],
        );
        assert_eq!(
            scene.actor(ActorId(2)).map(|a| a.state.position.x),
            Some(20.0)
        );
        assert!(scene.actor(ActorId(9)).is_none());
    }

    #[test]
    fn agents_iterates_ego_first() {
        let scene = Scene::new(Seconds(0.0), agent(0, 0.0), vec![agent(1, 10.0)]);
        let ids: Vec<_> = scene.agents().map(|a| a.id).collect();
        assert_eq!(ids, vec![ActorId::EGO, ActorId(1)]);
    }
}
