//! Kinematic state of the ego and surrounding actors.
//!
//! The paper calls the AV the *ego* and dynamic objects *actors* (§1,
//! footnote 1). Both are described by the same planar kinematic state:
//! position, heading, longitudinal speed and longitudinal acceleration.

use crate::geometry::{OrientedRect, Vec2};
use crate::units::{Meters, MetersPerSecond, MetersPerSecondSquared, Radians, Seconds};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an actor within a scenario.
///
/// The ego always has a dedicated id ([`ActorId::EGO`]); scripted actors are
/// numbered from 1.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ActorId(pub u32);

impl ActorId {
    /// The ego vehicle's reserved id.
    pub const EGO: ActorId = ActorId(0);

    /// `true` for the ego's id.
    #[inline]
    pub fn is_ego(self) -> bool {
        self == Self::EGO
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ego() {
            write!(f, "ego")
        } else {
            write!(f, "actor#{}", self.0)
        }
    }
}

/// What kind of object an actor is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActorKind {
    /// A moving (or movable) vehicle.
    Vehicle,
    /// A static obstacle, e.g. the stopped object revealed in the Cut-out
    /// scenario.
    StaticObstacle,
}

impl fmt::Display for ActorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActorKind::Vehicle => write!(f, "vehicle"),
            ActorKind::StaticObstacle => write!(f, "static obstacle"),
        }
    }
}

/// Physical footprint of a vehicle or obstacle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dimensions {
    /// Bumper-to-bumper length.
    pub length: Meters,
    /// Side-to-side width.
    pub width: Meters,
}

impl Dimensions {
    /// Typical passenger-car footprint (4.5 m x 1.8 m).
    pub const CAR: Dimensions = Dimensions {
        length: Meters(4.5),
        width: Meters(1.8),
    };

    /// A compact static obstacle (2.0 m x 1.8 m), like the object revealed
    /// in the Cut-out scenario.
    pub const OBSTACLE: Dimensions = Dimensions {
        length: Meters(2.0),
        width: Meters(1.8),
    };

    /// Radius of the footprint's circumcircle (half the diagonal) — the
    /// shared conservative bound behind the collision, visibility and
    /// clearance prefilters. Plain sqrt: vehicle extents are nowhere near
    /// the over/underflow regime where `hypot` pays for itself.
    #[inline]
    pub fn circumradius(&self) -> f64 {
        let (l, w) = (self.length.value(), self.width.value());
        (l * l + w * w).sqrt() / 2.0
    }

    /// Creates a footprint.
    ///
    /// # Panics
    ///
    /// Panics if either extent is negative or non-finite.
    pub fn new(length: Meters, width: Meters) -> Self {
        assert!(
            length.value() >= 0.0 && length.is_finite(),
            "length must be finite and non-negative, got {length}"
        );
        assert!(
            width.value() >= 0.0 && width.is_finite(),
            "width must be finite and non-negative, got {width}"
        );
        Self { length, width }
    }
}

impl Default for Dimensions {
    fn default() -> Self {
        Self::CAR
    }
}

/// Planar kinematic state: pose plus longitudinal speed and acceleration.
///
/// ```
/// use av_core::prelude::*;
///
/// let state = VehicleState::new(
///     Vec2::new(0.0, 0.0),
///     Radians(0.0),
///     MetersPerSecond(20.0),
///     MetersPerSecondSquared(0.0),
/// );
/// let later = state.predict_constant_accel(Seconds(2.0));
/// assert!((later.position.x - 40.0).abs() < 1e-9);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleState {
    /// World-frame position of the vehicle center.
    pub position: Vec2,
    /// Direction of travel.
    pub heading: Radians,
    /// Longitudinal speed along `heading`; never negative in this model
    /// (vehicles do not reverse in the studied scenarios).
    pub speed: MetersPerSecond,
    /// Longitudinal acceleration along `heading`; negative decelerates.
    pub accel: MetersPerSecondSquared,
}

impl VehicleState {
    /// Creates a state.
    #[inline]
    pub const fn new(
        position: Vec2,
        heading: Radians,
        speed: MetersPerSecond,
        accel: MetersPerSecondSquared,
    ) -> Self {
        Self {
            position,
            heading,
            speed,
            accel,
        }
    }

    /// A stationary state at `position` facing `heading`.
    #[inline]
    pub fn at_rest(position: Vec2, heading: Radians) -> Self {
        Self::new(
            position,
            heading,
            MetersPerSecond::ZERO,
            MetersPerSecondSquared::ZERO,
        )
    }

    /// The velocity vector (speed along heading).
    #[inline]
    pub fn velocity(&self) -> Vec2 {
        Vec2::from_heading(self.heading) * self.speed.value()
    }

    /// Forward-integrates the state for `dt` under constant acceleration
    /// along the current heading, clamping speed at zero (no reversing).
    ///
    /// This is the paper's assumption for the ego during the reaction time
    /// t_r: "we assume the ego's acceleration is unchanged" (§2.1).
    pub fn predict_constant_accel(&self, dt: Seconds) -> Self {
        let (d, v) = distance_speed_after(self.speed, self.accel, dt);
        Self {
            position: self.position + Vec2::from_heading(self.heading) * d.value(),
            heading: self.heading,
            speed: v,
            accel: self.accel,
        }
    }

    /// The oriented footprint rectangle of a vehicle with `dims` in this
    /// state.
    #[inline]
    pub fn footprint(&self, dims: Dimensions) -> OrientedRect {
        OrientedRect::new(self.position, self.heading, dims.length, dims.width)
    }
}

/// Distance traveled and final speed after accelerating at `a` for `dt`,
/// clamping speed at zero (a braking vehicle stays stopped; it does not
/// reverse).
///
/// This closed form is the kinematic core shared by the Zhuyi estimator
/// (d_e1, d_e2 in §2.1) and the simulator's vehicle integrator.
///
/// ```
/// use av_core::state::distance_speed_after;
/// use av_core::units::{MetersPerSecond, MetersPerSecondSquared, Seconds};
///
/// // 10 m/s braking at -5 m/s^2 stops after 2 s, having covered 10 m.
/// let (d, v) = distance_speed_after(
///     MetersPerSecond(10.0),
///     MetersPerSecondSquared(-5.0),
///     Seconds(3.0),
/// );
/// assert!((d.value() - 10.0).abs() < 1e-9);
/// assert_eq!(v, MetersPerSecond(0.0));
/// ```
pub fn distance_speed_after(
    v0: MetersPerSecond,
    a: MetersPerSecondSquared,
    dt: Seconds,
) -> (Meters, MetersPerSecond) {
    debug_assert!(dt.value() >= 0.0, "negative prediction horizon {dt}");
    let v0f = v0.value().max(0.0);
    let af = a.value();
    let t = dt.value();
    if af < 0.0 {
        let t_stop = v0f / (-af);
        if t <= t_stop {
            (
                Meters(v0f * t + 0.5 * af * t * t),
                // max(0.0) also normalizes the -0.0 that floating-point
                // cancellation produces exactly at the stopping time.
                MetersPerSecond((v0f + af * t).max(0.0)),
            )
        } else {
            // Stops and stays stopped.
            (Meters(v0f * t_stop / 2.0), MetersPerSecond::ZERO)
        }
    } else {
        (
            Meters(v0f * t + 0.5 * af * t * t),
            MetersPerSecond(v0f + af * t),
        )
    }
}

/// A labeled actor: identity, kind, footprint and kinematic state.
///
/// This is the unit the simulator traces and the Zhuyi model consumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Agent {
    /// Stable identity within the scenario.
    pub id: ActorId,
    /// Vehicle or static obstacle.
    pub kind: ActorKind,
    /// Physical footprint.
    pub dims: Dimensions,
    /// Current kinematic state.
    pub state: VehicleState,
}

impl Agent {
    /// Creates an agent.
    pub fn new(id: ActorId, kind: ActorKind, dims: Dimensions, state: VehicleState) -> Self {
        Self {
            id,
            kind,
            dims,
            state,
        }
    }

    /// The agent's current footprint rectangle.
    #[inline]
    pub fn footprint(&self) -> OrientedRect {
        self.state.footprint(self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ego_id_is_reserved() {
        assert!(ActorId::EGO.is_ego());
        assert!(!ActorId(3).is_ego());
        assert_eq!(ActorId::EGO.to_string(), "ego");
        assert_eq!(ActorId(2).to_string(), "actor#2");
    }

    #[test]
    fn constant_accel_prediction_cruise() {
        let s = VehicleState::new(
            Vec2::ZERO,
            Radians(0.0),
            MetersPerSecond(20.0),
            MetersPerSecondSquared::ZERO,
        );
        let p = s.predict_constant_accel(Seconds(2.5));
        assert!((p.position.x - 50.0).abs() < 1e-9);
        assert_eq!(p.speed, MetersPerSecond(20.0));
    }

    #[test]
    fn constant_accel_prediction_braking_clamps_at_zero() {
        let s = VehicleState::new(
            Vec2::ZERO,
            Radians(0.0),
            MetersPerSecond(10.0),
            MetersPerSecondSquared(-5.0),
        );
        // Stops after 2 s (10 m); must not reverse afterwards.
        let p = s.predict_constant_accel(Seconds(10.0));
        assert!((p.position.x - 10.0).abs() < 1e-9);
        assert_eq!(p.speed, MetersPerSecond::ZERO);
    }

    #[test]
    fn accelerating_prediction() {
        let (d, v) = distance_speed_after(
            MetersPerSecond(10.0),
            MetersPerSecondSquared(2.0),
            Seconds(3.0),
        );
        assert!((d.value() - 39.0).abs() < 1e-9);
        assert!((v.value() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn heading_rotates_displacement() {
        let s = VehicleState::new(
            Vec2::ZERO,
            Radians(std::f64::consts::FRAC_PI_2),
            MetersPerSecond(10.0),
            MetersPerSecondSquared::ZERO,
        );
        let p = s.predict_constant_accel(Seconds(1.0));
        assert!(p.position.x.abs() < 1e-9);
        assert!((p.position.y - 10.0).abs() < 1e-9);
        assert!((s.velocity().y - 10.0).abs() < 1e-9);
    }

    #[test]
    fn footprint_tracks_pose() {
        let agent = Agent::new(
            ActorId(1),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::at_rest(Vec2::new(10.0, 3.7), Radians(0.0)),
        );
        let fp = agent.footprint();
        assert!(fp.contains(Vec2::new(11.5, 3.7)));
        assert!(!fp.contains(Vec2::new(13.0, 3.7)));
    }

    #[test]
    fn zero_speed_negative_accel_stays_put() {
        let (d, v) = distance_speed_after(
            MetersPerSecond::ZERO,
            MetersPerSecondSquared(-4.9),
            Seconds(5.0),
        );
        assert_eq!(d, Meters::ZERO);
        assert_eq!(v, MetersPerSecond::ZERO);
    }
}
