//! Time-stamped future trajectories of actors.
//!
//! Eq. 4 of the paper aggregates tolerable latencies over a set `T` of
//! predicted trajectories per actor, each with an associated probability.
//! Pre-deployment, `T` is a single ground-truth future taken from the
//! scenario trace (§3.1); post-deployment it comes from a predictor.

use crate::geometry::Vec2;
use crate::units::{MetersPerSecond, MetersPerSecondSquared, Radians, Seconds};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One sample of an actor's (predicted or recorded) future motion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Time of this sample, relative to the same clock as the query (the
    /// scenario clock for traces, "now" for predictions).
    pub time: Seconds,
    /// World-frame position.
    pub position: Vec2,
    /// Direction of travel.
    pub heading: Radians,
    /// Longitudinal speed.
    pub speed: MetersPerSecond,
    /// Longitudinal acceleration.
    pub accel: MetersPerSecondSquared,
}

/// Error constructing a [`Trajectory`].
#[derive(Debug, Clone, PartialEq)]
pub enum TrajectoryError {
    /// A trajectory needs at least one point.
    Empty,
    /// Sample times must be strictly increasing.
    NonMonotonicTime {
        /// Index of the offending sample.
        index: usize,
    },
    /// Probability must lie in `[0, 1]`.
    InvalidProbability {
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajectoryError::Empty => write!(f, "trajectory has no points"),
            TrajectoryError::NonMonotonicTime { index } => {
                write!(
                    f,
                    "trajectory time not strictly increasing at sample {index}"
                )
            }
            TrajectoryError::InvalidProbability { value } => {
                write!(f, "trajectory probability {value} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for TrajectoryError {}

/// A predicted (or recorded) future trajectory with an associated
/// probability.
///
/// Sample times are strictly increasing. Queries between samples linearly
/// interpolate; queries past the last sample extrapolate at constant
/// velocity, and queries before the first sample clamp to it.
///
/// ```
/// use av_core::prelude::*;
/// use av_core::trajectory::{Trajectory, TrajectoryPoint};
///
/// # fn main() -> Result<(), av_core::trajectory::TrajectoryError> {
/// let points = (0..=50)
///     .map(|i| {
///         let t = i as f64 * 0.1;
///         TrajectoryPoint {
///             time: Seconds(t),
///             position: Vec2::new(15.0 * t, 0.0),
///             heading: Radians(0.0),
///             speed: MetersPerSecond(15.0),
///             accel: MetersPerSecondSquared(0.0),
///         }
///     })
///     .collect();
/// let traj = Trajectory::new(points, 1.0)?;
/// let s = traj.sample(Seconds(2.05));
/// assert!((s.position.x - 30.75).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    points: Vec<TrajectoryPoint>,
    probability: f64,
}

impl Trajectory {
    /// Creates a trajectory from time-ordered samples.
    ///
    /// # Errors
    ///
    /// Returns an error if `points` is empty, times are not strictly
    /// increasing, or `probability` is outside `[0, 1]`.
    pub fn new(points: Vec<TrajectoryPoint>, probability: f64) -> Result<Self, TrajectoryError> {
        if points.is_empty() {
            return Err(TrajectoryError::Empty);
        }
        if !(0.0..=1.0).contains(&probability) || !probability.is_finite() {
            return Err(TrajectoryError::InvalidProbability { value: probability });
        }
        for i in 1..points.len() {
            if points[i].time.value() <= points[i - 1].time.value() {
                return Err(TrajectoryError::NonMonotonicTime { index: i });
            }
        }
        Ok(Self {
            points,
            probability,
        })
    }

    /// The probability mass assigned to this future.
    #[inline]
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// The underlying samples.
    #[inline]
    pub fn points(&self) -> &[TrajectoryPoint] {
        &self.points
    }

    /// Time of the first sample.
    #[inline]
    pub fn start_time(&self) -> Seconds {
        self.points[0].time
    }

    /// Time of the last sample.
    #[inline]
    pub fn end_time(&self) -> Seconds {
        self.points[self.points.len() - 1].time
    }

    /// Interpolated state at `time`.
    ///
    /// Before the first sample the first sample is returned; past the last
    /// sample the state is extrapolated at the final constant velocity.
    pub fn sample(&self, time: Seconds) -> TrajectoryPoint {
        let pts = &self.points;
        let t = time.value();
        if t <= pts[0].time.value() {
            return pts[0];
        }
        let last = pts[pts.len() - 1];
        if t >= last.time.value() {
            let dt = t - last.time.value();
            let dir = Vec2::from_heading(last.heading);
            return TrajectoryPoint {
                time,
                position: last.position + dir * (last.speed.value() * dt),
                ..last
            };
        }
        let i = match pts.binary_search_by(|p| {
            p.time
                .value()
                .partial_cmp(&t)
                .expect("finite trajectory times")
        }) {
            Ok(i) => return pts[i],
            Err(i) => i - 1,
        };
        let (a, b) = (pts[i], pts[i + 1]);
        let span = b.time.value() - a.time.value();
        let u = (t - a.time.value()) / span;
        TrajectoryPoint {
            time,
            position: a.position.lerp(b.position, u),
            heading: Radians(a.heading.value() + (b.heading - a.heading).normalized().value() * u)
                .normalized(),
            speed: a.speed + (b.speed - a.speed) * u,
            accel: a.accel + (b.accel - a.accel) * u,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(v: f64, n: usize, dt: f64) -> Trajectory {
        let points = (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                TrajectoryPoint {
                    time: Seconds(t),
                    position: Vec2::new(v * t, 0.0),
                    heading: Radians(0.0),
                    speed: MetersPerSecond(v),
                    accel: MetersPerSecondSquared::ZERO,
                }
            })
            .collect();
        Trajectory::new(points, 1.0).expect("valid trajectory")
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(Trajectory::new(vec![], 1.0), Err(TrajectoryError::Empty));
        let p = TrajectoryPoint {
            time: Seconds(0.0),
            position: Vec2::ZERO,
            heading: Radians(0.0),
            speed: MetersPerSecond::ZERO,
            accel: MetersPerSecondSquared::ZERO,
        };
        assert_eq!(
            Trajectory::new(vec![p, p], 1.0),
            Err(TrajectoryError::NonMonotonicTime { index: 1 })
        );
        assert_eq!(
            Trajectory::new(vec![p], 1.5),
            Err(TrajectoryError::InvalidProbability { value: 1.5 })
        );
        assert!(Trajectory::new(vec![p], f64::NAN)
            .expect_err("NaN probability must be rejected")
            .to_string()
            .contains("probability"));
    }

    #[test]
    fn sample_interpolates_linearly() {
        let traj = line(10.0, 11, 0.1);
        let s = traj.sample(Seconds(0.55));
        assert!((s.position.x - 5.5).abs() < 1e-9);
        assert_eq!(s.speed, MetersPerSecond(10.0));
    }

    #[test]
    fn sample_at_exact_knot() {
        let traj = line(10.0, 11, 0.1);
        let s = traj.sample(Seconds(0.5));
        assert!((s.position.x - 5.0).abs() < 1e-9);
    }

    #[test]
    fn sample_clamps_before_start() {
        let traj = line(10.0, 11, 0.1);
        let s = traj.sample(Seconds(-1.0));
        assert_eq!(s.position, Vec2::ZERO);
    }

    #[test]
    fn sample_extrapolates_constant_velocity() {
        let traj = line(10.0, 11, 0.1); // ends at t=1.0, x=10
        let s = traj.sample(Seconds(2.0));
        assert!((s.position.x - 20.0).abs() < 1e-9);
        assert_eq!(s.speed, MetersPerSecond(10.0));
    }

    #[test]
    fn times_exposed() {
        let traj = line(5.0, 21, 0.05);
        assert_eq!(traj.start_time(), Seconds(0.0));
        assert!((traj.end_time().value() - 1.0).abs() < 1e-9);
        assert_eq!(traj.points().len(), 21);
        assert_eq!(traj.probability(), 1.0);
    }
}
