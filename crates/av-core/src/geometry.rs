//! Planar geometry: vectors and oriented rectangles.
//!
//! The paper works in a 2-D top view (Fig. 2a): `X` longitudinal, `Y`
//! lateral. Vehicles are oriented rectangles for collision checking.

use crate::units::{Meters, Radians};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector / point in the world frame, in meters.
///
/// ```
/// use av_core::geometry::Vec2;
/// let v = Vec2::new(3.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vec2 {
    /// Longitudinal world coordinate (meters).
    pub x: f64,
    /// Lateral world coordinate (meters).
    pub y: f64,
}

impl Vec2 {
    /// The origin.
    pub const ZERO: Self = Self { x: 0.0, y: 0.0 };

    /// Creates a vector from components in meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Unit vector pointing along `heading` (0 rad = +X, counter-clockwise).
    #[inline]
    pub fn from_heading(heading: Radians) -> Self {
        Self::new(heading.cos(), heading.sin())
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Self) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// Z-component of the cross product (signed parallelogram area).
    #[inline]
    pub fn cross(self, rhs: Self) -> f64 {
        self.x * rhs.y - self.y * rhs.x
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean length (avoids the square root).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Distance to another point, as a typed quantity.
    #[inline]
    pub fn distance_to(self, other: Self) -> Meters {
        Meters((other - self).norm())
    }

    /// The vector rotated by `angle` counter-clockwise.
    #[inline]
    pub fn rotated(self, angle: Radians) -> Self {
        let (s, c) = (angle.sin(), angle.cos());
        Self::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// The perpendicular vector (rotated +90 degrees).
    #[inline]
    pub fn perp(self) -> Self {
        Self::new(-self.y, self.x)
    }

    /// The unit vector in the same direction, or `None` for (near-)zero
    /// vectors.
    #[inline]
    pub fn normalized(self) -> Option<Self> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// The heading angle of this vector, `atan2(y, x)`.
    #[inline]
    pub fn heading(self) -> Radians {
        Radians(self.y.atan2(self.x))
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Self, t: f64) -> Self {
        self + (other - self) * t
    }
}

impl Add for Vec2 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Neg for Vec2 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.x / rhs, self.y / rhs)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2}) m", self.x, self.y)
    }
}

/// An oriented rectangle (vehicle footprint) for collision checking.
///
/// ```
/// use av_core::geometry::{OrientedRect, Vec2};
/// use av_core::units::{Meters, Radians};
/// let a = OrientedRect::new(Vec2::ZERO, Radians(0.0), Meters(4.5), Meters(1.8));
/// let b = OrientedRect::new(Vec2::new(4.0, 0.0), Radians(0.0), Meters(4.5), Meters(1.8));
/// assert!(a.intersects(&b)); // bumper overlap
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrientedRect {
    center: Vec2,
    heading: Radians,
    half_length: f64,
    half_width: f64,
}

impl OrientedRect {
    /// Creates a rectangle centered at `center`, with its long axis along
    /// `heading`.
    ///
    /// # Panics
    ///
    /// Panics if `length` or `width` is negative or non-finite.
    pub fn new(center: Vec2, heading: Radians, length: Meters, width: Meters) -> Self {
        assert!(
            length.value() >= 0.0 && length.is_finite(),
            "rectangle length must be finite and non-negative, got {length}"
        );
        assert!(
            width.value() >= 0.0 && width.is_finite(),
            "rectangle width must be finite and non-negative, got {width}"
        );
        Self {
            center,
            heading,
            half_length: length.value() / 2.0,
            half_width: width.value() / 2.0,
        }
    }

    /// The rectangle's center.
    #[inline]
    pub fn center(&self) -> Vec2 {
        self.center
    }

    /// The rectangle's heading.
    #[inline]
    pub fn heading(&self) -> Radians {
        self.heading
    }

    /// The four corners, counter-clockwise.
    pub fn corners(&self) -> [Vec2; 4] {
        self.corners_along(Vec2::from_heading(self.heading))
    }

    /// The corners given the precomputed long-axis direction (lets callers
    /// that already evaluated the heading's sin/cos reuse it).
    fn corners_along(&self, axis: Vec2) -> [Vec2; 4] {
        let side = axis.perp();
        let l = axis * self.half_length;
        let w = side * self.half_width;
        [
            self.center + l + w,
            self.center - l + w,
            self.center - l - w,
            self.center + l - w,
        ]
    }

    /// Separating-axis overlap test between two oriented rectangles.
    pub fn intersects(&self, other: &Self) -> bool {
        let axis_a = Vec2::from_heading(self.heading);
        let axis_b = Vec2::from_heading(other.heading);
        let a = self.corners_along(axis_a);
        let b = other.corners_along(axis_b);
        let axes = [axis_a, axis_a.perp(), axis_b, axis_b.perp()];
        for axis in axes {
            let (amin, amax) = project(&a, axis);
            let (bmin, bmax) = project(&b, axis);
            if amax < bmin || bmax < amin {
                return false;
            }
        }
        true
    }

    /// `true` when `point` lies inside (or on the boundary of) the rectangle.
    pub fn contains(&self, point: Vec2) -> bool {
        let rel = (point - self.center).rotated(-self.heading);
        rel.x.abs() <= self.half_length && rel.y.abs() <= self.half_width
    }

    /// `true` when the segment `a`-`b` touches the rectangle — the
    /// line-of-sight test behind the perception occlusion model.
    pub fn intersects_segment(&self, a: Vec2, b: Vec2) -> bool {
        self.prepared().intersects_segment(a, b)
    }

    /// Precomputes the local-frame rotation terms, so callers that test
    /// many segments against the same rectangle (the per-tick occlusion
    /// sweep) pay the sin/cos once instead of per test.
    pub fn prepared(&self) -> PreparedRect {
        let angle = -self.heading;
        PreparedRect {
            center: self.center,
            half_length: self.half_length,
            half_width: self.half_width,
            sin: angle.sin(),
            cos: angle.cos(),
        }
    }
}

/// An [`OrientedRect`] with its local-frame rotation precomputed (see
/// [`OrientedRect::prepared`]); its segment test is bit-identical to
/// [`OrientedRect::intersects_segment`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreparedRect {
    center: Vec2,
    half_length: f64,
    half_width: f64,
    sin: f64,
    cos: f64,
}

impl PreparedRect {
    /// `true` when the segment `a`-`b` touches the rectangle — the same
    /// segment/AABB slab test as [`OrientedRect::intersects_segment`],
    /// with the rotation terms read from the cache.
    pub fn intersects_segment(&self, a: Vec2, b: Vec2) -> bool {
        let (s, c) = (self.sin, self.cos);
        let rot = |v: Vec2| Vec2::new(v.x * c - v.y * s, v.x * s + v.y * c);
        let la = rot(a - self.center);
        let lb = rot(b - self.center);
        let d = lb - la;
        let mut t0 = 0.0_f64;
        let mut t1 = 1.0_f64;
        for (origin, dir, half) in [(la.x, d.x, self.half_length), (la.y, d.y, self.half_width)] {
            if dir.abs() < 1e-12 {
                if origin.abs() > half {
                    return false;
                }
                continue;
            }
            let inv = 1.0 / dir;
            let mut near = (-half - origin) * inv;
            let mut far = (half - origin) * inv;
            if near > far {
                std::mem::swap(&mut near, &mut far);
            }
            t0 = t0.max(near);
            t1 = t1.min(far);
            if t0 > t1 {
                return false;
            }
        }
        true
    }
}

fn project(corners: &[Vec2; 4], axis: Vec2) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for c in corners {
        let p = c.dot(axis);
        min = min.min(p);
        max = max.max(p);
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn car(center: Vec2, heading: f64) -> OrientedRect {
        OrientedRect::new(center, Radians(heading), Meters(4.5), Meters(1.8))
    }

    #[test]
    fn vector_algebra() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
    }

    #[test]
    fn rotation_is_ccw() {
        let v = Vec2::new(1.0, 0.0).rotated(Radians(FRAC_PI_2));
        assert!((v.x).abs() < 1e-12 && (v.y - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::new(1.0, 0.0).perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn normalized_rejects_zero() {
        assert!(Vec2::ZERO.normalized().is_none());
        let n = Vec2::new(3.0, 4.0).normalized().expect("nonzero");
        assert!((n.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, -4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, -2.0));
    }

    #[test]
    fn aligned_rectangles_overlap_and_separate() {
        let a = car(Vec2::ZERO, 0.0);
        // Longitudinal gap: centers 5m apart, lengths 4.5m -> 0.5m gap.
        assert!(!a.intersects(&car(Vec2::new(5.0, 0.0), 0.0)));
        // Centers 4m apart -> 0.5m overlap.
        assert!(a.intersects(&car(Vec2::new(4.0, 0.0), 0.0)));
        // Adjacent lane (3.7m lateral): widths 1.8m -> no overlap.
        assert!(!a.intersects(&car(Vec2::new(0.0, 3.7), 0.0)));
    }

    #[test]
    fn rotated_rectangle_overlap() {
        let a = car(Vec2::ZERO, 0.0);
        // A crossing car rotated 90 degrees whose nose pokes into `a`.
        let b = car(Vec2::new(0.0, 2.0), FRAC_PI_2);
        assert!(a.intersects(&b));
        // Same crossing car far enough to the side.
        let c = car(Vec2::new(0.0, 3.3), FRAC_PI_2);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn intersects_is_symmetric() {
        let a = car(Vec2::ZERO, 0.2);
        let b = car(Vec2::new(3.0, 1.0), -0.4);
        assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn contains_respects_orientation() {
        let r = car(Vec2::ZERO, FRAC_PI_2); // long axis along +Y
        assert!(r.contains(Vec2::new(0.0, 2.0)));
        assert!(!r.contains(Vec2::new(2.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "length")]
    fn negative_length_panics() {
        let _ = OrientedRect::new(Vec2::ZERO, Radians(0.0), Meters(-1.0), Meters(1.0));
    }

    #[test]
    fn segment_through_rectangle_intersects() {
        let r = car(Vec2::new(10.0, 0.0), 0.0);
        // Ray passing straight through.
        assert!(r.intersects_segment(Vec2::ZERO, Vec2::new(30.0, 0.0)));
        // Ray passing beside it.
        assert!(!r.intersects_segment(Vec2::new(0.0, 3.0), Vec2::new(30.0, 3.0)));
        // Segment ending before the rectangle.
        assert!(!r.intersects_segment(Vec2::ZERO, Vec2::new(5.0, 0.0)));
        // Segment fully inside.
        assert!(r.intersects_segment(Vec2::new(9.5, 0.0), Vec2::new(10.5, 0.2)));
    }

    #[test]
    fn segment_hits_rotated_rectangle() {
        let r = car(Vec2::new(10.0, 0.0), FRAC_PI_2);
        // The rotated car spans y in [-2.25, 2.25], x in [9.1, 10.9].
        assert!(r.intersects_segment(Vec2::new(0.0, 2.0), Vec2::new(20.0, 2.0)));
        assert!(!r.intersects_segment(Vec2::new(0.0, 2.5), Vec2::new(20.0, 2.5)));
    }

    #[test]
    fn degenerate_segment_is_point_test() {
        let r = car(Vec2::new(10.0, 0.0), 0.0);
        assert!(r.intersects_segment(Vec2::new(10.0, 0.0), Vec2::new(10.0, 0.0)));
        assert!(!r.intersects_segment(Vec2::new(0.0, 0.0), Vec2::new(0.0, 0.0)));
    }
}
