//! Arc-length-parameterized paths and Frenet (road) coordinates.
//!
//! The *Challenging cut-in on a curved road* scenario (paper Fig. 5) needs a
//! road frame in which "longitudinal" follows the lane: a [`Path`] is a
//! polyline centerline; [`FrenetPose`] is the (arc length `s`, signed lateral
//! offset `d`) coordinate pair relative to it. Lateral offset is positive to
//! the left of the direction of travel.

use crate::geometry::Vec2;
use crate::units::{Meters, Radians};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error constructing a [`Path`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// A path needs at least two distinct points.
    TooFewPoints,
    /// Two consecutive points coincide, so the tangent is undefined there.
    DegenerateSegment {
        /// Index of the first point of the zero-length segment.
        index: usize,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::TooFewPoints => write!(f, "path needs at least two points"),
            PathError::DegenerateSegment { index } => {
                write!(f, "zero-length path segment at point {index}")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// A position expressed in a path's Frenet frame.
///
/// `s` is the arc length along the path; `d` the signed lateral offset
/// (positive left).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrenetPose {
    /// Arc length along the path from its start.
    pub s: Meters,
    /// Signed lateral offset; positive to the left of travel.
    pub d: Meters,
}

impl FrenetPose {
    /// Creates a Frenet pose.
    #[inline]
    pub const fn new(s: Meters, d: Meters) -> Self {
        Self { s, d }
    }
}

/// A pose on a path: world position plus tangent heading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathPose {
    /// World-frame position.
    pub position: Vec2,
    /// Tangent direction of the path at this point.
    pub heading: Radians,
}

/// An arc-length-parameterized polyline used as a road centerline or a lane
/// centerline.
///
/// Queries beyond either end extrapolate along the end tangents, so
/// simulations that overrun the sampled geometry degrade gracefully instead
/// of panicking.
///
/// ```
/// use av_core::geometry::Vec2;
/// use av_core::path::Path;
/// use av_core::units::{Meters, Radians};
///
/// # fn main() -> Result<(), av_core::path::PathError> {
/// let road = Path::straight(Vec2::ZERO, Radians(0.0), Meters(500.0));
/// let f = road.project(Vec2::new(120.0, 1.85));
/// assert!((f.s.value() - 120.0).abs() < 1e-9);
/// assert!((f.d.value() - 1.85).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    points: Vec<Vec2>,
    /// Cumulative arc length at each point; `cum_s[0] == 0`.
    cum_s: Vec<f64>,
}

impl Path {
    /// Builds a path from a polyline.
    ///
    /// # Errors
    ///
    /// Returns [`PathError::TooFewPoints`] for fewer than two points and
    /// [`PathError::DegenerateSegment`] if consecutive points coincide.
    pub fn from_points(points: Vec<Vec2>) -> Result<Self, PathError> {
        if points.len() < 2 {
            return Err(PathError::TooFewPoints);
        }
        let mut cum_s = Vec::with_capacity(points.len());
        cum_s.push(0.0);
        for i in 1..points.len() {
            let seg = (points[i] - points[i - 1]).norm();
            if seg < 1e-9 {
                return Err(PathError::DegenerateSegment { index: i - 1 });
            }
            cum_s.push(cum_s[i - 1] + seg);
        }
        Ok(Self { points, cum_s })
    }

    /// A straight path starting at `origin` along `heading`.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not strictly positive and finite.
    pub fn straight(origin: Vec2, heading: Radians, length: Meters) -> Self {
        assert!(
            length.value() > 0.0 && length.is_finite(),
            "straight path length must be positive and finite, got {length}"
        );
        let end = origin + Vec2::from_heading(heading) * length.value();
        Self::from_points(vec![origin, end]).expect("two distinct points")
    }

    /// A circular arc starting at `origin` with initial tangent `heading`.
    ///
    /// `radius` is signed: positive curves left, negative curves right.
    /// The arc is sampled every `step` meters of arc length.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is zero/non-finite, or `arc_length`/`step` are not
    /// strictly positive and finite.
    pub fn arc(
        origin: Vec2,
        heading: Radians,
        radius: Meters,
        arc_length: Meters,
        step: Meters,
    ) -> Self {
        assert!(
            radius.value() != 0.0 && radius.is_finite(),
            "arc radius must be nonzero and finite, got {radius}"
        );
        assert!(
            arc_length.value() > 0.0 && arc_length.is_finite(),
            "arc length must be positive and finite, got {arc_length}"
        );
        assert!(
            step.value() > 0.0 && step.is_finite(),
            "arc sampling step must be positive and finite, got {step}"
        );
        let r = radius.value();
        // Center is perpendicular-left of the tangent for r > 0.
        let center = origin + Vec2::from_heading(heading).perp() * r;
        let start_angle = (origin - center).heading();
        let n = (arc_length.value() / step.value()).ceil().max(1.0) as usize;
        let mut points = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let s = arc_length.value() * (i as f64) / (n as f64);
            let dtheta = s / r; // signed; negative r sweeps clockwise
            let angle = Radians(start_angle.value() + dtheta);
            points.push(center + Vec2::from_heading(angle) * r.abs());
        }
        Self::from_points(points).expect("arc samples are distinct")
    }

    /// Total arc length of the path.
    #[inline]
    pub fn length(&self) -> Meters {
        Meters(*self.cum_s.last().expect("paths have at least two points"))
    }

    /// The polyline vertices.
    #[inline]
    pub fn points(&self) -> &[Vec2] {
        &self.points
    }

    /// World pose at arc length `s`, extrapolating along the end tangents
    /// outside `[0, length]`.
    pub fn pose_at(&self, s: Meters) -> PathPose {
        let s = s.value();
        let n = self.points.len();
        if s <= 0.0 {
            let dir = self.points[1] - self.points[0];
            let heading = dir.heading();
            let unit = dir / dir.norm();
            return PathPose {
                position: self.points[0] + unit * s,
                heading,
            };
        }
        if s >= *self.cum_s.last().expect("nonempty") {
            let dir = self.points[n - 1] - self.points[n - 2];
            let heading = dir.heading();
            let unit = dir / dir.norm();
            let overshoot = s - self.cum_s[n - 1];
            return PathPose {
                position: self.points[n - 1] + unit * overshoot,
                heading,
            };
        }
        // Binary search for the containing segment.
        let i = match self
            .cum_s
            .binary_search_by(|probe| probe.partial_cmp(&s).expect("finite arc lengths"))
        {
            Ok(i) => i.min(n - 2),
            Err(i) => i - 1,
        };
        let seg = self.points[i + 1] - self.points[i];
        let seg_len = self.cum_s[i + 1] - self.cum_s[i];
        let t = (s - self.cum_s[i]) / seg_len;
        PathPose {
            position: self.points[i].lerp(self.points[i + 1], t),
            heading: seg.heading(),
        }
    }

    /// Projects a world point onto the path, returning its Frenet pose.
    ///
    /// Points beyond the ends project onto the extrapolated end tangents
    /// (yielding `s < 0` or `s > length`).
    pub fn project(&self, point: Vec2) -> FrenetPose {
        let mut best_d2 = f64::INFINITY;
        let mut best = FrenetPose::default();
        for i in 0..self.points.len() - 1 {
            let a = self.points[i];
            let b = self.points[i + 1];
            let ab = b - a;
            let seg_len = self.cum_s[i + 1] - self.cum_s[i];
            let mut t = (point - a).dot(ab) / ab.norm_sq();
            // Allow extrapolation only on the terminal segments.
            let lo = if i == 0 { f64::NEG_INFINITY } else { 0.0 };
            let hi = if i == self.points.len() - 2 {
                f64::INFINITY
            } else {
                1.0
            };
            t = t.clamp(lo, hi);
            let proj = a + ab * t;
            let offset = point - proj;
            let d2 = offset.norm_sq();
            if d2 < best_d2 {
                best_d2 = d2;
                let s = self.cum_s[i] + t * seg_len;
                // Sign: positive left of travel direction.
                let sign = if ab.cross(offset) >= 0.0 { 1.0 } else { -1.0 };
                best = FrenetPose::new(Meters(s), Meters(sign * d2.sqrt()));
            }
        }
        best
    }

    /// Converts a Frenet pose back into a world point.
    pub fn frenet_to_world(&self, pose: FrenetPose) -> Vec2 {
        let base = self.pose_at(pose.s);
        let left = Vec2::from_heading(base.heading).perp();
        base.position + left * pose.d.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn straight_path_round_trip() {
        let p = Path::straight(Vec2::ZERO, Radians(0.0), Meters(100.0));
        assert_eq!(p.length(), Meters(100.0));
        let f = FrenetPose::new(Meters(40.0), Meters(-2.0));
        let w = p.frenet_to_world(f);
        assert!((w.x - 40.0).abs() < 1e-9 && (w.y + 2.0).abs() < 1e-9);
        let back = p.project(w);
        assert!((back.s.value() - 40.0).abs() < 1e-9);
        assert!((back.d.value() + 2.0).abs() < 1e-9);
    }

    #[test]
    fn rotated_straight_path_projects_correctly() {
        let p = Path::straight(Vec2::new(5.0, 5.0), Radians(FRAC_PI_2), Meters(50.0));
        // 10m along +Y from origin, 1m to the left (-X side).
        let f = p.project(Vec2::new(4.0, 15.0));
        assert!((f.s.value() - 10.0).abs() < 1e-9);
        assert!((f.d.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn extrapolates_beyond_both_ends() {
        let p = Path::straight(Vec2::ZERO, Radians(0.0), Meters(10.0));
        let before = p.project(Vec2::new(-5.0, 1.0));
        assert!((before.s.value() + 5.0).abs() < 1e-9);
        assert!((before.d.value() - 1.0).abs() < 1e-9);
        let after = p.pose_at(Meters(15.0));
        assert!((after.position.x - 15.0).abs() < 1e-9);
    }

    #[test]
    fn left_arc_curves_left() {
        // Quarter circle, radius 100, starting along +X: ends near (100, 100).
        let p = Path::arc(
            Vec2::ZERO,
            Radians(0.0),
            Meters(100.0),
            Meters(100.0 * FRAC_PI_2),
            Meters(1.0),
        );
        let end = p.pose_at(p.length()).position;
        assert!((end.x - 100.0).abs() < 0.1, "end.x = {}", end.x);
        assert!((end.y - 100.0).abs() < 0.1, "end.y = {}", end.y);
        let end_heading = p.pose_at(p.length() - Meters(0.5)).heading;
        assert!((end_heading.value() - FRAC_PI_2).abs() < 0.05);
    }

    #[test]
    fn right_arc_curves_right() {
        let p = Path::arc(
            Vec2::ZERO,
            Radians(0.0),
            Meters(-100.0),
            Meters(100.0 * FRAC_PI_2),
            Meters(1.0),
        );
        let end = p.pose_at(p.length()).position;
        assert!((end.x - 100.0).abs() < 0.1);
        assert!((end.y + 100.0).abs() < 0.1);
    }

    #[test]
    fn arc_frenet_round_trip() {
        let p = Path::arc(
            Vec2::ZERO,
            Radians(0.3),
            Meters(200.0),
            Meters(150.0),
            Meters(0.5),
        );
        for &(s, d) in &[(10.0, 0.0), (75.0, 3.7), (140.0, -3.7)] {
            let w = p.frenet_to_world(FrenetPose::new(Meters(s), Meters(d)));
            let f = p.project(w);
            assert!((f.s.value() - s).abs() < 0.05, "s: {} vs {s}", f.s);
            assert!((f.d.value() - d).abs() < 0.05, "d: {} vs {d}", f.d);
        }
    }

    #[test]
    fn arc_length_is_accurate() {
        let p = Path::arc(
            Vec2::ZERO,
            Radians(0.0),
            Meters(100.0),
            Meters(100.0 * PI),
            Meters(0.5),
        );
        // Polyline slightly under-measures the true arc; within 0.1%.
        let err = (p.length().value() - 100.0 * PI).abs() / (100.0 * PI);
        assert!(err < 1e-3, "relative error {err}");
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            Path::from_points(vec![Vec2::ZERO]),
            Err(PathError::TooFewPoints)
        );
        assert_eq!(
            Path::from_points(vec![Vec2::ZERO, Vec2::ZERO, Vec2::new(1.0, 0.0)]),
            Err(PathError::DegenerateSegment { index: 0 })
        );
        let msg = PathError::DegenerateSegment { index: 3 }.to_string();
        assert!(msg.contains('3'));
    }

    #[test]
    fn projection_picks_nearest_segment() {
        // An L-shaped path; a point near the corner must pick the closer leg.
        let p = Path::from_points(vec![
            Vec2::ZERO,
            Vec2::new(10.0, 0.0),
            Vec2::new(10.0, 10.0),
        ])
        .expect("valid polyline");
        let f = p.project(Vec2::new(9.0, 5.0));
        assert!((f.s.value() - 15.0).abs() < 1e-9);
        assert!((f.d.value() - 1.0).abs() < 1e-9);
    }
}
