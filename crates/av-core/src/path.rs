//! Arc-length-parameterized paths and Frenet (road) coordinates.
//!
//! The *Challenging cut-in on a curved road* scenario (paper Fig. 5) needs a
//! road frame in which "longitudinal" follows the lane: a [`Path`] is a
//! polyline centerline; [`FrenetPose`] is the (arc length `s`, signed lateral
//! offset `d`) coordinate pair relative to it. Lateral offset is positive to
//! the left of the direction of travel.

use crate::geometry::Vec2;
use crate::units::{Meters, Radians};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error constructing a [`Path`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// A path needs at least two distinct points.
    TooFewPoints,
    /// Two consecutive points coincide, so the tangent is undefined there.
    DegenerateSegment {
        /// Index of the first point of the zero-length segment.
        index: usize,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::TooFewPoints => write!(f, "path needs at least two points"),
            PathError::DegenerateSegment { index } => {
                write!(f, "zero-length path segment at point {index}")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// A position expressed in a path's Frenet frame.
///
/// `s` is the arc length along the path; `d` the signed lateral offset
/// (positive left).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrenetPose {
    /// Arc length along the path from its start.
    pub s: Meters,
    /// Signed lateral offset; positive to the left of travel.
    pub d: Meters,
}

impl FrenetPose {
    /// Creates a Frenet pose.
    #[inline]
    pub const fn new(s: Meters, d: Meters) -> Self {
        Self { s, d }
    }
}

/// A pose on a path: world position plus tangent heading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathPose {
    /// World-frame position.
    pub position: Vec2,
    /// Tangent direction of the path at this point.
    pub heading: Radians,
}

/// A full road frame on a path: pose plus the left normal, all terms
/// precomputed at path construction (no trig per query).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathFrame {
    /// World-frame position.
    pub position: Vec2,
    /// Tangent direction of the path at this point.
    pub heading: Radians,
    /// Unit normal pointing left of the direction of travel.
    pub left: Vec2,
}

/// Circle parameters remembered by [`Path::arc`] so projection can jump
/// straight to the right neighborhood instead of scanning the polyline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct ArcIndex {
    /// Circle center.
    center: Vec2,
    /// Unsigned circle radius.
    radius: f64,
    /// Azimuth of the first vertex around the center.
    start_angle: f64,
    /// Signed angle swept per polyline segment (positive = CCW).
    seg_angle: f64,
}

/// An arc-length-parameterized polyline used as a road centerline or a lane
/// centerline.
///
/// Queries beyond either end extrapolate along the end tangents, so
/// simulations that overrun the sampled geometry degrade gracefully instead
/// of panicking.
///
/// ```
/// use av_core::geometry::Vec2;
/// use av_core::path::Path;
/// use av_core::units::{Meters, Radians};
///
/// # fn main() -> Result<(), av_core::path::PathError> {
/// let road = Path::straight(Vec2::ZERO, Radians(0.0), Meters(500.0));
/// let f = road.project(Vec2::new(120.0, 1.85));
/// assert!((f.s.value() - 120.0).abs() < 1e-9);
/// assert!((f.d.value() - 1.85).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    points: Vec<Vec2>,
    /// Cumulative arc length at each point; `cum_s[0] == 0`.
    cum_s: Vec<f64>,
    /// Per-segment unit tangents, precomputed at construction so the
    /// per-tick pose queries pay no `hypot`/`atan2`.
    seg_unit: Vec<Vec2>,
    /// Per-segment tangent headings (`atan2` evaluated once, here).
    seg_heading: Vec<Radians>,
    /// Per-segment left normals, `from_heading(heading).perp()` evaluated
    /// once so Frenet-to-world conversions pay no trig per call.
    seg_left: Vec<Vec2>,
    /// Set when the polyline samples a circular arc; accelerates
    /// projection from O(segments) to O(1) + a tiny verified window.
    arc: Option<ArcIndex>,
}

impl Path {
    /// Builds a path from a polyline.
    ///
    /// # Errors
    ///
    /// Returns [`PathError::TooFewPoints`] for fewer than two points and
    /// [`PathError::DegenerateSegment`] if consecutive points coincide.
    pub fn from_points(points: Vec<Vec2>) -> Result<Self, PathError> {
        if points.len() < 2 {
            return Err(PathError::TooFewPoints);
        }
        let mut cum_s = Vec::with_capacity(points.len());
        let mut seg_unit = Vec::with_capacity(points.len() - 1);
        let mut seg_heading = Vec::with_capacity(points.len() - 1);
        let mut seg_left = Vec::with_capacity(points.len() - 1);
        cum_s.push(0.0);
        for i in 1..points.len() {
            let dir = points[i] - points[i - 1];
            let seg = dir.norm();
            if seg < 1e-9 {
                return Err(PathError::DegenerateSegment { index: i - 1 });
            }
            cum_s.push(cum_s[i - 1] + seg);
            let heading = dir.heading();
            seg_unit.push(dir / seg);
            seg_heading.push(heading);
            seg_left.push(Vec2::from_heading(heading).perp());
        }
        Ok(Self {
            points,
            cum_s,
            seg_unit,
            seg_heading,
            seg_left,
            arc: None,
        })
    }

    /// A straight path starting at `origin` along `heading`.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not strictly positive and finite.
    pub fn straight(origin: Vec2, heading: Radians, length: Meters) -> Self {
        assert!(
            length.value() > 0.0 && length.is_finite(),
            "straight path length must be positive and finite, got {length}"
        );
        let end = origin + Vec2::from_heading(heading) * length.value();
        Self::from_points(vec![origin, end]).expect("two distinct points")
    }

    /// A circular arc starting at `origin` with initial tangent `heading`.
    ///
    /// `radius` is signed: positive curves left, negative curves right.
    /// The arc is sampled every `step` meters of arc length.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is zero/non-finite, or `arc_length`/`step` are not
    /// strictly positive and finite.
    pub fn arc(
        origin: Vec2,
        heading: Radians,
        radius: Meters,
        arc_length: Meters,
        step: Meters,
    ) -> Self {
        assert!(
            radius.value() != 0.0 && radius.is_finite(),
            "arc radius must be nonzero and finite, got {radius}"
        );
        assert!(
            arc_length.value() > 0.0 && arc_length.is_finite(),
            "arc length must be positive and finite, got {arc_length}"
        );
        assert!(
            step.value() > 0.0 && step.is_finite(),
            "arc sampling step must be positive and finite, got {step}"
        );
        let r = radius.value();
        // Center is perpendicular-left of the tangent for r > 0.
        let center = origin + Vec2::from_heading(heading).perp() * r;
        let start_angle = (origin - center).heading();
        let n = (arc_length.value() / step.value()).ceil().max(1.0) as usize;
        let mut points = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let s = arc_length.value() * (i as f64) / (n as f64);
            let dtheta = s / r; // signed; negative r sweeps clockwise
            let angle = Radians(start_angle.value() + dtheta);
            points.push(center + Vec2::from_heading(angle) * r.abs());
        }
        let mut path = Self::from_points(points).expect("arc samples are distinct");
        path.arc = Some(ArcIndex {
            center,
            radius: r.abs(),
            start_angle: start_angle.value(),
            seg_angle: arc_length.value() / (n as f64) / r,
        });
        path
    }

    /// Total arc length of the path.
    #[inline]
    pub fn length(&self) -> Meters {
        Meters(*self.cum_s.last().expect("paths have at least two points"))
    }

    /// The polyline vertices.
    #[inline]
    pub fn points(&self) -> &[Vec2] {
        &self.points
    }

    /// The segment index whose arc-length interval contains `s` (clamped
    /// to real segments; callers handle extrapolation beyond the ends).
    fn segment_at(&self, s: f64) -> usize {
        let n = self.points.len();
        match self
            .cum_s
            .binary_search_by(|probe| probe.partial_cmp(&s).expect("finite arc lengths"))
        {
            Ok(i) => i.min(n - 2),
            Err(i) => i - 1,
        }
    }

    /// World pose at arc length `s`, extrapolating along the end tangents
    /// outside `[0, length]`.
    pub fn pose_at(&self, s: Meters) -> PathPose {
        let frame = self.frame_at(s);
        PathPose {
            position: frame.position,
            heading: frame.heading,
        }
    }

    /// World pose *and* left normal at arc length `s` — the full road
    /// frame, with every trig term precomputed at construction. The hot
    /// form of [`Path::pose_at`] for per-tick Frenet-to-world conversion.
    pub fn frame_at(&self, s: Meters) -> PathFrame {
        let s = s.value();
        let n = self.points.len();
        if s <= 0.0 {
            return PathFrame {
                position: self.points[0] + self.seg_unit[0] * s,
                heading: self.seg_heading[0],
                left: self.seg_left[0],
            };
        }
        if s >= *self.cum_s.last().expect("nonempty") {
            let overshoot = s - self.cum_s[n - 1];
            return PathFrame {
                position: self.points[n - 1] + self.seg_unit[n - 2] * overshoot,
                heading: self.seg_heading[n - 2],
                left: self.seg_left[n - 2],
            };
        }
        let i = self.segment_at(s);
        let seg_len = self.cum_s[i + 1] - self.cum_s[i];
        let t = (s - self.cum_s[i]) / seg_len;
        PathFrame {
            position: self.points[i].lerp(self.points[i + 1], t),
            heading: self.seg_heading[i],
            left: self.seg_left[i],
        }
    }

    /// Scans segments `[i0, i1)` for a closer projection than
    /// `best`, exactly as the classic full scan visits them (ascending,
    /// strict improvement), so any pruned search that visits a superset of
    /// the winning segment returns bit-identical results.
    fn project_segments(
        &self,
        point: Vec2,
        i0: usize,
        i1: usize,
        best_d2: &mut f64,
        best: &mut FrenetPose,
    ) {
        let last = self.points.len() - 2;
        for i in i0..i1 {
            let a = self.points[i];
            let b = self.points[i + 1];
            let ab = b - a;
            let seg_len = self.cum_s[i + 1] - self.cum_s[i];
            let mut t = (point - a).dot(ab) / ab.norm_sq();
            // Allow extrapolation only on the terminal segments.
            let lo = if i == 0 { f64::NEG_INFINITY } else { 0.0 };
            let hi = if i == last { f64::INFINITY } else { 1.0 };
            t = t.clamp(lo, hi);
            let proj = a + ab * t;
            let offset = point - proj;
            let d2 = offset.norm_sq();
            if d2 < *best_d2 {
                *best_d2 = d2;
                let s = self.cum_s[i] + t * seg_len;
                // Sign: positive left of travel direction.
                let sign = if ab.cross(offset) >= 0.0 { 1.0 } else { -1.0 };
                *best = FrenetPose::new(Meters(s), Meters(sign * d2.sqrt()));
            }
        }
    }

    /// Projects a world point onto the path, returning its Frenet pose.
    ///
    /// Points beyond the ends project onto the extrapolated end tangents
    /// (yielding `s < 0` or `s > length`).
    ///
    /// Dense polylines (the sampled arc roads) are searched with a
    /// block-pruned scan: a coarse pass lower-bounds each block of
    /// segments by sampled-vertex distance minus block arc span (arc
    /// length bounds chord length, so the bound is sound for any
    /// polyline), and only blocks that could beat the running best are
    /// scanned exactly. Terminal blocks are always scanned because their
    /// segments extrapolate. Blocks are visited in ascending order with
    /// strict-improvement updates, so the winning segment — and therefore
    /// the returned pose, bit for bit — matches the classic full scan.
    pub fn project(&self, point: Vec2) -> FrenetPose {
        let mut best_d2 = f64::INFINITY;
        let mut best = FrenetPose::default();
        let nseg = self.points.len() - 1;
        const BLOCK: usize = 16;
        if nseg <= 2 * BLOCK {
            self.project_segments(point, 0, nseg, &mut best_d2, &mut best);
            return best;
        }
        if let Some(arc) = self.arc {
            if let Some(pose) = self.project_arc(point, &arc) {
                return pose;
            }
        }
        // Coarse pass over blocks of BLOCK segments: squared distances to
        // the block-boundary vertices only, no square roots, no
        // allocation. `best_d` mirrors sqrt(best_d2), refreshed only on
        // improvement.
        let n = self.points.len();
        let mut best_d = f64::INFINITY;
        let mut i0 = 0usize;
        let mut d2_start = (point - self.points[0]).norm_sq();
        while i0 < n - 1 {
            let i1 = (i0 + BLOCK).min(n - 1);
            let d2_end = (point - self.points[i1]).norm_sq();
            let span = self.cum_s[i1] - self.cum_s[i0];
            // Any point q on this block lies within `span` (arc length
            // bounds chord) of both boundary vertices, so |point - q| >=
            // max(d_boundary) - span. Prune only when that lower bound
            // clears the running best by a safety margin absorbing the
            // squared-arithmetic rounding. Terminal blocks extrapolate and
            // are always scanned.
            let terminal = i0 == 0 || i1 == n - 1;
            let threshold = best_d + span + 1e-9;
            if terminal || d2_start.max(d2_end) <= threshold * threshold {
                let before = best_d2;
                self.project_segments(point, i0, i1, &mut best_d2, &mut best);
                if best_d2 < before {
                    best_d = best_d2.sqrt();
                }
            }
            i0 = i1;
            d2_start = d2_end;
        }
        best
    }

    /// Arc-indexed projection: use the query's azimuth around the circle
    /// center for an O(1) segment guess, then scan a window whose
    /// completeness is certified by the law of cosines — a vertex at
    /// angular offset Δθ from the query azimuth sits at distance
    /// `sqrt(R² + r² − 2·R·r·cos Δθ)`, monotone in |Δθ|, so every segment
    /// both of whose vertices lie beyond the certified angular window is
    /// provably farther than the best already found. Terminal segments are
    /// always scanned (they extrapolate). Returns `None` when the query is
    /// too close to the circle center for a stable azimuth (the generic
    /// scan handles it).
    fn project_arc(&self, point: Vec2, arc: &ArcIndex) -> Option<FrenetPose> {
        use std::f64::consts::TAU;
        let nseg = self.points.len() - 1;
        let rel = point - arc.center;
        let r = rel.norm_sq().sqrt();
        if r < 1e-6 {
            return None;
        }
        // Query azimuth relative to the first vertex, in segment units.
        // Sweeps beyond a full turn are covered by the k-images below.
        let base = rel.y.atan2(rel.x) - arc.start_angle;
        let turns = (nseg as f64 * arc.seg_angle.abs()) / TAU;
        let k_max = turns.ceil() as i64 + 1;
        let image = |k: i64| (base + k as f64 * TAU) / arc.seg_angle;
        // The image closest to the valid index range seeds the guess.
        let mut guess = image(0);
        let mut guess_overshoot = f64::INFINITY;
        for k in -k_max..=k_max {
            let i = image(k);
            let overshoot = (-i).max(i - nseg as f64).max(0.0);
            if overshoot < guess_overshoot {
                guess_overshoot = overshoot;
                guess = i;
            }
        }
        let gi = guess.clamp(0.0, (nseg - 1) as f64) as usize;

        // Preliminary pass: a small window around the guess plus the
        // terminal segments, to establish an upper bound on the distance.
        // Terminal segments extrapolate along their lines, so the exact
        // point-to-line distance (one cross product) lower-bounds them;
        // when it cannot beat the window's best they are skipped — but
        // never skipped for ties, keeping the scan's first-wins order.
        let (w_lo, w_hi) = (gi.saturating_sub(4), (gi + 5).min(nseg));
        let line_dist = |i: usize| (self.seg_unit[i].cross(point - self.points[i])).abs();
        let mut pre_d2 = f64::INFINITY;
        let mut pre = FrenetPose::default();
        if w_lo > 0 {
            let d0 = line_dist(0);
            if d0 * d0 <= (point - self.points[w_lo]).norm_sq() {
                self.project_segments(point, 0, 1, &mut pre_d2, &mut pre);
            }
        }
        self.project_segments(point, w_lo, w_hi, &mut pre_d2, &mut pre);
        if w_hi < nseg {
            let dn = line_dist(nseg - 1);
            if dn * dn <= pre_d2 {
                self.project_segments(point, nseg - 1, nseg, &mut pre_d2, &mut pre);
            }
        }

        // Certify the window: any segment that could still win has a
        // vertex within `bound` of the query (chord distance >= nearest
        // vertex distance - segment length), i.e. within `theta_max` of
        // its azimuth. The 1e-6 margin absorbs vertex rounding off the
        // ideal circle.
        let max_seg = self.cum_s[nseg] / nseg as f64;
        let bound = pre_d2.sqrt() + max_seg + 1e-6;
        let cos_max = (arc.radius * arc.radius + r * r - bound * bound) / (2.0 * arc.radius * r);
        let (mut lo, mut hi) = (w_lo, w_hi);
        if cos_max < -1.0 {
            // Everything qualifies; give up on pruning.
            (lo, hi) = (0, nseg);
        } else if cos_max <= 1.0 {
            let half_width = cos_max.acos() / arc.seg_angle.abs();
            for k in -k_max..=k_max {
                let center = image(k);
                let (v_lo, v_hi) = (center - half_width, center + half_width);
                if v_hi < 0.0 || v_lo > nseg as f64 {
                    continue;
                }
                // Vertex window -> segment window (segment i owns
                // vertices i and i+1), clamped and floored outward.
                let s_lo = (v_lo.floor() - 1.0).max(0.0) as usize;
                let s_hi = (v_hi.ceil() as usize + 1).min(nseg);
                lo = lo.min(s_lo);
                hi = hi.max(s_hi);
            }
        }
        // The preliminary pass already visited {0} ∪ window ∪ {last} in
        // ascending order with the scan's strict-improvement rule; when
        // the certified hull adds nothing, its result is final.
        if lo >= w_lo && hi <= w_hi {
            return Some(pre);
        }
        // Final pass in globally ascending order: terminal start, the
        // certified hull, terminal end — same visit order and strict
        // improvement rule as the classic scan.
        let mut best_d2 = f64::INFINITY;
        let mut best = FrenetPose::default();
        if lo > 0 {
            self.project_segments(point, 0, 1, &mut best_d2, &mut best);
        }
        self.project_segments(point, lo, hi, &mut best_d2, &mut best);
        if hi < nseg {
            self.project_segments(point, nseg - 1, nseg, &mut best_d2, &mut best);
        }
        Some(best)
    }

    /// Converts a Frenet pose back into a world point.
    pub fn frenet_to_world(&self, pose: FrenetPose) -> Vec2 {
        let frame = self.frame_at(pose.s);
        frame.position + frame.left * pose.d.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn straight_path_round_trip() {
        let p = Path::straight(Vec2::ZERO, Radians(0.0), Meters(100.0));
        assert_eq!(p.length(), Meters(100.0));
        let f = FrenetPose::new(Meters(40.0), Meters(-2.0));
        let w = p.frenet_to_world(f);
        assert!((w.x - 40.0).abs() < 1e-9 && (w.y + 2.0).abs() < 1e-9);
        let back = p.project(w);
        assert!((back.s.value() - 40.0).abs() < 1e-9);
        assert!((back.d.value() + 2.0).abs() < 1e-9);
    }

    #[test]
    fn rotated_straight_path_projects_correctly() {
        let p = Path::straight(Vec2::new(5.0, 5.0), Radians(FRAC_PI_2), Meters(50.0));
        // 10m along +Y from origin, 1m to the left (-X side).
        let f = p.project(Vec2::new(4.0, 15.0));
        assert!((f.s.value() - 10.0).abs() < 1e-9);
        assert!((f.d.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn extrapolates_beyond_both_ends() {
        let p = Path::straight(Vec2::ZERO, Radians(0.0), Meters(10.0));
        let before = p.project(Vec2::new(-5.0, 1.0));
        assert!((before.s.value() + 5.0).abs() < 1e-9);
        assert!((before.d.value() - 1.0).abs() < 1e-9);
        let after = p.pose_at(Meters(15.0));
        assert!((after.position.x - 15.0).abs() < 1e-9);
    }

    #[test]
    fn left_arc_curves_left() {
        // Quarter circle, radius 100, starting along +X: ends near (100, 100).
        let p = Path::arc(
            Vec2::ZERO,
            Radians(0.0),
            Meters(100.0),
            Meters(100.0 * FRAC_PI_2),
            Meters(1.0),
        );
        let end = p.pose_at(p.length()).position;
        assert!((end.x - 100.0).abs() < 0.1, "end.x = {}", end.x);
        assert!((end.y - 100.0).abs() < 0.1, "end.y = {}", end.y);
        let end_heading = p.pose_at(p.length() - Meters(0.5)).heading;
        assert!((end_heading.value() - FRAC_PI_2).abs() < 0.05);
    }

    #[test]
    fn right_arc_curves_right() {
        let p = Path::arc(
            Vec2::ZERO,
            Radians(0.0),
            Meters(-100.0),
            Meters(100.0 * FRAC_PI_2),
            Meters(1.0),
        );
        let end = p.pose_at(p.length()).position;
        assert!((end.x - 100.0).abs() < 0.1);
        assert!((end.y + 100.0).abs() < 0.1);
    }

    #[test]
    fn arc_frenet_round_trip() {
        let p = Path::arc(
            Vec2::ZERO,
            Radians(0.3),
            Meters(200.0),
            Meters(150.0),
            Meters(0.5),
        );
        for &(s, d) in &[(10.0, 0.0), (75.0, 3.7), (140.0, -3.7)] {
            let w = p.frenet_to_world(FrenetPose::new(Meters(s), Meters(d)));
            let f = p.project(w);
            assert!((f.s.value() - s).abs() < 0.05, "s: {} vs {s}", f.s);
            assert!((f.d.value() - d).abs() < 0.05, "d: {} vs {d}", f.d);
        }
    }

    #[test]
    fn arc_length_is_accurate() {
        let p = Path::arc(
            Vec2::ZERO,
            Radians(0.0),
            Meters(100.0),
            Meters(100.0 * PI),
            Meters(0.5),
        );
        // Polyline slightly under-measures the true arc; within 0.1%.
        let err = (p.length().value() - 100.0 * PI).abs() / (100.0 * PI);
        assert!(err < 1e-3, "relative error {err}");
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            Path::from_points(vec![Vec2::ZERO]),
            Err(PathError::TooFewPoints)
        );
        assert_eq!(
            Path::from_points(vec![Vec2::ZERO, Vec2::ZERO, Vec2::new(1.0, 0.0)]),
            Err(PathError::DegenerateSegment { index: 0 })
        );
        let msg = PathError::DegenerateSegment { index: 3 }.to_string();
        assert!(msg.contains('3'));
    }

    /// The classic exhaustive scan, as an oracle for the pruned search.
    fn full_scan(path: &Path, point: Vec2) -> FrenetPose {
        let mut best_d2 = f64::INFINITY;
        let mut best = FrenetPose::default();
        path.project_segments(point, 0, path.points().len() - 1, &mut best_d2, &mut best);
        best
    }

    #[test]
    fn pruned_projection_matches_full_scan_oracle() {
        // The arc-indexed fast path and the block-pruned fallback both
        // claim bit-identical results to the exhaustive scan; pin it over
        // a sweep of query points around several dense paths, including
        // on-path, off-path, near-center, beyond-end and far-away points.
        let paths = [
            // The catalog's curved road geometry (left arc).
            Path::arc(
                Vec2::ZERO,
                Radians(0.0),
                Meters(400.0),
                Meters(1500.0),
                Meters(2.0),
            ),
            // A right arc sweeping more than a half turn.
            Path::arc(
                Vec2::new(5.0, -3.0),
                Radians(1.2),
                Meters(-80.0),
                Meters(400.0),
                Meters(1.0),
            ),
            // A dense non-arc polyline (sine wave) exercising the generic
            // block-pruned scan.
            Path::from_points(
                (0..400)
                    .map(|i| Vec2::new(i as f64, (i as f64 * 0.12).sin() * 25.0))
                    .collect(),
            )
            .expect("valid polyline"),
        ];
        // Deterministic pseudo-random offsets (LCG), no external RNG.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // in [-1, 1)
        };
        for path in &paths {
            let length = path.length().value();
            for i in 0..400 {
                let s = length * (i as f64 / 399.0) * 1.2 - 0.1 * length; // beyond both ends
                let base = path.pose_at(Meters(s)).position;
                let point = base + Vec2::new(next() * 60.0, next() * 60.0);
                let fast = path.project(point);
                let oracle = full_scan(path, point);
                assert_eq!(fast, oracle, "path len {length:.0}, query {point}");
            }
            // Degenerate-direction spot checks: the arc's circle center
            // and points straight out from each end.
            for point in [Vec2::ZERO, Vec2::new(-500.0, 0.0), Vec2::new(0.0, 900.0)] {
                assert_eq!(path.project(point), full_scan(path, point));
            }
        }
    }

    #[test]
    fn projection_picks_nearest_segment() {
        // An L-shaped path; a point near the corner must pick the closer leg.
        let p = Path::from_points(vec![
            Vec2::ZERO,
            Vec2::new(10.0, 0.0),
            Vec2::new(10.0, 10.0),
        ])
        .expect("valid polyline");
        let f = p.project(Vec2::new(9.0, 5.0));
        assert!((f.s.value() - 15.0).abs() < 1e-9);
        assert!((f.d.value() - 1.0).abs() < 1e-9);
    }
}
