//! Arc-length-parameterized paths and Frenet (road) coordinates.
//!
//! The *Challenging cut-in on a curved road* scenario (paper Fig. 5) needs a
//! road frame in which "longitudinal" follows the lane: a [`Path`] is a
//! polyline centerline; [`FrenetPose`] is the (arc length `s`, signed lateral
//! offset `d`) coordinate pair relative to it. Lateral offset is positive to
//! the left of the direction of travel.

use crate::geometry::Vec2;
use crate::units::{Meters, Radians};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Block size of the pruned fallback scan; polylines at most twice this
/// long are scanned exhaustively (and get no spatial grid).
const PRUNE_BLOCK: usize = 16;

/// Error constructing a [`Path`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// A path needs at least two distinct points.
    TooFewPoints,
    /// Two consecutive points coincide, so the tangent is undefined there.
    DegenerateSegment {
        /// Index of the first point of the zero-length segment.
        index: usize,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::TooFewPoints => write!(f, "path needs at least two points"),
            PathError::DegenerateSegment { index } => {
                write!(f, "zero-length path segment at point {index}")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// A position expressed in a path's Frenet frame.
///
/// `s` is the arc length along the path; `d` the signed lateral offset
/// (positive left).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrenetPose {
    /// Arc length along the path from its start.
    pub s: Meters,
    /// Signed lateral offset; positive to the left of travel.
    pub d: Meters,
}

impl FrenetPose {
    /// Creates a Frenet pose.
    #[inline]
    pub const fn new(s: Meters, d: Meters) -> Self {
        Self { s, d }
    }
}

/// A pose on a path: world position plus tangent heading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathPose {
    /// World-frame position.
    pub position: Vec2,
    /// Tangent direction of the path at this point.
    pub heading: Radians,
}

/// A full road frame on a path: pose plus the left normal, all terms
/// precomputed at path construction (no trig per query).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathFrame {
    /// World-frame position.
    pub position: Vec2,
    /// Tangent direction of the path at this point.
    pub heading: Radians,
    /// Unit normal pointing left of the direction of travel.
    pub left: Vec2,
}

/// Circle parameters remembered by [`Path::arc`] so projection can jump
/// straight to the right neighborhood instead of scanning the polyline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct ArcIndex {
    /// Circle center.
    center: Vec2,
    /// Unsigned circle radius.
    radius: f64,
    /// Azimuth of the first vertex around the center.
    start_angle: f64,
    /// Signed angle swept per polyline segment (positive = CCW).
    seg_angle: f64,
}

/// A caller-owned memo of the last winning projection segment, exploiting
/// temporal coherence: a tracked vehicle moves a fraction of a segment per
/// tick, so last tick's winner tightly bounds this tick's search.
///
/// [`Path::project_with_hint`] reads the hint to seed its pruning bound
/// and rewrites it with the new winner. The hint **never** changes the
/// answer — a stale or wrong hint (even one from a different path) only
/// widens the certified search window; the returned pose is bit-identical
/// to [`Path::project`] for every input. `Default` is the empty hint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProjectionHint {
    /// Last winning segment index, if any (`u32::MAX` is never produced).
    seg: Option<u32>,
}

/// Construction-time uniform spatial grid over a dense polyline's
/// vertices, making generic (non-arc) centerline projection O(1) like the
/// arc-indexed fast path.
///
/// Each cell stores the inclusive *index hull* `[lo, hi]` of the vertices
/// it contains. A query (a) finds a nearby vertex by expanding ring
/// search for a distance upper bound, (b) collects the vertex-index hull
/// of every cell intersecting the certified disk (bound + longest chord),
/// and (c) exactly scans that contiguous segment range — ascending, with
/// the same strict-improvement rule as the classic full scan, so the
/// result is bit-identical. On self-approaching polylines the hull may
/// widen toward a full scan; it never loses the winner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SegmentGrid {
    /// Grid origin (bounding-box minimum corner).
    origin: Vec2,
    /// Cell edge length.
    cell: f64,
    /// Cells along x.
    nx: u32,
    /// Cells along y.
    ny: u32,
    /// Per-cell minimum vertex index (`u32::MAX` marks an empty cell).
    hull_lo: Vec<u32>,
    /// Per-cell maximum vertex index (unused when the cell is empty).
    hull_hi: Vec<u32>,
    /// Longest segment chord length (certification margin: any point of a
    /// segment lies within this of both its endpoints).
    max_seg: f64,
}

impl SegmentGrid {
    /// Builds the grid over `points`; `cum_s` supplies chord lengths.
    fn build(points: &[Vec2], cum_s: &[f64]) -> Self {
        let n = points.len();
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let max_seg = (1..n)
            .map(|i| cum_s[i] - cum_s[i - 1])
            .fold(0.0f64, f64::max);
        // Cell edge ~4 average chords keeps a handful of vertices per
        // occupied cell; grow it until the grid is at most ~4 cells per
        // vertex so memory stays proportional to the path.
        let avg_seg = cum_s[n - 1] / (n - 1) as f64;
        let mut cell = (avg_seg * 4.0).max(1e-6);
        let dims = |cell: f64| {
            let nx = ((max_x - min_x) / cell).floor() as u64 + 1;
            let ny = ((max_y - min_y) / cell).floor() as u64 + 1;
            (nx, ny)
        };
        let mut guard = 0;
        while {
            let (nx, ny) = dims(cell);
            nx * ny > (4 * n as u64).max(64)
        } {
            cell *= 2.0;
            guard += 1;
            assert!(guard < 64, "segment grid sizing failed to converge");
        }
        let (nx, ny) = dims(cell);
        let (nx, ny) = (nx as u32, ny as u32);
        let cells = (nx as usize) * (ny as usize);
        let origin = Vec2::new(min_x, min_y);
        let mut hull_lo = vec![u32::MAX; cells];
        let mut hull_hi = vec![0u32; cells];
        for (i, p) in points.iter().enumerate() {
            let ix = (((p.x - origin.x) / cell) as u32).min(nx - 1);
            let iy = (((p.y - origin.y) / cell) as u32).min(ny - 1);
            let idx = (iy * nx + ix) as usize;
            let i = i as u32;
            hull_lo[idx] = hull_lo[idx].min(i);
            hull_hi[idx] = hull_hi[idx].max(i);
        }
        Self {
            origin,
            cell,
            nx,
            ny,
            hull_lo,
            hull_hi,
            max_seg,
        }
    }

    /// Folds one cell's sampled vertices (its hull endpoints) into the
    /// running squared-distance bound.
    #[inline]
    fn sample_cell(&self, ix: u32, iy: u32, point: Vec2, points: &[Vec2], best_sq: &mut f64) {
        let idx = (iy * self.nx + ix) as usize;
        let lo = self.hull_lo[idx];
        if lo == u32::MAX {
            return;
        }
        let hi = self.hull_hi[idx];
        let d_lo = (point - points[lo as usize]).norm_sq();
        let d_hi = (point - points[hi as usize]).norm_sq();
        *best_sq = best_sq.min(d_lo).min(d_hi);
    }

    /// An upper bound on the distance from `point` to the nearest polyline
    /// vertex, by expanding ring search from the point's (clamped) cell.
    /// Sound for points outside the grid too: clamping is a projection
    /// onto the grid's convex hull, which never shortens distances to
    /// cells, so the `(ring − 1) · cell` termination bound still holds.
    fn vertex_bound(&self, point: Vec2, points: &[Vec2]) -> f64 {
        let cx = (((point.x - self.origin.x) / self.cell).floor().max(0.0) as u32).min(self.nx - 1);
        let cy = (((point.y - self.origin.y) / self.cell).floor().max(0.0) as u32).min(self.ny - 1);
        let mut best_sq = f64::INFINITY;
        let max_r = self.nx.max(self.ny) as i64;
        for r in 0..=max_r {
            if best_sq.is_finite() {
                let floor = (r - 1).max(0) as f64 * self.cell;
                if floor * floor > best_sq {
                    break;
                }
            }
            let (cx, cy) = (cx as i64, cy as i64);
            let (x0, x1) = (cx - r, cx + r);
            let (y0, y1) = (cy - r, cy + r);
            let clamp_x = |x: i64| x >= 0 && x < self.nx as i64;
            let clamp_y = |y: i64| y >= 0 && y < self.ny as i64;
            // Top and bottom rows of the ring, then the side columns.
            for y in [y0, y1] {
                if clamp_y(y) && (y == y0 || y0 != y1) {
                    for x in x0.max(0)..=x1.min(self.nx as i64 - 1) {
                        self.sample_cell(x as u32, y as u32, point, points, &mut best_sq);
                    }
                }
            }
            for x in [x0, x1] {
                if clamp_x(x) && (x == x0 || x0 != x1) {
                    for y in (y0 + 1).max(0)..=(y1 - 1).min(self.ny as i64 - 1) {
                        self.sample_cell(x as u32, y as u32, point, points, &mut best_sq);
                    }
                }
            }
        }
        best_sq.sqrt()
    }

    /// The inclusive vertex-index hull over every cell intersecting the
    /// axis-aligned box of half-width `bound` around `point`; `None` when
    /// every such cell is empty.
    fn hull_within(&self, point: Vec2, bound: f64) -> Option<(usize, usize)> {
        let x0 = (((point.x - bound - self.origin.x) / self.cell)
            .floor()
            .max(0.0) as u32)
            .min(self.nx - 1);
        let x1 = (((point.x + bound - self.origin.x) / self.cell)
            .floor()
            .max(0.0) as u32)
            .min(self.nx - 1);
        let y0 = (((point.y - bound - self.origin.y) / self.cell)
            .floor()
            .max(0.0) as u32)
            .min(self.ny - 1);
        let y1 = (((point.y + bound - self.origin.y) / self.cell)
            .floor()
            .max(0.0) as u32)
            .min(self.ny - 1);
        let (mut lo, mut hi) = (u32::MAX, 0u32);
        for iy in y0..=y1 {
            let row = (iy * self.nx) as usize;
            for idx in row + x0 as usize..=row + x1 as usize {
                let cell_lo = self.hull_lo[idx];
                if cell_lo != u32::MAX {
                    lo = lo.min(cell_lo);
                    hi = hi.max(self.hull_hi[idx]);
                }
            }
        }
        (lo != u32::MAX).then_some((lo as usize, hi as usize))
    }
}

/// An arc-length-parameterized polyline used as a road centerline or a lane
/// centerline.
///
/// Queries beyond either end extrapolate along the end tangents, so
/// simulations that overrun the sampled geometry degrade gracefully instead
/// of panicking.
///
/// ```
/// use av_core::geometry::Vec2;
/// use av_core::path::Path;
/// use av_core::units::{Meters, Radians};
///
/// # fn main() -> Result<(), av_core::path::PathError> {
/// let road = Path::straight(Vec2::ZERO, Radians(0.0), Meters(500.0));
/// let f = road.project(Vec2::new(120.0, 1.85));
/// assert!((f.s.value() - 120.0).abs() < 1e-9);
/// assert!((f.d.value() - 1.85).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    points: Vec<Vec2>,
    /// Cumulative arc length at each point; `cum_s[0] == 0`.
    cum_s: Vec<f64>,
    /// Per-segment unit tangents, precomputed at construction so the
    /// per-tick pose queries pay no `hypot`/`atan2`.
    seg_unit: Vec<Vec2>,
    /// Per-segment tangent headings (`atan2` evaluated once, here).
    seg_heading: Vec<Radians>,
    /// Per-segment left normals, `from_heading(heading).perp()` evaluated
    /// once so Frenet-to-world conversions pay no trig per call.
    seg_left: Vec<Vec2>,
    /// Set when the polyline samples a circular arc; accelerates
    /// projection from O(segments) to O(1) + a tiny verified window.
    arc: Option<ArcIndex>,
    /// Construction-time spatial grid over the vertices, built for dense
    /// generic polylines (arc-sampled paths use [`ArcIndex`] instead);
    /// accelerates projection to O(1) + a certified window.
    grid: Option<SegmentGrid>,
}

impl Path {
    /// Builds a path from a polyline.
    ///
    /// # Errors
    ///
    /// Returns [`PathError::TooFewPoints`] for fewer than two points and
    /// [`PathError::DegenerateSegment`] if consecutive points coincide.
    pub fn from_points(points: Vec<Vec2>) -> Result<Self, PathError> {
        if points.len() < 2 {
            return Err(PathError::TooFewPoints);
        }
        let mut cum_s = Vec::with_capacity(points.len());
        let mut seg_unit = Vec::with_capacity(points.len() - 1);
        let mut seg_heading = Vec::with_capacity(points.len() - 1);
        let mut seg_left = Vec::with_capacity(points.len() - 1);
        cum_s.push(0.0);
        for i in 1..points.len() {
            let dir = points[i] - points[i - 1];
            let seg = dir.norm();
            if seg < 1e-9 {
                return Err(PathError::DegenerateSegment { index: i - 1 });
            }
            cum_s.push(cum_s[i - 1] + seg);
            let heading = dir.heading();
            seg_unit.push(dir / seg);
            seg_heading.push(heading);
            seg_left.push(Vec2::from_heading(heading).perp());
        }
        let grid =
            (points.len() - 1 > 2 * PRUNE_BLOCK).then(|| SegmentGrid::build(&points, &cum_s));
        Ok(Self {
            points,
            cum_s,
            seg_unit,
            seg_heading,
            seg_left,
            arc: None,
            grid,
        })
    }

    /// A straight path starting at `origin` along `heading`.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not strictly positive and finite.
    pub fn straight(origin: Vec2, heading: Radians, length: Meters) -> Self {
        assert!(
            length.value() > 0.0 && length.is_finite(),
            "straight path length must be positive and finite, got {length}"
        );
        let end = origin + Vec2::from_heading(heading) * length.value();
        Self::from_points(vec![origin, end]).expect("two distinct points")
    }

    /// A circular arc starting at `origin` with initial tangent `heading`.
    ///
    /// `radius` is signed: positive curves left, negative curves right.
    /// The arc is sampled every `step` meters of arc length.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is zero/non-finite, or `arc_length`/`step` are not
    /// strictly positive and finite.
    pub fn arc(
        origin: Vec2,
        heading: Radians,
        radius: Meters,
        arc_length: Meters,
        step: Meters,
    ) -> Self {
        assert!(
            radius.value() != 0.0 && radius.is_finite(),
            "arc radius must be nonzero and finite, got {radius}"
        );
        assert!(
            arc_length.value() > 0.0 && arc_length.is_finite(),
            "arc length must be positive and finite, got {arc_length}"
        );
        assert!(
            step.value() > 0.0 && step.is_finite(),
            "arc sampling step must be positive and finite, got {step}"
        );
        let r = radius.value();
        // Center is perpendicular-left of the tangent for r > 0.
        let center = origin + Vec2::from_heading(heading).perp() * r;
        let start_angle = (origin - center).heading();
        let n = (arc_length.value() / step.value()).ceil().max(1.0) as usize;
        let mut points = Vec::with_capacity(n + 1);
        for i in 0..=n {
            let s = arc_length.value() * (i as f64) / (n as f64);
            let dtheta = s / r; // signed; negative r sweeps clockwise
            let angle = Radians(start_angle.value() + dtheta);
            points.push(center + Vec2::from_heading(angle) * r.abs());
        }
        let mut path = Self::from_points(points).expect("arc samples are distinct");
        path.arc = Some(ArcIndex {
            center,
            radius: r.abs(),
            start_angle: start_angle.value(),
            seg_angle: arc_length.value() / (n as f64) / r,
        });
        path
    }

    /// Total arc length of the path.
    #[inline]
    pub fn length(&self) -> Meters {
        Meters(*self.cum_s.last().expect("paths have at least two points"))
    }

    /// The polyline vertices.
    #[inline]
    pub fn points(&self) -> &[Vec2] {
        &self.points
    }

    /// `true` when the path is a single straight segment (every catalog
    /// road except the curved cut-in's arc). Conservative certificates in
    /// the lane-batched simulator only reason in Frenet coordinates on
    /// straight paths, where arc length and lateral offset are globally
    /// Euclidean; on anything else they decline.
    #[inline]
    pub fn is_straight(&self) -> bool {
        self.seg_heading.len() == 1
    }

    /// An upper bound on the path's curvature (1/m): the largest
    /// per-vertex heading change divided by the *shorter* adjacent
    /// segment. For a uniformly sampled arc this is exactly `1/radius`;
    /// on nonuniform polylines the short-segment denominator
    /// overestimates (never underestimates) localized curvature, which
    /// is the conservative direction — the lane-batch certificates
    /// decline whenever this bound exceeds their gentle-arc limit, so
    /// the bound must be allowed to cry wolf but never to understate.
    /// Zero for a straight path. O(segments); callers that care compute
    /// it once per run, not per query.
    pub fn max_abs_curvature(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 1..self.seg_heading.len() {
            let dh = (self.seg_heading[i] - self.seg_heading[i - 1])
                .normalized()
                .value()
                .abs();
            let ds = (self.cum_s[i] - self.cum_s[i - 1]).min(self.cum_s[i + 1] - self.cum_s[i]);
            if ds > 1e-9 {
                max = max.max(dh / ds);
            }
        }
        max
    }

    /// The segment index whose arc-length interval contains `s` (clamped
    /// to real segments; callers handle extrapolation beyond the ends).
    fn segment_at(&self, s: f64) -> usize {
        let n = self.points.len();
        match self
            .cum_s
            .binary_search_by(|probe| probe.partial_cmp(&s).expect("finite arc lengths"))
        {
            Ok(i) => i.min(n - 2),
            Err(i) => i - 1,
        }
    }

    /// [`Path::segment_at`] by short neighbor walk from a previous
    /// segment index (temporal coherence), falling back to the binary
    /// search when the start is missing or far. For interior `s` the
    /// segment index is the unique `i` with `cum_s[i] <= s < cum_s[i+1]`
    /// — exactly what the binary search computes — so the walk returns
    /// the identical index for every start.
    fn segment_at_walked(&self, s: f64, start: Option<u32>) -> usize {
        let Some(start) = start else {
            return self.segment_at(s);
        };
        let mut i = (start as usize).min(self.points.len() - 2);
        for _ in 0..8 {
            if s < self.cum_s[i] {
                i -= 1;
            } else if s >= self.cum_s[i + 1] {
                i += 1;
            } else {
                return i;
            }
        }
        self.segment_at(s)
    }

    /// World pose at arc length `s`, extrapolating along the end tangents
    /// outside `[0, length]`.
    pub fn pose_at(&self, s: Meters) -> PathPose {
        let frame = self.frame_at(s);
        PathPose {
            position: frame.position,
            heading: frame.heading,
        }
    }

    /// World pose *and* left normal at arc length `s` — the full road
    /// frame, with every trig term precomputed at construction. The hot
    /// form of [`Path::pose_at`] for per-tick Frenet-to-world conversion.
    pub fn frame_at(&self, s: Meters) -> PathFrame {
        self.frame_at_impl(s, None)
    }

    /// [`Path::frame_at`] seeded by (and refreshing) a caller-owned
    /// [`ProjectionHint`]: a vehicle's arc-length position moves a
    /// fraction of a segment per tick, so a short walk from last tick's
    /// segment replaces the binary search on dense polylines. The
    /// returned frame is bit-identical to [`Path::frame_at`] for every
    /// hint state.
    pub fn frame_at_hinted(&self, s: Meters, hint: &mut ProjectionHint) -> PathFrame {
        self.frame_at_impl(s, Some(hint))
    }

    fn frame_at_impl(&self, s: Meters, hint: Option<&mut ProjectionHint>) -> PathFrame {
        let s = s.value();
        let n = self.points.len();
        if s <= 0.0 {
            return PathFrame {
                position: self.points[0] + self.seg_unit[0] * s,
                heading: self.seg_heading[0],
                left: self.seg_left[0],
            };
        }
        if s >= *self.cum_s.last().expect("nonempty") {
            let overshoot = s - self.cum_s[n - 1];
            return PathFrame {
                position: self.points[n - 1] + self.seg_unit[n - 2] * overshoot,
                heading: self.seg_heading[n - 2],
                left: self.seg_left[n - 2],
            };
        }
        let i = match hint {
            Some(hint) => {
                let i = self.segment_at_walked(s, hint.seg);
                hint.seg = Some(i as u32);
                i
            }
            None => self.segment_at(s),
        };
        let seg_len = self.cum_s[i + 1] - self.cum_s[i];
        let t = (s - self.cum_s[i]) / seg_len;
        PathFrame {
            position: self.points[i].lerp(self.points[i + 1], t),
            heading: self.seg_heading[i],
            left: self.seg_left[i],
        }
    }

    /// Scans segments `[i0, i1)` for a closer projection than
    /// `best`, exactly as the classic full scan visits them (ascending,
    /// strict improvement), so any pruned search that visits a superset of
    /// the winning segment returns bit-identical results.
    fn project_segments(
        &self,
        point: Vec2,
        i0: usize,
        i1: usize,
        best_d2: &mut f64,
        best: &mut FrenetPose,
    ) {
        let last = self.points.len() - 2;
        for i in i0..i1 {
            let a = self.points[i];
            let b = self.points[i + 1];
            let ab = b - a;
            let seg_len = self.cum_s[i + 1] - self.cum_s[i];
            let mut t = (point - a).dot(ab) / ab.norm_sq();
            // Allow extrapolation only on the terminal segments.
            let lo = if i == 0 { f64::NEG_INFINITY } else { 0.0 };
            let hi = if i == last { f64::INFINITY } else { 1.0 };
            t = t.clamp(lo, hi);
            let proj = a + ab * t;
            let offset = point - proj;
            let d2 = offset.norm_sq();
            if d2 < *best_d2 {
                *best_d2 = d2;
                let s = self.cum_s[i] + t * seg_len;
                // Sign: positive left of travel direction.
                let sign = if ab.cross(offset) >= 0.0 { 1.0 } else { -1.0 };
                *best = FrenetPose::new(Meters(s), Meters(sign * d2.sqrt()));
            }
        }
    }

    /// Projects a world point onto the path, returning its Frenet pose.
    ///
    /// Points beyond the ends project onto the extrapolated end tangents
    /// (yielding `s < 0` or `s > length`).
    ///
    /// Dense polylines take one of two fast paths, both returning results
    /// bit-identical to the classic exhaustive segment scan (pinned by the
    /// oracle test in this module): arc-sampled paths jump via the
    /// [`Path::arc`] circle index, generic dense polylines via the
    /// construction-time vertex grid ([`Path::project_with_hint`] explains
    /// the certification). Anything else falls back to a block-pruned
    /// scan.
    ///
    /// ```
    /// use av_core::geometry::Vec2;
    /// use av_core::path::Path;
    /// use av_core::units::{Meters, Radians};
    ///
    /// // A dense sine-wave centerline: projection is grid-accelerated.
    /// let path = Path::from_points(
    ///     (0..300)
    ///         .map(|i| Vec2::new(i as f64, (i as f64 * 0.1).sin() * 10.0))
    ///         .collect(),
    /// )
    /// .expect("valid polyline");
    /// let pose = path.project(Vec2::new(150.2, 3.0));
    /// // s advances along the wave; d is the signed lateral offset.
    /// assert!(pose.s.value() > 140.0);
    /// assert!(pose.d.value().abs() < 15.0);
    /// ```
    pub fn project(&self, point: Vec2) -> FrenetPose {
        self.project_impl(point, None)
    }

    /// [`Path::project`] seeded by (and refreshing) a caller-owned
    /// [`ProjectionHint`] — the temporal-coherence fast path for callers
    /// that re-project slowly moving points every tick, like the planner
    /// projecting each tracked vehicle into road coordinates.
    ///
    /// The hinted segment's distance upper-bounds the optimum, certifying
    /// a (usually tiny) candidate window around it; the window is scanned
    /// exactly, in ascending order with the full scan's strict-improvement
    /// rule. The answer is therefore **bit-identical to [`Path::project`]
    /// for every hint state** — a stale hint only costs speed.
    pub fn project_with_hint(&self, point: Vec2, hint: &mut ProjectionHint) -> FrenetPose {
        self.project_impl(point, Some(hint))
    }

    fn project_impl(&self, point: Vec2, hint: Option<&mut ProjectionHint>) -> FrenetPose {
        let nseg = self.points.len() - 1;
        let pose = 'found: {
            if nseg <= 2 * PRUNE_BLOCK {
                let mut best_d2 = f64::INFINITY;
                let mut best = FrenetPose::default();
                self.project_segments(point, 0, nseg, &mut best_d2, &mut best);
                break 'found best;
            }
            // A valid hint replaces the grid's ring search (and, on arc
            // paths, the whole azimuth-indexed machinery): the distance to
            // the hinted segment is already an upper bound on the optimum.
            let hinted = hint
                .as_ref()
                .and_then(|h| h.seg)
                .map(|h| (h as usize).min(nseg - 1));
            let seed = hinted.map(|h| {
                let mut d2 = f64::INFINITY;
                let mut scratch = FrenetPose::default();
                self.project_segments(point, h, h + 1, &mut d2, &mut scratch);
                d2.sqrt()
            });
            if let (Some(arc), Some(h), Some(upper)) = (self.arc, hinted, seed) {
                if let Some(pose) = self.project_arc_seeded(point, &arc, h, upper) {
                    break 'found pose;
                }
            }
            if let Some(grid) = &self.grid {
                if seed.is_some() {
                    break 'found self.project_grid(point, grid, seed);
                }
            }
            if let Some(arc) = self.arc {
                if let Some(pose) = self.project_arc(point, &arc) {
                    break 'found pose;
                }
            }
            if let Some(grid) = &self.grid {
                break 'found self.project_grid(point, grid, seed);
            }
            self.project_pruned(point)
        };
        if let Some(hint) = hint {
            // Remember the winning segment (derived from the winning arc
            // length; queries beyond the ends clamp to the terminals).
            let s = pose.s.value();
            let seg = if s <= 0.0 {
                0
            } else if s >= *self.cum_s.last().expect("nonempty") {
                nseg - 1
            } else {
                self.segment_at_walked(s, hint.seg)
            };
            hint.seg = Some(seg as u32);
        }
        pose
    }

    /// Grid-accelerated exact projection: certify a candidate vertex hull
    /// from a distance upper bound (`seed` if the caller has one, else a
    /// ring search), then scan `{first} ∪ hull ∪ {last}` ascending with
    /// strict improvement — the full scan's visit discipline over a
    /// certified superset of every segment that could win.
    fn project_grid(&self, point: Vec2, grid: &SegmentGrid, seed: Option<f64>) -> FrenetPose {
        let nseg = self.points.len() - 1;
        let upper = seed.unwrap_or_else(|| grid.vertex_bound(point, &self.points));
        // Any segment that could win has a point within `upper` of the
        // query, hence a vertex within `upper + max_seg`; the margin
        // absorbs the rounding of the distance arithmetic.
        let bound = upper + grid.max_seg + 1e-6;
        let mut best_d2 = f64::INFINITY;
        let mut best = FrenetPose::default();
        match grid.hull_within(point, bound) {
            Some((mut lo_v, mut hi_v)) => {
                // The cell hull is coarse (whole cells); shrink it to the
                // vertices actually inside the certified disk before the
                // exact scan — still a superset of every vertex within
                // `bound`, so the certification argument is unchanged.
                let b2 = bound * bound;
                while lo_v < hi_v && (point - self.points[lo_v]).norm_sq() > b2 {
                    lo_v += 1;
                }
                while hi_v > lo_v && (point - self.points[hi_v]).norm_sq() > b2 {
                    hi_v -= 1;
                }
                let (lo, hi) = (lo_v.saturating_sub(1), hi_v.min(nseg - 1) + 1);
                if lo > 0 {
                    self.project_segments(point, 0, 1, &mut best_d2, &mut best);
                }
                self.project_segments(point, lo, hi, &mut best_d2, &mut best);
                if hi < nseg {
                    self.project_segments(point, nseg - 1, nseg, &mut best_d2, &mut best);
                }
            }
            // No vertex near the query (possible only with a seeded bound,
            // from an extrapolating terminal hint): only the terminal
            // segments, which extrapolate, can win. Scan both.
            None => {
                self.project_segments(point, 0, 1, &mut best_d2, &mut best);
                self.project_segments(point, nseg - 1, nseg, &mut best_d2, &mut best);
            }
        }
        best
    }

    /// The block-pruned fallback scan for paths with neither an arc index
    /// nor a vertex grid.
    fn project_pruned(&self, point: Vec2) -> FrenetPose {
        let mut best_d2 = f64::INFINITY;
        let mut best = FrenetPose::default();
        const BLOCK: usize = PRUNE_BLOCK;
        // Coarse pass over blocks of BLOCK segments: squared distances to
        // the block-boundary vertices only, no square roots, no
        // allocation. `best_d` mirrors sqrt(best_d2), refreshed only on
        // improvement.
        let n = self.points.len();
        let mut best_d = f64::INFINITY;
        let mut i0 = 0usize;
        let mut d2_start = (point - self.points[0]).norm_sq();
        while i0 < n - 1 {
            let i1 = (i0 + BLOCK).min(n - 1);
            let d2_end = (point - self.points[i1]).norm_sq();
            let span = self.cum_s[i1] - self.cum_s[i0];
            // Any point q on this block lies within `span` (arc length
            // bounds chord) of both boundary vertices, so |point - q| >=
            // max(d_boundary) - span. Prune only when that lower bound
            // clears the running best by a safety margin absorbing the
            // squared-arithmetic rounding. Terminal blocks extrapolate and
            // are always scanned.
            let terminal = i0 == 0 || i1 == n - 1;
            let threshold = best_d + span + 1e-9;
            if terminal || d2_start.max(d2_end) <= threshold * threshold {
                let before = best_d2;
                self.project_segments(point, i0, i1, &mut best_d2, &mut best);
                if best_d2 < before {
                    best_d = best_d2.sqrt();
                }
            }
            i0 = i1;
            d2_start = d2_end;
        }
        best
    }

    /// Hint-seeded arc projection: expand a certified vertex window
    /// *outward from the hinted segment* instead of going through the
    /// vertex grid or the azimuth index — no `atan2`, no cell walk, just
    /// a handful of squared distances.
    ///
    /// Certification: every point of a segment lies within half the
    /// segment's chord of one of its endpoints, so the winning segment
    /// has a vertex within `b = upper + max_seg/2 (+ margin)` of the
    /// query — and so does the hinted segment itself, which starts the
    /// walk. The vertex distances `sqrt(R² + r² − 2·R·r·cos Δθ)` are a
    /// function of the azimuth gap alone, so `{vertex: dist ≤ b}` is the
    /// arc's intersection with one circular azimuth interval of
    /// half-width `w = acos((R² + r² − b²)/(2·R·r))`; that intersection
    /// can split into two index runs only when the interval's complement
    /// fits strictly inside the sweep, i.e. `τ − 2w < sweep`. Requiring
    /// `w ≤ (τ − sweep)/2` (checked in cosines — no `acos` — with a
    /// millirad margin for the vertices' rounding off the ideal circle)
    /// therefore makes the run contiguous, and the two outward walks
    /// recover the complete certified hull. The hull (plus the
    /// always-scanned extrapolating terminals) is then scanned ascending
    /// with the strict-improvement rule — the classic scan's discipline
    /// over a certified superset of every segment that could win, hence
    /// bit-identical results.
    ///
    /// Returns `None` (caller falls back to the grid/azimuth machinery)
    /// when the sweep reaches a full turn, the bound is too wide for the
    /// contiguity argument, or the walk cannot even seat its start vertex
    /// (float paranoia; mathematically impossible).
    fn project_arc_seeded(
        &self,
        point: Vec2,
        arc: &ArcIndex,
        h: usize,
        upper: f64,
    ) -> Option<FrenetPose> {
        use std::f64::consts::TAU;
        let nseg = self.points.len() - 1;
        let sweep = nseg as f64 * arc.seg_angle.abs();
        let w_max = 0.5 * (TAU - sweep) - 1e-3;
        if w_max <= 0.0 {
            return None;
        }
        // `self.grid` always exists here: the seeded path only runs for
        // polylines dense enough to have built one.
        let max_seg = self.grid.as_ref()?.max_seg;
        let b = upper + 0.5 * max_seg + 1e-6;
        let r2 = (point - arc.center).norm_sq();
        // `w ≤ w_max` ⟺ `cos w ≥ cos w_max` (both in [0, π]); `cos w`
        // from the law of cosines without ever taking the `acos`, and
        // `cos w_max` replaced by its truncated Taylor series — an upper
        // bound on `[0, π]` (alternating series, decreasing terms), so
        // the guard only gets *stricter*: a rejection here falls back to
        // the exact grid scan, never past it. When `w_max ≥ π` any
        // interval is contiguous — skip the test (its cosine comparison
        // would be meaningless there).
        if w_max < std::f64::consts::PI {
            let two_rr = 2.0 * arc.radius * r2.sqrt();
            let w2 = w_max * w_max;
            let cos_upper = 1.0 - w2 / 2.0 + w2 * w2 / 24.0;
            if arc.radius * arc.radius + r2 - b * b < two_rr * cos_upper {
                return None;
            }
        }
        let b2 = b * b;
        let d2v = |v: usize| (point - self.points[v]).norm_sq();
        let (mut lo_v, mut hi_v) = if d2v(h) <= b2 {
            (h, h)
        } else if d2v(h + 1) <= b2 {
            (h + 1, h + 1)
        } else {
            return None;
        };
        while lo_v > 0 && d2v(lo_v - 1) <= b2 {
            lo_v -= 1;
        }
        while hi_v < nseg && d2v(hi_v + 1) <= b2 {
            hi_v += 1;
        }
        // Vertex run -> segment hull (segment i owns vertices i and i+1),
        // then the classic visit order: terminal start, hull, terminal
        // end, ascending with strict improvement.
        let (lo, hi) = (lo_v.saturating_sub(1), hi_v.min(nseg - 1) + 1);
        let mut best_d2 = f64::INFINITY;
        let mut best = FrenetPose::default();
        if lo > 0 {
            self.project_segments(point, 0, 1, &mut best_d2, &mut best);
        }
        // Hull scan with a per-segment lower bound: the exact distance to
        // a segment's infinite line (one cross product against the
        // precomputed unit tangent) never exceeds the distance to the
        // segment, so a segment whose line cannot strictly improve on the
        // running best would not have updated it — skipping is free of
        // bitwise effect.
        for i in lo..hi {
            let line_d = self.seg_unit[i].cross(point - self.points[i]);
            if line_d * line_d > best_d2 {
                continue;
            }
            self.project_segments(point, i, i + 1, &mut best_d2, &mut best);
        }
        if hi < nseg {
            self.project_segments(point, nseg - 1, nseg, &mut best_d2, &mut best);
        }
        Some(best)
    }

    /// Arc-indexed projection: use the query's azimuth around the circle
    /// center for an O(1) segment guess, then scan a window whose
    /// completeness is certified by the law of cosines — a vertex at
    /// angular offset Δθ from the query azimuth sits at distance
    /// `sqrt(R² + r² − 2·R·r·cos Δθ)`, monotone in |Δθ|, so every segment
    /// both of whose vertices lie beyond the certified angular window is
    /// provably farther than the best already found. Terminal segments are
    /// always scanned (they extrapolate). Returns `None` when the query is
    /// too close to the circle center for a stable azimuth (the generic
    /// scan handles it).
    fn project_arc(&self, point: Vec2, arc: &ArcIndex) -> Option<FrenetPose> {
        use std::f64::consts::TAU;
        let nseg = self.points.len() - 1;
        let rel = point - arc.center;
        let r = rel.norm_sq().sqrt();
        if r < 1e-6 {
            return None;
        }
        // Query azimuth relative to the first vertex, in segment units.
        // Sweeps beyond a full turn are covered by the k-images below.
        let base = rel.y.atan2(rel.x) - arc.start_angle;
        let turns = (nseg as f64 * arc.seg_angle.abs()) / TAU;
        let k_max = turns.ceil() as i64 + 1;
        let image = |k: i64| (base + k as f64 * TAU) / arc.seg_angle;
        // The image closest to the valid index range seeds the guess.
        let mut guess = image(0);
        let mut guess_overshoot = f64::INFINITY;
        for k in -k_max..=k_max {
            let i = image(k);
            let overshoot = (-i).max(i - nseg as f64).max(0.0);
            if overshoot < guess_overshoot {
                guess_overshoot = overshoot;
                guess = i;
            }
        }
        let gi = guess.clamp(0.0, (nseg - 1) as f64) as usize;

        // Preliminary pass: a small window around the guess plus the
        // terminal segments, to establish an upper bound on the distance.
        // Terminal segments extrapolate along their lines, so the exact
        // point-to-line distance (one cross product) lower-bounds them;
        // when it cannot beat the window's best they are skipped — but
        // never skipped for ties, keeping the scan's first-wins order.
        let (w_lo, w_hi) = (gi.saturating_sub(4), (gi + 5).min(nseg));
        let line_dist = |i: usize| (self.seg_unit[i].cross(point - self.points[i])).abs();
        let mut pre_d2 = f64::INFINITY;
        let mut pre = FrenetPose::default();
        if w_lo > 0 {
            let d0 = line_dist(0);
            if d0 * d0 <= (point - self.points[w_lo]).norm_sq() {
                self.project_segments(point, 0, 1, &mut pre_d2, &mut pre);
            }
        }
        self.project_segments(point, w_lo, w_hi, &mut pre_d2, &mut pre);
        if w_hi < nseg {
            let dn = line_dist(nseg - 1);
            if dn * dn <= pre_d2 {
                self.project_segments(point, nseg - 1, nseg, &mut pre_d2, &mut pre);
            }
        }

        // Certify the window: any segment that could still win has a
        // vertex within `bound` of the query (chord distance >= nearest
        // vertex distance - segment length), i.e. within `theta_max` of
        // its azimuth. The 1e-6 margin absorbs vertex rounding off the
        // ideal circle.
        let max_seg = self.cum_s[nseg] / nseg as f64;
        let bound = pre_d2.sqrt() + max_seg + 1e-6;
        let cos_max = (arc.radius * arc.radius + r * r - bound * bound) / (2.0 * arc.radius * r);
        let (mut lo, mut hi) = (w_lo, w_hi);
        if cos_max < -1.0 {
            // Everything qualifies; give up on pruning.
            (lo, hi) = (0, nseg);
        } else if cos_max <= 1.0 {
            let half_width = cos_max.acos() / arc.seg_angle.abs();
            for k in -k_max..=k_max {
                let center = image(k);
                let (v_lo, v_hi) = (center - half_width, center + half_width);
                if v_hi < 0.0 || v_lo > nseg as f64 {
                    continue;
                }
                // Vertex window -> segment window (segment i owns
                // vertices i and i+1), clamped and floored outward.
                let s_lo = (v_lo.floor() - 1.0).max(0.0) as usize;
                let s_hi = (v_hi.ceil() as usize + 1).min(nseg);
                lo = lo.min(s_lo);
                hi = hi.max(s_hi);
            }
        }
        // The preliminary pass already visited {0} ∪ window ∪ {last} in
        // ascending order with the scan's strict-improvement rule; when
        // the certified hull adds nothing, its result is final.
        if lo >= w_lo && hi <= w_hi {
            return Some(pre);
        }
        // Final pass in globally ascending order: terminal start, the
        // certified hull, terminal end — same visit order and strict
        // improvement rule as the classic scan.
        let mut best_d2 = f64::INFINITY;
        let mut best = FrenetPose::default();
        if lo > 0 {
            self.project_segments(point, 0, 1, &mut best_d2, &mut best);
        }
        self.project_segments(point, lo, hi, &mut best_d2, &mut best);
        if hi < nseg {
            self.project_segments(point, nseg - 1, nseg, &mut best_d2, &mut best);
        }
        Some(best)
    }

    /// Converts a Frenet pose back into a world point.
    pub fn frenet_to_world(&self, pose: FrenetPose) -> Vec2 {
        let frame = self.frame_at(pose.s);
        frame.position + frame.left * pose.d.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn straight_path_round_trip() {
        let p = Path::straight(Vec2::ZERO, Radians(0.0), Meters(100.0));
        assert_eq!(p.length(), Meters(100.0));
        let f = FrenetPose::new(Meters(40.0), Meters(-2.0));
        let w = p.frenet_to_world(f);
        assert!((w.x - 40.0).abs() < 1e-9 && (w.y + 2.0).abs() < 1e-9);
        let back = p.project(w);
        assert!((back.s.value() - 40.0).abs() < 1e-9);
        assert!((back.d.value() + 2.0).abs() < 1e-9);
    }

    #[test]
    fn rotated_straight_path_projects_correctly() {
        let p = Path::straight(Vec2::new(5.0, 5.0), Radians(FRAC_PI_2), Meters(50.0));
        // 10m along +Y from origin, 1m to the left (-X side).
        let f = p.project(Vec2::new(4.0, 15.0));
        assert!((f.s.value() - 10.0).abs() < 1e-9);
        assert!((f.d.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn extrapolates_beyond_both_ends() {
        let p = Path::straight(Vec2::ZERO, Radians(0.0), Meters(10.0));
        let before = p.project(Vec2::new(-5.0, 1.0));
        assert!((before.s.value() + 5.0).abs() < 1e-9);
        assert!((before.d.value() - 1.0).abs() < 1e-9);
        let after = p.pose_at(Meters(15.0));
        assert!((after.position.x - 15.0).abs() < 1e-9);
    }

    #[test]
    fn left_arc_curves_left() {
        // Quarter circle, radius 100, starting along +X: ends near (100, 100).
        let p = Path::arc(
            Vec2::ZERO,
            Radians(0.0),
            Meters(100.0),
            Meters(100.0 * FRAC_PI_2),
            Meters(1.0),
        );
        let end = p.pose_at(p.length()).position;
        assert!((end.x - 100.0).abs() < 0.1, "end.x = {}", end.x);
        assert!((end.y - 100.0).abs() < 0.1, "end.y = {}", end.y);
        let end_heading = p.pose_at(p.length() - Meters(0.5)).heading;
        assert!((end_heading.value() - FRAC_PI_2).abs() < 0.05);
    }

    #[test]
    fn right_arc_curves_right() {
        let p = Path::arc(
            Vec2::ZERO,
            Radians(0.0),
            Meters(-100.0),
            Meters(100.0 * FRAC_PI_2),
            Meters(1.0),
        );
        let end = p.pose_at(p.length()).position;
        assert!((end.x - 100.0).abs() < 0.1);
        assert!((end.y + 100.0).abs() < 0.1);
    }

    #[test]
    fn arc_frenet_round_trip() {
        let p = Path::arc(
            Vec2::ZERO,
            Radians(0.3),
            Meters(200.0),
            Meters(150.0),
            Meters(0.5),
        );
        for &(s, d) in &[(10.0, 0.0), (75.0, 3.7), (140.0, -3.7)] {
            let w = p.frenet_to_world(FrenetPose::new(Meters(s), Meters(d)));
            let f = p.project(w);
            assert!((f.s.value() - s).abs() < 0.05, "s: {} vs {s}", f.s);
            assert!((f.d.value() - d).abs() < 0.05, "d: {} vs {d}", f.d);
        }
    }

    #[test]
    fn arc_length_is_accurate() {
        let p = Path::arc(
            Vec2::ZERO,
            Radians(0.0),
            Meters(100.0),
            Meters(100.0 * PI),
            Meters(0.5),
        );
        // Polyline slightly under-measures the true arc; within 0.1%.
        let err = (p.length().value() - 100.0 * PI).abs() / (100.0 * PI);
        assert!(err < 1e-3, "relative error {err}");
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            Path::from_points(vec![Vec2::ZERO]),
            Err(PathError::TooFewPoints)
        );
        assert_eq!(
            Path::from_points(vec![Vec2::ZERO, Vec2::ZERO, Vec2::new(1.0, 0.0)]),
            Err(PathError::DegenerateSegment { index: 0 })
        );
        let msg = PathError::DegenerateSegment { index: 3 }.to_string();
        assert!(msg.contains('3'));
    }

    /// The classic exhaustive scan, as an oracle for the pruned search.
    fn full_scan(path: &Path, point: Vec2) -> FrenetPose {
        let mut best_d2 = f64::INFINITY;
        let mut best = FrenetPose::default();
        path.project_segments(point, 0, path.points().len() - 1, &mut best_d2, &mut best);
        best
    }

    #[test]
    fn pruned_projection_matches_full_scan_oracle() {
        // The arc-indexed fast path and the block-pruned fallback both
        // claim bit-identical results to the exhaustive scan; pin it over
        // a sweep of query points around several dense paths, including
        // on-path, off-path, near-center, beyond-end and far-away points.
        let paths = [
            // The catalog's curved road geometry (left arc).
            Path::arc(
                Vec2::ZERO,
                Radians(0.0),
                Meters(400.0),
                Meters(1500.0),
                Meters(2.0),
            ),
            // A right arc sweeping more than a half turn.
            Path::arc(
                Vec2::new(5.0, -3.0),
                Radians(1.2),
                Meters(-80.0),
                Meters(400.0),
                Meters(1.0),
            ),
            // A dense non-arc polyline (sine wave) exercising the generic
            // block-pruned scan.
            Path::from_points(
                (0..400)
                    .map(|i| Vec2::new(i as f64, (i as f64 * 0.12).sin() * 25.0))
                    .collect(),
            )
            .expect("valid polyline"),
        ];
        // Deterministic pseudo-random offsets (LCG), no external RNG.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0 // in [-1, 1)
        };
        for path in &paths {
            let length = path.length().value();
            for i in 0..400 {
                let s = length * (i as f64 / 399.0) * 1.2 - 0.1 * length; // beyond both ends
                let base = path.pose_at(Meters(s)).position;
                let point = base + Vec2::new(next() * 60.0, next() * 60.0);
                let fast = path.project(point);
                let oracle = full_scan(path, point);
                assert_eq!(fast, oracle, "path len {length:.0}, query {point}");
            }
            // Degenerate-direction spot checks: the arc's circle center
            // and points straight out from each end.
            for point in [Vec2::ZERO, Vec2::new(-500.0, 0.0), Vec2::new(0.0, 900.0)] {
                assert_eq!(path.project(point), full_scan(path, point));
            }
        }
    }

    #[test]
    fn hinted_projection_is_bit_identical_for_any_hint() {
        // Dense arc, dense sine wave (grid path), and a short path: the
        // hinted projection must equal the plain one under a coherent
        // hint, a stale hint, an adversarial hint, and an empty hint.
        let paths = [
            Path::arc(
                Vec2::ZERO,
                Radians(0.0),
                Meters(400.0),
                Meters(1500.0),
                Meters(2.0),
            ),
            Path::from_points(
                (0..400)
                    .map(|i| Vec2::new(i as f64, (i as f64 * 0.12).sin() * 25.0))
                    .collect(),
            )
            .expect("valid polyline"),
            Path::straight(Vec2::ZERO, Radians(0.3), Meters(100.0)),
        ];
        for path in &paths {
            let length = path.length().value();
            // Temporal coherence: a point crawling along the path with a
            // persistent hint.
            let mut hint = ProjectionHint::default();
            for i in 0..600 {
                let s = length * (i as f64 / 599.0) * 1.3 - 0.15 * length;
                let lateral = ((i % 13) as f64 - 6.0) * 1.5;
                let base = path.pose_at(Meters(s));
                let left = Vec2::from_heading(base.heading).perp();
                let point = base.position + left * lateral;
                assert_eq!(
                    path.project_with_hint(point, &mut hint),
                    path.project(point),
                    "coherent hint diverged at i={i}"
                );
            }
            // Adversarial hints: every segment index (including an
            // out-of-range one) against a fixed set of queries.
            let nseg = path.points().len() - 1;
            let queries = [
                Vec2::new(-50.0, 7.0),
                path.pose_at(Meters(length * 0.7)).position + Vec2::new(3.0, -40.0),
                path.pose_at(Meters(length * 2.0)).position,
                Vec2::ZERO,
            ];
            for &point in &queries {
                let expected = path.project(point);
                for seg in (0..nseg.min(64)).chain([nseg.saturating_sub(1), nseg, nseg + 1000]) {
                    let mut hint = ProjectionHint {
                        seg: Some(seg as u32),
                    };
                    assert_eq!(
                        path.project_with_hint(point, &mut hint),
                        expected,
                        "hint seg {seg} diverged on {point}"
                    );
                    // The refreshed hint is a real segment.
                    assert!(hint.seg.is_some_and(|s| (s as usize) < nseg));
                }
            }
        }
    }

    #[test]
    fn grid_is_built_only_for_dense_polylines() {
        let short = Path::straight(Vec2::ZERO, Radians(0.0), Meters(10.0));
        assert!(short.grid.is_none(), "2-point path needs no grid");
        let arc = Path::arc(
            Vec2::ZERO,
            Radians(0.0),
            Meters(100.0),
            Meters(300.0),
            Meters(1.0),
        );
        // Arc paths carry both: the arc index answers cold queries, the
        // grid answers hint-seeded ones.
        assert!(arc.arc.is_some() && arc.grid.is_some());
        let dense = Path::from_points((0..100).map(|i| Vec2::new(i as f64, 0.0)).collect())
            .expect("valid polyline");
        assert!(dense.grid.is_some(), "dense generic polyline gets a grid");
    }

    #[test]
    fn projection_picks_nearest_segment() {
        // An L-shaped path; a point near the corner must pick the closer leg.
        let p = Path::from_points(vec![
            Vec2::ZERO,
            Vec2::new(10.0, 0.0),
            Vec2::new(10.0, 10.0),
        ])
        .expect("valid polyline");
        let f = p.project(Vec2::new(9.0, 5.0));
        assert!((f.s.value() - 15.0).abs() < 1e-9);
        assert!((f.d.value() - 1.0).abs() < 1e-9);
    }
}
