//! The nine Table-1 driving scenarios of the Zhuyi paper (DAC 2022).
//!
//! Each [`catalog::ScenarioId`] instantiates to a [`catalog::Scenario`]:
//! road geometry, ego placement and cruise speed, and choreographed actors
//! (cut-outs revealing hidden obstacles, close cut-ins, sudden braking,
//! side activity). Scenarios run closed-loop through `av-sim` at any
//! camera rate plan; [`catalog::minimum_required_fpr`] reproduces Table 1's
//! MRF probe.
//!
//! # Example
//!
//! ```no_run
//! use av_core::prelude::*;
//! use av_scenarios::prelude::*;
//!
//! let scenario = Scenario::build(ScenarioId::VehicleFollowing, 0);
//! let trace = scenario.run_at(Fpr(30.0));
//! assert!(!trace.collided());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod jitter;
pub mod sweep;

/// Glob import of the crate's main types.
pub mod prelude {
    pub use crate::catalog::{minimum_required_fpr, Mrf, Scenario, ScenarioId, PAPER_RATE_GRID};
    pub use crate::jitter::Jitter;
    pub use crate::sweep::SweepContext;
}
