//! Sweep-level scene sharing: run one scenario instance many times
//! without rebuilding it.
//!
//! A minimum-safe-FPR search re-simulates the *same* scenario instance
//! once per candidate rate. Building a fresh [`av_sim::engine::Simulation`]
//! per candidate pays for a road clone (a dense polyline with its
//! projection indexes), per-actor script clones, and cold scratch buffers
//! — every time, for geometry that never changes within the search.
//!
//! [`SweepContext`] builds the simulation once and rewinds it between
//! candidates via [`av_sim::engine::Simulation::reset`], which keeps the
//! road, scripts and every scratch allocation (scene columns, perceived
//! buffer, projection hints) and replaces only what a new rate actually
//! changes: the ego spawn and the perception system. A reset run is
//! observably identical to a fresh build — pinned by the sweep-sharing
//! determinism tests in `zhuyi-fleet`.

use crate::catalog::Scenario;
use av_core::units::Fpr;
use av_perception::system::{PerceptionError, PerceptionSystem, RatePlan};
use av_sim::batch::{BatchStats, LaneSpec};
use av_sim::engine::{Simulation, StepOutcome};
use av_sim::observer::{MetricsObserver, NullObserver, RunSummary, SimObserver};
use av_sim::policy::{EgoVehicle, PolicyConfig};

/// A reusable execution context for one scenario instance: the simulation
/// is built once and reset (never rebuilt) between runs.
///
/// Results are bit-identical to the build-per-run [`Scenario`] entry
/// points ([`Scenario::collides_at`], [`Scenario::outcome_at`]); the
/// context is purely a cost optimization for rate sweeps.
///
/// ```no_run
/// use av_core::prelude::*;
/// use av_scenarios::catalog::{Scenario, ScenarioId};
/// use av_scenarios::sweep::SweepContext;
///
/// let scenario = Scenario::build(ScenarioId::CutOut, 0);
/// let mut context = SweepContext::new(&scenario);
/// // One build, many runs: probe the whole rate grid.
/// let verdicts: Vec<bool> = [1.0, 2.0, 4.0, 30.0]
///     .map(|fpr| context.collides_at(Fpr(fpr)))
///     .to_vec();
/// assert!(!verdicts[3], "every catalog scenario survives 30 FPR");
/// ```
#[derive(Debug)]
pub struct SweepContext<'a> {
    scenario: &'a Scenario,
    sim: Simulation,
}

impl<'a> SweepContext<'a> {
    /// Builds the shared simulation for `scenario` (the one build this
    /// context ever performs; the initial rate plan is irrelevant because
    /// every run resets perception).
    pub fn new(scenario: &'a Scenario) -> Self {
        let sim = scenario
            .simulation(RatePlan::Uniform(Fpr(30.0)))
            .expect("uniform positive rate plans are valid");
        Self { scenario, sim }
    }

    /// The scenario instance this context runs.
    pub fn scenario(&self) -> &'a Scenario {
        self.scenario
    }

    /// Rewinds the shared simulation for a run at `rates`.
    fn reset(&mut self, rates: RatePlan) -> Result<(), PerceptionError> {
        let perception: PerceptionSystem = self.scenario.perception(rates)?;
        let ego = EgoVehicle::spawn(
            &self.scenario.road,
            self.scenario.ego_lane,
            self.scenario.ego_start,
            PolicyConfig::cruise(self.scenario.ego_speed),
        );
        self.sim.reset(ego, perception);
        Ok(())
    }

    /// Runs the scenario closed-loop at `rates`, streaming every tick to
    /// `observer` — [`Scenario::run_with`] minus the per-run rebuild.
    ///
    /// # Errors
    ///
    /// Propagates invalid rate plans.
    pub fn run_with(
        &mut self,
        rates: RatePlan,
        observer: &mut dyn SimObserver,
    ) -> Result<StepOutcome, PerceptionError> {
        self.reset(rates)?;
        Ok(self.sim.run_with(observer))
    }

    /// The cheapest safety probe — [`Scenario::collides_at`] on the shared
    /// simulation: a [`NullObserver`] run whose verdict is the engine's
    /// own [`StepOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if `fpr` is not a valid rate (positive, finite).
    pub fn collides_at(&mut self, fpr: Fpr) -> bool {
        let outcome = self
            .run_with(RatePlan::Uniform(fpr), &mut NullObserver)
            .expect("uniform positive rate plans are valid");
        outcome == StepOutcome::Collided
    }

    /// The scalar run outcome — [`Scenario::outcome_at`] on the shared
    /// simulation: a streaming [`MetricsObserver`] fold, no stored scenes.
    ///
    /// # Panics
    ///
    /// Panics if `fpr` is not a valid rate (positive, finite).
    pub fn outcome_at(&mut self, fpr: Fpr) -> RunSummary {
        let mut metrics = MetricsObserver::new();
        self.run_with(RatePlan::Uniform(fpr), &mut metrics)
            .expect("uniform positive rate plans are valid");
        metrics.summary()
    }

    /// One fresh [`LaneSpec`] for a uniform-rate lane of this scenario.
    fn lane_spec(&self, fpr: Fpr) -> LaneSpec {
        LaneSpec {
            ego: EgoVehicle::spawn(
                &self.scenario.road,
                self.scenario.ego_lane,
                self.scenario.ego_start,
                PolicyConfig::cruise(self.scenario.ego_speed),
            ),
            perception: self
                .scenario
                .perception(RatePlan::Uniform(fpr))
                .expect("uniform positive rate plans are valid"),
        }
    }

    /// [`SweepContext::collides_at`] for a whole candidate-rate grid in
    /// one lockstep pass: every rate becomes a lane of
    /// [`Simulation::run_batched_verdicts`] over the shared scenario, so
    /// rate-independent per-tick work is paid once instead of once per
    /// rate, collided lanes retire where their standalone run would have
    /// stopped, and provably-safe suffixes retire early (see
    /// `av_sim::batch`). The returned verdicts are identical to calling
    /// [`SweepContext::collides_at`] per rate — pinned by this module's
    /// tests and the fleet equivalence suite.
    ///
    /// # Panics
    ///
    /// Panics if any rate is invalid (non-positive or non-finite).
    pub fn collides_batched(&mut self, rates: &[Fpr]) -> Vec<bool> {
        self.collides_batched_with_stats(rates).0
    }

    /// [`SweepContext::collides_batched`] plus the run's cost accounting
    /// (ticks simulated vs. retired, collided/certified lane counts) —
    /// what `perf_baseline` reports for the batched MSF sweep.
    ///
    /// # Panics
    ///
    /// Panics if any rate is invalid (non-positive or non-finite).
    pub fn collides_batched_with_stats(&mut self, rates: &[Fpr]) -> (Vec<bool>, BatchStats) {
        let specs: Vec<LaneSpec> = rates.iter().map(|&fpr| self.lane_spec(fpr)).collect();
        let (outcomes, stats) = self.sim.run_batched_verdicts_with_stats(specs);
        (
            outcomes
                .into_iter()
                .map(|outcome| outcome == StepOutcome::Collided)
                .collect(),
            stats,
        )
    }
}

/// [`SweepContext::collides_batched_with_stats`] across **several
/// scenario instances at once** — the seed axis of a minimum-safe-FPR
/// sweep, batched: every context contributes one lane group (one lane
/// per rate, each group over its own jittered geometry), and all groups
/// advance through one lockstep loop
/// ([`av_sim::seed_batch::run_seed_batched_verdicts_with_stats`]).
/// `verdicts[g][k]` is the collision verdict of `contexts[g]` at
/// `rates[k]`, bit-identical to probing that context alone — pinned by
/// this module's tests and the cross-path equivalence harness at the
/// workspace root.
///
/// # Panics
///
/// Panics if any rate is invalid (non-positive or non-finite).
pub fn collides_seed_batched_with_stats(
    contexts: &mut [SweepContext<'_>],
    rates: &[Fpr],
) -> (Vec<Vec<bool>>, BatchStats) {
    let specs: Vec<Vec<LaneSpec>> = contexts
        .iter()
        .map(|context| rates.iter().map(|&fpr| context.lane_spec(fpr)).collect())
        .collect();
    let (outcomes, stats) = av_sim::seed_batch::run_seed_batched_verdicts_with_stats(
        contexts.iter_mut().map(|context| &mut context.sim),
        specs,
    );
    (
        outcomes
            .into_iter()
            .map(|group| {
                group
                    .into_iter()
                    .map(|outcome| outcome == StepOutcome::Collided)
                    .collect()
            })
            .collect(),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ScenarioId;

    #[test]
    fn shared_context_matches_fresh_builds() {
        // Every probe through the reused simulation must agree with the
        // build-per-run path, across rates in any order (resets must not
        // leak state between runs).
        for id in [ScenarioId::CutOut, ScenarioId::ChallengingCutIn] {
            let scenario = Scenario::build(id, 3);
            let mut context = SweepContext::new(&scenario);
            for fpr in [4.0, 1.0, 30.0, 1.0, 2.0] {
                assert_eq!(
                    context.collides_at(Fpr(fpr)),
                    scenario.collides_at(Fpr(fpr)),
                    "{id} diverged at {fpr} FPR"
                );
            }
        }
    }

    #[test]
    fn batched_verdicts_match_per_rate_probes() {
        // Straight and curved roads, nominal and jittered seeds: the
        // lockstep grid must agree with one-rate-at-a-time probing bit
        // for bit (including wherever a retirement certificate fired).
        let grid = [1.0, 2.0, 4.0, 6.0, 30.0];
        for (id, seed) in [
            (ScenarioId::CutOut, 0),
            (ScenarioId::CutOut, 3),
            (ScenarioId::VehicleFollowing, 1),
            (ScenarioId::ChallengingCutInCurved, 6),
            (ScenarioId::FrontRightActivity2, 2),
        ] {
            let scenario = Scenario::build(id, seed);
            let mut context = SweepContext::new(&scenario);
            let batched = context.collides_batched(&grid.map(Fpr));
            for (k, fpr) in grid.iter().enumerate() {
                assert_eq!(
                    batched[k],
                    context.collides_at(Fpr(*fpr)),
                    "{id} seed {seed} diverged at {fpr} FPR"
                );
            }
        }
    }

    #[test]
    fn seed_batched_verdicts_match_per_rate_probes() {
        // Mixed geometry in one lockstep loop: straight and curved
        // instances, different seeds, all through one seed×rate batch —
        // every verdict must match the one-rate-at-a-time probe on a
        // fresh context.
        let grid = [1.0, 2.0, 6.0, 30.0].map(Fpr);
        let scenarios: Vec<Scenario> = [
            (ScenarioId::CutOut, 0),
            (ScenarioId::CutOut, 4),
            (ScenarioId::ChallengingCutInCurved, 6),
            (ScenarioId::VehicleFollowing, 2),
        ]
        .into_iter()
        .map(|(id, seed)| Scenario::build(id, seed))
        .collect();
        let mut contexts: Vec<SweepContext> = scenarios.iter().map(SweepContext::new).collect();
        let (verdicts, stats) = collides_seed_batched_with_stats(&mut contexts, &grid);
        assert!(stats.lane_ticks > 0);
        for (g, scenario) in scenarios.iter().enumerate() {
            let mut fresh = SweepContext::new(scenario);
            for (k, &fpr) in grid.iter().enumerate() {
                assert_eq!(
                    verdicts[g][k],
                    fresh.collides_at(fpr),
                    "{} seed {} diverged at {} FPR",
                    scenario.name,
                    scenario.seed,
                    fpr.value()
                );
            }
        }
    }

    #[test]
    fn shared_context_outcomes_are_bit_identical() {
        let scenario = Scenario::build(ScenarioId::VehicleFollowing, 1);
        let mut context = SweepContext::new(&scenario);
        for fpr in [2.0, 30.0, 2.0] {
            assert_eq!(
                context.outcome_at(Fpr(fpr)),
                scenario.outcome_at(Fpr(fpr)),
                "summary diverged at {fpr} FPR"
            );
        }
    }
}
