//! The nine driving scenarios of the paper's Table 1.
//!
//! Every scenario takes place on a 3-lane road (straight, except the
//! curved-road cut-in). Geometry and choreography follow §4.1's
//! descriptions; exact trigger distances are tuned so the *shape* of the
//! paper's results holds (cut-out-fast is the hardest scenario, the
//! challenging cut-ins need a few FPR, everything else survives 1 FPR).

use crate::jitter::Jitter;
use av_core::prelude::*;
use av_perception::rig::CameraRig;
use av_perception::system::{PerceptionError, PerceptionSystem, RatePlan};
use av_perception::world_model::TrackerConfig;
use av_sim::engine::{Simulation, SimulationConfig, StepOutcome};
use av_sim::observer::{MetricsObserver, NullObserver, RunSummary, SimObserver};
use av_sim::policy::{EgoVehicle, PolicyConfig};
use av_sim::road::{LaneId, Road};
use av_sim::script::{Action, ActorScript, Placement, Trigger};
use av_sim::trace::Trace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one Table-1 scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ScenarioId {
    /// A lead actor cuts out of the ego's lane, revealing a static
    /// obstacle; adjacent lanes are blocked (20 mph).
    CutOut,
    /// Same as [`ScenarioId::CutOut`] at 40 mph.
    CutOutFast,
    /// An actor cuts in far ahead of the ego (70 mph).
    CutIn,
    /// An actor cuts in much closer to the ego (60 mph).
    ChallengingCutIn,
    /// The challenging cut-in on a curved road (40 mph).
    ChallengingCutInCurved,
    /// The ego follows a lead at 50 m; the lead brakes suddenly to zero
    /// (70 mph).
    VehicleFollowing,
    /// Front & right activity 1: ego in the left lane; right-lane actor
    /// moves adjacent; a follower changes lanes rightward (40 mph).
    FrontRightActivity1,
    /// Front & right activity 2: the front actor cuts out to the right and
    /// paces the ego side by side; a follower trails the ego (40 mph).
    FrontRightActivity2,
    /// Front & right activity 3: a right-most-lane actor cuts into the
    /// ego's lane ahead (60 mph).
    FrontRightActivity3,
}

impl ScenarioId {
    /// All nine scenarios in Table-1 order.
    pub const ALL: [ScenarioId; 9] = [
        ScenarioId::CutOut,
        ScenarioId::CutOutFast,
        ScenarioId::CutIn,
        ScenarioId::ChallengingCutIn,
        ScenarioId::ChallengingCutInCurved,
        ScenarioId::VehicleFollowing,
        ScenarioId::FrontRightActivity1,
        ScenarioId::FrontRightActivity2,
        ScenarioId::FrontRightActivity3,
    ];

    /// This scenario's position in Table-1 order — the index CLI flags
    /// use and the inverse of [`ScenarioId::from_index`]. Stable across
    /// runs, so it is also the scenario encoding of the distributed sweep
    /// wire protocol.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&id| id == self)
            .expect("ALL contains every variant")
    }

    /// The scenario at Table-1 index `index`, or `None` past the nine.
    pub fn from_index(index: usize) -> Option<Self> {
        Self::ALL.get(index).copied()
    }

    /// The scenario's Table-1 name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioId::CutOut => "Cut-out",
            ScenarioId::CutOutFast => "Cut-out fast",
            ScenarioId::CutIn => "Cut-in",
            ScenarioId::ChallengingCutIn => "Challenging cut-in",
            ScenarioId::ChallengingCutInCurved => "Challenging cut-in on a curved road",
            ScenarioId::VehicleFollowing => "Vehicle following",
            ScenarioId::FrontRightActivity1 => "Front & right activity 1",
            ScenarioId::FrontRightActivity2 => "Front & right activity 2",
            ScenarioId::FrontRightActivity3 => "Front & right activity 3",
        }
    }

    /// The Table-1 ego speed.
    pub fn ego_speed(self) -> Mph {
        match self {
            ScenarioId::CutOut => Mph(20.0),
            ScenarioId::CutOutFast => Mph(40.0),
            ScenarioId::CutIn => Mph(70.0),
            ScenarioId::ChallengingCutIn => Mph(60.0),
            ScenarioId::ChallengingCutInCurved => Mph(40.0),
            ScenarioId::VehicleFollowing => Mph(70.0),
            ScenarioId::FrontRightActivity1 => Mph(40.0),
            ScenarioId::FrontRightActivity2 => Mph(40.0),
            ScenarioId::FrontRightActivity3 => Mph(60.0),
        }
    }
}

impl fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully instantiated scenario, ready to simulate.
///
/// Identity is carried as a *name*, not a [`ScenarioId`]: catalog-built
/// scenarios use their Table-1 name, file-loaded definitions use the name
/// declared in the definition. `PartialEq` compares every field, which is
/// what the registry's golden-equivalence suite leans on: two equal
/// scenarios simulate bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (Table-1 name for catalog scenarios, the declared
    /// name for scenarios instantiated from definition files).
    pub name: String,
    /// Seed that produced this instance (0 = nominal).
    pub seed: u64,
    /// The road driven.
    pub road: Road,
    /// The ego's lane.
    pub ego_lane: LaneId,
    /// The ego's starting arc-length position.
    pub ego_start: Meters,
    /// The ego's cruise speed.
    pub ego_speed: MetersPerSecond,
    /// Scripted actors.
    pub scripts: Vec<ActorScript>,
    /// Scenario duration.
    pub duration: Seconds,
}

impl Scenario {
    /// Instantiates a scenario. Seed 0 is the nominal geometry; other
    /// seeds jitter speeds and trigger positions slightly (the paper's
    /// ten-repeats-per-configuration methodology).
    pub fn build(id: ScenarioId, seed: u64) -> Self {
        let mut j = Jitter::new(seed);
        match id {
            ScenarioId::CutOut => cut_out(seed, &mut j, Mph(20.0), 38.0),
            ScenarioId::CutOutFast => cut_out(seed, &mut j, Mph(40.0), 35.0),
            ScenarioId::CutIn => cut_in(seed, &mut j),
            ScenarioId::ChallengingCutIn => challenging_cut_in(seed, &mut j),
            ScenarioId::ChallengingCutInCurved => challenging_cut_in_curved(seed, &mut j),
            ScenarioId::VehicleFollowing => vehicle_following(seed, &mut j),
            ScenarioId::FrontRightActivity1 => front_right_1(seed, &mut j),
            ScenarioId::FrontRightActivity2 => front_right_2(seed, &mut j),
            ScenarioId::FrontRightActivity3 => front_right_3(seed, &mut j),
        }
    }

    /// The perception system this scenario runs with at the given rates.
    ///
    /// The track time-to-live scales with the slowest camera period so
    /// that low-FPR experiments measure *staleness and confirmation*, not
    /// artificial track loss between frames.
    ///
    /// # Errors
    ///
    /// Propagates invalid rate plans.
    pub fn perception(&self, rates: RatePlan) -> Result<PerceptionSystem, PerceptionError> {
        let min_rate = match &rates {
            RatePlan::Uniform(r) => r.value(),
            RatePlan::PerCamera(v) => v.iter().map(|r| r.value()).fold(f64::INFINITY, f64::min),
        };
        let tracker = TrackerConfig {
            confirmation_frames: 5,
            drop_after: Seconds((3.5 / min_rate.max(1e-6)).max(1.0)),
        };
        PerceptionSystem::new(CameraRig::drive_av(), rates, tracker)
    }

    /// Builds the closed-loop simulation at the given camera rates.
    ///
    /// # Errors
    ///
    /// Propagates invalid rate plans.
    pub fn simulation(&self, rates: RatePlan) -> Result<Simulation, PerceptionError> {
        let ego = EgoVehicle::spawn(
            &self.road,
            self.ego_lane,
            self.ego_start,
            PolicyConfig::cruise(self.ego_speed),
        );
        let perception = self.perception(rates)?;
        Ok(Simulation::new(
            self.road.clone(),
            ego,
            self.scripts.clone(),
            perception,
            SimulationConfig {
                dt: Seconds(0.01),
                duration: self.duration,
                stop_on_collision: true,
            },
        ))
    }

    /// Runs the scenario with all cameras at `fpr` and returns the trace.
    ///
    /// # Panics
    ///
    /// Panics if `fpr` is not a valid rate (positive, finite).
    pub fn run_at(&self, fpr: Fpr) -> Trace {
        self.simulation(RatePlan::Uniform(fpr))
            .expect("uniform positive rate plans are valid")
            .run()
    }

    /// Runs the scenario closed-loop at `rates`, streaming every tick's
    /// scene and event to `observer`, and returns how the run ended.
    ///
    /// # Errors
    ///
    /// Propagates invalid rate plans.
    pub fn run_with(
        &self,
        rates: RatePlan,
        observer: &mut dyn SimObserver,
    ) -> Result<StepOutcome, PerceptionError> {
        let mut sim = self.simulation(rates)?;
        Ok(sim.run_with(observer))
    }

    /// Runs the scenario with all cameras at `fpr` and returns the scalar
    /// outcome only — the streaming fast path: no scene is ever stored, no
    /// per-tick allocation is made. Equivalent to
    /// `run_at(fpr)`'s trace statistics (pinned by the metrics-equivalence
    /// suite) at a fraction of the cost.
    ///
    /// # Panics
    ///
    /// Panics if `fpr` is not a valid rate (positive, finite).
    pub fn outcome_at(&self, fpr: Fpr) -> RunSummary {
        let mut metrics = MetricsObserver::new();
        self.run_with(RatePlan::Uniform(fpr), &mut metrics)
            .expect("uniform positive rate plans are valid");
        metrics.summary()
    }

    /// The cheapest possible safety probe: runs with all cameras at `fpr`
    /// under a [`NullObserver`] — nothing is recorded or folded at all —
    /// and reads the collision verdict off the engine's own
    /// [`StepOutcome`]. Catalog simulations stop on first collision, so
    /// the outcome carries exactly the collided/survived bit.
    ///
    /// # Panics
    ///
    /// Panics if `fpr` is not a valid rate (positive, finite).
    pub fn collides_at(&self, fpr: Fpr) -> bool {
        let outcome = self
            .run_with(RatePlan::Uniform(fpr), &mut NullObserver)
            .expect("uniform positive rate plans are valid");
        outcome == StepOutcome::Collided
    }
}

const ROAD_LEN: Meters = Meters(3000.0);
const EGO_START: Meters = Meters(50.0);

fn straight() -> Road {
    Road::straight_three_lane(ROAD_LEN)
}

fn place(lane: u32, s: Meters, speed: MetersPerSecond) -> Placement {
    Placement {
        lane: LaneId(lane),
        s,
        speed,
    }
}

/// Cut-out template (§4.1, Fig. 4a): lead in the ego's lane cuts out and
/// reveals a static obstacle; actors on both adjacent lanes pin the ego so
/// hard braking is the only option. `reveal_budget` is the approximate
/// bumper distance (m) from the ego to the obstacle at the moment the
/// line of sight clears — the knob that sets the scenario's MRF.
fn cut_out(seed: u64, j: &mut Jitter, speed: Mph, reveal_budget: f64) -> Scenario {
    let v: MetersPerSecond = j.speed(speed.into());
    let vf = v.value();
    // The lead starts 30 m ahead and cuts out over `lc` seconds; the line
    // of sight clears roughly 30% into the maneuver. Work backwards from
    // the desired reveal distance to the trigger position.
    let lc = 2.5;
    let reveal_delay = 0.3 * lc;
    let obstacle_s = EGO_START + Meters(30.0 + reveal_budget + 40.0);
    // Trigger when the ego reaches: obstacle - budget - travel during the
    // reveal delay (ego bumper-to-obstacle-bumper ~ 3.25 m of lengths).
    let trigger_s = obstacle_s - Meters(reveal_budget + vf * reveal_delay + 3.25);
    let trigger_s = j.position(trigger_s, Meters(3.0));
    let lead = ActorScript::cruising(ActorId(1), place(1, EGO_START + Meters(30.0), v))
        .with_maneuver(
            Trigger::EgoPasses(trigger_s),
            Action::ChangeLane {
                target: LaneId(2),
                duration: Seconds(lc),
            },
        );
    let obstacle = ActorScript::obstacle(ActorId(2), LaneId(1), obstacle_s);
    let left = ActorScript::cruising(
        ActorId(3),
        place(2, j.position(Meters(46.0), Meters(4.0)), v),
    );
    let right = ActorScript::cruising(
        ActorId(4),
        place(0, j.position(Meters(52.0), Meters(4.0)), v),
    );
    let id = if speed.value() > 30.0 {
        ScenarioId::CutOutFast
    } else {
        ScenarioId::CutOut
    };
    Scenario {
        name: id.name().to_string(),
        seed,
        road: straight(),
        ego_lane: LaneId(1),
        ego_start: EGO_START,
        ego_speed: v,
        scripts: vec![lead, obstacle, left, right],
        duration: Seconds(25.0),
    }
}

/// Cut-in (§4.1, Fig. 6a): an actor merges into the ego's lane well ahead,
/// then the ego closes on it; only front activity.
fn cut_in(seed: u64, j: &mut Jitter) -> Scenario {
    let v: MetersPerSecond = j.speed(Mph(70.0).into());
    let actor_v: MetersPerSecond = j.speed(Mph(55.0).into());
    let cutter = ActorScript::cruising(
        ActorId(1),
        place(0, j.position(Meters(170.0), Meters(5.0)), actor_v),
    )
    .with_maneuver(
        Trigger::GapAheadOfEgo(Meters(35.0)),
        Action::ChangeLane {
            target: LaneId(1),
            duration: Seconds(2.5),
        },
    )
    // After settling in, the actor eases off, forcing the ego's second —
    // and, as in the paper's Fig. 6, tighter — deceleration dip.
    .with_maneuver(
        Trigger::AtTime(Seconds(20.0)),
        Action::SetSpeed {
            target: j.speed(Mph(30.0).into()),
            accel_limit: MetersPerSecondSquared(3.5),
        },
    );
    Scenario {
        name: ScenarioId::CutIn.name().to_string(),
        seed,
        road: straight(),
        ego_lane: LaneId(1),
        ego_start: EGO_START,
        ego_speed: v,
        scripts: vec![cutter],
        duration: Seconds(30.0),
    }
}

/// Challenging cut-in (§4.1): the actor cuts in much closer; a right-lane
/// cruiser adds side activity and blocks evasion.
fn challenging_cut_in(seed: u64, j: &mut Jitter) -> Scenario {
    let v: MetersPerSecond = j.speed(Mph(60.0).into());
    let actor_v: MetersPerSecond = j.speed(Mph(40.0).into());
    let cutter = ActorScript::cruising(
        ActorId(1),
        place(0, j.position(Meters(120.0), Meters(4.0)), actor_v),
    )
    .with_maneuver(
        Trigger::GapAheadOfEgo(Meters(18.0)),
        Action::ChangeLane {
            target: LaneId(1),
            duration: Seconds(1.8),
        },
    );
    let right = ActorScript::cruising(ActorId(2), place(0, Meters(40.0), v));
    Scenario {
        name: ScenarioId::ChallengingCutIn.name().to_string(),
        seed,
        road: straight(),
        ego_lane: LaneId(1),
        ego_start: EGO_START,
        ego_speed: v,
        scripts: vec![cutter, right],
        duration: Seconds(25.0),
    }
}

/// Challenging cut-in on a curved road (§4.1, Fig. 5a): same choreography
/// on a gentle arc, with both adjacent lanes occupied.
fn challenging_cut_in_curved(seed: u64, j: &mut Jitter) -> Scenario {
    let v: MetersPerSecond = j.speed(Mph(40.0).into());
    let actor_v: MetersPerSecond = j.speed(Mph(24.0).into());
    let road = Road::curved_three_lane(Meters(400.0), Meters(1500.0));
    let cutter = ActorScript::cruising(
        ActorId(1),
        place(0, j.position(Meters(110.0), Meters(4.0)), actor_v),
    )
    .with_maneuver(
        Trigger::GapAheadOfEgo(Meters(18.5)),
        Action::ChangeLane {
            target: LaneId(1),
            duration: Seconds(1.8),
        },
    )
    // Once committed to the merge, the actor also slows toward 16 mph,
    // stretching the danger over the ego's perception delay (this is what
    // makes the curved variant "challenging" at 40 mph).
    .with_maneuver(
        Trigger::Immediately,
        Action::SetSpeed {
            target: Mph(16.0).into(),
            accel_limit: MetersPerSecondSquared(2.0),
        },
    );
    let left = ActorScript::cruising(ActorId(2), place(2, Meters(46.0), v));
    let right = ActorScript::cruising(ActorId(3), place(0, Meters(40.0), v));
    Scenario {
        name: ScenarioId::ChallengingCutInCurved.name().to_string(),
        seed,
        road,
        ego_lane: LaneId(1),
        ego_start: EGO_START,
        ego_speed: v,
        scripts: vec![cutter, left, right],
        duration: Seconds(25.0),
    }
}

/// Vehicle following (§4.1): lead 50 m ahead on a highway brakes suddenly
/// to a stop.
fn vehicle_following(seed: u64, j: &mut Jitter) -> Scenario {
    let v: MetersPerSecond = j.speed(Mph(70.0).into());
    let lead = ActorScript::cruising(
        ActorId(1),
        // 50 m bumper-to-bumper: centers 54.5 m apart.
        place(1, EGO_START + Meters(54.5), v),
    )
    .with_maneuver(
        Trigger::AtTime(j.duration(Seconds(3.0))),
        Action::HardBrake {
            decel: MetersPerSecondSquared(6.5),
        },
    );
    Scenario {
        name: ScenarioId::VehicleFollowing.name().to_string(),
        seed,
        road: straight(),
        ego_lane: LaneId(1),
        ego_start: EGO_START,
        ego_speed: v,
        scripts: vec![lead],
        duration: Seconds(25.0),
    }
}

/// Front & right activity 1 (§4.1): ego in the left lane; a right-most
/// lane actor moves to the ego-adjacent lane; a follower behind the ego
/// changes lanes to the right.
fn front_right_1(seed: u64, j: &mut Jitter) -> Scenario {
    let v: MetersPerSecond = j.speed(Mph(40.0).into());
    let a = ActorScript::cruising(
        ActorId(1),
        place(0, j.position(Meters(90.0), Meters(5.0)), v),
    )
    .with_maneuver(
        Trigger::AtTime(Seconds(1.0)),
        Action::ChangeLane {
            target: LaneId(1),
            duration: Seconds(3.0),
        },
    );
    let b = ActorScript::cruising(
        ActorId(2),
        place(2, j.position(Meters(15.0), Meters(3.0)), v * 1.05),
    )
    .with_maneuver(
        Trigger::AtTime(Seconds(2.0)),
        Action::ChangeLane {
            target: LaneId(1),
            duration: Seconds(3.0),
        },
    );
    Scenario {
        name: ScenarioId::FrontRightActivity1.name().to_string(),
        seed,
        road: straight(),
        ego_lane: LaneId(2),
        ego_start: EGO_START,
        ego_speed: v,
        scripts: vec![a, b],
        duration: Seconds(20.0),
    }
}

/// Front & right activity 2 (§4.1): the front actor cuts out to the right
/// and paces the ego side by side; another actor follows the ego.
fn front_right_2(seed: u64, j: &mut Jitter) -> Scenario {
    let v: MetersPerSecond = j.speed(Mph(40.0).into());
    let front = ActorScript::cruising(ActorId(1), place(1, EGO_START + Meters(35.0), v * 0.92))
        .with_maneuver(
            Trigger::GapAheadOfEgo(Meters(22.0)),
            Action::ChangeLane {
                target: LaneId(0),
                duration: Seconds(2.5),
            },
        )
        .with_maneuver(
            Trigger::AtTime(Seconds(8.0)),
            Action::MatchEgoSpeed {
                accel_limit: MetersPerSecondSquared(2.0),
            },
        );
    let follower = ActorScript::cruising(ActorId(2), place(1, Meters(18.0), v)).with_maneuver(
        Trigger::Immediately,
        Action::MatchEgoSpeed {
            accel_limit: MetersPerSecondSquared(2.0),
        },
    );
    Scenario {
        name: ScenarioId::FrontRightActivity2.name().to_string(),
        seed,
        road: straight(),
        ego_lane: LaneId(1),
        ego_start: EGO_START,
        ego_speed: v,
        scripts: vec![front, follower],
        duration: Seconds(20.0),
    }
}

/// Front & right activity 3 (§4.1): a right-most lane actor cuts into the
/// ego's lane ahead of the ego.
fn front_right_3(seed: u64, j: &mut Jitter) -> Scenario {
    let v: MetersPerSecond = j.speed(Mph(60.0).into());
    let actor_v: MetersPerSecond = j.speed(Mph(48.0).into());
    let cutter = ActorScript::cruising(
        ActorId(1),
        place(0, j.position(Meters(140.0), Meters(5.0)), actor_v),
    )
    .with_maneuver(
        Trigger::GapAheadOfEgo(Meters(45.0)),
        Action::ChangeLane {
            target: LaneId(1),
            duration: Seconds(2.5),
        },
    );
    Scenario {
        name: ScenarioId::FrontRightActivity3.name().to_string(),
        seed,
        road: straight(),
        ego_lane: LaneId(1),
        ego_start: EGO_START,
        ego_speed: v,
        scripts: vec![cutter],
        duration: Seconds(25.0),
    }
}

/// Result of a minimum-required-FPR probe (Table 1's MRF column).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Mrf {
    /// No collision even at the lowest tested rate — the paper's "<1".
    BelowMinimumTested,
    /// The smallest tested rate with no collision at or above it.
    Fpr(u32),
    /// Collisions persisted at every tested rate.
    AboveMaximumTested,
}

impl fmt::Display for Mrf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mrf::BelowMinimumTested => write!(f, "<1"),
            Mrf::Fpr(v) => write!(f, "{v}"),
            Mrf::AboveMaximumTested => write!(f, ">30"),
        }
    }
}

/// The paper's Table-1 candidate rate grid: 1–10 FPR, then 15 and 30.
pub const PAPER_RATE_GRID: [u32; 12] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 30];

/// A named heterogeneous per-camera rate plan for the paper's five-camera
/// rig ([`CameraRig::drive_av`]): one rate per camera in rig order —
/// front narrow, front wide, left, right, rear.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerCameraPlan {
    /// Short stable name used by CLI flags and exports.
    pub name: &'static str,
    /// Rates in rig order (FPR per camera).
    pub rates: [f64; 5],
}

/// The heterogeneous per-camera rate-grid experiment (§3.2's per-camera
/// estimates, probed closed-loop): instead of one uniform rate, each plan
/// budgets the five cameras differently. Probing the whole jittered
/// corpus against these plans answers which *allocation* of a fixed
/// processing budget keeps the fleet collision-free — the question a
/// uniform grid cannot ask.
pub const PER_CAMERA_PLANS: [PerCameraPlan; 4] = [
    // Forward-looking cameras fast, sides slow, rear slowest: the
    // allocation Zhuyi's per-camera estimates suggest for front-activity
    // scenarios.
    PerCameraPlan {
        name: "front-heavy",
        rates: [30.0, 15.0, 4.0, 4.0, 2.0],
    },
    // Sides prioritized over distance: cut-ins are first visible in the
    // side cameras' fields of view.
    PerCameraPlan {
        name: "side-heavy",
        rates: [6.0, 6.0, 15.0, 15.0, 2.0],
    },
    // A flat economy budget: everything slow, rear nearly off.
    PerCameraPlan {
        name: "economy",
        rates: [6.0, 4.0, 2.0, 2.0, 1.0],
    },
    // The inverted (adversarial) allocation: fast rear, starved front —
    // the plan the probes should prove unsafe on forward scenarios.
    PerCameraPlan {
        name: "rear-heavy",
        rates: [2.0, 2.0, 4.0, 4.0, 30.0],
    },
];

/// Determines the minimum required FPR for a scenario: the smallest rate
/// in `candidates` (sorted ascending) such that no seed in `seeds`
/// collides at that rate or any higher tested rate.
///
/// Probes run streaming under a `NullObserver`
/// ([`Scenario::collides_at`]): no trace is recorded and no statistics are
/// folded, since only the collision bit is consulted. Each seed's scenario
/// instance is built once and shared across the whole candidate grid via
/// a [`crate::sweep::SweepContext`], and the grid itself runs as one
/// lane-batched lockstep pass per seed
/// ([`crate::sweep::SweepContext::collides_batched`]) — verdicts are
/// identical to probing each rate on its own.
pub fn minimum_required_fpr(id: ScenarioId, candidates: &[u32], seeds: &[u64]) -> Mrf {
    let rates: Vec<Fpr> = candidates.iter().map(|&c| Fpr(f64::from(c))).collect();
    let mut highest_unsafe: Option<u32> = None;
    for &seed in seeds {
        let scenario = Scenario::build(id, seed);
        let mut context = crate::sweep::SweepContext::new(&scenario);
        for (k, collided) in context.collides_batched(&rates).into_iter().enumerate() {
            if collided && highest_unsafe.is_none_or(|worst| candidates[k] > worst) {
                highest_unsafe = Some(candidates[k]);
            }
        }
    }
    match highest_unsafe {
        None => Mrf::BelowMinimumTested,
        Some(worst) => {
            // The MRF is the next tested rate above the worst unsafe one.
            match candidates.iter().find(|&&c| c > worst) {
                Some(&next) => Mrf::Fpr(next),
                None => Mrf::AboveMaximumTested,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nine_scenarios_build() {
        for id in ScenarioId::ALL {
            let s = Scenario::build(id, 0);
            assert_eq!(s.name, id.name());
            assert!(!s.scripts.is_empty(), "{id} has no actors");
            assert!(s.duration.value() > 10.0);
            assert!(
                (s.ego_speed.value() - MetersPerSecond::from(id.ego_speed()).value()).abs() < 0.5,
                "{id} ego speed mismatch"
            );
        }
    }

    #[test]
    fn seeds_jitter_but_preserve_structure() {
        let nominal = Scenario::build(ScenarioId::CutOut, 0);
        let jittered = Scenario::build(ScenarioId::CutOut, 3);
        assert_eq!(nominal.scripts.len(), jittered.scripts.len());
        assert_ne!(
            nominal.ego_speed, jittered.ego_speed,
            "seeded instance should differ from nominal"
        );
        // Same seed reproduces exactly.
        let again = Scenario::build(ScenarioId::CutOut, 3);
        assert_eq!(jittered.ego_speed, again.ego_speed);
    }

    #[test]
    fn scenarios_are_safe_at_30_fpr() {
        for id in ScenarioId::ALL {
            let trace = Scenario::build(id, 0).run_at(Fpr(30.0));
            assert!(
                !trace.collided(),
                "{id} collided at 30 FPR: {:?}",
                trace.collision()
            );
        }
    }

    #[test]
    fn cut_out_fast_is_harder_than_cut_out() {
        // At 4 FPR the fast variant collides while the slow one survives —
        // the core ordering of Table 1 (MRF 6 vs 2).
        let slow = Scenario::build(ScenarioId::CutOut, 0).run_at(Fpr(4.0));
        let fast = Scenario::build(ScenarioId::CutOutFast, 0).run_at(Fpr(4.0));
        assert!(!slow.collided(), "Cut-out must survive 4 FPR");
        assert!(fast.collided(), "Cut-out fast must collide at 4 FPR");
    }

    #[test]
    fn cut_out_collides_at_1_fpr() {
        let trace = Scenario::build(ScenarioId::CutOut, 0).run_at(Fpr(1.0));
        assert!(trace.collided(), "Cut-out must collide at 1 FPR (MRF 2)");
    }

    #[test]
    fn benign_scenarios_survive_1_fpr() {
        for id in [
            ScenarioId::CutIn,
            ScenarioId::VehicleFollowing,
            ScenarioId::FrontRightActivity1,
            ScenarioId::FrontRightActivity2,
            ScenarioId::FrontRightActivity3,
        ] {
            let trace = Scenario::build(id, 0).run_at(Fpr(1.0));
            assert!(!trace.collided(), "{id} must survive 1 FPR (MRF <1)");
        }
    }

    #[test]
    fn mrf_probe_reports_shapes() {
        // A cheap two-point probe: Cut-out unsafe at 1, safe at 4.
        let mrf = minimum_required_fpr(ScenarioId::CutOut, &[1, 4], &[0]);
        assert_eq!(mrf, Mrf::Fpr(4));
        let benign = minimum_required_fpr(ScenarioId::CutIn, &[1, 4], &[0]);
        assert_eq!(benign, Mrf::BelowMinimumTested);
    }

    #[test]
    fn curved_scenario_road_actually_curves() {
        let s = Scenario::build(ScenarioId::ChallengingCutInCurved, 0);
        let start = s.road.path().pose_at(Meters(0.0)).heading;
        let end = s.road.path().pose_at(s.road.path().length()).heading;
        assert!(
            (end - start).normalized().value().abs() > 0.5,
            "curved road heading changed by only {}",
            (end - start).normalized()
        );
        // And every other scenario is straight.
        let straight = Scenario::build(ScenarioId::CutIn, 0);
        let h0 = straight.road.path().pose_at(Meters(0.0)).heading;
        let h1 = straight.road.path().pose_at(Meters(1000.0)).heading;
        assert!((h1 - h0).value().abs() < 1e-9);
    }

    #[test]
    fn tracker_ttl_scales_with_slowest_camera() {
        let s = Scenario::build(ScenarioId::CutOut, 0);
        let fast = s
            .perception(RatePlan::Uniform(Fpr(30.0)))
            .expect("valid plan");
        assert!((fast.world().config().drop_after.value() - 1.0).abs() < 1e-9);
        let slow = s
            .perception(RatePlan::Uniform(Fpr(1.0)))
            .expect("valid plan");
        assert!((slow.world().config().drop_after.value() - 3.5).abs() < 1e-9);
        // Per-camera plans use the slowest camera.
        let mixed = s
            .perception(RatePlan::PerCamera(vec![
                Fpr(30.0),
                Fpr(2.0),
                Fpr(30.0),
                Fpr(30.0),
                Fpr(30.0),
            ]))
            .expect("valid plan");
        assert!((mixed.world().config().drop_after.value() - 1.75).abs() < 1e-9);
    }

    #[test]
    fn scenario_index_round_trips() {
        for (index, &id) in ScenarioId::ALL.iter().enumerate() {
            assert_eq!(id.index(), index);
            assert_eq!(ScenarioId::from_index(index), Some(id));
        }
        assert_eq!(ScenarioId::from_index(ScenarioId::ALL.len()), None);
    }

    #[test]
    fn per_camera_plans_fit_the_rig_and_are_valid() {
        let rig = CameraRig::drive_av();
        let mut names = std::collections::BTreeSet::new();
        for plan in PER_CAMERA_PLANS {
            assert_eq!(plan.rates.len(), rig.len(), "{} arity", plan.name);
            assert!(
                plan.rates.iter().all(|r| r.is_finite() && *r > 0.0),
                "{} has an invalid rate",
                plan.name
            );
            assert!(names.insert(plan.name), "duplicate plan name {}", plan.name);
        }
    }

    #[test]
    fn mrf_display() {
        assert_eq!(Mrf::BelowMinimumTested.to_string(), "<1");
        assert_eq!(Mrf::Fpr(6).to_string(), "6");
        assert_eq!(Mrf::AboveMaximumTested.to_string(), ">30");
    }
}
