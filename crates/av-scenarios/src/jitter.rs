//! Seeded parameter jitter for repeated scenario runs.
//!
//! The paper notes "simulations can be non-deterministic, we run a scenario
//! with a fixed FPR ten times and show an average" (§4.2). Our simulator is
//! deterministic, so the repeated-run methodology is reproduced by
//! perturbing scenario parameters (speeds, trigger positions, gaps) with a
//! seeded RNG: seed 0 is the nominal scenario, other seeds are mild
//! variations of it.

use av_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded source of bounded scenario perturbations.
#[derive(Debug)]
pub struct Jitter {
    rng: Option<StdRng>,
}

impl Jitter {
    /// Seed 0 produces the nominal (unjittered) scenario; any other seed
    /// yields a reproducible perturbation stream.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: (seed != 0).then(|| StdRng::seed_from_u64(seed)),
        }
    }

    /// Uniform multiplicative jitter of ±`fraction` (e.g. 0.03 = ±3%).
    pub fn scale(&mut self, fraction: f64) -> f64 {
        match &mut self.rng {
            None => 1.0,
            Some(rng) => 1.0 + rng.gen_range(-fraction..=fraction),
        }
    }

    /// A jittered speed (±1%). Kept small: several Table-1 scenarios sit
    /// near their collision boundary by design, and the jitter models run
    /// nondeterminism, not scenario redesign.
    pub fn speed(&mut self, nominal: MetersPerSecond) -> MetersPerSecond {
        nominal * self.scale(0.01)
    }

    /// A jittered longitudinal position (±`amount` meters).
    pub fn position(&mut self, nominal: Meters, amount: Meters) -> Meters {
        match &mut self.rng {
            None => nominal,
            Some(rng) => nominal + Meters(rng.gen_range(-amount.value()..=amount.value())),
        }
    }

    /// A jittered duration (±5%).
    pub fn duration(&mut self, nominal: Seconds) -> Seconds {
        Seconds(nominal.value() * self.scale(0.05))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_zero_is_nominal() {
        let mut j = Jitter::new(0);
        assert_eq!(j.speed(MetersPerSecond(20.0)), MetersPerSecond(20.0));
        assert_eq!(j.position(Meters(50.0), Meters(5.0)), Meters(50.0));
        assert_eq!(j.duration(Seconds(2.0)), Seconds(2.0));
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Jitter::new(7);
        let mut b = Jitter::new(7);
        for _ in 0..10 {
            assert_eq!(a.scale(0.05), b.scale(0.05));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Jitter::new(1);
        let mut b = Jitter::new(2);
        let va: Vec<f64> = (0..5).map(|_| a.scale(0.05)).collect();
        let vb: Vec<f64> = (0..5).map(|_| b.scale(0.05)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn jitter_is_bounded() {
        let mut j = Jitter::new(42);
        for _ in 0..100 {
            let s = j.scale(0.03);
            assert!((0.97..=1.03).contains(&s));
            let v = j.speed(MetersPerSecond(20.0)).value();
            assert!((19.8..=20.2).contains(&v));
            let p = j.position(Meters(100.0), Meters(5.0));
            assert!((95.0..=105.0).contains(&p.value()));
        }
    }
}
