//! Quick minimum-required-FPR probe over the nine Table-1 scenarios,
//! fleet-style.
//!
//! This used to be a hand-rolled double loop running every scenario at
//! every rate (108 closed-loop simulations, sequentially); it now plans
//! one minimum-safe-FPR search job per scenario and fans them out across
//! the worker pool. The search binary-localizes the safety boundary and
//! verifies every rate above it, so it answers exactly like the grid scan
//! while skipping the rates below the boundary (the `sims run` column
//! shows what each scenario actually cost).
//!
//! Run: `cargo run --release -p av-scenarios --example mrf_probe`

use av_scenarios::catalog::{ScenarioId, PAPER_RATE_GRID};
use zhuyi_fleet::{pool, run_sweep, JobOutcome, SweepPlan};

fn main() {
    let rates = PAPER_RATE_GRID.to_vec();
    let plan = SweepPlan::builder()
        .scenarios(ScenarioId::ALL)
        .min_safe_fpr(rates.clone())
        .build();
    let store = run_sweep(&plan, pool::default_workers());

    println!("{:40} {:>6} {:>10}", "scenario", "MRF", "sims run");
    for result in store.results() {
        let JobOutcome::MinSafeFpr(search) = &result.outcome else {
            continue;
        };
        println!(
            "{:40} {:>6} {:>7}/{}",
            result.job.spec.scenario.name(),
            search.label(),
            search.sims_run,
            search.grid_size,
        );
    }
}
