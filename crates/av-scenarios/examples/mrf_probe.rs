use av_core::prelude::*;
use av_scenarios::prelude::*;

fn main() {
    let rates = [1u32, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 30];
    for id in ScenarioId::ALL {
        let s = Scenario::build(id, 0);
        let mut row = String::new();
        for &f in &rates {
            let tr = s.run_at(Fpr(f as f64));
            row.push_str(if tr.collided() { " X " } else { " . " });
        }
        println!("{:40} {}", id.name(), row);
    }
}
