//! Equivalence suite: the streaming [`MetricsObserver`] must report
//! exactly the statistics computed from a full [`TraceRecorder`] trace —
//! across every catalog scenario, several jitter seeds, and both FPR
//! extremes of the paper's rate grid.
//!
//! "Exactly" means bit-for-bit `f64` equality, not tolerance: both paths
//! run the identical closed loop and fold the identical arithmetic, so any
//! difference is a bug in the streaming fast path.

use av_core::prelude::*;
use av_perception::system::RatePlan;
use av_scenarios::prelude::*;
use av_sim::prelude::*;

const SEEDS: [u64; 3] = [0, 1, 2];
/// The paper grid's extremes: 1 FPR (collision-heavy) and 30 FPR (safe).
const FPR_EXTREMES: [f64; 2] = [1.0, 30.0];

#[test]
fn metrics_observer_matches_trace_across_the_catalog() {
    let mut collisions = 0usize;
    for id in ScenarioId::ALL {
        for seed in SEEDS {
            let scenario = Scenario::build(id, seed);
            for fpr in FPR_EXTREMES {
                let trace = scenario.run_at(Fpr(fpr));
                let summary = scenario.outcome_at(Fpr(fpr));
                let label = format!("{id} seed {seed} @ {fpr} FPR");
                assert_eq!(
                    summary.ticks as usize,
                    trace.scenes.len(),
                    "{label}: tick count"
                );
                assert_eq!(summary.duration, trace.duration(), "{label}: duration");
                assert_eq!(summary.collision, trace.collision(), "{label}: collision");
                assert_eq!(summary.collided(), trace.collided(), "{label}: collided");
                assert_eq!(
                    summary.min_ego_speed,
                    trace.min_ego_speed(),
                    "{label}: min ego speed"
                );
                assert_eq!(
                    summary.max_ego_decel,
                    trace.max_ego_decel(),
                    "{label}: max ego decel"
                );
                assert_eq!(
                    summary.min_clearance,
                    trace.min_clearance(),
                    "{label}: min clearance"
                );
                assert_eq!(summary.events, trace.events.len(), "{label}: event count");
                if summary.collided() {
                    collisions += 1;
                }
            }
        }
    }
    // Sanity: the corpus must exercise both outcomes, or the equivalence
    // proved nothing about collision bookkeeping.
    assert!(collisions > 0, "no instance collided at 1 FPR");
    assert!(
        collisions < ScenarioId::ALL.len() * SEEDS.len() * FPR_EXTREMES.len(),
        "every instance collided"
    );
}

#[test]
fn trace_recorder_is_byte_identical_to_classic_run() {
    // The observer-driven recorder and the classic `run()` path must
    // produce the same `Trace` down to every field (scene-by-scene,
    // event-by-event `PartialEq`).
    for id in [ScenarioId::CutOut, ScenarioId::ChallengingCutInCurved] {
        for fpr in FPR_EXTREMES {
            let scenario = Scenario::build(id, 1);
            let classic = scenario.run_at(Fpr(fpr));
            let mut recorder = TraceRecorder::new(Seconds(0.01));
            scenario
                .run_with(RatePlan::Uniform(Fpr(fpr)), &mut recorder)
                .expect("uniform plans are valid");
            assert_eq!(
                recorder.into_trace(),
                classic,
                "{id} @ {fpr} FPR: recorder diverged from classic run"
            );
        }
    }
}

#[test]
fn null_observer_agrees_on_the_outcome() {
    // A NullObserver run still terminates with the same outcome the
    // metrics path reports.
    let scenario = Scenario::build(ScenarioId::CutOutFast, 0);
    let summary = scenario.outcome_at(Fpr(4.0));
    let outcome = scenario
        .run_with(RatePlan::Uniform(Fpr(4.0)), &mut NullObserver)
        .expect("uniform plans are valid");
    assert_eq!(
        outcome == StepOutcome::Collided,
        summary.collided(),
        "outcome and summary disagree"
    );
}
