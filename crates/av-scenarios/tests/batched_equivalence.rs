//! Batched-vs-per-rate bit-exactness over the jittered catalog, plus the
//! lane-retirement adversarial case.
//!
//! The lane-batched verdict pass ([`SweepContext::collides_batched`])
//! must agree with one-rate-at-a-time probing for every (scenario, seed,
//! rate) — including wherever a collided lane or a safe-suffix
//! certificate retired a lane early. The adversarial test builds a
//! scenario whose lead looks like a textbook steady-following endgame
//! but hard-brakes near the end of the run: a too-eager certificate
//! would retire the lane mid-run and miss the late collision, so the
//! certificates must decline (the lead still has a pending maneuver) and
//! the batched verdicts must keep matching the per-rate ones.

use av_core::prelude::*;
use av_scenarios::catalog::{Scenario, ScenarioId, PAPER_RATE_GRID};
use av_scenarios::sweep::SweepContext;
use av_sim::road::{LaneId, Road};
use av_sim::script::{Action, ActorScript, Placement, Trigger};

#[test]
fn batched_grid_matches_per_rate_probes_across_the_catalog() {
    let rates: Vec<Fpr> = PAPER_RATE_GRID.iter().map(|&c| Fpr(f64::from(c))).collect();
    for id in ScenarioId::ALL {
        for seed in [0u64, 1] {
            let scenario = Scenario::build(id, seed);
            let mut context = SweepContext::new(&scenario);
            let batched = context.collides_batched(&rates);
            for (k, &rate) in rates.iter().enumerate() {
                assert_eq!(
                    batched[k],
                    context.collides_at(rate),
                    "{id} seed {seed} diverged at {rate} FPR"
                );
            }
        }
    }
}

/// A steady-following setup whose lead hard-brakes only at t = 18 s of a
/// 24 s run: between the cut of the gap and the brake the lane sits
/// squarely inside the follow-certificate's entry band (matched speeds,
/// calm accel, equilibrium gap) — everything but the *pending maneuver*,
/// which is exactly what must keep the certificate from firing.
fn late_brake_scenario(seed: u64) -> Scenario {
    let road = Road::straight_three_lane(Meters(3000.0));
    let lead = ActorScript::cruising(
        ActorId(1),
        Placement {
            lane: LaneId(1),
            s: Meters(104.5),
            speed: MetersPerSecond(33.0),
        },
    )
    .with_maneuver(
        Trigger::AtTime(Seconds(18.0)),
        Action::HardBrake {
            decel: MetersPerSecondSquared(20.0),
        },
    );
    Scenario {
        name: ScenarioId::VehicleFollowing.name().to_string(),
        seed,
        road,
        ego_lane: LaneId(1),
        ego_start: Meters(50.0),
        ego_speed: MetersPerSecond(33.0),
        scripts: vec![lead],
        duration: Seconds(24.0),
    }
}

#[test]
fn late_collision_is_never_missed_by_retirement() {
    let scenario = late_brake_scenario(0);
    let rates: Vec<Fpr> = PAPER_RATE_GRID.iter().map(|&c| Fpr(f64::from(c))).collect();
    let mut context = SweepContext::new(&scenario);
    let batched = context.collides_batched(&rates);
    let mut any_late_collision = false;
    for (k, &rate) in rates.iter().enumerate() {
        let reference = context.collides_at(rate);
        assert_eq!(
            batched[k], reference,
            "late-brake scenario diverged at {rate} FPR"
        );
        if reference {
            // The collision must come from the *late* brake, not the
            // benign following phase — otherwise this adversarial case
            // would not be testing early-retirement at all.
            let summary = context.outcome_at(rate);
            let (time, _) = summary.collision.expect("collided run records when");
            assert!(
                time.value() > 18.0,
                "collision at {time} is not in the certified-looking suffix"
            );
            any_late_collision = true;
        }
    }
    assert!(
        any_late_collision,
        "the adversarial scenario must collide at some rate after t = 18 s \
         (otherwise it does not exercise the trap)"
    );
}
