//! Criterion bench: Eq.-4 aggregation over prediction sets of various
//! sizes and modes (DESIGN.md ablation #2).

use av_core::units::Seconds;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zhuyi::aggregate::{aggregate_latencies, Aggregation};

/// A deterministic pseudo-random latency/probability set.
fn samples(n: usize) -> Vec<(Seconds, f64)> {
    (0..n)
        .map(|i| {
            // Cheap LCG so the bench needs no RNG dependency.
            let x = ((i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407)
                >> 33) as f64
                / (u32::MAX as f64 / 2.0);
            let latency = 0.033 + (x % 1.0) * 0.967;
            let prob = 0.05 + ((x * 7.0) % 1.0) * 0.95;
            (Seconds(latency), prob)
        })
        .collect()
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate_latencies");
    for n in [4usize, 64, 1024] {
        let set = samples(n);
        for (name, mode) in [
            ("worst_case", Aggregation::WorstCase),
            ("mean", Aggregation::Mean),
            ("p99", Aggregation::P99),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &set, |b, set| {
                b.iter(|| black_box(aggregate_latencies(black_box(set), mode)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
