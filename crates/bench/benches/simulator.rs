//! Criterion bench: closed-loop simulator throughput (ticks per second)
//! and whole-scenario wall time — the substrate cost behind Table 1's
//! hundreds of runs. Each full-scenario case runs both paths: `recorded`
//! (classic full trace) and `streaming` (MetricsObserver, zero stored
//! scenes), so the observer fast path's speedup never regresses unseen.

use av_core::prelude::*;
use av_perception::system::RatePlan;
use av_scenarios::catalog::{Scenario, ScenarioId};
use av_sim::engine::StepOutcome;
use av_sim::observer::NullObserver;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    // Whole-scenario iterations are ~100 ms each; keep the suite's wall
    // time bounded.
    group.sample_size(10);
    group.bench_function("tick_vehicle_following", |b| {
        b.iter_batched(
            || {
                Scenario::build(ScenarioId::VehicleFollowing, 0)
                    .simulation(RatePlan::Uniform(Fpr(30.0)))
                    .expect("uniform plan is valid")
            },
            |mut sim| {
                for _ in 0..100 {
                    if sim.step() != StepOutcome::Running {
                        break;
                    }
                }
                black_box(sim.time())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("tick_vehicle_following_streaming", |b| {
        b.iter_batched(
            || {
                Scenario::build(ScenarioId::VehicleFollowing, 0)
                    .simulation(RatePlan::Uniform(Fpr(30.0)))
                    .expect("uniform plan is valid")
            },
            |mut sim| {
                let mut observer = NullObserver;
                for _ in 0..100 {
                    if sim.step_with(&mut observer) != StepOutcome::Running {
                        break;
                    }
                }
                black_box(sim.time())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    for id in [ScenarioId::CutOut, ScenarioId::ChallengingCutInCurved] {
        group.bench_with_input(
            BenchmarkId::new("full_scenario_recorded", id.name()),
            &id,
            |b, &id| {
                b.iter(|| {
                    let trace = Scenario::build(id, 0).run_at(Fpr(30.0));
                    black_box(trace.scenes.len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_scenario_streaming", id.name()),
            &id,
            |b, &id| {
                b.iter(|| {
                    let summary = Scenario::build(id, 0).outcome_at(Fpr(30.0));
                    black_box(summary.ticks)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_steps);
criterion_main!(benches);
