//! Criterion bench: closed-loop simulator throughput (ticks per second)
//! and whole-scenario wall time — the substrate cost behind Table 1's
//! hundreds of runs.

use av_core::prelude::*;
use av_perception::system::RatePlan;
use av_scenarios::catalog::{Scenario, ScenarioId};
use av_sim::engine::StepOutcome;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    // Whole-scenario iterations are ~100 ms each; keep the suite's wall
    // time bounded.
    group.sample_size(10);
    group.bench_function("tick_vehicle_following", |b| {
        b.iter_batched(
            || {
                Scenario::build(ScenarioId::VehicleFollowing, 0)
                    .simulation(RatePlan::Uniform(Fpr(30.0)))
                    .expect("uniform plan is valid")
            },
            |mut sim| {
                for _ in 0..100 {
                    if sim.step() != StepOutcome::Running {
                        break;
                    }
                }
                black_box(sim.time())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    for id in [ScenarioId::CutOut, ScenarioId::ChallengingCutInCurved] {
        group.bench_with_input(
            BenchmarkId::new("full_scenario", id.name()),
            &id,
            |b, &id| {
                b.iter(|| {
                    let trace = Scenario::build(id, 0).run_at(Fpr(30.0));
                    black_box(trace.scenes.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_steps);
criterion_main!(benches);
