//! Criterion bench: the per-actor tolerable-latency search, naive vs.
//! Eq.-3-accelerated inner loop (the paper's §2.1 optimization and
//! DESIGN.md ablation #1).

use av_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zhuyi::estimator::{EgoKinematics, TolerableLatencyEstimator};
use zhuyi::future::{ConstantAccelActor, FixedGapActor, StationaryActor};
use zhuyi::{SearchStrategy, ZhuyiConfig};

fn estimators() -> [(&'static str, TolerableLatencyEstimator); 2] {
    let accelerated =
        TolerableLatencyEstimator::new(ZhuyiConfig::paper()).expect("paper config is valid");
    let mut naive_cfg = ZhuyiConfig::paper();
    naive_cfg.strategy = SearchStrategy::Naive;
    let naive = TolerableLatencyEstimator::new(naive_cfg).expect("naive config is valid");
    [("accelerated", accelerated), ("naive", naive)]
}

fn bench_search(c: &mut Criterion) {
    let ego = EgoKinematics::new(MetersPerSecond(26.8), MetersPerSecondSquared::ZERO);
    let l0 = Seconds(1.0 / 30.0);
    let mut group = c.benchmark_group("tolerable_latency");
    for (name, estimator) in estimators() {
        group.bench_function(BenchmarkId::new("stationary_60m", name), |b| {
            let future = StationaryActor::new(Meters(60.0));
            b.iter(|| black_box(estimator.tolerable_latency(black_box(ego), &future, l0)))
        });
        group.bench_function(BenchmarkId::new("braking_lead_50m", name), |b| {
            let future = ConstantAccelActor::new(
                Meters(50.0),
                MetersPerSecond(26.8),
                MetersPerSecondSquared(-6.0),
            );
            b.iter(|| black_box(estimator.tolerable_latency(black_box(ego), &future, l0)))
        });
        group.bench_function(BenchmarkId::new("infeasible_10m", name), |b| {
            let future = FixedGapActor::new(Meters(10.0), MetersPerSecond::ZERO);
            b.iter(|| black_box(estimator.tolerable_latency(black_box(ego), &future, l0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
