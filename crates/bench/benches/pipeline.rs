//! Criterion bench: a full per-timestep Zhuyi pass (all actors, Eq. 4
//! aggregation, Eq. 5 camera folding) as a function of scene size and
//! prediction-set size — the quantities |A| and |T| of the paper's §4.2
//! compute-demand formula.

use av_core::prelude::*;
use av_core::scene::Scene;
use av_perception::rig::CameraRig;
use av_prediction::kinematic::ConstantVelocity;
use av_prediction::maneuver::{ManeuverConfig, ManeuverPredictor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zhuyi_runtime::online::{OnlineConfig, OnlineEstimator};

/// A perceived scene with `n` actors spread over the three lanes.
fn scene(n: usize) -> Scene {
    let ego = Agent::new(
        ActorId::EGO,
        ActorKind::Vehicle,
        Dimensions::CAR,
        VehicleState::new(
            Vec2::new(0.0, 3.7),
            Radians(0.0),
            MetersPerSecond(26.8),
            MetersPerSecondSquared::ZERO,
        ),
    );
    let actors = (0..n)
        .map(|i| {
            let lane = (i % 3) as f64 * 3.7;
            let x = 25.0 + 18.0 * i as f64;
            Agent::new(
                ActorId(i as u32 + 1),
                ActorKind::Vehicle,
                Dimensions::CAR,
                VehicleState::new(
                    Vec2::new(x, lane),
                    Radians(0.0),
                    MetersPerSecond(20.0 + (i % 4) as f64),
                    MetersPerSecondSquared(if i % 3 == 0 { -2.0 } else { 0.0 }),
                ),
            )
        })
        .collect();
    Scene::new(Seconds(0.0), ego, actors)
}

fn bench_pipeline(c: &mut Criterion) {
    let estimator = OnlineEstimator::new(OnlineConfig::default()).expect("valid config");
    let path = Path::straight(Vec2::new(-100.0, 0.0), Radians(0.0), Meters(3000.0));
    let rig = CameraRig::drive_av();
    let l0 = Seconds(1.0 / 30.0);

    let mut group = c.benchmark_group("online_step");
    group.sample_size(30);
    for actors in [1usize, 2, 4, 8] {
        let sc = scene(actors);
        group.bench_with_input(
            BenchmarkId::new("cv_single_future", actors),
            &sc,
            |b, sc| {
                b.iter(|| {
                    black_box(estimator.estimate(black_box(sc), &path, &rig, &ConstantVelocity, l0))
                })
            },
        );
    }
    // Multi-hypothesis prediction set (|T| = 3-4 per actor).
    let maneuver = ManeuverPredictor::new(path.clone(), ManeuverConfig::default());
    let sc = scene(4);
    group.bench_function("maneuver_multi_future_4_actors", |b| {
        b.iter(|| black_box(estimator.estimate(black_box(&sc), &path, &rig, &maneuver, l0)))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
