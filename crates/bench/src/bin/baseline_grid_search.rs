//! Baseline comparison: Suraksha-style grid search vs. Zhuyi (paper §5).
//!
//! The paper's related work argues that "the grid search adopted in
//! Suraksha could easily become infeasible in \[a\] multi-camera setting".
//! This harness makes that argument quantitative on our substrate:
//!
//! 1. **Uniform grid search** — find the minimum safe uniform FPR by
//!    running the closed-loop scenario at every candidate rate (what
//!    Suraksha does for a single-camera setting);
//! 2. **Per-camera grid search** — the same over independent
//!    front/left/right rates: the search space is exponential in the
//!    camera count;
//! 3. **Zhuyi** — one 30-FPR run plus the offline model, giving per-camera
//!    requirements directly.
//!
//! Run: `cargo run --release -p zhuyi-bench --bin baseline_grid_search`

use av_core::prelude::*;
use av_perception::camera::CameraKind;
use av_perception::rig::CameraRig;
use av_perception::system::RatePlan;
use av_scenarios::catalog::{Scenario, ScenarioId};
use zhuyi_bench::figures::run_and_analyze;
use zhuyi_bench::{write_results, Table};

/// Builds a per-camera plan: the `front` knob drives both front cameras
/// (otherwise the 60° camera would silently cover for a throttled 120°
/// one), the side knobs drive the side cameras, and the rear camera stays
/// at 30.
fn plan(rig: &CameraRig, front: f64, left: f64, right: f64) -> RatePlan {
    let mut rates = vec![Fpr(30.0); rig.len()];
    for (kind, rate) in [
        (CameraKind::FrontWide, front),
        (CameraKind::FrontNarrow, front),
        (CameraKind::Left, left),
        (CameraKind::Right, right),
    ] {
        if let Some(id) = rig.find(kind) {
            rates[id.0] = Fpr(rate);
        }
    }
    RatePlan::PerCamera(rates)
}

fn main() {
    let id = ScenarioId::CutOutFast;
    let scenario = Scenario::build(id, 0);
    let rig = CameraRig::drive_av();
    println!("== Baseline: grid search vs. Zhuyi ({}) ==\n", id.name());

    // --- 1. Uniform grid search (single-knob Suraksha setting).
    let mut sims = 0u32;
    let candidates = [1u32, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 30];
    let mut uniform_mrf = None;
    for &fpr in candidates.iter().rev() {
        let trace = scenario.run_at(Fpr(f64::from(fpr)));
        sims += 1;
        if trace.collided() {
            break; // rates are descending; previous candidate was minimal
        }
        uniform_mrf = Some(fpr);
    }
    let uniform_sims = sims;
    println!(
        "uniform grid search: minimum safe uniform rate = {} FPR ({} simulations)",
        uniform_mrf.map_or("-".into(), |f| f.to_string()),
        uniform_sims
    );

    // --- 2. Per-camera grid search over front x left x right.
    let grid = [1.0, 5.0, 10.0, 30.0];
    let mut evaluated = 0u32;
    let mut best: Option<(f64, f64, f64, f64)> = None; // (sum, f, l, r)
    for &f in &grid {
        for &l in &grid {
            for &r in &grid {
                evaluated += 1;
                let trace = scenario
                    .simulation(plan(&rig, f, l, r))
                    .expect("valid plan")
                    .run();
                if !trace.collided() {
                    let sum = f + l + r;
                    if best.is_none_or(|(s, ..)| sum < s) {
                        best = Some((sum, f, l, r));
                    }
                }
            }
        }
    }
    let (sum, f, l, r) = best.expect("some grid point is safe");
    println!(
        "per-camera grid search: cheapest safe allocation front={f} left={l} right={r} \
         (sum {sum}; {evaluated} simulations over a {}-point grid; 12 cameras would need {} points)",
        grid.len().pow(3),
        grid.len().pow(12),
    );

    // --- 3. Zhuyi: one reference run + the model.
    let (_, analysis) = run_and_analyze(id, 0, 30.0, 10);
    let peak = |kind: CameraKind| {
        analysis
            .camera_latency_series(kind)
            .iter()
            .map(|(_, lat)| Fpr::from_latency(*lat).value())
            .fold(0.0_f64, f64::max)
    };
    let (zf, zl, zr) = (
        peak(CameraKind::FrontWide),
        peak(CameraKind::Left),
        peak(CameraKind::Right),
    );
    println!(
        "Zhuyi: per-camera requirements front={zf:.1} left={zl:.1} right={zr:.1} \
         (1 simulation + the model)\n"
    );

    // Validate Zhuyi's allocation closed-loop.
    let trace = scenario
        .simulation(plan(&rig, zf.ceil(), zl.ceil(), zr.ceil()))
        .expect("valid plan")
        .run();
    println!(
        "closed-loop check of the Zhuyi allocation (ceil'd): {}",
        if trace.collided() {
            "COLLISION"
        } else {
            "safe"
        }
    );

    let mut table = Table::new(["method", "simulations", "front", "left", "right"]);
    table.row([
        "uniform grid".to_string(),
        uniform_sims.to_string(),
        uniform_mrf.map_or("-".into(), |v| v.to_string()),
        uniform_mrf.map_or("-".into(), |v| v.to_string()),
        uniform_mrf.map_or("-".into(), |v| v.to_string()),
    ]);
    table.row([
        "per-camera grid".to_string(),
        evaluated.to_string(),
        format!("{f}"),
        format!("{l}"),
        format!("{r}"),
    ]);
    table.row([
        "Zhuyi".to_string(),
        "1".to_string(),
        format!("{zf:.1}"),
        format!("{zl:.1}"),
        format!("{zr:.1}"),
    ]);
    println!("\n{}", table.render());
    println!(
        "The grid search cost grows as grid^cameras; Zhuyi's stays one run. \
         This is the paper's Suraksha infeasibility argument, measured."
    );
    let path = write_results("baseline_grid_search.csv", &table.to_csv());
    println!("written to {}", path.display());
}
