//! Figure 4: per-camera latency estimates for the *Cut-out fast* scenario.
//!
//! Panels (b)-(d) are the left/front/right camera tolerable-latency series
//! produced by the offline Zhuyi pipeline over a 30-FPR ground-truth
//! trace; panel (e) is the ego's acceleration. The paper's observations to
//! look for: the front camera tightens to ~167 ms during the reveal while
//! the side cameras stay at >= 500 ms, and front-camera demand correlates
//! with ego deceleration.
//!
//! Run: `cargo run --release -p zhuyi-bench --bin fig4_cut_out_fast`

use av_scenarios::catalog::ScenarioId;
use zhuyi_bench::figures::{emit_camera_figure, run_and_analyze};

fn main() {
    let (trace, analysis) = run_and_analyze(ScenarioId::CutOutFast, 0, 30.0, 10);
    assert!(!trace.collided(), "the 30-FPR reference run must be safe");
    emit_camera_figure(
        "Figure 4: Cut-out fast (40 mph), per-camera latency estimates",
        "fig4_cut_out_fast",
        &analysis,
    );
}
