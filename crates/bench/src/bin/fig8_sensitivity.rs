//! Figure 8: estimated minimum FPR over (ego speed, actor end velocity)
//! with a fixed tolerable distance s_n.
//!
//! Two heat maps (s_n = 30 m and 100 m), swept over 0–70 mph on both
//! axes. Cells print the required FPR; `30+` marks rates above the
//! 30-FPR reference (gray in the paper) and `X` marks unavoidable
//! collisions (white in the paper).
//!
//! Run: `cargo run --release -p zhuyi-bench --bin fig8_sensitivity`
//! (add `-- --aggregate` to print the per-mode ablation of Eq. 4 — the
//! DESIGN.md item on aggregation functions.)

use av_core::prelude::*;
use zhuyi::sensitivity::{paper_axis, sweep_fixed_gap, CellOutcome, SensitivityGrid};
use zhuyi::ZhuyiConfig;
use zhuyi_bench::{write_results, Table};

fn cell_label(cell: &CellOutcome) -> String {
    match cell {
        CellOutcome::RequiredFpr(f) => format!("{f:.1}"),
        CellOutcome::AboveLimit => "30+".into(),
        CellOutcome::Unavoidable => "X".into(),
    }
}

fn emit(grid: &SensitivityGrid, stem: &str) {
    println!(
        "-- s_n = {:.0} m (rows: ego speed, columns: actor end velocity, both mph) --",
        grid.gap.value()
    );
    let mut header: Vec<String> = vec!["ve0\\van".into()];
    header.extend(
        grid.actor_speeds
            .iter()
            .map(|v| format!("{:.0}", v.value())),
    );
    let mut table = Table::new(header);
    for (i, ve) in grid.ego_speeds.iter().enumerate() {
        let mut row = vec![format!("{:.0}", ve.value())];
        row.extend(grid.cells[i].iter().map(cell_label));
        table.row(row);
    }
    println!("{}", table.render());
    let (finite, above, unavoidable) = grid.census();
    println!(
        "cells: {finite} feasible, {above} above 30 FPR, {unavoidable} unavoidable; \
         max finite requirement {:.1} FPR\n",
        grid.max_finite_fpr().unwrap_or(f64::NAN)
    );
    let path = write_results(&format!("{stem}.csv"), &table.to_csv());
    println!("written to {}\n", path.display());
}

fn main() {
    let ablate = std::env::args().any(|a| a == "--aggregate");
    println!("== Figure 8: minimum-FPR sensitivity over velocities ==\n");
    println!(
        "(following the paper's setting, the confirmation-delay term is \
         inactive here: l0 = max latency)\n"
    );
    let axis = paper_axis();
    for (gap, stem) in [(30.0, "fig8a_sn30"), (100.0, "fig8b_sn100")] {
        let grid = sweep_fixed_gap(ZhuyiConfig::paper(), Meters(gap), &axis, &axis, Fpr(1.0))
            .expect("paper config is valid");
        emit(&grid, stem);
    }

    if ablate {
        // Ablation: how the corridor margin (the lateral-overlap gate)
        // shifts nothing here (fixed-gap actors are always in corridor),
        // but the search-strategy choice does change cost; see the
        // Criterion benches. What *is* sweepable here is the braking
        // conservatism C1.
        println!("== C1 ablation at s_n = 30 m (max finite FPR per C1) ==");
        let mut table = Table::new(["C1", "max finite FPR", "unavoidable cells"]);
        for c1 in [0.8, 0.9, 1.0] {
            let mut cfg = ZhuyiConfig::paper();
            cfg.c1 = c1;
            let grid =
                sweep_fixed_gap(cfg, Meters(30.0), &axis, &axis, Fpr(1.0)).expect("valid config");
            let (_, _, unavoidable) = grid.census();
            table.row([
                format!("{c1:.1}"),
                format!("{:.1}", grid.max_finite_fpr().unwrap_or(f64::NAN)),
                unavoidable.to_string(),
            ]);
        }
        println!("{}", table.render());
    }
}
