//! Batched-vs-per-rate audit + retirement accounting over the corpus.
//!
//! `certprobe [seeds]` runs every Table-1 scenario × jitter seed × the
//! paper rate grid through both the per-rate probe and the lane-batched
//! verdict pass, asserts verdict equality everywhere, and reports how
//! many ticks lane retirement saved. This is the tuning loop for the
//! `av_sim::batch::cert` envelopes (`ZHUYI_CERT_DEBUG=1` explains every
//! decline).
use av_core::prelude::*;
use av_scenarios::catalog::{Scenario, ScenarioId, PAPER_RATE_GRID};
use av_scenarios::sweep::SweepContext;

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let mut tot_ticks = 0u64;
    let mut tot_retired = 0u64;
    let mut mismatches = 0usize;
    for id in ScenarioId::ALL {
        let mut ticks = 0u64;
        let mut retired = 0u64;
        let mut certified = 0usize;
        let mut collided = 0usize;
        for seed in 0..seeds {
            let scenario = Scenario::build(id, seed);
            let mut context = SweepContext::new(&scenario);
            let rates: Vec<Fpr> = PAPER_RATE_GRID.iter().map(|&c| Fpr(c as f64)).collect();
            let (verdicts, stats) = context.collides_batched_with_stats(&rates);
            for (k, &rate) in rates.iter().enumerate() {
                let reference = context.collides_at(rate);
                if verdicts[k] != reference {
                    mismatches += 1;
                    eprintln!(
                        "MISMATCH {id} seed {seed} rate {rate}: batched {} vs per-rate {}",
                        verdicts[k], reference
                    );
                }
            }
            ticks += stats.lane_ticks;
            retired += stats.ticks_retired;
            certified += stats.certified_lanes;
            collided += stats.collided_lanes;
        }
        let lanes = seeds as usize * PAPER_RATE_GRID.len();
        println!(
            "{:<38} ticks {:>8} retired {:>8} ({:>4.1}%) certified {:>3}/{lanes} collided {:>3}",
            id.name(),
            ticks,
            retired,
            100.0 * retired as f64 / (ticks + retired) as f64,
            certified,
            collided
        );
        tot_ticks += ticks;
        tot_retired += retired;
    }
    println!(
        "TOTAL retired {:.1}%  mismatches {}",
        100.0 * tot_retired as f64 / (tot_ticks + tot_retired) as f64,
        mismatches
    );
    assert_eq!(mismatches, 0, "batched verdicts diverged from per-rate");
}
