//! Batched-vs-per-rate audit + retirement accounting over the corpus.
//!
//! `certprobe [seeds] [--check]` runs every Table-1 scenario × jitter
//! seed × the paper rate grid through both the per-rate probe and the
//! lane-batched verdict pass, asserts verdict equality everywhere, and
//! reports how many ticks lane retirement saved. This is the tuning loop
//! for the `av_sim::batch::cert` envelopes (`ZHUYI_CERT_DEBUG=1` explains
//! every decline).
//!
//! `--check` additionally enforces per-scenario retirement-rate floors,
//! so an envelope regression that quietly stops retiring lanes fails CI
//! instead of just slowing the sweep down.
use av_core::prelude::*;
use av_scenarios::catalog::{Scenario, ScenarioId, PAPER_RATE_GRID};
use av_scenarios::sweep::SweepContext;
use std::process::ExitCode;

/// Minimum acceptable retirement percentage per Table-1 scenario,
/// calibrated against `certprobe 3` (measured: Cut-out 37.4, Cut-out fast
/// 58.0, Cut-in 17.0, Challenging cut-in 36.2, curved 47.0, Vehicle
/// following 54.1, Front & right 77.6 / 79.5 / 55.2) with a wide margin
/// for jitter-seed variation. A scenario dropping below its floor means
/// the certification envelopes stopped retiring lanes there.
const RETIREMENT_FLOORS: [(ScenarioId, f64); 9] = [
    (ScenarioId::CutOut, 30.0),
    (ScenarioId::CutOutFast, 50.0),
    (ScenarioId::CutIn, 11.0),
    (ScenarioId::ChallengingCutIn, 29.0),
    (ScenarioId::ChallengingCutInCurved, 39.0),
    (ScenarioId::VehicleFollowing, 46.0),
    (ScenarioId::FrontRightActivity1, 70.0),
    (ScenarioId::FrontRightActivity2, 72.0),
    (ScenarioId::FrontRightActivity3, 47.0),
];

fn main() -> ExitCode {
    let mut seeds: u64 = 5;
    let mut check = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else if let Ok(n) = arg.parse() {
            seeds = n;
        } else {
            eprintln!("error: unknown argument {arg:?}\nUSAGE: certprobe [seeds] [--check]");
            return ExitCode::from(2);
        }
    }
    let mut tot_ticks = 0u64;
    let mut tot_retired = 0u64;
    let mut mismatches = 0usize;
    let mut below_floor = 0usize;
    for id in ScenarioId::ALL {
        let mut ticks = 0u64;
        let mut retired = 0u64;
        let mut certified = 0usize;
        let mut collided = 0usize;
        let mut idle = 0u64;
        let mut fallbacks = 0u64;
        let mut declines = 0u64;
        for seed in 0..seeds {
            let scenario = Scenario::build(id, seed);
            let mut context = SweepContext::new(&scenario);
            let rates: Vec<Fpr> = PAPER_RATE_GRID.iter().map(|&c| Fpr(c as f64)).collect();
            let (verdicts, stats) = context.collides_batched_with_stats(&rates);
            for (k, &rate) in rates.iter().enumerate() {
                let reference = context.collides_at(rate);
                if verdicts[k] != reference {
                    mismatches += 1;
                    eprintln!(
                        "MISMATCH {id} seed {seed} rate {rate}: batched {} vs per-rate {}",
                        verdicts[k], reference
                    );
                }
            }
            ticks += stats.lane_ticks;
            retired += stats.ticks_retired;
            certified += stats.certified_lanes;
            collided += stats.collided_lanes;
            idle += stats.idle_lane_ticks;
            fallbacks += stats.prefilter_fallbacks;
            declines += stats.cert_declines;
        }
        let lanes = seeds as usize * PAPER_RATE_GRID.len();
        let rate = 100.0 * retired as f64 / (ticks + retired) as f64;
        let idle_pct = 100.0 * idle as f64 / ticks.max(1) as f64;
        println!(
            "{:<38} ticks {:>8} retired {:>8} ({rate:>4.1}%) certified {:>3}/{lanes} collided {:>3} idle {idle_pct:>4.1}% fallbacks {fallbacks:>7} declines {declines:>4}",
            id.name(),
            ticks,
            retired,
            certified,
            collided
        );
        if check {
            let (_, floor) = RETIREMENT_FLOORS
                .iter()
                .find(|(fid, _)| *fid == id)
                .expect("every catalog scenario has a retirement floor");
            if rate < *floor {
                below_floor += 1;
                eprintln!(
                    "FLOOR {}: retirement {rate:.1}% is below the {floor:.1}% floor",
                    id.name()
                );
            }
        }
        tot_ticks += ticks;
        tot_retired += retired;
    }
    println!(
        "TOTAL retired {:.1}%  mismatches {}",
        100.0 * tot_retired as f64 / (tot_ticks + tot_retired) as f64,
        mismatches
    );
    assert_eq!(mismatches, 0, "batched verdicts diverged from per-rate");
    if below_floor > 0 {
        eprintln!("error: {below_floor} scenario(s) below their retirement floor");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
