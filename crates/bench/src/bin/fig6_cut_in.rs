//! Figure 6: per-camera latency estimates for the *Cut-in* scenario.
//!
//! The paper's observations: side cameras sit at the 1000 ms maximum (no
//! side actors), and the tightest front-camera estimate coincides with the
//! ego's *second* deceleration dip (when the ego has closed on the
//! settled-in actor), not the largest deceleration.
//!
//! Run: `cargo run --release -p zhuyi-bench --bin fig6_cut_in`

use av_scenarios::catalog::ScenarioId;
use zhuyi_bench::figures::{emit_camera_figure, run_and_analyze};

fn main() {
    let (trace, analysis) = run_and_analyze(ScenarioId::CutIn, 0, 30.0, 10);
    assert!(!trace.collided(), "the 30-FPR reference run must be safe");
    emit_camera_figure(
        "Figure 6: Cut-in (70 mph), per-camera latency estimates",
        "fig6_cut_in",
        &analysis,
    );
}
