//! Extensions of paper §5: perception-uncertainty and yet-to-be-detected
//! objects.
//!
//! Two tables beyond the paper's evaluation:
//!
//! 1. **Necessary accuracy** — for a vehicle-following situation, the
//!    largest detector position error each processing rate tolerates
//!    (the quantization/pruning budget of §5's accuracy-vs-compute
//!    trade-off).
//! 2. **Phantom floors** — the per-camera minimum FPR implied by a
//!    hypothetical stationary obstacle at the sensing boundary, as a
//!    function of ego speed (the "yet-to-be-detected objects" direction).
//!
//! Run: `cargo run --release -p zhuyi-bench --bin necessary_accuracy`

use av_core::prelude::*;
use zhuyi::estimator::{EgoKinematics, SearchOutcome, TolerableLatencyEstimator};
use zhuyi::future::ConstantAccelActor;
use zhuyi::phantom::phantom_requirement;
use zhuyi::uncertainty::required_accuracy;
use zhuyi::ZhuyiConfig;
use zhuyi_bench::{write_results, Table};

fn main() {
    let estimator =
        TolerableLatencyEstimator::new(ZhuyiConfig::paper()).expect("paper config is valid");
    let l0 = Seconds(1.0 / 30.0);

    println!("== Necessary perception accuracy (extension of paper 5) ==");
    println!("situation: 70 mph following, lead 50 m ahead braking hard at 6.5 m/s^2\n");
    let ego = EgoKinematics::new(Mph(70.0).into(), MetersPerSecondSquared::ZERO);
    let lead =
        ConstantAccelActor::new(Meters(50.0), Mph(70.0).into(), MetersPerSecondSquared(-6.5));
    let mut acc_table = Table::new(["processing rate (FPR)", "tolerable position error (m)"]);
    for fpr in [30.0, 15.0, 10.0, 8.0, 6.0, 5.0, 4.0] {
        let sigma = required_accuracy(&estimator, ego, &lead, Fpr(fpr), Meters(45.0), l0);
        acc_table.row([
            format!("{fpr:.0}"),
            sigma.map_or("rate insufficient".into(), |s| format!("{:.1}", s.value())),
        ]);
    }
    println!("{}", acc_table.render());
    println!(
        "Reading: a detector quantized/pruned until its worst-case position \
         error\nreaches the listed bound still supports the listed rate.\n"
    );

    println!("== Phantom floors: yet-to-be-detected objects ==");
    println!("front camera, 150 m sensing range, empty FOV\n");
    let mut floor_table = Table::new(["ego speed", "floor latency", "floor FPR"]);
    for mph in [20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0] {
        let ego = EgoKinematics::new(Mph(mph).into(), MetersPerSecondSquared::ZERO);
        let est = phantom_requirement(&estimator, ego, Meters(150.0), l0);
        floor_table.row([
            format!("{mph:.0} mph"),
            if est.outcome == SearchOutcome::Infeasible {
                "overdriving sensors".to_string()
            } else {
                format!("{:.0} ms", est.latency.as_millis())
            },
            format!("{:.1}", est.fpr().value()),
        ]);
    }
    println!("{}", floor_table.render());
    println!(
        "Reading: even an empty field of view implies a speed-dependent \
         minimum rate\n(replacing Eq. 5's flat 1-FPR idle floor)."
    );
    let path = write_results(
        "necessary_accuracy.csv",
        &format!("{}\n{}", acc_table.to_csv(), floor_table.to_csv()),
    );
    println!("written to {}", path.display());
}
