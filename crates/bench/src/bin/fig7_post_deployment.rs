//! Figure 7: post-deployment latency estimate for the *Cut-in* scenario.
//!
//! The online Zhuyi estimator runs inside the AV loop: current states come
//! from the perceived world model, future states from a trajectory
//! predictor. The figure compares the resulting front-camera latency
//! series against the pre-deployment (ground-truth oracle) series of
//! Fig. 6 — the paper attributes most of the variance between them to the
//! difference in future predictions, which this binary quantifies by
//! running both a constant-velocity and a multi-hypothesis maneuver
//! predictor.
//!
//! Run: `cargo run --release -p zhuyi-bench --bin fig7_post_deployment`

use av_core::prelude::*;
use av_perception::camera::CameraKind;
use av_perception::system::RatePlan;
use av_prediction::kinematic::ConstantVelocity;
use av_prediction::maneuver::{ManeuverConfig, ManeuverPredictor};
use av_prediction::predictor::TrajectoryPredictor;
use av_scenarios::catalog::{Scenario, ScenarioId};
use zhuyi::Aggregation;
use zhuyi_bench::figures::run_and_analyze;
use zhuyi_bench::{write_results, Table};
use zhuyi_runtime::online::OnlineConfig;
use zhuyi_runtime::system::{drive, RuntimeConfig, ZhuyiRuntime};

fn online_front_series(
    scenario: &Scenario,
    predictor: &dyn TrajectoryPredictor,
) -> Vec<(f64, f64)> {
    online_front_series_with(scenario, predictor, Aggregation::WorstCase)
}

fn online_front_series_with(
    scenario: &Scenario,
    predictor: &dyn TrajectoryPredictor,
    aggregation: Aggregation,
) -> Vec<(f64, f64)> {
    let sim = scenario
        .simulation(RatePlan::Uniform(Fpr(30.0)))
        .expect("uniform plan is valid");
    let runtime = ZhuyiRuntime::new(RuntimeConfig {
        online: OnlineConfig {
            aggregation,
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("paper config is valid");
    let (trace, decisions) = drive(sim, &runtime, predictor);
    assert!(!trace.collided(), "the 30-FPR online run must be safe");
    decisions
        .iter()
        .filter_map(|d| {
            d.estimates
                .camera(CameraKind::FrontWide)
                .map(|c| (d.time.value(), c.latency.as_millis()))
        })
        .collect()
}

fn main() {
    let scenario = Scenario::build(ScenarioId::CutIn, 0);

    // Pre-deployment reference (Fig. 6's front panel).
    let (_, offline) = run_and_analyze(ScenarioId::CutIn, 0, 30.0, 10);
    let offline_series: Vec<(f64, f64)> = offline
        .camera_latency_series(CameraKind::FrontWide)
        .iter()
        .map(|(t, l)| (t.value(), l.as_millis()))
        .collect();

    // Post-deployment: perceived state + predicted futures.
    let cv_series = online_front_series(&scenario, &ConstantVelocity);
    let maneuver = ManeuverPredictor::new(scenario.road.path().clone(), ManeuverConfig::default());
    let mh_series = online_front_series(&scenario, &maneuver);

    println!("== Figure 7: post-deployment front-camera latency, Cut-in ==\n");
    let mut table = Table::new([
        "time_s",
        "offline_oracle_ms",
        "online_cv_ms",
        "online_maneuver_ms",
    ]);
    let lookup = |series: &[(f64, f64)], t: f64| -> f64 {
        series
            .iter()
            .min_by(|a, b| {
                (a.0 - t)
                    .abs()
                    .partial_cmp(&(b.0 - t).abs())
                    .expect("finite times")
            })
            .map_or(f64::NAN, |(_, v)| *v)
    };
    let end = offline_series.last().map_or(0.0, |(t, _)| *t);
    let mut t = 0.0;
    while t <= end {
        table.row([
            format!("{t:.1}"),
            format!("{:.0}", lookup(&offline_series, t)),
            format!("{:.0}", lookup(&cv_series, t)),
            format!("{:.0}", lookup(&mh_series, t)),
        ]);
        t += 0.5;
    }
    println!("{}", table.render());

    let min_of =
        |series: &[(f64, f64)]| series.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
    println!("tightest front-camera latency (ms):");
    println!("  offline oracle      : {:.0}", min_of(&offline_series));
    println!("  online, CV futures  : {:.0}", min_of(&cv_series));
    println!("  online, maneuver set: {:.0}", min_of(&mh_series));

    // Eq.-4 aggregation ablation over the same maneuver hypothesis set.
    println!("\nmaneuver set under other Eq.-4 aggregations (tightest ms):");
    for (label, agg) in [
        ("mean      ", Aggregation::Mean),
        ("p99       ", Aggregation::P99),
        ("worst case", Aggregation::WorstCase),
    ] {
        let series = online_front_series_with(&scenario, &maneuver, agg);
        println!("  {label}: {:.0}", min_of(&series));
    }
    println!(
        "\nThe online estimates vary with the predictor — the paper's analysis \
         that \"the main latency differences are due to the differences in \
         future predictions\"."
    );
    let path = write_results("fig7_post_deployment.csv", &table.to_csv());
    println!("written to {}", path.display());
}
