//! Figure 5: per-camera latency estimates for *Challenging cut-in on a
//! curved road*.
//!
//! The paper's observations: the cut-in forces hard ego braking and the
//! highest front-camera FPR requirement, while the side cameras stay at a
//! maximum of ~2 FPR even though an actor cuts in from the adjacent lane.
//!
//! Run: `cargo run --release -p zhuyi-bench --bin fig5_curved_cut_in`

use av_scenarios::catalog::ScenarioId;
use zhuyi_bench::figures::{emit_camera_figure, run_and_analyze};

fn main() {
    let (trace, analysis) = run_and_analyze(ScenarioId::ChallengingCutInCurved, 0, 30.0, 10);
    assert!(!trace.collided(), "the 30-FPR reference run must be safe");
    emit_camera_figure(
        "Figure 5: Challenging cut-in on a curved road (40 mph)",
        "fig5_curved_cut_in",
        &analysis,
    );
}
