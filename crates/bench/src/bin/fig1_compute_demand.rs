//! Figure 1: expected throughput demand for state-of-the-art camera
//! perception versus in-vehicle SoC capability.
//!
//! Regenerates the paper's motivating figure: the TOPS demand of SSD-Large
//! perception on 12 cameras (+20% feature-sharing models) at 10–40 FPR,
//! against NVIDIA DRIVE AGX Xavier and Jetson AGX Orin.
//!
//! Run: `cargo run -p zhuyi-bench --bin fig1_compute_demand`

use compute_model::{PerceptionWorkload, Soc};
use zhuyi_bench::{write_results, Table};

fn main() {
    let workload = PerceptionWorkload::paper_default();
    let socs = [Soc::xavier(), Soc::orin()];
    let rates = [10.0, 20.0, 30.0, 40.0];

    println!("== Figure 1: camera-perception compute demand vs. SoC capability ==");
    println!(
        "workload: {} cameras x {} Gops/frame x {:.1} overhead\n",
        workload.cameras, workload.gops_per_frame, workload.feature_reuse_overhead
    );

    let mut table = Table::new([
        "per-camera FPR",
        "demand (TOPS)",
        "Xavier (30)",
        "Orin (275)",
    ]);
    for &fpr in &rates {
        let demand = workload.tops_demand(fpr);
        table.row([
            format!("{fpr:.0}"),
            format!("{demand:.1}"),
            if socs[0].sustains(demand) {
                "ok"
            } else {
                "EXCEEDED"
            }
            .to_string(),
            if socs[1].sustains(demand) {
                "ok"
            } else {
                "EXCEEDED"
            }
            .to_string(),
        ]);
    }
    println!("{}", table.render());

    for soc in &socs {
        println!(
            "{}: sustains up to {:.1} FPR per camera",
            soc.name(),
            soc.max_sustainable_fpr(&workload)
        );
    }
    let zhuyi_fraction = 0.36;
    println!(
        "\nwith Zhuyi-style prioritization ({}% of frames), the 30-FPR demand drops \
         from {:.1} to {:.1} TOPS",
        (zhuyi_fraction * 100.0) as u32,
        workload.tops_demand(30.0),
        workload.tops_demand_at_fraction(30.0, zhuyi_fraction)
    );

    let path = write_results("fig1_compute_demand.csv", &table.to_csv());
    println!("series written to {}", path.display());
}
