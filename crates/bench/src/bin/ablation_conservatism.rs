//! Ablation: how each conservatism knob moves the estimate
//! (DESIGN.md §6, items 2–4).
//!
//! Sweeps C1 (distance margin), C2 (velocity margin), K (confirmation
//! frames) and the corridor margin over three representative situations,
//! reporting the tolerable latency each configuration grants. Monotone
//! behavior is the property suite's job; this binary quantifies the
//! magnitudes so a deployer can see what each 0.05 of margin costs.
//!
//! Run: `cargo run --release -p zhuyi-bench --bin ablation_conservatism`

use av_core::prelude::*;
use zhuyi::estimator::{EgoKinematics, TolerableLatencyEstimator};
use zhuyi::future::{ActorFuture, ConstantAccelActor, StationaryActor};
use zhuyi::ZhuyiConfig;
use zhuyi_bench::{write_results, Table};

fn situations() -> Vec<(&'static str, EgoKinematics, Box<dyn ActorFuture>)> {
    vec![
        (
            "city obstacle 60m @20m/s",
            EgoKinematics::new(MetersPerSecond(20.0), MetersPerSecondSquared::ZERO),
            Box::new(StationaryActor::new(Meters(60.0))),
        ),
        (
            "highway brake 50m @70mph",
            EgoKinematics::new(Mph(70.0).into(), MetersPerSecondSquared::ZERO),
            Box::new(ConstantAccelActor::new(
                Meters(50.0),
                Mph(70.0).into(),
                MetersPerSecondSquared(-6.5),
            )),
        ),
        (
            "slow lead 30m @60mph",
            EgoKinematics::new(Mph(60.0).into(), MetersPerSecondSquared::ZERO),
            Box::new(ConstantAccelActor::new(
                Meters(30.0),
                Mph(40.0).into(),
                MetersPerSecondSquared::ZERO,
            )),
        ),
    ]
}

fn latency_ms(cfg: ZhuyiConfig, ego: EgoKinematics, future: &dyn ActorFuture) -> String {
    let estimator = TolerableLatencyEstimator::new(cfg).expect("swept config is valid");
    let est = estimator.tolerable_latency(ego, future, Seconds(1.0 / 30.0));
    format!("{:.0}", est.latency.as_millis())
}

fn sweep(title: &str, configs: &[(String, ZhuyiConfig)]) -> Table {
    println!("-- {title} --");
    let mut header = vec!["situation".to_string()];
    header.extend(configs.iter().map(|(label, _)| label.clone()));
    let mut table = Table::new(header);
    for (name, ego, future) in &situations() {
        let mut row = vec![(*name).to_string()];
        for (_, cfg) in configs {
            row.push(latency_ms(*cfg, *ego, future.as_ref()));
        }
        table.row(row);
    }
    println!("{}", table.render());
    table
}

fn main() {
    println!("== Conservatism ablation: tolerable latency (ms) per knob ==\n");
    let base = ZhuyiConfig::paper();

    let c1: Vec<(String, ZhuyiConfig)> = [0.8, 0.9, 1.0]
        .iter()
        .map(|&v| (format!("C1={v}"), ZhuyiConfig { c1: v, ..base }))
        .collect();
    let t1 = sweep("C1 — distance margin (paper 0.9)", &c1);

    let c2: Vec<(String, ZhuyiConfig)> = [0.8, 0.9, 1.0]
        .iter()
        .map(|&v| (format!("C2={v}"), ZhuyiConfig { c2: v, ..base }))
        .collect();
    let t2 = sweep("C2 — velocity margin (paper 0.9)", &c2);

    let k: Vec<(String, ZhuyiConfig)> = [0u32, 3, 5, 8]
        .iter()
        .map(|&v| {
            (
                format!("K={v}"),
                ZhuyiConfig {
                    confirmation_frames: v,
                    ..base
                },
            )
        })
        .collect();
    let t3 = sweep("K — confirmation frames (paper 5)", &k);

    let brake: Vec<(String, ZhuyiConfig)> = [3.5, 4.9, 6.5]
        .iter()
        .map(|&v| {
            (
                format!("C3={v}"),
                ZhuyiConfig {
                    min_brake_decel: MetersPerSecondSquared(v),
                    ..base
                },
            )
        })
        .collect();
    let t4 = sweep("C3 — assumed braking decel, m/s^2 (paper 4.9)", &brake);

    println!(
        "Reading: larger C1/C2 (less margin) and stronger assumed braking relax \
         the estimate;\nmore confirmation frames tighten it. 1000 ms = the model \
         maximum (1 FPR)."
    );
    let csv = [t1, t2, t3, t4]
        .iter()
        .map(Table::to_csv)
        .collect::<Vec<_>>()
        .join("\n");
    let path = write_results("ablation_conservatism.csv", &csv);
    println!("written to {}", path.display());
}
