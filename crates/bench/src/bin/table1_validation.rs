//! Table 1: validation of the Zhuyi model across the nine driving
//! scenarios.
//!
//! For each scenario this harness reproduces every column of the paper's
//! Table 1:
//!
//! 1. **MRF** — the minimum required FPR, found by running the closed-loop
//!    simulation at FPR 1..30 and finding the rate above which no
//!    collision occurs (any seed);
//! 2. **Maximum estimated FPR per fixed-FPR run** — the offline Zhuyi
//!    pipeline applied to each collision-free trace, reporting the highest
//!    per-camera estimate over all cameras and times, averaged over seeds
//!    (the paper averages ten nondeterministic runs; we average seeded
//!    parameter jitters). `N/A` marks configurations that collided;
//! 3. **max(Fc1+Fc2+Fc3)** — the maximum over time of the summed front +
//!    left + right camera estimates, maximized across runs;
//! 4. **Fraction** — that sum relative to a 3-camera 30-FPR provisioning
//!    (the paper's headline "36% or fewer frames" claim).
//!
//! Run: `cargo run --release -p zhuyi-bench --bin table1_validation`
//! (add `-- --seeds N` to change the repeat count, `-- --quick` for a
//! 3-rate smoke pass).

use av_scenarios::catalog::{minimum_required_fpr, Mrf, ScenarioId, PAPER_RATE_GRID};
use zhuyi_bench::figures::{run_and_analyze, TABLE1_CAMERAS};
use zhuyi_bench::{fmt1, mean, write_results, Table};

/// One scenario's full Table-1 row.
struct Row {
    id: ScenarioId,
    mrf: Mrf,
    /// (fpr, mean max-estimate across seeds or None when collided)
    estimates: Vec<(u32, Option<f64>)>,
    max_sum: f64,
    fraction: f64,
}

fn scenario_row(id: ScenarioId, rates: &[u32], seeds: &[u64]) -> Row {
    let mrf = minimum_required_fpr(id, rates, seeds);
    let mut estimates = Vec::with_capacity(rates.len());
    let mut max_sum = 0.0_f64;
    for &fpr in rates {
        let mut per_seed = Vec::new();
        let mut any_collision = false;
        for &seed in seeds {
            let (trace, analysis) = run_and_analyze(id, seed, fpr as f64, 10);
            if trace.collided() {
                any_collision = true;
                continue;
            }
            if let Some(max_fpr) = analysis.max_camera_fpr() {
                per_seed.push(max_fpr.value());
            }
            if let Some(sum) = analysis.max_total_fpr(&TABLE1_CAMERAS) {
                max_sum = max_sum.max(sum.value());
            }
        }
        // The paper reports N/A for configurations run at or below the
        // MRF (i.e. with collisions).
        estimates.push((fpr, if any_collision { None } else { mean(&per_seed) }));
    }
    Row {
        id,
        mrf,
        estimates,
        max_sum,
        fraction: max_sum / 90.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds: Vec<u64> = args
        .iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok())
        .map_or_else(|| (0..3).collect(), |n| (0..n).collect());
    let rates: Vec<u32> = if args.iter().any(|a| a == "--quick") {
        vec![1, 5, 30]
    } else {
        PAPER_RATE_GRID.to_vec()
    };

    println!(
        "== Table 1: nine-scenario validation ({} seeds, rates {:?}) ==\n",
        seeds.len(),
        rates
    );

    // Scenarios are independent; fan out across threads.
    let mut rows: Vec<Option<Row>> = (0..ScenarioId::ALL.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, id) in ScenarioId::ALL.into_iter().enumerate() {
            let rates = &rates;
            let seeds = &seeds;
            handles.push((i, scope.spawn(move || scenario_row(id, rates, seeds))));
        }
        for (i, handle) in handles {
            rows[i] = Some(handle.join().expect("scenario worker panicked"));
        }
    });

    let mut header: Vec<String> = vec!["Scenario".into(), "Ego mph".into(), "MRF".into()];
    header.extend(rates.iter().map(|r| format!("@{r}")));
    header.push("max(Fc1+Fc2+Fc3)".into());
    header.push("Fraction".into());
    let mut table = Table::new(header);

    for row in rows.into_iter().flatten() {
        let mut cells: Vec<String> = vec![
            row.id.name().to_string(),
            format!("{:.0}", row.id.ego_speed().value()),
            row.mrf.to_string(),
        ];
        for (_, est) in &row.estimates {
            cells.push(match est {
                Some(v) => fmt1(Some(*v)),
                None => "N/A".into(),
            });
        }
        cells.push(format!("{:.1}", row.max_sum));
        cells.push(format!("{:.2}", row.fraction));
        table.row(cells);
    }
    println!("{}", table.render());
    println!(
        "Interpretation: estimated FPR must exceed the MRF in every scenario \
         (conservative estimates), and the fraction column shows how little of a \
         3x30-FPR provisioning safety actually needs."
    );
    let path = write_results("table1_validation.csv", &table.to_csv());
    println!("written to {}", path.display());
}
