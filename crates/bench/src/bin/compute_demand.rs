//! §4.2 "Compute demand": the cost of running the Zhuyi model itself.
//!
//! Reproduces the paper's accounting — work = |A|·|T|·M·L·C with C ≈ 100
//! ops per iteration, capped at 60 kOps for two actors with one predicted
//! trajectory each, executing "within 2 ms" on a 10+ GOPS processor — and
//! compares it against *measured* search effort and wall-clock time of
//! this implementation.
//!
//! Run: `cargo run --release -p zhuyi-bench --bin compute_demand`

use av_core::prelude::*;
use std::time::Instant;
use zhuyi::estimator::{EgoKinematics, TolerableLatencyEstimator};
use zhuyi::future::{ConstantAccelActor, StationaryActor};
use zhuyi::ops::{measured_ops, OpsBound};
use zhuyi::ZhuyiConfig;
use zhuyi_bench::{write_results, Table};

fn main() {
    let config = ZhuyiConfig::paper();
    println!("== Zhuyi model compute demand (paper 4.2) ==\n");

    let mut table = Table::new([
        "actors",
        "trajectories",
        "analytic bound (ops)",
        "t @10 GOPS (ms)",
    ]);
    for (a, t) in [(1, 1), (2, 1), (2, 5), (10, 5)] {
        let bound = OpsBound::for_config(&config, a, t);
        table.row([
            a.to_string(),
            t.to_string(),
            bound.total_ops().to_string(),
            format!("{:.3}", bound.execution_time_secs(10.0) * 1e3),
        ]);
    }
    println!("{}", table.render());
    let two_actor = OpsBound::for_config(&config, 2, 1);
    println!(
        "paper check: 2 actors, single future -> {} ops (paper: capped at 60 kOps)\n",
        two_actor.total_ops()
    );

    // Measured effort: run the real search on representative situations.
    let estimator = TolerableLatencyEstimator::new(config).expect("paper config is valid");
    let ego = EgoKinematics::new(MetersPerSecond(26.8), MetersPerSecondSquared::ZERO);
    let situations: [(&str, Box<dyn zhuyi::future::ActorFuture>); 3] = [
        (
            "stationary obstacle @60m",
            Box::new(StationaryActor::new(Meters(60.0))),
        ),
        (
            "braking lead @50m",
            Box::new(ConstantAccelActor::new(
                Meters(50.0),
                MetersPerSecond(26.8),
                MetersPerSecondSquared(-6.0),
            )),
        ),
        (
            "receding lead @40m",
            Box::new(ConstantAccelActor::new(
                Meters(40.0),
                MetersPerSecond(35.0),
                MetersPerSecondSquared::ZERO,
            )),
        ),
    ];
    let mut measured = Table::new(["situation", "evaluations", "est. ops", "wall time (us)"]);
    for (name, future) in &situations {
        let start = Instant::now();
        let mut last = None;
        // Repeat to get a stable wall-time (the search is microseconds).
        const REPS: u32 = 1000;
        for _ in 0..REPS {
            last = Some(estimator.tolerable_latency(ego, future.as_ref(), Seconds(1.0 / 30.0)));
        }
        let elapsed = start.elapsed().as_secs_f64() / f64::from(REPS);
        let est = last.expect("ran at least once");
        measured.row([
            (*name).to_string(),
            est.stats.constraint_evaluations.to_string(),
            measured_ops(&est.stats).to_string(),
            format!("{:.1}", elapsed * 1e6),
        ]);
    }
    println!("{}", measured.render());
    println!(
        "Every measured situation completes orders of magnitude inside the \
         paper's 2 ms budget."
    );
    let path = write_results("compute_demand.csv", &measured.to_csv());
    println!("written to {}", path.display());
}
