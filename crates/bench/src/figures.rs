//! Shared logic for the per-camera latency figures (paper Figs. 4–6) and
//! the Table-1 validation runs.

use crate::{write_results, Table};
use av_core::prelude::*;
use av_perception::camera::CameraKind;
use av_perception::rig::CameraRig;
use av_scenarios::catalog::{Scenario, ScenarioId};
use av_sim::trace::Trace;
use zhuyi::pipeline::{analyze_trace, PipelineConfig, TraceAnalysis};
use zhuyi::{TolerableLatencyEstimator, ZhuyiConfig};

/// The three cameras the paper's figures and Table-1 sums use.
pub const TABLE1_CAMERAS: [CameraKind; 3] =
    [CameraKind::FrontWide, CameraKind::Left, CameraKind::Right];

/// Runs `id` at a uniform `fpr` and applies the offline (pre-deployment)
/// Zhuyi pipeline to the recorded trace.
pub fn run_and_analyze(
    id: ScenarioId,
    seed: u64,
    fpr: f64,
    stride: usize,
) -> (Trace, TraceAnalysis) {
    let scenario = Scenario::build(id, seed);
    let trace = scenario.run_at(Fpr(fpr));
    let estimator =
        TolerableLatencyEstimator::new(ZhuyiConfig::paper()).expect("paper config is valid");
    let config = PipelineConfig {
        current_latency: Seconds(1.0 / fpr),
        stride,
        ..Default::default()
    };
    let analysis = analyze_trace(
        &trace.scenes,
        scenario.road.path(),
        &CameraRig::drive_av(),
        &estimator,
        &config,
    );
    (trace, analysis)
}

/// Emits one per-camera latency figure (panels b–e of Figs. 4–6): a
/// human-readable table on stdout plus a full-resolution CSV in
/// `results/`.
pub fn emit_camera_figure(title: &str, file_stem: &str, analysis: &TraceAnalysis) {
    println!("== {title} ==");
    let mut table = Table::new([
        "time_s",
        "left_latency_ms",
        "front_latency_ms",
        "right_latency_ms",
        "ego_accel_mps2",
        "ego_speed_mps",
    ]);
    for step in &analysis.steps {
        let latency_of = |kind: CameraKind| {
            step.cameras
                .iter()
                .find(|c| c.kind == kind)
                .map_or(f64::NAN, |c| c.latency.as_millis())
        };
        table.row([
            format!("{:.2}", step.time.value()),
            format!("{:.0}", latency_of(CameraKind::Left)),
            format!("{:.0}", latency_of(CameraKind::FrontWide)),
            format!("{:.0}", latency_of(CameraKind::Right)),
            format!("{:.2}", step.ego_accel.value()),
            format!("{:.2}", step.ego_speed.value()),
        ]);
    }
    let path = write_results(&format!("{file_stem}.csv"), &table.to_csv());
    // Downsample for the console: roughly 25 lines.
    let every = (analysis.steps.len() / 25).max(1);
    let mut console = Table::new(["t(s)", "left(ms)", "front(ms)", "right(ms)", "accel(m/s^2)"]);
    for step in analysis.steps.iter().step_by(every) {
        let latency_of = |kind: CameraKind| {
            step.cameras
                .iter()
                .find(|c| c.kind == kind)
                .map_or(f64::NAN, |c| c.latency.as_millis())
        };
        console.row([
            format!("{:.1}", step.time.value()),
            format!("{:.0}", latency_of(CameraKind::Left)),
            format!("{:.0}", latency_of(CameraKind::FrontWide)),
            format!("{:.0}", latency_of(CameraKind::Right)),
            format!("{:+.2}", step.ego_accel.value()),
        ]);
    }
    println!("{}", console.render());
    let front_max = analysis
        .camera_latency_series(CameraKind::FrontWide)
        .iter()
        .map(|(_, l)| Fpr::from_latency(*l).value())
        .fold(f64::NEG_INFINITY, f64::max);
    println!("front camera peak requirement: {front_max:.1} FPR");
    println!("full-resolution series written to {}\n", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_and_analyze_produces_steps() {
        let (trace, analysis) = run_and_analyze(ScenarioId::VehicleFollowing, 0, 30.0, 100);
        assert!(!trace.scenes.is_empty());
        assert!(!analysis.steps.is_empty());
        assert!(analysis.max_camera_fpr().is_some());
    }
}
