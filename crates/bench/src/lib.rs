//! Shared harness utilities for the experiment binaries that regenerate
//! every table and figure of the Zhuyi paper.
//!
//! Each `src/bin/*.rs` binary reproduces one artifact (see DESIGN.md's
//! experiment index); this library provides the common plumbing: aligned
//! ASCII tables, CSV export into `results/`, and tiny statistics helpers.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple aligned ASCII table printer.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// The rows as CSV lines (header first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// The directory experiment binaries write their CSVs into
/// (`<workspace>/results`).
pub fn results_dir() -> PathBuf {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("bench crate lives two levels under the workspace root")
        .to_path_buf();
    root.join("results")
}

/// Writes `contents` under `results/<name>`, creating the directory.
///
/// # Panics
///
/// Panics on I/O errors — experiment binaries have nothing better to do
/// with a failed write than abort loudly.
pub fn write_results(name: &str, contents: &str) -> PathBuf {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(name);
    let mut f = fs::File::create(&path).expect("create results file");
    f.write_all(contents.as_bytes())
        .expect("write results file");
    path
}

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Maximum of an `f64` slice; `None` for an empty slice.
pub fn max(values: &[f64]) -> Option<f64> {
    values.iter().copied().reduce(f64::max)
}

/// Formats an `f64` with one decimal, using `-` for `None`.
pub fn fmt1(value: Option<f64>) -> String {
    value.map_or_else(|| "-".to_string(), |v| format!("{v:.1}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["scenario", "mrf"]);
        t.row(["Cut-out", "2"]);
        t.row(["Cut-out fast", "6"]);
        let s = t.render();
        assert!(s.contains("Cut-out fast"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[1]
                .chars()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            1
        );
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(max(&[1.0, 5.0, 3.0]), Some(5.0));
        assert_eq!(fmt1(Some(1.25)), "1.2");
        assert_eq!(fmt1(None), "-");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        assert!(t.render().contains("only-one"));
        assert_eq!(t.to_csv().lines().nth(1), Some("only-one,,"));
    }
}
