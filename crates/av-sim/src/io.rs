//! Trace import/export as CSV.
//!
//! Scenario traces are the interface between the simulator and external
//! tooling (plotting, spreadsheet analysis, replaying a trace through the
//! Zhuyi pipeline in another process). One row per (tick, agent), columns
//! fixed and versioned by a header; everything is plain text so the files
//! diff well and need no extra dependencies.

use crate::trace::Trace;
use av_core::prelude::*;
use av_core::scene::Scene;
use std::fmt::Write as _;
use std::str::FromStr;

/// The exact header written and expected by this module.
pub const TRACE_CSV_HEADER: &str =
    "time_s,agent,kind,x_m,y_m,heading_rad,speed_mps,accel_mps2,length_m,width_m";

/// Error importing a trace from CSV.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceCsvError {
    /// The header row is missing or does not match [`TRACE_CSV_HEADER`].
    BadHeader {
        /// What was found instead.
        found: String,
    },
    /// A row does not have the expected number of fields.
    BadRowShape {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        fields: usize,
    },
    /// A field failed to parse.
    BadField {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: &'static str,
        /// Offending text.
        value: String,
    },
    /// Rows are not grouped by non-decreasing time.
    TimeNotMonotonic {
        /// 1-based line number.
        line: usize,
    },
    /// A scene is missing its ego row.
    MissingEgo {
        /// The scene time without an ego.
        time: Seconds,
    },
}

impl std::fmt::Display for TraceCsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceCsvError::BadHeader { found } => {
                write!(f, "unexpected trace CSV header: {found:?}")
            }
            TraceCsvError::BadRowShape { line, fields } => {
                write!(f, "line {line}: expected 10 fields, found {fields}")
            }
            TraceCsvError::BadField {
                line,
                column,
                value,
            } => {
                write!(f, "line {line}: cannot parse {column} from {value:?}")
            }
            TraceCsvError::TimeNotMonotonic { line } => {
                write!(f, "line {line}: time went backwards")
            }
            TraceCsvError::MissingEgo { time } => {
                write!(f, "scene at {time} has no ego row")
            }
        }
    }
}

impl std::error::Error for TraceCsvError {}

/// Serializes the scenes of a trace to CSV (events are not included; they
/// are derivable by re-running collision checks or kept separately).
pub fn trace_to_csv(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.scenes.len() * 96 + 128);
    out.push_str(TRACE_CSV_HEADER);
    out.push('\n');
    for scene in &trace.scenes {
        for agent in scene.agents() {
            let kind = match agent.kind {
                ActorKind::Vehicle => "vehicle",
                ActorKind::StaticObstacle => "obstacle",
            };
            let _ = writeln!(
                out,
                "{:.4},{},{},{:.4},{:.4},{:.6},{:.4},{:.4},{:.2},{:.2}",
                scene.time.value(),
                agent.id.0,
                kind,
                agent.state.position.x,
                agent.state.position.y,
                agent.state.heading.value(),
                agent.state.speed.value(),
                agent.state.accel.value(),
                agent.dims.length.value(),
                agent.dims.width.value(),
            );
        }
    }
    out
}

fn parse<T: FromStr>(line: usize, column: &'static str, value: &str) -> Result<T, TraceCsvError> {
    value.trim().parse().map_err(|_| TraceCsvError::BadField {
        line,
        column,
        value: value.to_string(),
    })
}

/// Parses a trace back from CSV produced by [`trace_to_csv`].
///
/// `dt` is not stored in the CSV; it is re-derived from the first two
/// distinct scene times (or zero for single-scene traces).
///
/// # Errors
///
/// Returns a [`TraceCsvError`] describing the first malformed row.
pub fn trace_from_csv(csv: &str) -> Result<Trace, TraceCsvError> {
    let mut lines = csv.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim() == TRACE_CSV_HEADER => {}
        other => {
            return Err(TraceCsvError::BadHeader {
                found: other.map(|(_, h)| h.to_string()).unwrap_or_default(),
            })
        }
    }

    let mut scenes: Vec<Scene> = Vec::new();
    let mut pending: Option<(Seconds, Option<Agent>, Vec<Agent>)> = None;
    let flush = |pending: &mut Option<(Seconds, Option<Agent>, Vec<Agent>)>,
                 scenes: &mut Vec<Scene>|
     -> Result<(), TraceCsvError> {
        if let Some((time, ego, actors)) = pending.take() {
            let ego = ego.ok_or(TraceCsvError::MissingEgo { time })?;
            scenes.push(Scene::new(time, ego, actors));
        }
        Ok(())
    };

    for (idx, raw) in lines {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = raw.split(',').collect();
        if fields.len() != 10 {
            return Err(TraceCsvError::BadRowShape {
                line,
                fields: fields.len(),
            });
        }
        let time = Seconds(parse(line, "time_s", fields[0])?);
        let id: u32 = parse(line, "agent", fields[1])?;
        let kind = match fields[2].trim() {
            "vehicle" => ActorKind::Vehicle,
            "obstacle" => ActorKind::StaticObstacle,
            other => {
                return Err(TraceCsvError::BadField {
                    line,
                    column: "kind",
                    value: other.to_string(),
                })
            }
        };
        let agent = Agent::new(
            ActorId(id),
            kind,
            Dimensions::new(
                Meters(parse(line, "length_m", fields[8])?),
                Meters(parse(line, "width_m", fields[9])?),
            ),
            VehicleState::new(
                Vec2::new(
                    parse(line, "x_m", fields[3])?,
                    parse(line, "y_m", fields[4])?,
                ),
                Radians(parse(line, "heading_rad", fields[5])?),
                MetersPerSecond(parse(line, "speed_mps", fields[6])?),
                MetersPerSecondSquared(parse(line, "accel_mps2", fields[7])?),
            ),
        );

        let same_scene = pending
            .as_ref()
            .is_some_and(|(t, _, _)| (time - *t).value().abs() < 1e-9);
        if !same_scene {
            if let Some((t, _, _)) = &pending {
                if time < *t {
                    return Err(TraceCsvError::TimeNotMonotonic { line });
                }
            }
            flush(&mut pending, &mut scenes)?;
            pending = Some((time, None, Vec::new()));
        }
        let (_, ego, actors) = pending.as_mut().expect("pending scene initialized");
        if agent.id.is_ego() {
            *ego = Some(agent);
        } else {
            actors.push(agent);
        }
    }
    flush(&mut pending, &mut scenes)?;

    let dt = scenes
        .windows(2)
        .map(|w| w[1].time - w[0].time)
        .find(|d| d.value() > 0.0)
        .unwrap_or(Seconds::ZERO);
    Ok(Trace {
        scenes,
        events: Vec::new(),
        dt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SimEvent;

    fn sample_trace() -> Trace {
        let mk = |t: f64, ego_x: f64| {
            let ego = Agent::new(
                ActorId::EGO,
                ActorKind::Vehicle,
                Dimensions::CAR,
                VehicleState::new(
                    Vec2::new(ego_x, 3.7),
                    Radians(0.01),
                    MetersPerSecond(20.0),
                    MetersPerSecondSquared(-1.5),
                ),
            );
            let obstacle = Agent::new(
                ActorId(2),
                ActorKind::StaticObstacle,
                Dimensions::OBSTACLE,
                VehicleState::at_rest(Vec2::new(100.0, 3.7), Radians(0.0)),
            );
            Scene::new(Seconds(t), ego, vec![obstacle])
        };
        Trace {
            scenes: vec![mk(0.0, 0.0), mk(0.01, 0.2), mk(0.02, 0.4)],
            events: vec![SimEvent::Collision {
                time: Seconds(0.02),
                actor: ActorId(2),
            }],
            dt: Seconds(0.01),
        }
    }

    #[test]
    fn round_trip_preserves_scenes() {
        let original = sample_trace();
        let csv = trace_to_csv(&original);
        let back = trace_from_csv(&csv).expect("parse succeeds");
        assert_eq!(back.scenes.len(), 3);
        assert_eq!(back.dt, Seconds(0.01));
        for (a, b) in original.scenes.iter().zip(&back.scenes) {
            assert!((a.time - b.time).value().abs() < 1e-9);
            assert_eq!(a.actors.len(), b.actors.len());
            assert!((a.ego.state.position.x - b.ego.state.position.x).abs() < 1e-3);
            assert_eq!(a.actors[0].kind, b.actors[0].kind);
        }
        // Events are intentionally not serialized.
        assert!(back.events.is_empty());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            trace_from_csv("nope\n1,2,3"),
            Err(TraceCsvError::BadHeader { .. })
        ));
        assert!(matches!(
            trace_from_csv(""),
            Err(TraceCsvError::BadHeader { .. })
        ));
    }

    #[test]
    fn rejects_malformed_rows() {
        let csv = format!("{TRACE_CSV_HEADER}\n0.0,0,vehicle,1,2\n");
        assert!(matches!(
            trace_from_csv(&csv),
            Err(TraceCsvError::BadRowShape { line: 2, fields: 5 })
        ));
        let csv = format!("{TRACE_CSV_HEADER}\n0.0,0,spaceship,0,0,0,0,0,4.5,1.8\n");
        assert!(matches!(
            trace_from_csv(&csv),
            Err(TraceCsvError::BadField { column: "kind", .. })
        ));
        let csv = format!("{TRACE_CSV_HEADER}\nzero,0,vehicle,0,0,0,0,0,4.5,1.8\n");
        assert!(matches!(
            trace_from_csv(&csv),
            Err(TraceCsvError::BadField {
                column: "time_s",
                ..
            })
        ));
    }

    #[test]
    fn rejects_sceneless_ego() {
        let csv = format!("{TRACE_CSV_HEADER}\n0.0,7,vehicle,0,0,0,0,0,4.5,1.8\n");
        assert!(matches!(
            trace_from_csv(&csv),
            Err(TraceCsvError::MissingEgo { .. })
        ));
    }

    #[test]
    fn rejects_backwards_time() {
        let row = "0,vehicle,0,0,0,0,0,4.5,1.8";
        let csv = format!("{TRACE_CSV_HEADER}\n1.0,{row}\n0.5,{row}\n");
        assert!(matches!(
            trace_from_csv(&csv),
            Err(TraceCsvError::TimeNotMonotonic { .. })
        ));
    }

    #[test]
    fn empty_trace_round_trips() {
        let empty = Trace::default();
        let back = trace_from_csv(&trace_to_csv(&empty)).expect("parse succeeds");
        assert!(back.scenes.is_empty());
    }

    #[test]
    fn error_messages_are_informative() {
        let err = TraceCsvError::BadField {
            line: 3,
            column: "x_m",
            value: "abc".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("line 3") && msg.contains("x_m") && msg.contains("abc"));
    }
}
