//! Multi-lane road geometry.
//!
//! All of the paper's Table-1 scenarios "take place on a 3-lane road"
//! (§4.1), straight except for *Challenging cut-in on a curved road*.
//! Lane 0 is the rightmost lane; lane centers sit at lateral Frenet
//! offsets `i · lane_width` from the reference path (the rightmost lane's
//! centerline).

use av_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a lane, 0 = rightmost.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LaneId(pub u32);

impl fmt::Display for LaneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lane{}", self.0)
    }
}

/// Error constructing a [`Road`] or resolving a lane.
#[derive(Debug, Clone, PartialEq)]
pub enum RoadError {
    /// Roads need at least one lane.
    NoLanes,
    /// Lane width must be positive and finite.
    InvalidLaneWidth(Meters),
    /// A lane index beyond the road was requested.
    UnknownLane {
        /// The requested lane.
        lane: LaneId,
        /// How many lanes the road has.
        lanes: u32,
    },
}

impl fmt::Display for RoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoadError::NoLanes => write!(f, "a road needs at least one lane"),
            RoadError::InvalidLaneWidth(w) => {
                write!(f, "lane width {w} must be positive and finite")
            }
            RoadError::UnknownLane { lane, lanes } => {
                write!(f, "{lane} does not exist on a {lanes}-lane road")
            }
        }
    }
}

impl std::error::Error for RoadError {}

/// A multi-lane road over a reference centerline.
///
/// ```
/// use av_core::prelude::*;
/// use av_sim::road::{LaneId, Road};
///
/// # fn main() -> Result<(), av_sim::road::RoadError> {
/// let road = Road::straight_three_lane(Meters(1500.0));
/// let center = road.lane_offset(LaneId(1))?;
/// assert_eq!(center, Meters(3.7));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Road {
    path: Path,
    lanes: u32,
    lane_width: Meters,
}

impl Road {
    /// US-standard lane width used by the presets.
    pub const DEFAULT_LANE_WIDTH: Meters = Meters(3.7);

    /// Builds a road over `path` (the rightmost lane's centerline).
    ///
    /// # Errors
    ///
    /// Rejects zero lanes or a non-positive lane width.
    pub fn new(path: Path, lanes: u32, lane_width: Meters) -> Result<Self, RoadError> {
        if lanes == 0 {
            return Err(RoadError::NoLanes);
        }
        if !(lane_width.value() > 0.0 && lane_width.is_finite()) {
            return Err(RoadError::InvalidLaneWidth(lane_width));
        }
        Ok(Self {
            path,
            lanes,
            lane_width,
        })
    }

    /// The paper's straight 3-lane road.
    pub fn straight_three_lane(length: Meters) -> Self {
        Self::new(
            Path::straight(Vec2::ZERO, Radians(0.0), length),
            3,
            Self::DEFAULT_LANE_WIDTH,
        )
        .expect("preset parameters are valid")
    }

    /// The curved 3-lane road of *Challenging cut-in on a curved road*:
    /// a gentle left arc (signed `radius`, positive = left).
    pub fn curved_three_lane(radius: Meters, length: Meters) -> Self {
        Self::new(
            Path::arc(Vec2::ZERO, Radians(0.0), radius, length, Meters(2.0)),
            3,
            Self::DEFAULT_LANE_WIDTH,
        )
        .expect("preset parameters are valid")
    }

    /// The reference centerline (rightmost lane).
    #[inline]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of lanes.
    #[inline]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Lane width.
    #[inline]
    pub fn lane_width(&self) -> Meters {
        self.lane_width
    }

    /// Lateral Frenet offset of a lane's centerline.
    ///
    /// # Errors
    ///
    /// Returns [`RoadError::UnknownLane`] for lanes beyond the road.
    pub fn lane_offset(&self, lane: LaneId) -> Result<Meters, RoadError> {
        if lane.0 >= self.lanes {
            return Err(RoadError::UnknownLane {
                lane,
                lanes: self.lanes,
            });
        }
        Ok(Meters(lane.0 as f64 * self.lane_width.value()))
    }

    /// The lane whose centerline is nearest to lateral offset `d`
    /// (clamped to the road).
    pub fn lane_at(&self, d: Meters) -> LaneId {
        let idx = (d.value() / self.lane_width.value()).round();
        LaneId(idx.clamp(0.0, (self.lanes - 1) as f64) as u32)
    }

    /// World pose of the point at arc length `s` in `lane`.
    ///
    /// # Errors
    ///
    /// Returns [`RoadError::UnknownLane`] for lanes beyond the road.
    pub fn lane_pose(&self, lane: LaneId, s: Meters) -> Result<PathPose, RoadError> {
        let d = self.lane_offset(lane)?;
        let base = self.path.pose_at(s);
        let left = Vec2::from_heading(base.heading).perp();
        Ok(PathPose {
            position: base.position + left * d.value(),
            heading: base.heading,
        })
    }

    /// World position for a Frenet pose on this road.
    pub fn to_world(&self, pose: FrenetPose) -> Vec2 {
        self.path.frenet_to_world(pose)
    }

    /// Frenet pose of a world point on this road.
    pub fn to_frenet(&self, position: Vec2) -> FrenetPose {
        self.path.project(position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_preset_geometry() {
        let road = Road::straight_three_lane(Meters(1000.0));
        assert_eq!(road.lanes(), 3);
        assert_eq!(road.lane_offset(LaneId(0)).expect("lane 0"), Meters(0.0));
        assert_eq!(road.lane_offset(LaneId(2)).expect("lane 2"), Meters(7.4));
        assert!(matches!(
            road.lane_offset(LaneId(3)),
            Err(RoadError::UnknownLane { .. })
        ));
    }

    #[test]
    fn lane_at_rounds_and_clamps() {
        let road = Road::straight_three_lane(Meters(100.0));
        assert_eq!(road.lane_at(Meters(0.4)), LaneId(0));
        assert_eq!(road.lane_at(Meters(2.0)), LaneId(1));
        assert_eq!(road.lane_at(Meters(9.0)), LaneId(2));
        assert_eq!(road.lane_at(Meters(-5.0)), LaneId(0));
        assert_eq!(road.lane_at(Meters(50.0)), LaneId(2));
    }

    #[test]
    fn lane_pose_offsets_leftward() {
        let road = Road::straight_three_lane(Meters(100.0));
        let pose = road.lane_pose(LaneId(1), Meters(20.0)).expect("lane 1");
        assert!((pose.position.x - 20.0).abs() < 1e-9);
        assert!((pose.position.y - 3.7).abs() < 1e-9);
    }

    #[test]
    fn curved_road_lane_separation_is_constant() {
        let road = Road::curved_three_lane(Meters(400.0), Meters(600.0));
        for s in [0.0, 150.0, 300.0, 550.0] {
            let inner = road.lane_pose(LaneId(0), Meters(s)).expect("lane 0");
            let outer = road.lane_pose(LaneId(2), Meters(s)).expect("lane 2");
            let sep = (outer.position - inner.position).norm();
            assert!((sep - 7.4).abs() < 0.05, "s={s}: separation {sep}");
        }
    }

    #[test]
    fn frenet_round_trip_on_curve() {
        let road = Road::curved_three_lane(Meters(-300.0), Meters(500.0));
        let p = road.to_world(FrenetPose::new(Meters(123.0), Meters(3.7)));
        let back = road.to_frenet(p);
        assert!((back.s.value() - 123.0).abs() < 0.1);
        assert!((back.d.value() - 3.7).abs() < 0.05);
    }

    #[test]
    fn construction_validation() {
        let path = Path::straight(Vec2::ZERO, Radians(0.0), Meters(10.0));
        assert_eq!(
            Road::new(path.clone(), 0, Meters(3.7)),
            Err(RoadError::NoLanes)
        );
        assert!(matches!(
            Road::new(path, 3, Meters(0.0)),
            Err(RoadError::InvalidLaneWidth(_))
        ));
    }
}
