//! The ego's driving policy: lane keeping with IDM car-following and an
//! automatic-emergency-braking (AEB) overlay.
//!
//! This substitutes for the planner of the paper's AV stack. The policy
//! consumes the *perceived* world model — confirmed, possibly stale tracks —
//! so that lowering the camera frame processing rate directly lengthens the
//! reaction chain: sample → confirm (K frames) → plan → brake. That chain is
//! exactly what the paper's minimum-required-FPR experiments measure.

use crate::road::{LaneId, Road};
use av_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Tunables of the ego policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Cruise set-speed (the scenario's ego speed).
    pub desired_speed: MetersPerSecond,
    /// Maximum forward acceleration.
    pub max_accel: MetersPerSecondSquared,
    /// Comfortable braking deceleration (IDM's `b`), positive magnitude.
    pub comfort_decel: MetersPerSecondSquared,
    /// Physical braking limit (AEB), positive magnitude.
    pub max_decel: MetersPerSecondSquared,
    /// IDM desired time headway.
    pub headway: Seconds,
    /// IDM standstill minimum gap.
    pub min_gap: Meters,
    /// Extra lateral slack when deciding whether a perceived actor blocks
    /// the ego's corridor.
    pub corridor_margin: Meters,
    /// Required-deceleration threshold that escalates to emergency braking.
    pub aeb_trigger: MetersPerSecondSquared,
    /// Acceleration slew-rate limit (jerk), positive magnitude.
    pub jerk_limit: f64,
}

impl PolicyConfig {
    /// The IDM desired gap `s*(v, v_lead)` — standstill gap + headway
    /// term + the approach term — exactly as the planner's interaction
    /// term evaluates it ([`EgoVehicle::plan`] calls this method). The
    /// lane-batch retirement certificates use the same method as their
    /// near-equilibrium reference, so the two can never drift apart.
    #[inline]
    pub fn idm_desired_gap(&self, v: f64, v_lead: f64) -> f64 {
        let dv = v - v_lead;
        self.min_gap.value()
            + v * self.headway.value()
            + v * dv / (2.0 * (self.max_accel.value() * self.comfort_decel.value()).sqrt())
    }

    /// A reasonable highway configuration at the given cruise speed.
    pub fn cruise(desired_speed: MetersPerSecond) -> Self {
        Self {
            desired_speed,
            max_accel: MetersPerSecondSquared(2.0),
            comfort_decel: MetersPerSecondSquared(2.5),
            max_decel: MetersPerSecondSquared(7.5),
            headway: Seconds(1.2),
            min_gap: Meters(2.5),
            corridor_margin: Meters(0.3),
            aeb_trigger: MetersPerSecondSquared(3.0),
            jerk_limit: 15.0,
        }
    }
}

/// The ego vehicle: state, fixed lane, and policy.
///
/// ```
/// use av_core::prelude::*;
/// use av_sim::prelude::*;
///
/// let road = Road::straight_three_lane(Meters(1000.0));
/// let mut ego = EgoVehicle::spawn(&road, LaneId(1), Meters(0.0),
///                                 PolicyConfig::cruise(MetersPerSecond(25.0)));
/// // Free road: the plan holds the desired speed.
/// let cmd = ego.plan(&[], &road);
/// ego.integrate(cmd, Seconds(0.01));
/// assert!((ego.speed().value() - 25.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EgoVehicle {
    config: PolicyConfig,
    dims: Dimensions,
    lane: LaneId,
    /// Arc-length position along the road.
    s: Meters,
    /// Lateral offset (the ego keeps its lane in all Table-1 scenarios).
    d: Meters,
    speed: MetersPerSecond,
    accel: MetersPerSecondSquared,
}

impl EgoVehicle {
    /// Spawns the ego in `lane` at arc length `s`, cruising at the policy's
    /// desired speed.
    ///
    /// # Panics
    ///
    /// Panics if `lane` does not exist on `road`.
    pub fn spawn(road: &Road, lane: LaneId, s: Meters, config: PolicyConfig) -> Self {
        let d = road
            .lane_offset(lane)
            .unwrap_or_else(|e| panic!("invalid ego placement: {e}"));
        Self {
            config,
            dims: Dimensions::CAR,
            lane,
            s,
            d,
            speed: config.desired_speed,
            accel: MetersPerSecondSquared::ZERO,
        }
    }

    /// The policy configuration.
    pub fn config(&self) -> &PolicyConfig {
        &self.config
    }

    /// Current arc-length position.
    pub fn s(&self) -> Meters {
        self.s
    }

    /// Current speed.
    pub fn speed(&self) -> MetersPerSecond {
        self.speed
    }

    /// Current acceleration.
    pub fn accel(&self) -> MetersPerSecondSquared {
        self.accel
    }

    /// The ego's lane.
    pub fn lane(&self) -> LaneId {
        self.lane
    }

    /// The ego's lateral Frenet offset (fixed: the ego keeps its lane in
    /// every Table-1 scenario).
    pub fn d(&self) -> Meters {
        self.d
    }

    /// The ego's footprint dimensions.
    pub fn dims(&self) -> Dimensions {
        self.dims
    }

    /// Snapshot as a world-frame [`Agent`].
    pub fn to_agent(&self, road: &Road) -> Agent {
        self.agent_from(road.path().frame_at(self.s))
    }

    /// [`EgoVehicle::to_agent`] with a caller-owned [`ProjectionHint`]
    /// memoizing the road segment under the ego (temporal coherence;
    /// bit-identical results for any hint state).
    pub fn to_agent_hinted(&self, road: &Road, hint: &mut ProjectionHint) -> Agent {
        self.agent_from(road.path().frame_at_hinted(self.s, hint))
    }

    fn agent_from(&self, frame: PathFrame) -> Agent {
        Agent::new(
            ActorId::EGO,
            ActorKind::Vehicle,
            self.dims,
            VehicleState::new(
                frame.position + frame.left * self.d.value(),
                frame.heading,
                self.speed,
                self.accel,
            ),
        )
    }

    /// Chooses the lead obstacle among perceived agents: the nearest one
    /// ahead whose lateral offset overlaps the ego's corridor.
    ///
    /// `hints` (when provided, one slot per perceived agent) memoizes each
    /// agent's last winning projection segment across ticks — the
    /// temporal-coherence fast path of [`Path::project_with_hint`], which
    /// is bit-identical to the plain projection.
    fn lead<'a>(
        &self,
        perceived: &'a [Agent],
        road: &Road,
        mut hints: Option<&mut [ProjectionHint]>,
    ) -> Option<(&'a Agent, Meters)> {
        let mut best: Option<(&Agent, Meters)> = None;
        for (i, agent) in perceived.iter().enumerate() {
            if agent.id.is_ego() {
                continue;
            }
            let f = match hints.as_deref_mut() {
                Some(hints) => road
                    .path()
                    .project_with_hint(agent.state.position, &mut hints[i]),
                None => road.to_frenet(agent.state.position),
            };
            let lateral = (f.d - self.d).abs();
            let corridor = Meters(
                (self.dims.width.value() + agent.dims.width.value()) / 2.0
                    + self.config.corridor_margin.value(),
            );
            if lateral > corridor {
                continue;
            }
            let gap = Meters(
                (f.s - self.s).value()
                    - (self.dims.length.value() + agent.dims.length.value()) / 2.0,
            );
            if (f.s - self.s).value() <= 0.0 {
                continue; // beside or behind
            }
            if best.is_none_or(|(_, g)| gap < g) {
                best = Some((agent, gap));
            }
        }
        best
    }

    /// Computes the commanded acceleration from the perceived world.
    ///
    /// IDM free-road + interaction terms, overridden by emergency braking
    /// when the kinematically required deceleration exceeds the AEB
    /// trigger.
    pub fn plan(&self, perceived: &[Agent], road: &Road) -> MetersPerSecondSquared {
        self.plan_impl(perceived, road, None)
    }

    /// [`EgoVehicle::plan`] with per-agent [`ProjectionHint`]s (one slot
    /// per perceived agent, caller-owned across ticks) so each Frenet
    /// projection starts from last tick's winning segment. Identical
    /// command for identical inputs — hints affect only the search cost.
    ///
    /// # Panics
    ///
    /// Panics if `hints` is shorter than `perceived`.
    pub fn plan_with_hints(
        &self,
        perceived: &[Agent],
        road: &Road,
        hints: &mut [ProjectionHint],
    ) -> MetersPerSecondSquared {
        assert!(
            hints.len() >= perceived.len(),
            "one projection hint per perceived agent"
        );
        self.plan_impl(perceived, road, Some(hints))
    }

    fn plan_impl(
        &self,
        perceived: &[Agent],
        road: &Road,
        hints: Option<&mut [ProjectionHint]>,
    ) -> MetersPerSecondSquared {
        let cfg = &self.config;
        let v = self.speed.value().max(0.0);
        let v0 = cfg.desired_speed.value().max(0.1);
        let free = cfg.max_accel.value() * (1.0 - (v / v0).powi(4));
        let Some((leader, gap)) = self.lead(perceived, road, hints) else {
            return MetersPerSecondSquared(
                free.clamp(-cfg.max_decel.value(), cfg.max_accel.value()),
            );
        };
        let gap = gap.value().max(0.1);
        let v_lead = leader.state.speed.value().max(0.0);
        let dv = v - v_lead;

        // AEB: the deceleration needed to match the leader's speed within
        // the available gap (minus the standstill buffer).
        if dv > 0.0 {
            let usable = (gap - cfg.min_gap.value()).max(0.1);
            let required = (v * v - v_lead * v_lead) / (2.0 * usable);
            if required >= cfg.aeb_trigger.value() {
                let brake = (required * 1.2).min(cfg.max_decel.value());
                return MetersPerSecondSquared(-brake.max(cfg.comfort_decel.value()));
            }
        }

        // IDM interaction term.
        let s_star = cfg.idm_desired_gap(v, v_lead);
        let accel =
            cfg.max_accel.value() * (1.0 - (v / v0).powi(4) - (s_star.max(0.0) / gap).powi(2));
        MetersPerSecondSquared(accel.clamp(-cfg.max_decel.value(), cfg.max_accel.value()))
    }

    /// Applies a commanded acceleration through the jerk limiter and
    /// integrates one tick.
    pub fn integrate(&mut self, command: MetersPerSecondSquared, dt: Seconds) {
        let max_delta = self.config.jerk_limit * dt.value();
        let delta = (command - self.accel).value().clamp(-max_delta, max_delta);
        self.accel = MetersPerSecondSquared(self.accel.value() + delta);
        let (ds, v) = distance_speed_after(self.speed, self.accel, dt);
        self.s += ds;
        self.speed = v;
        if self.speed.value() <= 0.0 {
            self.speed = MetersPerSecond::ZERO;
            if self.accel.value() < 0.0 {
                self.accel = MetersPerSecondSquared::ZERO;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn road() -> Road {
        Road::straight_three_lane(Meters(3000.0))
    }

    fn ego(v: f64) -> EgoVehicle {
        EgoVehicle::spawn(
            &road(),
            LaneId(1),
            Meters(0.0),
            PolicyConfig::cruise(MetersPerSecond(v)),
        )
    }

    fn lead_agent(s: f64, lane_d: f64, v: f64) -> Agent {
        Agent::new(
            ActorId(1),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::new(
                Vec2::new(s, lane_d),
                Radians(0.0),
                MetersPerSecond(v),
                MetersPerSecondSquared::ZERO,
            ),
        )
    }

    /// Runs the closed loop against a ground-truth-perceived world.
    fn simulate(mut ego: EgoVehicle, mut agents: Vec<Agent>, seconds: f64) -> (EgoVehicle, f64) {
        let road = road();
        let dt = Seconds(0.01);
        let mut min_gap = f64::INFINITY;
        for _ in 0..(seconds / 0.01) as usize {
            let cmd = ego.plan(&agents, &road);
            ego.integrate(cmd, dt);
            for a in &mut agents {
                let adv = a.state.speed.value() * 0.01;
                a.state.position.x += adv;
            }
            for a in &agents {
                let gap = a.state.position.x - ego.s().value() - 4.5;
                if (a.state.position.y - 3.7).abs() < 2.0 {
                    min_gap = min_gap.min(gap);
                }
            }
        }
        (ego, min_gap)
    }

    #[test]
    fn free_road_holds_desired_speed() {
        let (ego, _) = simulate(ego(25.0), vec![], 10.0);
        assert!((ego.speed().value() - 25.0).abs() < 0.2);
    }

    #[test]
    fn stops_behind_stopped_lead_with_perfect_perception() {
        // 25 m/s toward a stopped car 150 m ahead in the same lane.
        let (ego, min_gap) = simulate(ego(25.0), vec![lead_agent(150.0, 3.7, 0.0)], 20.0);
        assert_eq!(ego.speed(), MetersPerSecond::ZERO);
        assert!(min_gap > 0.5, "kept a positive gap, got {min_gap}");
        assert!(min_gap < 30.0, "stopped unreasonably early ({min_gap} m)");
    }

    #[test]
    fn follows_slower_lead_without_collision() {
        let (ego, min_gap) = simulate(ego(30.0), vec![lead_agent(60.0, 3.7, 15.0)], 20.0);
        assert!(
            (ego.speed().value() - 15.0).abs() < 1.0,
            "speed {}",
            ego.speed()
        );
        assert!(min_gap > 1.0);
    }

    #[test]
    fn ignores_adjacent_lane_traffic() {
        // A stopped car in the next lane must not trigger braking.
        let (ego, _) = simulate(ego(25.0), vec![lead_agent(100.0, 7.4, 0.0)], 10.0);
        assert!((ego.speed().value() - 25.0).abs() < 0.3);
    }

    #[test]
    fn aeb_escalates_beyond_comfort() {
        let road = road();
        let ego = ego(30.0);
        // Stopped obstacle 60 m ahead at 30 m/s: required decel ~8.5,
        // clamped to max_decel.
        let cmd = ego.plan(&[lead_agent(60.0, 3.7, 0.0)], &road);
        assert!(
            cmd.value() <= -ego.config().max_decel.value() + 1e-9,
            "expected emergency braking, got {cmd}"
        );
    }

    #[test]
    fn jerk_limit_smooths_brake_onset() {
        let mut e = ego(30.0);
        e.integrate(MetersPerSecondSquared(-7.5), Seconds(0.01));
        // After one tick the accel can have moved at most jerk*dt = 0.15.
        assert!(e.accel().value() >= -0.16, "accel jumped to {}", e.accel());
    }

    #[test]
    fn never_reverses() {
        let mut e = ego(1.0);
        for _ in 0..500 {
            e.integrate(MetersPerSecondSquared(-7.5), Seconds(0.01));
        }
        assert_eq!(e.speed(), MetersPerSecond::ZERO);
        assert_eq!(e.accel(), MetersPerSecondSquared::ZERO);
    }

    #[test]
    fn to_agent_reports_pose() {
        let e = ego(20.0);
        let agent = e.to_agent(&road());
        assert_eq!(agent.id, ActorId::EGO);
        assert!((agent.state.position.y - 3.7).abs() < 1e-9);
    }
}
