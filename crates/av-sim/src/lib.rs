//! Deterministic closed-loop driving simulator for the Zhuyi (DAC 2022)
//! reproduction.
//!
//! This crate substitutes for NVIDIA DriveSim + the DRIVE AV planner in the
//! paper's evaluation. It provides exactly what the experiments need:
//!
//! - [`road`] — straight and curved 3-lane roads with Frenet lane geometry,
//! - [`script`] — choreographed actors (cut-ins, cut-outs, sudden braking,
//!   lane changes, ego-relative triggers),
//! - [`policy`] — the ego's IDM + AEB driving policy consuming the
//!   *perceived* (sampled, confirmed, stale) world model,
//! - [`engine`] — the tick loop wiring ground truth → perception → planning
//!   → integration, with collision detection, streaming each tick's scene
//!   to a pluggable [`observer::SimObserver`],
//! - [`observer`] — what a run keeps: the full [`trace::Trace`]
//!   ([`observer::TraceRecorder`]), incremental scalars with zero stored
//!   scenes ([`observer::MetricsObserver`]), or nothing
//!   ([`observer::NullObserver`]),
//! - [`trace`] — the recorded artifact the offline Zhuyi pipeline analyzes.
//!
//! # Example: a minimum-required-FPR probe
//!
//! ```
//! use av_core::prelude::*;
//! use av_perception::prelude::*;
//! use av_sim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let road = Road::straight_three_lane(Meters(3000.0));
//! let ego = EgoVehicle::spawn(&road, LaneId(1), Meters(0.0),
//!                             PolicyConfig::cruise(MetersPerSecond(25.0)));
//! let obstacle = ActorScript::obstacle(ActorId(1), LaneId(1), Meters(400.0));
//! let perception = PerceptionSystem::new(CameraRig::drive_av(),
//!     RatePlan::Uniform(Fpr(30.0)), TrackerConfig::default())?;
//! let trace = Simulation::new(road, ego, vec![obstacle], perception,
//!                             SimulationConfig::default()).run();
//! assert!(!trace.collided());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod engine;
pub mod io;
pub mod metrics;
pub mod observer;
pub mod policy;
pub mod road;
pub mod script;
pub mod seed_batch;
pub mod trace;

/// Glob import of the crate's main types.
pub mod prelude {
    pub use crate::batch::{BatchSim, BatchStats, LaneSpec};
    pub use crate::engine::{Simulation, SimulationConfig, StepOutcome};
    pub use crate::metrics::{instant_metrics, run_metrics, InstantMetrics, RunMetrics};
    pub use crate::observer::{
        MetricsObserver, NullObserver, RunSummary, SimObserver, TraceRecorder,
    };
    pub use crate::policy::{EgoVehicle, PolicyConfig};
    pub use crate::road::{LaneId, Road, RoadError};
    pub use crate::script::{
        Action, ActorScript, EgoObservation, Placement, ScriptedActor, ScriptedManeuver, Trigger,
    };
    pub use crate::seed_batch::{run_seed_batched_verdicts_with_stats, SeedBatchSim};
    pub use crate::trace::{SimEvent, Trace};
}
