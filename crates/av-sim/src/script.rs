//! Scripted actor behaviors: triggers and maneuvers in road coordinates.
//!
//! The paper's scenarios are choreographies — "an actor ... cuts out of the
//! ego's lane and reveals a static obstacle", "the actor applies sudden
//! braking" (§4.1). An [`ActorScript`] encodes such choreography as an
//! ordered list of trigger → action pairs evaluated against the live
//! simulation state.

use crate::road::{LaneId, Road};
use av_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Where and how an actor enters the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Starting lane.
    pub lane: LaneId,
    /// Starting arc-length position along the road.
    pub s: Meters,
    /// Starting (and initially held) speed.
    pub speed: MetersPerSecond,
}

/// When a scripted maneuver fires. Maneuvers are evaluated in script order:
/// maneuver *n+1* is armed only after maneuver *n* has fired.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Trigger {
    /// Fire immediately when armed.
    Immediately,
    /// Fire at an absolute scenario time.
    AtTime(Seconds),
    /// Fire when the actor is ahead of the ego by at most this
    /// bumper-to-bumper arc-length gap.
    GapAheadOfEgo(Meters),
    /// Fire when the actor is behind the ego by at most this
    /// bumper-to-bumper arc-length gap.
    GapBehindEgo(Meters),
    /// Fire when the ego's arc-length position passes this point.
    EgoPasses(Meters),
}

/// What a scripted maneuver does once triggered.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Move to the center of `target` over `duration` with a smoothstep
    /// lateral profile.
    ChangeLane {
        /// Destination lane.
        target: LaneId,
        /// Lateral maneuver duration.
        duration: Seconds,
    },
    /// Accelerate or brake toward `target` speed, limited to
    /// `accel_limit` (a positive magnitude).
    SetSpeed {
        /// Speed to converge to.
        target: MetersPerSecond,
        /// Acceleration magnitude bound.
        accel_limit: MetersPerSecondSquared,
    },
    /// Brake to a stop at `decel` (positive magnitude) — the paper's
    /// "sudden braking, reducing its speed to zero".
    HardBrake {
        /// Braking deceleration magnitude.
        decel: MetersPerSecondSquared,
    },
    /// Continuously track the ego's speed (used by *Front & right
    /// activity 2*, where an actor "matches its position side to side to
    /// the ego with similar speed").
    MatchEgoSpeed {
        /// Acceleration magnitude bound while tracking.
        accel_limit: MetersPerSecondSquared,
    },
}

/// One trigger → action pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScriptedManeuver {
    /// Firing condition (armed in script order).
    pub trigger: Trigger,
    /// Behavior change applied when fired.
    pub action: Action,
}

/// A fully scripted actor: identity, entry placement, and choreography.
///
/// ```
/// use av_core::prelude::*;
/// use av_sim::prelude::*;
///
/// // The Vehicle-following lead: cruise at 70 mph, slam the brakes at t=3s.
/// let lead = ActorScript::cruising(ActorId(1), Placement {
///     lane: LaneId(1), s: Meters(104.5), speed: Mph(70.0).into(),
/// })
/// .with_maneuver(
///     Trigger::AtTime(Seconds(3.0)),
///     Action::HardBrake { decel: MetersPerSecondSquared(6.5) },
/// );
/// assert_eq!(lead.maneuvers.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActorScript {
    /// Actor identity (must not be [`ActorId::EGO`]).
    pub id: ActorId,
    /// Vehicle or static obstacle.
    pub kind: ActorKind,
    /// Footprint.
    pub dims: Dimensions,
    /// Entry placement.
    pub placement: Placement,
    /// Choreography, evaluated in order.
    pub maneuvers: Vec<ScriptedManeuver>,
}

impl ActorScript {
    /// A vehicle with no scripted maneuvers (holds lane and speed).
    pub fn cruising(id: ActorId, placement: Placement) -> Self {
        Self {
            id,
            kind: ActorKind::Vehicle,
            dims: Dimensions::CAR,
            placement,
            maneuvers: Vec::new(),
        }
    }

    /// A static obstacle parked in `lane` at arc length `s`.
    pub fn obstacle(id: ActorId, lane: LaneId, s: Meters) -> Self {
        Self {
            id,
            kind: ActorKind::StaticObstacle,
            dims: Dimensions::OBSTACLE,
            placement: Placement {
                lane,
                s,
                speed: MetersPerSecond::ZERO,
            },
            maneuvers: Vec::new(),
        }
    }

    /// Appends a maneuver (builder style).
    pub fn with_maneuver(mut self, trigger: Trigger, action: Action) -> Self {
        self.maneuvers.push(ScriptedManeuver { trigger, action });
        self
    }
}

/// Longitudinal control mode of a live scripted actor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum SpeedMode {
    Hold,
    Toward {
        target: MetersPerSecond,
        limit: MetersPerSecondSquared,
    },
    MatchEgo {
        limit: MetersPerSecondSquared,
    },
}

/// An in-flight lateral lane-change profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct LaneChange {
    from_d: Meters,
    to_d: Meters,
    start: Seconds,
    duration: Seconds,
}

/// A read-only view of a live actor's longitudinal control mode, for
/// callers that must reason about the actor's *future* speed without
/// stepping it (the lane-retirement certificates of `av-sim::batch`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedModeView {
    /// Holding the current speed indefinitely.
    Hold,
    /// Converging to `target` at up to `limit`.
    Toward {
        /// Speed being converged to.
        target: MetersPerSecond,
        /// Acceleration magnitude bound.
        limit: MetersPerSecondSquared,
    },
    /// Tracking the ego's speed at up to `limit`.
    MatchEgo {
        /// Acceleration magnitude bound.
        limit: MetersPerSecondSquared,
    },
}

/// The ego state a script can react to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EgoObservation {
    /// Ego arc-length position.
    pub s: Meters,
    /// Ego speed.
    pub speed: MetersPerSecond,
    /// Ego half length (for bumper-to-bumper trigger gaps).
    pub half_length: Meters,
}

/// A scripted actor being simulated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptedActor {
    script: ActorScript,
    /// Longitudinal arc-length position.
    s: Meters,
    /// Lateral offset.
    d: Meters,
    /// Longitudinal speed.
    speed: MetersPerSecond,
    /// Longitudinal acceleration applied last tick.
    accel: MetersPerSecondSquared,
    mode: SpeedMode,
    lane_change: Option<LaneChange>,
    next_maneuver: usize,
}

impl ScriptedActor {
    /// Spawns the scripted actor on `road`.
    ///
    /// # Panics
    ///
    /// Panics if the script uses [`ActorId::EGO`] or places the actor on a
    /// nonexistent lane.
    pub fn spawn(script: ActorScript, road: &Road) -> Self {
        assert!(!script.id.is_ego(), "actor scripts must not use the ego id");
        let d = road
            .lane_offset(script.placement.lane)
            .unwrap_or_else(|e| panic!("invalid placement for {}: {e}", script.id));
        Self {
            s: script.placement.s,
            d,
            speed: script.placement.speed,
            accel: MetersPerSecondSquared::ZERO,
            mode: SpeedMode::Hold,
            lane_change: None,
            next_maneuver: 0,
            script,
        }
    }

    /// The actor's script.
    pub fn script(&self) -> &ActorScript {
        &self.script
    }

    /// Rewinds the actor to its spawn state (same placement, speed, armed
    /// maneuvers) without cloning the script — the in-place counterpart of
    /// [`ScriptedActor::spawn`] used when one scenario instance is
    /// re-simulated across many candidate rates.
    pub fn reset(&mut self, road: &Road) {
        self.s = self.script.placement.s;
        self.d = road
            .lane_offset(self.script.placement.lane)
            .expect("placement was validated at spawn");
        self.speed = self.script.placement.speed;
        self.accel = MetersPerSecondSquared::ZERO;
        self.mode = SpeedMode::Hold;
        self.lane_change = None;
        self.next_maneuver = 0;
    }

    /// Current arc-length position.
    pub fn s(&self) -> Meters {
        self.s
    }

    /// Current lateral offset.
    pub fn d(&self) -> Meters {
        self.d
    }

    /// Current speed.
    pub fn speed(&self) -> MetersPerSecond {
        self.speed
    }

    /// `true` once every scripted maneuver has fired.
    pub fn script_complete(&self) -> bool {
        self.next_maneuver >= self.script.maneuvers.len()
    }

    /// Current longitudinal acceleration (as applied last tick).
    pub fn accel(&self) -> MetersPerSecondSquared {
        self.accel
    }

    /// The maneuvers that have not fired yet, in firing order (the first
    /// entry is the armed one).
    pub fn pending_maneuvers(&self) -> &[ScriptedManeuver] {
        &self.script.maneuvers[self.next_maneuver.min(self.script.maneuvers.len())..]
    }

    /// The lateral offset an in-flight lane change is heading to, if one
    /// is active.
    pub fn lane_change_target(&self) -> Option<Meters> {
        self.lane_change.map(|lc| lc.to_d)
    }

    /// The actor's current longitudinal control mode, in introspectable
    /// form (see [`SpeedModeView`]).
    pub fn mode_view(&self) -> SpeedModeView {
        match self.mode {
            SpeedMode::Hold => SpeedModeView::Hold,
            SpeedMode::Toward { target, limit } => SpeedModeView::Toward { target, limit },
            SpeedMode::MatchEgo { limit } => SpeedModeView::MatchEgo { limit },
        }
    }

    /// `true` when the next [`ScriptedActor::step`] call could consult the
    /// ego observation: the armed trigger reads ego state, firing the
    /// armed maneuver would enter ego-tracking speed control, or the
    /// actor is already tracking the ego's speed.
    ///
    /// This is the sharing eligibility test of the lane-batched
    /// simulation: while it returns `false`, one shared step is bitwise
    /// identical for every lane regardless of how far the lanes' egos
    /// have diverged, because no ego field is read anywhere in the step.
    pub fn step_consults_ego(&self) -> bool {
        if matches!(self.mode, SpeedMode::MatchEgo { .. }) {
            return true;
        }
        match self.script.maneuvers.get(self.next_maneuver) {
            None => false,
            Some(m) => match m.trigger {
                Trigger::Immediately | Trigger::AtTime(_) => {
                    matches!(m.action, Action::MatchEgoSpeed { .. })
                }
                Trigger::GapAheadOfEgo(_) | Trigger::GapBehindEgo(_) | Trigger::EgoPasses(_) => {
                    true
                }
            },
        }
    }

    /// The armed (next-to-fire) maneuver, if any.
    pub fn armed_maneuver(&self) -> Option<&ScriptedManeuver> {
        self.script.maneuvers.get(self.next_maneuver)
    }

    /// Whether the armed maneuver's trigger holds at `now` against `ego`
    /// — the exact predicate the next [`ScriptedActor::step`] call will
    /// evaluate (both run the same code path, so the answer is bitwise
    /// authoritative). `None` once the script is complete.
    ///
    /// The lane-batched simulator uses this to keep an actor shared
    /// across lanes through an ego-coupled trigger: when every lane's
    /// ego produces the same decision this tick, one shared step is
    /// still exact for all of them.
    pub fn armed_trigger_met(&self, now: Seconds, ego: &EgoObservation) -> Option<bool> {
        self.armed_maneuver()
            .map(|m| self.trigger_met(m.trigger, now, ego))
    }

    /// The firing predicate of one trigger, shared by
    /// [`ScriptedActor::step`] and [`ScriptedActor::armed_trigger_met`].
    fn trigger_met(&self, trigger: Trigger, now: Seconds, ego: &EgoObservation) -> bool {
        match trigger {
            Trigger::Immediately => true,
            Trigger::AtTime(t) => now.value() + 1e-12 >= t.value(),
            Trigger::GapAheadOfEgo(g) => self.s > ego.s && self.gap_to_ego(ego) <= g,
            Trigger::GapBehindEgo(g) => self.s < ego.s && self.gap_to_ego(ego) <= g,
            Trigger::EgoPasses(s) => ego.s >= s,
        }
    }

    /// Bumper-to-bumper gap to the ego (positive when this actor is ahead).
    fn gap_to_ego(&self, ego: &EgoObservation) -> Meters {
        Meters(
            (self.s - ego.s).value().abs()
                - ego.half_length.value()
                - self.script.dims.length.value() / 2.0,
        )
    }

    /// Advances the choreography and integrates one tick of motion.
    ///
    /// Returns a human-readable description of any maneuver that fired this
    /// tick (for the event log).
    pub fn step(
        &mut self,
        now: Seconds,
        dt: Seconds,
        ego: &EgoObservation,
        road: &Road,
    ) -> Option<String> {
        let mut fired = None;
        if let Some(m) = self.script.maneuvers.get(self.next_maneuver) {
            if self.trigger_met(m.trigger, now, ego) {
                let m = *m;
                self.apply(&m.action, now, road);
                fired = Some(format!("{}: {:?}", self.script.id, m.action));
                self.next_maneuver += 1;
            }
        }

        // Longitudinal control.
        let desired = match self.mode {
            SpeedMode::Hold => self.speed,
            SpeedMode::Toward { target, .. } => target,
            SpeedMode::MatchEgo { .. } => ego.speed,
        };
        let limit = match self.mode {
            SpeedMode::Hold => MetersPerSecondSquared::ZERO,
            SpeedMode::Toward { limit, .. } | SpeedMode::MatchEgo { limit } => limit,
        };
        let dv = (desired - self.speed).value();
        let a = if dt.value() > 0.0 {
            (dv / dt.value()).clamp(-limit.value().abs(), limit.value().abs())
        } else {
            0.0
        };
        self.accel = MetersPerSecondSquared(a);
        let (ds, v) = distance_speed_after(self.speed, self.accel, dt);
        self.s += ds;
        self.speed = v;

        // Lateral profile.
        if let Some(lc) = self.lane_change {
            let u = ((now + dt - lc.start).value() / lc.duration.value()).clamp(0.0, 1.0);
            let blend = u * u * (3.0 - 2.0 * u);
            self.d = Meters(lc.from_d.value() + (lc.to_d.value() - lc.from_d.value()) * blend);
            if u >= 1.0 {
                self.lane_change = None;
            }
        }
        fired
    }

    fn apply(&mut self, action: &Action, now: Seconds, road: &Road) {
        match *action {
            Action::ChangeLane { target, duration } => {
                let to_d = road
                    .lane_offset(target)
                    .unwrap_or_else(|e| panic!("invalid lane change for {}: {e}", self.script.id));
                self.lane_change = Some(LaneChange {
                    from_d: self.d,
                    to_d,
                    start: now,
                    duration: Seconds(duration.value().max(1e-3)),
                });
            }
            Action::SetSpeed {
                target,
                accel_limit,
            } => {
                self.mode = SpeedMode::Toward {
                    target: target.max(MetersPerSecond::ZERO),
                    limit: accel_limit,
                };
            }
            Action::HardBrake { decel } => {
                self.mode = SpeedMode::Toward {
                    target: MetersPerSecond::ZERO,
                    limit: MetersPerSecondSquared(decel.value().abs()),
                };
            }
            Action::MatchEgoSpeed { accel_limit } => {
                self.mode = SpeedMode::MatchEgo { limit: accel_limit };
            }
        }
    }

    /// Snapshot as a world-frame [`Agent`].
    pub fn to_agent(&self, road: &Road) -> Agent {
        self.agent_from(road.path().frame_at(self.s))
    }

    /// [`ScriptedActor::to_agent`] with a caller-owned [`ProjectionHint`]
    /// memoizing the road segment under the actor (temporal coherence;
    /// bit-identical results for any hint state).
    pub fn to_agent_hinted(&self, road: &Road, hint: &mut ProjectionHint) -> Agent {
        self.agent_from(road.path().frame_at_hinted(self.s, hint))
    }

    fn agent_from(&self, frame: PathFrame) -> Agent {
        Agent::new(
            self.script.id,
            self.script.kind,
            self.script.dims,
            VehicleState::new(
                frame.position + frame.left * self.d.value(),
                frame.heading,
                self.speed,
                self.accel,
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn road() -> Road {
        Road::straight_three_lane(Meters(2000.0))
    }

    fn ego_obs(s: f64, v: f64) -> EgoObservation {
        EgoObservation {
            s: Meters(s),
            speed: MetersPerSecond(v),
            half_length: Meters(2.25),
        }
    }

    const DT: Seconds = Seconds(0.01);

    fn run(actor: &mut ScriptedActor, road: &Road, seconds: f64, ego: &EgoObservation) {
        let steps = (seconds / DT.value()).round() as usize;
        for k in 0..steps {
            let now = Seconds(k as f64 * DT.value());
            actor.step(now, DT, ego, road);
        }
    }

    #[test]
    fn cruising_actor_holds_lane_and_speed() {
        let road = road();
        let script = ActorScript::cruising(
            ActorId(1),
            Placement {
                lane: LaneId(1),
                s: Meters(50.0),
                speed: MetersPerSecond(10.0),
            },
        );
        let mut actor = ScriptedActor::spawn(script, &road);
        run(&mut actor, &road, 2.0, &ego_obs(0.0, 10.0));
        assert!((actor.s().value() - 70.0).abs() < 1e-6);
        assert!((actor.d().value() - 3.7).abs() < 1e-9);
        assert!(actor.script_complete());
    }

    #[test]
    fn timed_lane_change_reaches_target() {
        let road = road();
        let script = ActorScript::cruising(
            ActorId(1),
            Placement {
                lane: LaneId(1),
                s: Meters(50.0),
                speed: MetersPerSecond(10.0),
            },
        )
        .with_maneuver(
            Trigger::AtTime(Seconds(1.0)),
            Action::ChangeLane {
                target: LaneId(0),
                duration: Seconds(2.0),
            },
        );
        let mut actor = ScriptedActor::spawn(script, &road);
        run(&mut actor, &road, 4.0, &ego_obs(0.0, 10.0));
        assert!(actor.d().value().abs() < 1e-6, "d = {}", actor.d());
    }

    #[test]
    fn lane_change_is_smooth_and_monotone() {
        let road = road();
        let script = ActorScript::cruising(
            ActorId(1),
            Placement {
                lane: LaneId(0),
                s: Meters(0.0),
                speed: MetersPerSecond(10.0),
            },
        )
        .with_maneuver(
            Trigger::Immediately,
            Action::ChangeLane {
                target: LaneId(1),
                duration: Seconds(2.0),
            },
        );
        let mut actor = ScriptedActor::spawn(script, &road);
        let ego = ego_obs(0.0, 10.0);
        let mut last_d = actor.d().value();
        for k in 0..250 {
            actor.step(Seconds(k as f64 * DT.value()), DT, &ego, &road);
            let d = actor.d().value();
            assert!(d + 1e-9 >= last_d, "lateral profile reversed at step {k}");
            assert!(d <= 3.7 + 1e-9);
            last_d = d;
        }
        assert!((last_d - 3.7).abs() < 1e-6);
    }

    #[test]
    fn hard_brake_stops_the_actor() {
        let road = road();
        let script = ActorScript::cruising(
            ActorId(1),
            Placement {
                lane: LaneId(1),
                s: Meters(100.0),
                speed: MetersPerSecond(20.0),
            },
        )
        .with_maneuver(
            Trigger::AtTime(Seconds(0.5)),
            Action::HardBrake {
                decel: MetersPerSecondSquared(6.0),
            },
        );
        let mut actor = ScriptedActor::spawn(script, &road);
        run(&mut actor, &road, 5.0, &ego_obs(0.0, 20.0));
        assert_eq!(actor.speed(), MetersPerSecond::ZERO);
        // 0.5 s cruise (10 m) + v^2/2a = 33.3 m braking.
        assert!((actor.s().value() - 143.3).abs() < 0.5, "s = {}", actor.s());
    }

    #[test]
    fn gap_trigger_fires_when_ego_closes() {
        let road = road();
        let script = ActorScript::cruising(
            ActorId(1),
            Placement {
                lane: LaneId(1),
                s: Meters(40.0),
                speed: MetersPerSecond(5.0),
            },
        )
        .with_maneuver(
            Trigger::GapAheadOfEgo(Meters(20.0)),
            Action::SetSpeed {
                target: MetersPerSecond(15.0),
                accel_limit: MetersPerSecondSquared(3.0),
            },
        );
        let mut actor = ScriptedActor::spawn(script, &road);
        // Ego far behind: no trigger.
        actor.step(Seconds(0.0), DT, &ego_obs(0.0, 20.0), &road);
        assert!(!actor.script_complete());
        // Ego within 20 m bumper gap: trigger fires.
        let fired = actor.step(Seconds(0.01), DT, &ego_obs(20.0, 20.0), &road);
        assert!(fired.is_some());
        assert!(actor.script_complete());
    }

    #[test]
    fn match_ego_speed_tracks() {
        let road = road();
        let script = ActorScript::cruising(
            ActorId(1),
            Placement {
                lane: LaneId(2),
                s: Meters(0.0),
                speed: MetersPerSecond(5.0),
            },
        )
        .with_maneuver(
            Trigger::Immediately,
            Action::MatchEgoSpeed {
                accel_limit: MetersPerSecondSquared(3.0),
            },
        );
        let mut actor = ScriptedActor::spawn(script, &road);
        run(&mut actor, &road, 5.0, &ego_obs(0.0, 15.0));
        assert!((actor.speed().value() - 15.0).abs() < 0.1);
    }

    #[test]
    fn obstacle_never_moves() {
        let road = road();
        let mut actor = ScriptedActor::spawn(
            ActorScript::obstacle(ActorId(9), LaneId(1), Meters(300.0)),
            &road,
        );
        run(&mut actor, &road, 3.0, &ego_obs(0.0, 30.0));
        assert_eq!(actor.s(), Meters(300.0));
        assert_eq!(actor.speed(), MetersPerSecond::ZERO);
        let agent = actor.to_agent(&road);
        assert_eq!(agent.kind, ActorKind::StaticObstacle);
        assert!((agent.state.position.x - 300.0).abs() < 1e-9);
        assert!((agent.state.position.y - 3.7).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ego id")]
    fn ego_id_rejected_in_scripts() {
        let road = road();
        let _ = ScriptedActor::spawn(
            ActorScript::cruising(
                ActorId::EGO,
                Placement {
                    lane: LaneId(0),
                    s: Meters(0.0),
                    speed: MetersPerSecond(0.0),
                },
            ),
            &road,
        );
    }
}
