//! Rate-batched lockstep simulation: N lanes of one scenario, one tick
//! loop.
//!
//! The minimum-safe-FPR search re-simulates the *same* scenario instance
//! once per candidate perception rate. [`Simulation::run_batched`]
//! advances every candidate — one **lane** per rate — through a single
//! lockstep tick loop over the shared scenario, so that everything the
//! rate cannot touch is computed once per tick instead of once per lane:
//!
//! - **Shared**: the road, the actor scripts, and — while an actor's
//!   behavior provably never reads the ego observation
//!   ([`ScriptedActor::step_consults_ego`]) — the actor's integration and
//!   its per-tick pose projection. Scripted actors *do* react to the ego
//!   in general (gap triggers, `MatchEgoSpeed`), and each lane's ego
//!   diverges as soon as its perception latency changes a plan, so an
//!   actor is **forked** into per-lane copies at the first tick where its
//!   step could consult the ego; before that, one shared step is bitwise
//!   identical for every lane.
//! - **Per lane (forked)**: the frame samplers and droppers (the rate
//!   itself), the world-model tracks, the perceived-agent coast, the ego
//!   policy/plan/integration, the collision check against the lane's own
//!   ego, and the observer fold.
//!
//! Results are **bit-identical** to running each lane through
//! [`Simulation::run_with`] on its own: the per-lane tick replays the
//! engine's exact phase order (snapshot → observer → collision →
//! perception → plan → integrate → actor steps) with the same arithmetic,
//! and sharing only ever deduplicates computations whose inputs are
//! bitwise equal across lanes. The equivalence suites in `av-scenarios`
//! and `zhuyi-fleet` pin this across the scenario catalog.
//!
//! # Lane retirement
//!
//! A lane leaves the loop early when its outcome is decided:
//!
//! - **Collision** — the engine stops a run at the first collision
//!   (`stop_on_collision`), so a collided lane retires exactly where its
//!   standalone run would have ended.
//! - **Certified-safe suffix** (verdict-only runs,
//!   [`Simulation::run_batched_verdicts`]) — when a conservative
//!   closed-loop certificate ([`cert`]) proves no collision can occur in
//!   the remainder of the run, the lane retires with a `Finished`
//!   verdict. Certificates never fire for metrics-folding runs, whose
//!   observers need every remaining tick.
//!
//! Retirement is where the batched mode's throughput comes from: across
//! the Table-1 catalog roughly half of all simulated ticks lie in
//! suffixes whose outcome is already decided (an ego parked behind the
//! revealed obstacle, a steady IDM car-following equilibrium, actors
//! separated into other lanes for good).

use crate::engine::{Simulation, StepOutcome};
use crate::observer::{NullObserver, SimObserver};
use crate::policy::EgoVehicle;
use crate::road::Road;
use crate::script::{Action, EgoObservation, ScriptedActor, SpeedModeView, Trigger};
use crate::trace::SimEvent;
use av_core::geometry::OrientedRect;
use av_core::prelude::*;
use av_core::scene::{Scene, SceneColumns};
use av_perception::system::PerceptionSystem;

/// Everything a lane forks from its siblings at construction: the ego
/// (identical spawn state across lanes) and the perception system (the
/// rate axis itself).
#[derive(Debug, Clone)]
pub struct LaneSpec {
    /// The lane's ego vehicle, freshly spawned.
    pub ego: EgoVehicle,
    /// The lane's perception system, configured at the candidate rate.
    pub perception: PerceptionSystem,
}

/// Per-lane simulation state inside a [`BatchSim`].
#[derive(Debug)]
struct Lane {
    ego: EgoVehicle,
    perception: PerceptionSystem,
    /// Per-lane struct-of-arrays snapshot (the lane's ego differs, and
    /// forked actors differ, so each lane rebuilds its own columns).
    scratch: SceneColumns,
    scratch_aos: Scene,
    perceived: Vec<Agent>,
    hints: Vec<ProjectionHint>,
    ego_pose_hint: ProjectionHint,
    /// Pose hints for forked actors, indexed like the actor vector.
    fork_hints: Vec<ProjectionHint>,
    /// Per-lane actor copies; `None` while the actor is globally shared.
    forks: Vec<Option<ScriptedActor>>,
    ego_circumradius: f64,
    /// `StepOutcome::Running` while live; the final outcome once retired.
    outcome: StepOutcome,
    /// Ego observation captured this tick (pre-integration), consumed by
    /// the forked-actor steps at the tick's end.
    pending_obs: EgoObservation,
    /// Next tick at which to attempt a retirement certificate.
    next_cert_tick: u64,
    /// Current certificate retry backoff, in ticks.
    cert_backoff: u64,
}

/// A lockstep batched run over one scenario instance.
///
/// Use [`Simulation::run_batched`] / [`Simulation::run_batched_verdicts`]
/// for the one-call form; this type exposes the tick-stepped form so
/// tests (e.g. the counting-allocator suite) can drive and observe the
/// loop tick by tick.
#[allow(missing_debug_implementations)] // observers are unsized trait objects
pub struct BatchSim<'sim, 'obs> {
    sim: &'sim mut Simulation,
    lanes: Vec<Lane>,
    observers: Vec<&'obs mut dyn SimObserver>,
    /// Global per-actor fork flags: forking happens for every lane at the
    /// same tick (eligibility is a function of the still-shared state).
    forked: Vec<bool>,
    /// Shared actor poses for the current tick (garbage at forked slots).
    shared_agents: Vec<Agent>,
    /// Pose hints for the shared actors.
    shared_hints: Vec<ProjectionHint>,
    /// Shared actor Frenet stations for the idle fast path, rebuilt each
    /// tick (garbage at forked slots — the prefilter reads the fork).
    actor_s: Vec<f64>,
    /// Shared actor lateral offsets, indexed like `actor_s`.
    actor_d: Vec<f64>,
    /// Whether certificates may retire lanes (verdict-only runs).
    certify: bool,
    /// Memoized `road.path().max_abs_curvature()`.
    curvature: f64,
    tick: u64,
    live: usize,
    /// Reused classification scratch for certificate attempts.
    classes: Vec<cert::Class>,
    stats: BatchStats,
}

/// Cost accounting of one batched run, for benchmarks and logs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Lanes that ended in a collision.
    pub collided_lanes: usize,
    /// Lanes retired early by a safe-suffix certificate.
    pub certified_lanes: usize,
    /// Per-lane ticks actually simulated (sum over lanes).
    pub lane_ticks: u64,
    /// Per-lane ticks skipped by certificate retirement (sum over lanes).
    pub ticks_retired: u64,
    /// Per-lane ticks that took the verdict-only idle fast path (no
    /// snapshot rebuild, Frenet-space collision prefilter).
    pub idle_lane_ticks: u64,
    /// Idle fast-path ticks whose Frenet prefilter could not prove
    /// separation, forcing the exact world-frame collision check.
    pub prefilter_fallbacks: u64,
    /// Safe-suffix certificate attempts.
    pub cert_attempts: u64,
    /// Certificate attempts that declined (the lane kept simulating).
    pub cert_declines: u64,
}

impl BatchStats {
    /// Folds another run's accounting into this one (multi-run sweeps).
    pub fn merge(&mut self, other: &BatchStats) {
        self.collided_lanes += other.collided_lanes;
        self.certified_lanes += other.certified_lanes;
        self.lane_ticks += other.lane_ticks;
        self.ticks_retired += other.ticks_retired;
        self.idle_lane_ticks += other.idle_lane_ticks;
        self.prefilter_fallbacks += other.prefilter_fallbacks;
        self.cert_attempts += other.cert_attempts;
        self.cert_declines += other.cert_declines;
    }

    /// Folds this accounting into the installed telemetry registry (a
    /// no-op without one), unifying batch cost accounting with the
    /// `zhuyi-telemetry` export schema. Called once per batched run by
    /// [`BatchSim::finish_with_stats`]; every field maps to a
    /// deterministic `batch_*` counter.
    pub fn fold_into_telemetry(&self) {
        use zhuyi_telemetry::Counter;
        zhuyi_telemetry::with(|t| {
            t.add(Counter::BatchCollidedLanes, self.collided_lanes as u64);
            t.add(Counter::BatchCertifiedLanes, self.certified_lanes as u64);
            t.add(Counter::BatchLaneTicks, self.lane_ticks);
            t.add(Counter::BatchTicksRetired, self.ticks_retired);
            t.add(Counter::BatchIdleLaneTicks, self.idle_lane_ticks);
            t.add(Counter::BatchPrefilterFallbacks, self.prefilter_fallbacks);
            t.add(Counter::BatchCertAttempts, self.cert_attempts);
            t.add(Counter::BatchCertDeclines, self.cert_declines);
        });
    }
}

/// Extra slack (m) the idle-tick Frenet-space circumcircle prefilter
/// adds on top of the footprint radii before it may *skip* the exact
/// world-frame collision check. On an exactly straight reference line
/// the (s, d) chart is an isometry, so the world-frame center distance
/// differs from the Frenet one only by floating-point noise (≲ 1e-9 m
/// at catalog coordinates); a full meter of slack makes the skip
/// decision robust by six orders of magnitude while still filtering
/// out essentially every far-apart pair. Pairs inside the slack run
/// the engine-identical world-frame check, so outcomes stay bitwise
/// equal either way.
const FRENET_PREFILTER_SLACK: f64 = 1.0;

impl<'sim, 'obs> BatchSim<'sim, 'obs> {
    /// Builds a batched run over `sim`'s scenario. Shared actors are
    /// rewound to their spawn state; each lane starts from its spec's
    /// fresh ego and perception. When `certify` is set, lanes may retire
    /// through the conservative safe-suffix certificates — callers must
    /// only set it when observers ignore the stream (verdict-only runs).
    ///
    /// # Panics
    ///
    /// Panics when `specs` and `observers` disagree in length, or when
    /// the simulation is not configured to stop on collision (batched
    /// lanes retire at the first collision, like the engine does).
    fn new(
        sim: &'sim mut Simulation,
        specs: Vec<LaneSpec>,
        observers: Vec<&'obs mut dyn SimObserver>,
        certify: bool,
    ) -> Self {
        assert_eq!(
            specs.len(),
            observers.len(),
            "one observer per batched lane"
        );
        assert!(
            sim.config.stop_on_collision,
            "batched runs require stop_on_collision (lanes retire at the first collision)"
        );
        let actor_count = sim.actors.len();
        for actor in &mut sim.actors {
            actor.reset(&sim.road);
        }
        let finished = sim.total_ticks == 0;
        let curvature = sim.road.path().max_abs_curvature();
        let lanes: Vec<Lane> = specs
            .into_iter()
            .map(|spec| {
                let ego_agent = spec.ego.to_agent(&sim.road);
                Lane {
                    ego_circumradius: spec.ego.dims().circumradius(),
                    scratch: SceneColumns::new(Seconds::ZERO, ego_agent),
                    scratch_aos: Scene::new(
                        Seconds::ZERO,
                        ego_agent,
                        Vec::with_capacity(actor_count),
                    ),
                    perceived: Vec::new(),
                    hints: Vec::new(),
                    ego_pose_hint: ProjectionHint::default(),
                    fork_hints: vec![ProjectionHint::default(); actor_count],
                    forks: vec![None; actor_count],
                    outcome: if finished {
                        StepOutcome::Finished
                    } else {
                        StepOutcome::Running
                    },
                    pending_obs: EgoObservation {
                        s: spec.ego.s(),
                        speed: spec.ego.speed(),
                        half_length: Meters(spec.ego.dims().length.value() / 2.0),
                    },
                    next_cert_tick: cert::FIRST_ATTEMPT_TICK,
                    cert_backoff: cert::RETRY_BACKOFF_TICKS,
                    ego: spec.ego,
                    perception: spec.perception,
                }
            })
            .collect();
        let live = if finished { 0 } else { lanes.len() };
        Self {
            sim,
            live,
            lanes,
            observers,
            forked: vec![false; actor_count],
            shared_agents: Vec::with_capacity(actor_count),
            shared_hints: vec![ProjectionHint::default(); actor_count],
            actor_s: Vec::with_capacity(actor_count),
            actor_d: Vec::with_capacity(actor_count),
            certify,
            curvature,
            tick: 0,
            classes: Vec::with_capacity(actor_count),
            stats: BatchStats::default(),
        }
    }

    /// Cost accounting so far (final after [`BatchSim::finish`] — read it
    /// through [`Simulation::run_batched_verdicts_with_stats`]).
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Number of lanes still running.
    pub fn live_lanes(&self) -> usize {
        self.live
    }

    /// Completed lockstep ticks.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advances every live lane by one tick. Returns `false` once no lane
    /// is live (the batch is done).
    pub fn step_all(&mut self) -> bool {
        if self.live == 0 {
            return false;
        }
        self.stats.lane_ticks += self.live as u64;
        let time = Seconds(self.tick as f64 * self.sim.config.dt.value());
        let dt = self.sim.config.dt;
        // Tick-phase profiling, mirroring the engine's hooks: one
        // thread-local lookup per lockstep tick, branch-on-disabled laps.
        let mut phases = zhuyi_telemetry::PhaseTimer::start();

        // Verdict-only runs take the *idle fast path* on ticks where a
        // lane's perception cannot fire a frame and no certificate
        // attempt is due: the per-lane snapshot rebuild (world-frame
        // columns of the ego and every actor) exists only to feed the
        // observer, the perception frame and the certificate — with a
        // null observer, a guaranteed-idle perception tick and no
        // certificate due, only the collision check remains, and that
        // check reads world poses directly ([`collision_check_lean`])
        // instead of materializing the snapshot. On an exactly straight
        // road a Frenet-space circumcircle prefilter over the raw (s, d)
        // state settles the overwhelmingly common far-apart case without
        // any world-frame math at all ([`FRENET_PREFILTER_SLACK`]); on
        // curved roads every idle tick runs the lean check. Either way
        // the check is input-for-input the engine's, so outcomes are
        // bitwise unchanged.
        let fast = self.certify;
        let straight = self.curvature == 0.0;
        let mut shared_ready = false;

        // Phase 1 — shared actor poses, one projection per actor per tick
        // regardless of lane count. (Forked actors are projected per lane
        // in phase 2: their states differ.) The fast path defers the
        // projections until some lane actually needs world-frame poses
        // this tick; on straight roads it instead fills the shared Frenet
        // columns the prefilter sweeps.
        if fast {
            if straight {
                self.actor_s.clear();
                self.actor_d.clear();
                for (i, actor) in self.sim.actors.iter().enumerate() {
                    // Garbage at forked slots: the prefilter reads the fork.
                    self.actor_s.push(if self.forked[i] {
                        0.0
                    } else {
                        actor.s().value()
                    });
                    self.actor_d.push(if self.forked[i] {
                        0.0
                    } else {
                        actor.d().value()
                    });
                }
            }
        } else {
            // Placeholder at forked slots, never read (phase 2 checks the
            // fork flag).
            let placeholder = self.lanes[0].scratch.ego;
            fill_shared_agents(
                self.sim,
                &self.forked,
                &mut self.shared_hints,
                &mut self.shared_agents,
                placeholder,
            );
            shared_ready = true;
        }
        phases.lap(zhuyi_telemetry::Phase::Actors);

        // Phase 2 — per-lane engine tick, replaying `Simulation::step_with`
        // phase for phase on the lane's own state.
        let next_tick = self.tick + 1;
        for (lane, observer) in self.lanes.iter_mut().zip(self.observers.iter_mut()) {
            if lane.outcome != StepOutcome::Running {
                continue;
            }
            // A certificate attempt (phase 5, after the tick increment)
            // reads this lane's snapshot, so the attempt tick must build
            // it even when perception idles.
            let cert_due = self.certify
                && next_tick < self.sim.total_ticks
                && next_tick >= lane.next_cert_tick;
            let idle = fast && !cert_due && lane.perception.frame_idle(time);

            let collided = if idle {
                self.stats.idle_lane_ticks += 1;
                // Frenet-space prefilter sweep over the shared columns
                // (straight roads only — curved Frenet distances don't
                // bound world distances, so every curved idle tick takes
                // the lean world-frame check).
                let near = if straight {
                    let e_s = lane.ego.s().value();
                    let e_d = lane.ego.d().value();
                    let mut near = false;
                    for i in 0..self.sim.actor_circumradii.len() {
                        let (a_s, a_d) = match &lane.forks[i] {
                            Some(fork) => (fork.s().value(), fork.d().value()),
                            None => (self.actor_s[i], self.actor_d[i]),
                        };
                        let ds = a_s - e_s;
                        let dd = a_d - e_d;
                        let r = lane.ego_circumradius
                            + self.sim.actor_circumradii[i]
                            + FRENET_PREFILTER_SLACK;
                        if ds * ds + dd * dd <= r * r {
                            near = true;
                            break;
                        }
                    }
                    near
                } else {
                    true
                };
                if near {
                    if straight {
                        self.stats.prefilter_fallbacks += 1;
                    }
                    if !shared_ready {
                        fill_shared_agents(
                            self.sim,
                            &self.forked,
                            &mut self.shared_hints,
                            &mut self.shared_agents,
                            lane.scratch.ego,
                        );
                        shared_ready = true;
                    }
                    collision_check_lean(lane, self.sim, &self.shared_agents, &mut **observer, time)
                } else {
                    false
                }
            } else {
                if !shared_ready {
                    fill_shared_agents(
                        self.sim,
                        &self.forked,
                        &mut self.shared_hints,
                        &mut self.shared_agents,
                        lane.scratch.ego,
                    );
                    shared_ready = true;
                }
                rebuild_snapshot(lane, self.sim, &self.shared_agents, time);
                observer.on_scene_columns(&lane.scratch, &mut lane.scratch_aos);
                collision_check(lane, self.sim, &mut **observer, time)
            };
            phases.lap(zhuyi_telemetry::Phase::Collision);
            if collided {
                lane.outcome = StepOutcome::Collided;
                self.live -= 1;
                self.stats.collided_lanes += 1;
                continue;
            }

            // Perception, perceived-world coast, plan, integrate. On the
            // idle path the perception tick is, bitwise, what
            // `tick_columns` does on a frameless tick — without the
            // snapshot it would not have read anyway.
            if idle {
                lane.perception.idle_tick(time);
            } else {
                lane.perception.tick_columns(&lane.scratch);
            }
            phases.lap(zhuyi_telemetry::Phase::Perception);
            lane.perception
                .world()
                .coast_into(&mut lane.perceived, time);
            phases.lap(zhuyi_telemetry::Phase::Prediction);
            lane.hints
                .resize(lane.perceived.len(), ProjectionHint::default());
            let command =
                lane.ego
                    .plan_with_hints(&lane.perceived, &self.sim.road, &mut lane.hints);
            lane.pending_obs = EgoObservation {
                s: lane.ego.s(),
                speed: lane.ego.speed(),
                half_length: Meters(lane.ego.dims().length.value() / 2.0),
            };
            lane.ego.integrate(command, dt);
            phases.lap(zhuyi_telemetry::Phase::Policy);
        }

        // Phase 3 — actor integration, in actor order (event order must
        // match the engine's). A shared actor is forked for every lane at
        // the first tick where its step could actually *read diverged*
        // ego state: an armed ego-coupled trigger only forces the fork
        // when the lanes' egos disagree on its decision this tick (the
        // firing predicate is re-evaluated per lane through the same code
        // path the step uses, so an all-lanes-equal decision makes one
        // shared step exact for everyone). Ego-speed *tracking* always
        // forks: it reads the ego continuously.
        for i in 0..self.sim.actors.len() {
            if !self.forked[i] && self.must_fork(i, time) {
                self.forked[i] = true;
                for lane in &mut self.lanes {
                    if lane.outcome == StepOutcome::Running {
                        lane.forks[i] = Some(self.sim.actors[i].clone());
                    }
                }
            }
            if self.forked[i] {
                for (lane, observer) in self.lanes.iter_mut().zip(self.observers.iter_mut()) {
                    if lane.outcome != StepOutcome::Running {
                        continue;
                    }
                    let fork = lane.forks[i].as_mut().expect("forked lanes hold copies");
                    if let Some(description) =
                        fork.step(time, dt, &lane.pending_obs, &self.sim.road)
                    {
                        observer.on_event(&SimEvent::Maneuver { time, description });
                    }
                }
            } else {
                // The shared step must not read the observation — pinned
                // by the eligibility check above; any live lane's works.
                let obs = self
                    .lanes
                    .iter()
                    .find(|l| l.outcome == StepOutcome::Running)
                    .map(|l| l.pending_obs);
                let Some(obs) = obs else { break };
                if let Some(description) = self.sim.actors[i].step(time, dt, &obs, &self.sim.road) {
                    let event = SimEvent::Maneuver { time, description };
                    for (lane, observer) in self.lanes.iter_mut().zip(self.observers.iter_mut()) {
                        if lane.outcome == StepOutcome::Running {
                            observer.on_event(&event);
                        }
                    }
                }
            }
        }
        phases.lap(zhuyi_telemetry::Phase::Actors);

        // Phase 4 — tick accounting and end-of-run retirement.
        self.tick += 1;
        if self.tick >= self.sim.total_ticks {
            for lane in &mut self.lanes {
                if lane.outcome == StepOutcome::Running {
                    lane.outcome = StepOutcome::Finished;
                    self.live -= 1;
                }
            }
            return false;
        }

        // Phase 5 — certified-safe retirement attempts (verdict-only).
        if self.certify {
            phases.skip(); // tick accounting belongs to no phase
            for lane in &mut self.lanes {
                if lane.outcome != StepOutcome::Running || self.tick < lane.next_cert_tick {
                    continue;
                }
                self.stats.cert_attempts += 1;
                if cert::certifies_safe_suffix(
                    self.sim,
                    lane,
                    &self.forked,
                    self.tick,
                    self.curvature,
                    &mut self.classes,
                ) {
                    lane.outcome = StepOutcome::Finished;
                    self.live -= 1;
                    self.stats.certified_lanes += 1;
                    self.stats.ticks_retired += self.sim.total_ticks - self.tick;
                } else {
                    self.stats.cert_declines += 1;
                    lane.next_cert_tick = self.tick + lane.cert_backoff;
                    lane.cert_backoff = (lane.cert_backoff * 2).min(cert::MAX_BACKOFF_TICKS);
                }
            }
            phases.lap(zhuyi_telemetry::Phase::Certificate);
        }
        self.live > 0
    }

    /// Whether shared actor `i` must fork into per-lane copies before
    /// this tick's step (see the phase-3 comment in
    /// [`BatchSim::step_all`]).
    fn must_fork(&self, i: usize, time: Seconds) -> bool {
        let actor = &self.sim.actors[i];
        if !actor.step_consults_ego() {
            return false;
        }
        if matches!(actor.mode_view(), SpeedModeView::MatchEgo { .. }) {
            return true;
        }
        // Armed ego-coupled trigger: shared exactly when every live lane
        // decides it the same way this tick (and a unanimous *fire* of an
        // ego-tracking action still forks — the new mode reads the ego in
        // this very step).
        let mut decision: Option<bool> = None;
        for lane in &self.lanes {
            if lane.outcome != StepOutcome::Running {
                continue;
            }
            let met = actor
                .armed_trigger_met(time, &lane.pending_obs)
                .expect("step_consults_ego implies an armed maneuver");
            if *decision.get_or_insert(met) != met {
                return true;
            }
        }
        let fires = decision.unwrap_or(false);
        fires
            && matches!(
                actor.armed_maneuver().map(|m| m.action),
                Some(Action::MatchEgoSpeed { .. })
            )
    }

    /// Runs to completion and returns the per-lane outcomes, in lane
    /// order.
    pub fn finish(self) -> Vec<StepOutcome> {
        self.finish_with_stats().0
    }

    /// [`BatchSim::finish`] plus the run's cost accounting.
    pub fn finish_with_stats(mut self) -> (Vec<StepOutcome>, BatchStats) {
        while self.step_all() {}
        let stats = self.stats;
        stats.fold_into_telemetry();
        (
            self.lanes.into_iter().map(|lane| lane.outcome).collect(),
            stats,
        )
    }
}

/// Shared-actor world poses for one tick (phase 1): one projection per
/// unforked actor regardless of lane count. `placeholder` fills forked
/// slots and is never read — phase 2 consults the fork flag first.
fn fill_shared_agents(
    sim: &Simulation,
    forked: &[bool],
    shared_hints: &mut [ProjectionHint],
    shared_agents: &mut Vec<Agent>,
    placeholder: Agent,
) {
    shared_agents.clear();
    for (i, actor) in sim.actors.iter().enumerate() {
        shared_agents.push(if forked[i] {
            placeholder
        } else {
            actor.to_agent_hinted(&sim.road, &mut shared_hints[i])
        });
    }
}

/// Rebuilds `lane`'s snapshot columns at `time`, exactly as the engine
/// does: the lane's ego pose, then every actor — a forked actor projects
/// its own state, a shared one copies the phase-1 pose.
fn rebuild_snapshot(lane: &mut Lane, sim: &Simulation, shared_agents: &[Agent], time: Seconds) {
    lane.scratch.time = time;
    lane.scratch.ego = lane.ego.to_agent_hinted(&sim.road, &mut lane.ego_pose_hint);
    lane.scratch.clear_actors();
    for ((fork, hint), shared) in lane
        .forks
        .iter()
        .zip(lane.fork_hints.iter_mut())
        .zip(shared_agents)
    {
        let agent = match fork {
            Some(fork) => fork.to_agent_hinted(&sim.road, hint),
            None => *shared,
        };
        lane.scratch.push_actor(agent);
    }
}

/// Ground-truth collision check (circumcircle prefilter + SAT) over the
/// lane's freshly rebuilt snapshot, identical to the engine's. Returns
/// whether the lane collided this tick (the event is already streamed).
fn collision_check(
    lane: &Lane,
    sim: &Simulation,
    observer: &mut dyn SimObserver,
    time: Seconds,
) -> bool {
    let ego = &lane.scratch.ego;
    let positions = lane.scratch.positions();
    let mut ego_fp = None;
    for (i, (&position, r_actor)) in positions.iter().zip(&sim.actor_circumradii).enumerate() {
        let r_sum = lane.ego_circumradius + r_actor;
        if (position - ego.state.position).norm_sq() > r_sum * r_sum {
            continue;
        }
        let ego_fp = ego_fp.get_or_insert_with(|| ego.footprint());
        let dims = lane.scratch.dims()[i];
        let footprint = OrientedRect::new(
            position,
            lane.scratch.headings()[i],
            dims.length,
            dims.width,
        );
        if ego_fp.intersects(&footprint) {
            observer.on_event(&SimEvent::Collision {
                time,
                actor: lane.scratch.ids()[i],
            });
            return true;
        }
    }
    false
}

/// The idle-tick collision check: same inputs, same circumcircle + SAT
/// sequence, same event as [`collision_check`] — but fed straight from
/// the lane's ego pose and the phase-1 shared poses (forks project their
/// own state), without materializing the snapshot columns nobody else
/// reads this tick. Every value equals what [`rebuild_snapshot`] would
/// have written, so the verdict is bitwise the engine's.
fn collision_check_lean(
    lane: &mut Lane,
    sim: &Simulation,
    shared_agents: &[Agent],
    observer: &mut dyn SimObserver,
    time: Seconds,
) -> bool {
    let ego = lane.ego.to_agent_hinted(&sim.road, &mut lane.ego_pose_hint);
    let mut ego_axis = None;
    let mut ego_fp = None;
    for (((fork, hint), shared), &circumradius) in lane
        .forks
        .iter()
        .zip(lane.fork_hints.iter_mut())
        .zip(shared_agents)
        .zip(&sim.actor_circumradii)
    {
        let agent = match fork {
            Some(fork) => fork.to_agent_hinted(&sim.road, hint),
            None => *shared,
        };
        let r_sum = lane.ego_circumradius + circumradius;
        let delta = agent.state.position - ego.state.position;
        if delta.norm_sq() > r_sum * r_sum {
            continue;
        }
        // Separating-axis early-out on the ego's own axes, with the
        // actor's circumradius over-approximating its extent: separation
        // here implies the SAT below separates on its first axis pair, so
        // skipping it cannot change the verdict. This settles the common
        // close-following case (inside the circumcircle, separated along
        // the ego's length) with two dot products instead of the full
        // corner projections.
        let axis = *ego_axis.get_or_insert_with(|| Vec2::from_heading(ego.state.heading));
        let r_actor = circumradius + 1e-6;
        if delta.dot(axis).abs() > ego.dims.length.value() / 2.0 + r_actor
            || delta.cross(axis).abs() > ego.dims.width.value() / 2.0 + r_actor
        {
            continue;
        }
        let ego_fp = ego_fp.get_or_insert_with(|| ego.footprint());
        let footprint = OrientedRect::new(
            agent.state.position,
            agent.state.heading,
            agent.dims.length,
            agent.dims.width,
        );
        if ego_fp.intersects(&footprint) {
            observer.on_event(&SimEvent::Collision {
                time,
                actor: agent.id,
            });
            return true;
        }
    }
    false
}

impl Simulation {
    /// Runs `specs.len()` lanes of this scenario in lockstep — one lane
    /// per candidate perception configuration — streaming each lane's
    /// ticks and events to its observer. Returns the per-lane outcomes.
    ///
    /// Each lane's stream and outcome are bit-identical to resetting this
    /// simulation to the lane's spec and calling
    /// [`Simulation::run_with`]; see the [module docs](self) for the
    /// sharing argument. Lanes retire at their first collision; no other
    /// early exit is taken, so metrics observers fold every tick exactly
    /// as in a standalone run.
    ///
    /// The simulation's shared actors are rewound before the run and left
    /// at their end-of-run state; [`Simulation::reset`] restores them, as
    /// after any run.
    ///
    /// # Panics
    ///
    /// Panics when `specs` and `observers` disagree in length, or when
    /// the engine is not configured to stop on collision.
    pub fn run_batched(
        &mut self,
        specs: Vec<LaneSpec>,
        observers: Vec<&mut dyn SimObserver>,
    ) -> Vec<StepOutcome> {
        BatchSim::new(self, specs, observers, false).finish()
    }

    /// [`Simulation::run_batched`] for verdict-only lanes: nothing is
    /// observed (every lane runs under a [`NullObserver`]), which allows
    /// the conservative safe-suffix certificates to retire lanes whose
    /// remaining ticks provably cannot produce a collision. The returned
    /// outcomes — `Collided` or `Finished` per lane — are identical to
    /// the per-lane [`Simulation::run_with`] outcomes.
    pub fn run_batched_verdicts(&mut self, specs: Vec<LaneSpec>) -> Vec<StepOutcome> {
        self.run_batched_verdicts_with_stats(specs).0
    }

    /// [`Simulation::run_batched_verdicts`] plus the run's cost
    /// accounting ([`BatchStats`]), for benchmarks and retirement logs.
    pub fn run_batched_verdicts_with_stats(
        &mut self,
        specs: Vec<LaneSpec>,
    ) -> (Vec<StepOutcome>, BatchStats) {
        let mut nulls: Vec<NullObserver> = vec![NullObserver; specs.len()];
        let observers: Vec<&mut dyn SimObserver> = nulls
            .iter_mut()
            .map(|n| n as &mut dyn SimObserver)
            .collect();
        BatchSim::new(self, specs, observers, true).finish_with_stats()
    }

    /// The tick-stepped form of [`Simulation::run_batched`], for tests
    /// that drive the lockstep loop manually (e.g. the counting-allocator
    /// suite asserting warm batched ticks stay allocation-free).
    pub fn batched<'sim, 'obs>(
        &'sim mut self,
        specs: Vec<LaneSpec>,
        observers: Vec<&'obs mut dyn SimObserver>,
    ) -> BatchSim<'sim, 'obs> {
        BatchSim::new(self, specs, observers, false)
    }

    /// The tick-stepped form of [`Simulation::run_batched_verdicts`]:
    /// certificates enabled, so callers must pass observers that ignore
    /// the stream (retired lanes stop producing ticks for them).
    pub fn batched_verdicts<'sim, 'obs>(
        &'sim mut self,
        specs: Vec<LaneSpec>,
        observers: Vec<&'obs mut dyn SimObserver>,
    ) -> BatchSim<'sim, 'obs> {
        BatchSim::new(self, specs, observers, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimulationConfig;
    use crate::observer::{MetricsObserver, TraceRecorder};
    use crate::policy::PolicyConfig;
    use crate::road::LaneId;
    use crate::script::{ActorScript, Placement, Trigger};
    use av_perception::rig::CameraRig;
    use av_perception::system::RatePlan;
    use av_perception::world_model::TrackerConfig;

    fn perception(fpr: f64) -> PerceptionSystem {
        PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(fpr)),
            TrackerConfig::default(),
        )
        .expect("valid plan")
    }

    fn ego(road: &Road, speed: f64) -> EgoVehicle {
        EgoVehicle::spawn(
            road,
            LaneId(1),
            Meters(50.0),
            PolicyConfig::cruise(MetersPerSecond(speed)),
        )
    }

    /// A scenario exercising every sharing path: an ego-coupled cutter
    /// (forks), a time-triggered braker (stays shared through its fire),
    /// a static obstacle and an adjacent cruiser (shared forever).
    fn scripts() -> Vec<ActorScript> {
        vec![
            ActorScript::cruising(
                ActorId(1),
                Placement {
                    lane: LaneId(0),
                    s: Meters(120.0),
                    speed: MetersPerSecond(18.0),
                },
            )
            .with_maneuver(
                Trigger::GapAheadOfEgo(Meters(40.0)),
                Action::ChangeLane {
                    target: LaneId(1),
                    duration: Seconds(2.0),
                },
            ),
            ActorScript::cruising(
                ActorId(2),
                Placement {
                    lane: LaneId(1),
                    s: Meters(220.0),
                    speed: MetersPerSecond(24.0),
                },
            )
            .with_maneuver(
                Trigger::AtTime(Seconds(4.0)),
                Action::HardBrake {
                    decel: MetersPerSecondSquared(5.0),
                },
            ),
            ActorScript::obstacle(ActorId(3), LaneId(1), Meters(700.0)),
            ActorScript::cruising(
                ActorId(4),
                Placement {
                    lane: LaneId(2),
                    s: Meters(40.0),
                    speed: MetersPerSecond(22.0),
                },
            ),
        ]
    }

    fn sim(duration: f64) -> Simulation {
        let road = Road::straight_three_lane(Meters(3000.0));
        let e = ego(&road, 24.0);
        Simulation::new(
            road,
            e,
            scripts(),
            perception(30.0),
            SimulationConfig {
                duration: Seconds(duration),
                ..Default::default()
            },
        )
    }

    const RATES: [f64; 4] = [1.0, 3.0, 8.0, 30.0];

    #[test]
    fn batched_traces_are_bitwise_identical_to_standalone_runs() {
        // Reference: each rate through its own standalone run.
        let mut reference = Vec::new();
        for &fpr in &RATES {
            let mut s = sim(8.0);
            let road = s.road().clone();
            s.reset(ego(&road, 24.0), perception(fpr));
            let mut recorder = TraceRecorder::new(Seconds(0.01));
            let outcome = s.run_with(&mut recorder);
            reference.push((outcome, recorder.into_trace()));
        }
        // Batched: all rates through one lockstep loop.
        let mut batch_sim = sim(8.0);
        let road = batch_sim.road().clone();
        let specs: Vec<LaneSpec> = RATES
            .iter()
            .map(|&fpr| LaneSpec {
                ego: ego(&road, 24.0),
                perception: perception(fpr),
            })
            .collect();
        let mut recorders: Vec<TraceRecorder> = RATES
            .iter()
            .map(|_| TraceRecorder::new(Seconds(0.01)))
            .collect();
        let observers: Vec<&mut dyn SimObserver> = recorders
            .iter_mut()
            .map(|r| r as &mut dyn SimObserver)
            .collect();
        let outcomes = batch_sim.run_batched(specs, observers);
        for (i, recorder) in recorders.into_iter().enumerate() {
            assert_eq!(outcomes[i], reference[i].0, "lane {i} outcome diverged");
            assert_eq!(
                recorder.into_trace(),
                reference[i].1,
                "lane {i} trace diverged from its standalone run"
            );
        }
    }

    #[test]
    fn batched_metrics_match_standalone_runs() {
        let mut reference = Vec::new();
        for &fpr in &RATES {
            let mut s = sim(6.0);
            let road = s.road().clone();
            s.reset(ego(&road, 24.0), perception(fpr));
            let mut metrics = MetricsObserver::new();
            s.run_with(&mut metrics);
            reference.push(metrics.summary());
        }
        let mut batch_sim = sim(6.0);
        let road = batch_sim.road().clone();
        let specs: Vec<LaneSpec> = RATES
            .iter()
            .map(|&fpr| LaneSpec {
                ego: ego(&road, 24.0),
                perception: perception(fpr),
            })
            .collect();
        let mut folds: Vec<MetricsObserver> =
            RATES.iter().map(|_| MetricsObserver::new()).collect();
        let observers: Vec<&mut dyn SimObserver> = folds
            .iter_mut()
            .map(|m| m as &mut dyn SimObserver)
            .collect();
        batch_sim.run_batched(specs, observers);
        for (i, fold) in folds.iter().enumerate() {
            assert_eq!(fold.summary(), reference[i], "lane {i} summary diverged");
        }
    }

    #[test]
    fn verdict_lanes_match_standalone_outcomes() {
        let mut batch_sim = sim(8.0);
        let road = batch_sim.road().clone();
        let specs: Vec<LaneSpec> = RATES
            .iter()
            .map(|&fpr| LaneSpec {
                ego: ego(&road, 24.0),
                perception: perception(fpr),
            })
            .collect();
        let verdicts = batch_sim.run_batched_verdicts(specs);
        for (i, &fpr) in RATES.iter().enumerate() {
            let mut s = sim(8.0);
            let road = s.road().clone();
            s.reset(ego(&road, 24.0), perception(fpr));
            let outcome = s.run_with(&mut NullObserver);
            assert_eq!(verdicts[i], outcome, "verdict diverged at {fpr} FPR");
        }
    }

    #[test]
    fn a_batched_run_leaves_the_simulation_resettable() {
        let mut s = sim(4.0);
        let road = s.road().clone();
        let specs = vec![LaneSpec {
            ego: ego(&road, 24.0),
            perception: perception(30.0),
        }];
        let mut null = NullObserver;
        let observers: Vec<&mut dyn SimObserver> = vec![&mut null];
        s.run_batched(specs, observers);
        // The engine path still works and matches a fresh build.
        s.reset(ego(&road, 24.0), perception(30.0));
        let mut metrics = MetricsObserver::new();
        s.run_with(&mut metrics);
        let mut fresh = sim(4.0);
        let road = fresh.road().clone();
        fresh.reset(ego(&road, 24.0), perception(30.0));
        let mut fresh_metrics = MetricsObserver::new();
        fresh.run_with(&mut fresh_metrics);
        assert_eq!(metrics.summary(), fresh_metrics.summary());
    }

    #[test]
    #[should_panic(expected = "one observer per batched lane")]
    fn lane_observer_arity_is_enforced() {
        let mut s = sim(1.0);
        let road = s.road().clone();
        let specs = vec![LaneSpec {
            ego: ego(&road, 24.0),
            perception: perception(30.0),
        }];
        s.run_batched(specs, Vec::new());
    }
}

pub mod cert {
    //! Conservative safe-suffix certificates for verdict-only lanes.
    //!
    //! A certificate retires a lane early by proving its remaining run
    //! cannot collide. Every rule errs toward *refusing*: a lane that
    //! fails certification simply keeps simulating, so the only cost of
    //! conservatism is ticks, never correctness. The rules reason about
    //! the *closed loop* — scripts, planner, and perception together —
    //! and decline whenever any ingredient resists a static argument
    //! (curved roads, pending ego-coupled maneuvers, injected frame
    //! loss, stale in-corridor tracks, unconverged speeds).
    //!
    //! Three shapes are certified, matching the Table-1 endgames:
    //!
    //! 1. **All-separated** — every actor is (and provably remains)
    //!    laterally separated from the ego's corridor by more than the
    //!    footprints plus the planner's corridor margin can ever bridge.
    //!    Collision is geometrically impossible regardless of what the
    //!    ego does, so no perception reasoning is needed at all.
    //! 2. **Parked ego** — the ego is (almost) stopped behind a static
    //!    in-corridor blocker it has confirmed at standstill gap. IDM
    //!    creep toward the standstill gap is bounded by the remaining
    //!    perceived gap; every other actor is separated or beyond the
    //!    blocker and receding.
    //! 3. **Steady following** — the ego tracks a constant-speed (or
    //!    ego-speed-matching) lead near the IDM equilibrium. Inside the
    //!    entry band the closed loop is a damped follower; the drift
    //!    bound [`FOLLOW_DRIFT`]·[`FOLLOW_DAMP_HORIZON`] over-covers the
    //!    worst transient the band admits, and the gap floor keeps the
    //!    certificate far from any state the planner could turn into a
    //!    collision.
    //!
    //! The constants below are deliberately conservative envelopes, not
    //! tuned-to-pass values; the batched-vs-per-rate equivalence suite
    //! (full jittered catalog × rate grid) and the late-collision
    //! adversarial test pin, per commit, that no certificate fires on a
    //! run whose suffix still held a collision.

    use super::*;
    use av_perception::occlusion::BLOCKER_SHRINK;
    use zhuyi_telemetry::CertReason;

    /// Whether `ZHUYI_CERT_DEBUG` is set, read once (the per-call
    /// environment lookup would allocate, and certificate attempts must
    /// stay allocation-free on the decline path).
    fn debug_declines() -> bool {
        static DEBUG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *DEBUG.get_or_init(|| std::env::var_os("ZHUYI_CERT_DEBUG").is_some())
    }

    /// Decline telemetry: every decline bumps the structured per-reason
    /// counter in the installed telemetry registry (a branch plus one
    /// relaxed atomic add when enabled, a branch when not); set
    /// `ZHUYI_CERT_DEBUG=1` to additionally log the full per-instance
    /// message (reason + tick + parameters) to stderr, for tuning the
    /// conservative envelopes against real sweeps.
    macro_rules! decline {
        ($tick:expr, $reason:expr, $($why:tt)*) => {{
            zhuyi_telemetry::cert_decline($reason);
            if debug_declines() {
                eprintln!("cert declined @tick {}: {}", $tick, format!($($why)*));
            }
            return false;
        }};
    }

    /// First tick at which a lane attempts certification.
    pub const FIRST_ATTEMPT_TICK: u64 = 32;
    /// Initial retry backoff after a failed attempt, in ticks.
    pub const RETRY_BACKOFF_TICKS: u64 = 32;
    /// Backoff cap: a lane re-attempts at least this often.
    pub const MAX_BACKOFF_TICKS: u64 = 64;

    /// Extra lateral slack (m) beyond footprints + corridor margin
    /// required before an actor counts as separated for good.
    pub const SEP_SLACK: f64 = 0.7;
    /// How close to the ego's own lateral offset an in-corridor lead or
    /// trailer must sit (m) — the sight-corridor half-extent.
    pub const LEAD_D_TOL: f64 = 0.25;
    /// Parked-ego certificate: ego speed ceiling (m/s). Covers the IDM
    /// standstill creep, which peaks well below this.
    pub const PARKED_EGO_VMAX: f64 = 0.5;
    /// Parked-ego certificate: ego acceleration ceiling (m/s²).
    pub const PARKED_EGO_AMAX: f64 = 0.2;
    /// Parked-ego: the perceived gap may exceed the IDM standstill gap by
    /// at most this much (m) — the creep budget.
    pub const PARKED_GAP_SLACK: f64 = 1.0;
    /// Parked-ego: minimum true bumper gap (m) below which the
    /// certificate declines (too close to bound the residual creep).
    pub const PARKED_GAP_FLOOR: f64 = 0.8;
    /// Steady-following: relative-speed entry band (m/s).
    pub const FOLLOW_DV: f64 = 1.0;
    /// Steady-following: additional drift allowance (m/s) on top of the
    /// entry-band relative speed when bounding future gap change.
    pub const FOLLOW_DRIFT: f64 = 0.4;
    /// Steady-following: ego acceleration entry band (m/s²).
    pub const FOLLOW_AMAX: f64 = 1.5;
    /// Steady-following: horizon (s) over which the band's worst
    /// relative-speed transient is integrated. The IDM follower damps
    /// in-band perturbations well inside this window.
    pub const FOLLOW_DAMP_HORIZON: f64 = 8.0;
    /// Steady-following: bumper-gap floor (m) that must survive the
    /// worst-case drift.
    pub const FOLLOW_GAP_FLOOR: f64 = 4.0;
    /// Steady-following: the fraction of the IDM desired gap `s*` the
    /// current gap must exceed. The damped approach to the equilibrium
    /// gap (`s*/sqrt(1-(v/v0)^4)`, just above `s*`) undershoots it
    /// transiently, so this is a near-equilibrium gate, not the safety
    /// margin — the drift bound and the gap floor carry that.
    pub const FOLLOW_GAP_FRACTION: f64 = 0.8;
    /// Steady-following: absolute minimum bumper gap (m).
    pub const FOLLOW_MIN_GAP: f64 = 8.0;
    /// Minimum acceleration bound (m/s²) an ego-speed-matching actor must
    /// have for its tracking lag to stay inside the band.
    pub const MATCH_LIMIT_MIN: f64 = 1.5;
    /// Relative-speed band (m/s) for ego-speed-matching leads/trailers.
    pub const MATCH_DV: f64 = 0.5;
    /// Slack (m) kept below a camera's range when bounding the lead's
    /// future distance.
    pub const RANGE_MARGIN: f64 = 10.0;
    /// Longitudinal margin (m) an actor beyond the lead must keep from
    /// it.
    pub const BEYOND_MARGIN: f64 = 2.0;
    /// Convergence tolerance (m/s) for treating a `Toward` speed mode as
    /// settled at its target.
    pub const SPEED_CONVERGED: f64 = 1e-6;
    /// Extra bumper gap (m) kept above a pending `GapAheadOfEgo` trigger
    /// threshold when certifying the trigger never fires.
    pub const INERT_TRIGGER_MARGIN: f64 = 1.5;
    /// Parked-ego: ceiling (m) on ego speed × slowest frame period —
    /// bounds how far a stale perceived gap can overstate the true one
    /// while the ego creeps.
    pub const PARKED_STALE_CREEP: f64 = 0.35;
    /// Sharpest curvature (1/m) the certificates reason about; the
    /// catalog's arc is 1/400.
    pub const CURVE_KAPPA_MAX: f64 = 1.0 / 250.0;
    /// Extra lateral slack (m) on an arc: covers the polyline sampling
    /// of the arc (millimeters at a 2 m step) with two orders of margin.
    pub const CURVE_LAT_SLACK: f64 = 0.15;
    /// Extra longitudinal floor slack (m) on an arc: covers arc-vs-chord
    /// shortening of Frenet gaps at certificate scales.
    pub const CURVE_GAP_SLACK: f64 = 0.5;
    /// Extra dead-reckoning slack (m) on an arc: a coasted track runs
    /// straight while the road bends; at catalog speeds and periods the
    /// lateral error stays under `(v·T)²·κ/2 ≈ 0.4 m`.
    pub const CURVE_STALE_SLACK: f64 = 0.5;

    /// Certificate-relevant classification of one actor.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub(super) enum Class {
        /// Laterally separated from the ego corridor, forever.
        Separated,
        /// In-corridor, ahead of the ego: candidate lead.
        ///
        /// `inert_floor` is the bumper gap the certificate must keep the
        /// lead above for the rest of the run: `0` for a completed
        /// script, or `G +` [`INERT_TRIGGER_MARGIN`] when the actor's
        /// next maneuver is gated on a `GapAheadOfEgo(G)` trigger —
        /// holding the gap above `G` forever keeps that maneuver (and
        /// every maneuver behind it) unfired, so the actor behaves as if
        /// its script were complete.
        Lead {
            /// Minimum future bumper gap that keeps the script inert.
            inert_floor: f64,
        },
        /// In-corridor, behind the ego: candidate trailer.
        Trailer,
    }

    /// A lead/trailer's certified future-speed behavior.
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum SpeedLaw {
        /// Holds `v` (± ulp wobble) forever.
        Constant(f64),
        /// Chases the ego's speed with at least [`MATCH_LIMIT_MIN`]
        /// authority.
        MatchesEgo,
    }

    /// Whether the actor's remaining script can be certified inert: no
    /// pending maneuvers (`Some(0.0)`), or a first pending maneuver gated
    /// on an ego-gap-ahead trigger that a gap floor keeps unfired
    /// (`Some(required_gap)`). Anything else returns `None`.
    fn pending_inertia(actor: &ScriptedActor) -> Option<f64> {
        match actor.pending_maneuvers().first() {
            None => Some(0.0),
            Some(m) => match m.trigger {
                Trigger::GapAheadOfEgo(g) => Some(g.value() + INERT_TRIGGER_MARGIN),
                _ => None,
            },
        }
    }

    fn speed_law(actor: &ScriptedActor) -> Option<SpeedLaw> {
        match actor.mode_view() {
            SpeedModeView::Hold => Some(SpeedLaw::Constant(actor.speed().value())),
            SpeedModeView::Toward { target, .. } => {
                if (actor.speed().value() - target.value()).abs() <= SPEED_CONVERGED {
                    Some(SpeedLaw::Constant(actor.speed().value()))
                } else {
                    None
                }
            }
            SpeedModeView::MatchEgo { limit } => {
                (limit.value() >= MATCH_LIMIT_MIN).then_some(SpeedLaw::MatchesEgo)
            }
        }
    }

    /// The hull of every lateral offset the actor can ever occupy: its
    /// current offset, an in-flight lane change's destination, and the
    /// destinations of every unfired `ChangeLane`. Lateral motion is a
    /// monotone blend between consecutive lane centers, so the hull
    /// contains the whole future `d` trajectory.
    fn d_hull(actor: &ScriptedActor, road: &Road) -> (f64, f64) {
        let mut lo = actor.d().value();
        let mut hi = lo;
        let mut cover = |d: f64| {
            lo = lo.min(d);
            hi = hi.max(d);
        };
        if let Some(target) = actor.lane_change_target() {
            cover(target.value());
        }
        for m in actor.pending_maneuvers() {
            if let Action::ChangeLane { target, .. } = m.action {
                if let Ok(d) = road.lane_offset(target) {
                    cover(d.value());
                }
            }
        }
        (lo, hi)
    }

    fn interval_distance(lo: f64, hi: f64, point: f64) -> f64 {
        if point < lo {
            lo - point
        } else if point > hi {
            point - hi
        } else {
            0.0
        }
    }

    /// Attempts every certificate for `lane` at `tick`; `true` retires
    /// the lane as provably collision-free for the rest of the run.
    pub(super) fn certifies_safe_suffix(
        sim: &Simulation,
        lane: &Lane,
        forked: &[bool],
        tick: u64,
        curvature: f64,
        classes: &mut Vec<Class>,
    ) -> bool {
        let now = Seconds(tick as f64 * sim.config.dt.value());
        // Frenet reasoning below needs an (s, d) chart whose distances
        // are honest. On a straight path it is globally Euclidean; on a
        // gentle arc, offset curves are concentric — lateral separation
        // is exact, and the longitudinal chord-vs-arc and dead-reckoning
        // distortions are covered by [`CURVE_LAT_SLACK`],
        // [`CURVE_GAP_SLACK`] and [`CURVE_STALE_SLACK`] below. Sharper
        // curvature declines.
        if curvature > CURVE_KAPPA_MAX {
            decline!(
                tick,
                CertReason::CurvatureBeyondBound,
                "curvature {curvature:.5} beyond certificate bound"
            );
        }
        let curved = curvature > 0.0;
        let lat_slack = if curved { CURVE_LAT_SLACK } else { 0.0 };
        let gap_slack = if curved { CURVE_GAP_SLACK } else { 0.0 };
        let stale_slack = if curved { CURVE_STALE_SLACK } else { 0.0 };
        let remaining = (sim.total_ticks.saturating_sub(tick)) as f64 * sim.config.dt.value();
        let ego = &lane.ego;
        let e_d = ego.d().value();
        let e_s = ego.s().value();
        let e_len = ego.dims().length.value();
        let e_w = ego.dims().width.value();
        let cfg = *ego.config();
        let corridor_margin = cfg.corridor_margin.value();

        // Classify every actor, declining on anything unclassifiable.
        classes.clear();
        let mut lead: Option<usize> = None;
        let mut trailer: Option<usize> = None;
        for (i, _) in sim.actors.iter().enumerate() {
            let actor = lane_actor(sim, lane, forked, i);
            let (d_lo, d_hi) = d_hull(actor, &sim.road);
            let w = actor.script().dims.width.value();
            let lateral = interval_distance(d_lo, d_hi, e_d);
            let sep_needed = (w + e_w) / 2.0 + corridor_margin + SEP_SLACK + lat_slack;
            // An occluder that can never overlap the sight corridor: its
            // shrunken half-width plus the corridor half-extent.
            let occ_needed = LEAD_D_TOL + BLOCKER_SHRINK * w / 2.0 + 0.3 + lat_slack;
            if lateral >= sep_needed.max(occ_needed) {
                classes.push(Class::Separated);
                continue;
            }
            // In-corridor actors must sit dead on the ego's lateral
            // line, have an inert-certifiable script, and follow a
            // certifiable speed law.
            let inertia = pending_inertia(actor);
            let tight = (actor.d().value() - e_d).abs() <= LEAD_D_TOL
                && actor.lane_change_target().is_none()
                && inertia.is_some()
                && speed_law(actor).is_some();
            if !tight {
                decline!(
                    tick,
                    CertReason::ActorUnclassifiable,
                    "actor {} unclassifiable (d {:.2} vs ego {:.2}, pending {}, law {:?})",
                    actor.script().id,
                    actor.d().value(),
                    e_d,
                    actor.pending_maneuvers().len(),
                    speed_law(actor)
                );
            }
            if actor.s().value() > e_s {
                classes.push(Class::Lead {
                    inert_floor: inertia.expect("checked above"),
                });
                match lead {
                    // Keep the nearest as "the" lead; remember the rest
                    // for the beyond-the-lead check below.
                    None => lead = Some(i),
                    Some(prev) => {
                        let prev_s = lane_actor(sim, lane, forked, prev).s().value();
                        if actor.s().value() < prev_s {
                            lead = Some(i);
                        }
                    }
                }
            } else {
                if trailer.is_some() {
                    decline!(tick, CertReason::MultipleTrailers, "multiple trailers");
                }
                if inertia != Some(0.0) {
                    decline!(
                        tick,
                        CertReason::TrailerPendingManeuvers,
                        "trailer with pending maneuvers"
                    );
                }
                classes.push(Class::Trailer);
                trailer = Some(i);
            }
        }

        // Corridor actors beyond the nearest lead must clear it and never
        // fall back into the sight segment.
        if let Some(li) = lead {
            let l = lane_actor(sim, lane, forked, li);
            let l_s = l.s().value();
            let l_len = l.script().dims.length.value();
            let l_law = speed_law(l).expect("leads have a speed law");
            for (i, class) in classes.iter().enumerate() {
                let Class::Lead { inert_floor } = *class else {
                    continue;
                };
                if i == li {
                    continue;
                }
                let b = lane_actor(sim, lane, forked, i);
                let clears = b.s().value() - l_s
                    > (b.script().dims.length.value() + l_len) / 2.0 + BEYOND_MARGIN;
                let receding = match (speed_law(b), l_law) {
                    (Some(SpeedLaw::Constant(vb)), SpeedLaw::Constant(vl)) => {
                        vb >= vl - SPEED_CONVERGED
                    }
                    _ => false,
                };
                if !(clears && receding && inert_floor == 0.0) {
                    decline!(
                        tick,
                        CertReason::BeyondLeadUnclear,
                        "actor beyond the lead too close, closing or scripted"
                    );
                }
            }
        }

        // Shape 1 — all separated: collision is geometrically impossible
        // whatever the ego or its (possibly phantom) perception does.
        if lead.is_none() && trailer.is_none() {
            return true;
        }

        // The remaining shapes reason about what the planner will do,
        // which requires trusting the lead's track to keep refreshing.
        if lane.perception.has_frame_loss() {
            decline!(tick, CertReason::FrameLoss, "injected frame loss");
        }

        // Every confirmed track other than the lead/trailer must already
        // be out of the corridor: a stale in-corridor track could still
        // be elected lead by the planner, taking the closed loop outside
        // this certificate's model. (Coasting preserves a track's
        // lateral offset — track headings are road-tangent — so one
        // check now holds until the track refreshes further out.)
        let lead_id = lead.map(|i| lane_actor(sim, lane, forked, i).script().id);
        let trailer_id = trailer.map(|i| lane_actor(sim, lane, forked, i).script().id);
        for track in lane.perception.world().tracks() {
            let id = track.agent.id;
            if Some(id) == lead_id || Some(id) == trailer_id {
                continue;
            }
            let f = sim.road.to_frenet(track.agent.state.position);
            let lateral = (f.d.value() - e_d).abs();
            let needed = (track.agent.dims.width.value() + e_w) / 2.0 + corridor_margin + 0.2;
            if lateral <= needed {
                decline!(
                    tick,
                    CertReason::StaleInCorridorTrack,
                    "stale in-corridor track {}",
                    id
                );
            }
        }

        // On an arc, every certified body must stay on the sampled path
        // for the rest of the run (the concentric-offset argument does
        // not extend past the ends, where frames extrapolate straight).
        if curved {
            let length = sim.road.path().length().value();
            let ego_v_max = ego.speed().value().max(cfg.desired_speed.value()) + 0.2;
            let mut s_hi = e_s + ego_v_max * remaining;
            for (i, class) in classes.iter().enumerate() {
                if *class == Class::Separated {
                    continue;
                }
                let a = lane_actor(sim, lane, forked, i);
                let v_hi = match speed_law(a) {
                    Some(SpeedLaw::Constant(v)) => v,
                    Some(SpeedLaw::MatchesEgo) => ego_v_max,
                    None => unreachable!("corridor actors have a speed law"),
                };
                s_hi = s_hi.max(a.s().value() + v_hi * remaining);
            }
            if s_hi > length - 10.0 || e_s < 2.0 {
                decline!(
                    tick,
                    CertReason::LeavesSampledArc,
                    "run leaves the sampled arc"
                );
            }
        }

        // Trailer condition (shared by shapes 2 and 3): an ego-matching
        // follower whose tracking lag cannot consume the gap.
        if let Some(ti) = trailer {
            let t = lane_actor(sim, lane, forked, ti);
            let gap_b = (e_s - t.s().value()) - (e_len + t.script().dims.length.value()) / 2.0;
            let ok = match speed_law(t) {
                Some(SpeedLaw::MatchesEgo) => {
                    let dv = (t.speed().value() - ego.speed().value()).abs();
                    dv <= MATCH_DV
                        && gap_b >= FOLLOW_MIN_GAP
                        && gap_b - (dv + FOLLOW_DRIFT) * remaining.min(FOLLOW_DAMP_HORIZON)
                            >= FOLLOW_GAP_FLOOR
                }
                _ => false,
            };
            if !ok {
                decline!(
                    tick,
                    CertReason::TrailerOutsideBand,
                    "trailer {} outside band (law {:?}, gap {:.1})",
                    t.script().id,
                    speed_law(t),
                    gap_b
                );
            }
        }

        let Some(li) = lead else {
            // Trailer-only corridors: certified above; nothing ahead can
            // collide.
            return true;
        };
        let l = lane_actor(sim, lane, forked, li);
        let l_dims = l.script().dims;
        let gap_true = (l.s().value() - e_s) - (e_len + l_dims.length.value()) / 2.0;
        let law = speed_law(l).expect("leads have a speed law");
        let Class::Lead { inert_floor } = classes[li] else {
            unreachable!("lead index tracks lead classifications")
        };
        let slowest_period = 1.0 / lane.perception.slowest_rate().value();

        // The planner must currently hold a confirmed, fresh-shaped track
        // of the lead.
        let Some(track) = lane.perception.world().track(l.script().id) else {
            decline!(
                tick,
                CertReason::LeadUntracked,
                "lead {} untracked",
                l.script().id
            );
        };
        if !track.confirmed {
            decline!(
                tick,
                CertReason::LeadUnconfirmed,
                "lead {} unconfirmed",
                l.script().id
            );
        }
        // What the planner consumes is the *coasted* track — for a
        // constant-speed lead the dead-reckoned state tracks the truth,
        // which is exactly what the consistency checks below pin.
        let coasted = track.coasted(now);
        let f = sim.road.to_frenet(coasted.state.position);
        if (f.d.value() - e_d).abs() > LEAD_D_TOL + 0.2 + stale_slack {
            decline!(
                tick,
                CertReason::LeadLaterallyStale,
                "lead track laterally stale"
            );
        }
        let gap_perceived = (f.s.value() - e_s) - (e_len + l_dims.length.value()) / 2.0;

        // Current visibility, to anchor the refresh argument.
        let ego_state = lane.scratch.ego.state;
        let lead_agent = Agent::new(
            l.script().id,
            l.script().kind,
            l_dims,
            VehicleState::new(
                lane.scratch.positions()[li],
                lane.scratch.headings()[li],
                l.speed(),
                l.accel(),
            ),
        );
        let visible = lane
            .perception
            .rig()
            .cameras()
            .iter()
            .any(|cam| cam.sees_agent(&ego_state, &lead_agent));
        if !visible {
            decline!(
                tick,
                CertReason::LeadNotVisible,
                "lead not currently visible"
            );
        }

        let shape = match law {
            SpeedLaw::Constant(0.0) => {
                // Shape 2 — parked ego behind a static blocker.
                [
                    (
                        CertReason::ParkedEgoMoving,
                        ego.speed().value() <= PARKED_EGO_VMAX,
                    ),
                    (
                        CertReason::ParkedStaleCreep,
                        ego.speed().value() * slowest_period <= PARKED_STALE_CREEP,
                    ),
                    (CertReason::ParkedLeadScriptPending, inert_floor == 0.0),
                    (
                        CertReason::ParkedEgoAccelerating,
                        ego.accel().value() <= PARKED_EGO_AMAX,
                    ),
                    (
                        CertReason::ParkedGapFloor,
                        gap_true >= PARKED_GAP_FLOOR + gap_slack,
                    ),
                    (
                        CertReason::ParkedTrackNotAtRest,
                        track.agent.state.speed.value() == 0.0
                            && track.agent.state.accel.value() == 0.0,
                    ),
                    (
                        CertReason::ParkedCreepBudget,
                        gap_perceived <= cfg.min_gap.value() + PARKED_GAP_SLACK,
                    ),
                    (CertReason::ParkedTrailerPresent, trailer.is_none()),
                ]
                .iter()
                .find(|(_, ok)| !ok)
                .map(|(why, _)| *why)
            }
            SpeedLaw::Constant(v_l) => {
                // Shape 3 — steady following of a constant-speed lead.
                let dv = ego.speed().value() - v_l;
                let drift = (dv.abs() + FOLLOW_DRIFT) * remaining.min(FOLLOW_DAMP_HORIZON) + 0.1;
                let desired = cfg.idm_desired_gap(ego.speed().value().max(0.0), v_l.max(0.0));
                let range_ok = max_forward_range(lane) - RANGE_MARGIN
                    >= gap_true + drift + (e_len + l_dims.length.value()) / 2.0;
                [
                    (CertReason::FollowRelativeSpeed, dv.abs() <= FOLLOW_DV),
                    (
                        CertReason::FollowEgoAccel,
                        ego.accel().value().abs() <= FOLLOW_AMAX,
                    ),
                    (CertReason::FollowGapTooSmall, gap_true >= FOLLOW_MIN_GAP),
                    (
                        CertReason::FollowBelowIdmGap,
                        gap_true >= desired * FOLLOW_GAP_FRACTION,
                    ),
                    (
                        CertReason::FollowDriftEatsGap,
                        gap_true - drift >= (FOLLOW_GAP_FLOOR + gap_slack).max(inert_floor),
                    ),
                    (
                        CertReason::FollowTrackUnsettled,
                        (coasted.state.speed.value() - v_l).abs() <= 1e-3,
                    ),
                    (
                        CertReason::FollowGapInconsistent,
                        (gap_perceived - gap_true).abs() <= 0.6 + stale_slack,
                    ),
                    (CertReason::FollowOutOfRange, range_ok),
                ]
                .iter()
                .find(|(_, ok)| !ok)
                .map(|(why, _)| *why)
            }
            SpeedLaw::MatchesEgo => {
                // Shape 3 — lead pacing the ego's speed.
                let dv = ego.speed().value() - l.speed().value();
                let period = slowest_period;
                let stale = 2.0 * period * period + 0.1;
                let match_limit = match l.mode_view() {
                    SpeedModeView::MatchEgo { limit } => limit.value(),
                    _ => MATCH_LIMIT_MIN,
                };
                let drift = (dv.abs() + FOLLOW_DRIFT) * remaining.min(FOLLOW_DAMP_HORIZON) + stale;
                let range_ok = max_forward_range(lane) - RANGE_MARGIN
                    >= gap_true + drift + (e_len + l_dims.length.value()) / 2.0;
                [
                    (CertReason::MatchRelativeSpeed, dv.abs() <= MATCH_DV),
                    (
                        CertReason::MatchEgoAccel,
                        ego.accel().value().abs() <= FOLLOW_AMAX,
                    ),
                    (CertReason::MatchGapTooSmall, gap_true >= FOLLOW_MIN_GAP),
                    (
                        CertReason::MatchDriftEatsGap,
                        gap_true - drift >= (FOLLOW_GAP_FLOOR + gap_slack).max(inert_floor),
                    ),
                    (
                        CertReason::MatchTrackStale,
                        (coasted.state.speed.value() - l.speed().value()).abs()
                            <= match_limit * period + 0.2,
                    ),
                    (
                        CertReason::MatchGapInconsistent,
                        (gap_perceived - gap_true).abs() <= stale + 0.6 + stale_slack,
                    ),
                    (CertReason::MatchOutOfRange, range_ok),
                ]
                .iter()
                .find(|(_, ok)| !ok)
                .map(|(why, _)| *why)
            }
        };
        if let Some(why) = shape {
            decline!(tick, why, "{}", why.label());
        }
        true
    }

    fn lane_actor<'a>(
        sim: &'a Simulation,
        lane: &'a Lane,
        forked: &[bool],
        i: usize,
    ) -> &'a ScriptedActor {
        if forked[i] {
            lane.forks[i].as_ref().expect("forked lanes hold copies")
        } else {
            &sim.actors[i]
        }
    }

    /// The longest range among cameras mounted dead ahead.
    fn max_forward_range(lane: &Lane) -> f64 {
        lane.perception
            .rig()
            .cameras()
            .iter()
            .filter(|c| c.mount().value().abs() < 1e-9)
            .map(|c| c.range().value())
            .fold(0.0, f64::max)
    }
}
