//! Scenario traces: everything a run recorded.
//!
//! The pre-deployment workflow (paper §3.1) is "for each AV tested
//! scenario, the scenario trace is collected which includes the states of
//! the ego and all the actors at all the time-steps". [`Trace`] is that
//! artifact, plus the event log (maneuvers fired, collisions) needed to
//! classify a run as safe or not.

use av_core::prelude::*;
use av_core::scene::{Scene, SceneColumns};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Something notable that happened during a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// The ego's footprint overlapped an actor's: the safety failure the
    /// whole system exists to prevent.
    Collision {
        /// When the overlap was first detected.
        time: Seconds,
        /// The actor collided with.
        actor: ActorId,
    },
    /// A scripted maneuver fired.
    Maneuver {
        /// When it fired.
        time: Seconds,
        /// Human-readable description.
        description: String,
    },
}

impl fmt::Display for SimEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimEvent::Collision { time, actor } => {
                write!(f, "[{time}] collision with {actor}")
            }
            SimEvent::Maneuver { time, description } => {
                write!(f, "[{time}] {description}")
            }
        }
    }
}

/// The full record of one simulation run.
///
/// ```
/// use av_core::prelude::*;
/// use av_perception::prelude::*;
/// use av_sim::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let road = Road::straight_three_lane(Meters(1000.0));
/// let ego = EgoVehicle::spawn(&road, LaneId(1), Meters(0.0),
///                             PolicyConfig::cruise(MetersPerSecond(20.0)));
/// let perception = PerceptionSystem::new(CameraRig::drive_av(),
///     RatePlan::Uniform(Fpr(30.0)), TrackerConfig::default())?;
/// let trace = Simulation::new(road, ego, vec![], perception,
///     SimulationConfig { duration: Seconds(2.0), ..Default::default() }).run();
/// assert!(!trace.collided());
/// assert!(trace.duration().value() > 1.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Trace {
    /// Ground-truth snapshots, one per tick, in time order.
    pub scenes: Vec<Scene>,
    /// Event log.
    pub events: Vec<SimEvent>,
    /// Simulation tick length.
    pub dt: Seconds,
}

impl Trace {
    /// `true` when the run ended in a collision.
    pub fn collided(&self) -> bool {
        self.collision().is_some()
    }

    /// The first collision, if any.
    pub fn collision(&self) -> Option<(Seconds, ActorId)> {
        self.events.iter().find_map(|e| match e {
            SimEvent::Collision { time, actor } => Some((*time, *actor)),
            _ => None,
        })
    }

    /// Scenario time covered by the trace.
    pub fn duration(&self) -> Seconds {
        self.scenes.last().map(|s| s.time).unwrap_or(Seconds::ZERO)
    }

    /// The ego's minimum speed over the run (hard braking shows up here).
    pub fn min_ego_speed(&self) -> Option<MetersPerSecond> {
        self.scenes
            .iter()
            .map(|s| s.ego.state.speed)
            .min_by(|a, b| a.value().partial_cmp(&b.value()).expect("finite speeds"))
    }

    /// The ego's strongest deceleration over the run (positive magnitude).
    pub fn max_ego_decel(&self) -> Option<MetersPerSecondSquared> {
        self.scenes
            .iter()
            .map(|s| MetersPerSecondSquared((-s.ego.state.accel.value()).max(0.0)))
            .max_by(|a, b| a.value().partial_cmp(&b.value()).expect("finite accels"))
    }

    /// The smallest bumper-to-bumper distance between the ego and any
    /// actor over the run (a "near miss" metric; negative means overlap).
    pub fn min_clearance(&self) -> Option<Meters> {
        self.scenes
            .iter()
            .filter_map(min_clearance_in)
            .min_by(|a, b| a.value().partial_cmp(&b.value()).expect("finite distances"))
    }
}

/// The smallest ego-to-actor clearance within one scene (circle
/// approximation by half-diagonals; negative means overlap). `None` when
/// the scene has no actors.
///
/// Shared by [`Trace::min_clearance`] and the streaming
/// [`crate::observer::MetricsObserver`] so the two paths are equal by
/// construction.
pub fn min_clearance_in(scene: &Scene) -> Option<Meters> {
    let r_ego = scene.ego.dims.circumradius();
    scene
        .actors
        .iter()
        .map(|a| {
            let center = (a.state.position - scene.ego.state.position)
                .norm_sq()
                .sqrt();
            Meters(center - r_ego - a.dims.circumradius())
        })
        .min_by(|a, b| a.value().partial_cmp(&b.value()).expect("finite distances"))
}

/// [`min_clearance_in`] over the struct-of-arrays form of the scene: the
/// same fold (same operations, same order) reading the contiguous
/// position/dims columns the simulation hot loop maintains, so
/// [`crate::observer::MetricsObserver`] never has to materialize whole
/// agents. Bit-identical to [`min_clearance_in`] on the equivalent
/// [`Scene`].
pub fn min_clearance_columns(columns: &SceneColumns) -> Option<Meters> {
    let r_ego = columns.ego.dims.circumradius();
    let ego_position = columns.ego.state.position;
    columns
        .positions()
        .iter()
        .zip(columns.dims())
        .map(|(&position, dims)| {
            let center = (position - ego_position).norm_sq().sqrt();
            Meters(center - r_ego - dims.circumradius())
        })
        .min_by(|a, b| a.value().partial_cmp(&b.value()).expect("finite distances"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene(t: f64, ego_v: f64, ego_a: f64) -> Scene {
        let ego = Agent::new(
            ActorId::EGO,
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::new(
                Vec2::new(10.0 * t, 0.0),
                Radians(0.0),
                MetersPerSecond(ego_v),
                MetersPerSecondSquared(ego_a),
            ),
        );
        Scene::new(Seconds(t), ego, vec![])
    }

    #[test]
    fn collision_classification() {
        let mut trace = Trace {
            scenes: vec![scene(0.0, 10.0, 0.0)],
            events: vec![],
            dt: Seconds(0.01),
        };
        assert!(!trace.collided());
        trace.events.push(SimEvent::Maneuver {
            time: Seconds(0.5),
            description: "actor#1: lane change".into(),
        });
        assert!(!trace.collided());
        trace.events.push(SimEvent::Collision {
            time: Seconds(1.0),
            actor: ActorId(1),
        });
        assert!(trace.collided());
        assert_eq!(trace.collision(), Some((Seconds(1.0), ActorId(1))));
    }

    #[test]
    fn run_statistics() {
        let trace = Trace {
            scenes: vec![
                scene(0.0, 20.0, 0.0),
                scene(0.5, 15.0, -6.0),
                scene(1.0, 12.0, -2.0),
            ],
            events: vec![],
            dt: Seconds(0.5),
        };
        assert_eq!(trace.duration(), Seconds(1.0));
        assert_eq!(trace.min_ego_speed(), Some(MetersPerSecond(12.0)));
        assert_eq!(trace.max_ego_decel(), Some(MetersPerSecondSquared(6.0)));
    }

    #[test]
    fn empty_trace_defaults() {
        let trace = Trace::default();
        assert!(!trace.collided());
        assert_eq!(trace.duration(), Seconds::ZERO);
        assert_eq!(trace.min_ego_speed(), None);
        assert_eq!(trace.min_clearance(), None);
    }

    #[test]
    fn events_display() {
        let e = SimEvent::Collision {
            time: Seconds(1.5),
            actor: ActorId(2),
        };
        assert!(e.to_string().contains("collision"));
        assert!(e.to_string().contains("actor#2"));
    }
}
