//! Seed-batched lockstep simulation: lanes with *different jittered
//! geometry* through one tick loop.
//!
//! [`crate::batch`] batches the rate axis: N lanes of **one** scenario
//! instance, one per candidate perception rate. The minimum-safe-FPR
//! sweep, however, spends an order of magnitude more work on the
//! jitter-**seed** axis — the same scenario family re-instantiated under
//! many seeds, each seed re-run over the whole rate grid. This module
//! batches that axis too: a [`SeedBatchSim`] advances one **group** per
//! seed — each group a [`BatchSim`] over that seed's own
//! [`Simulation`] — through a single shared lockstep loop, so every
//! seed × rate lane ticks in step.
//!
//! # Layout and invariants
//!
//! - **Group-major lane columns.** Per-lane hot state (ego scalars,
//!   perception samplers, world-model tracks, certificate bookkeeping)
//!   lives in the group's lane vector, and the shared-actor Frenet
//!   columns swept by the idle fast path are struct-of-arrays per group
//!   (`actor_s`/`actor_d` in [`BatchSim`]). Groups own *different
//!   roads* (jitter may perturb geometry per seed), so nothing is
//!   shared **across** groups — the cross-seed win is the straight-road
//!   idle fast path plus lockstep cache reuse, not deduplication.
//! - **Per-lane retirement out of a mixed-geometry batch.** A
//!   certificate (or collision) retires exactly one lane of one group;
//!   the group's remaining lanes and every other group keep ticking. A
//!   fully retired group drops out of the loop at zero cost
//!   ([`BatchSim::step_all`] early-returns on `live == 0`).
//! - **Bitwise equivalence.** Each group is, by construction, the same
//!   `BatchSim` the rate-batched path runs — so every lane's verdict is
//!   bit-identical to its standalone [`Simulation::run_with`] run, and
//!   the cross-path equivalence harness (`tests/path_equivalence.rs` at
//!   the workspace root) pins per-seed vs rate-batched vs seed×rate
//!   exports byte for byte.
//!
//! The one-call entry point for sweeps is
//! [`run_seed_batched_verdicts_with_stats`]; the tick-stepped
//! [`SeedBatchSim`] exists so tests (e.g. the counting-allocator suite)
//! can drive mixed-geometry lockstep ticks by hand.

use crate::batch::{BatchSim, BatchStats, LaneSpec};
use crate::engine::{Simulation, StepOutcome};
use crate::observer::{NullObserver, SimObserver};

/// A lockstep batched run over several scenario instances (one group —
/// typically one jitter seed — per [`BatchSim`]).
#[allow(missing_debug_implementations)] // groups hold unsized observers
pub struct SeedBatchSim<'sim, 'obs> {
    groups: Vec<BatchSim<'sim, 'obs>>,
    tick: u64,
}

impl<'sim, 'obs> SeedBatchSim<'sim, 'obs> {
    /// Builds the lockstep loop over already-constructed groups (use
    /// [`Simulation::batched`] / [`Simulation::batched_verdicts`] per
    /// simulation). Groups may disagree in lane count, geometry and
    /// duration; each retires on its own schedule.
    pub fn new(groups: Vec<BatchSim<'sim, 'obs>>) -> Self {
        Self { groups, tick: 0 }
    }

    /// Number of groups (seeds).
    pub fn groups(&self) -> usize {
        self.groups.len()
    }

    /// Lanes still running, across all groups.
    pub fn live_lanes(&self) -> usize {
        self.groups.iter().map(BatchSim::live_lanes).sum()
    }

    /// Completed lockstep ticks.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advances every live lane of every group by one tick. Returns
    /// `false` once no lane anywhere is live.
    pub fn step_all(&mut self) -> bool {
        let mut any = false;
        for group in &mut self.groups {
            any |= group.step_all();
        }
        self.tick += 1;
        any
    }

    /// Runs to completion; per-group, per-lane outcomes in input order,
    /// plus the cost accounting summed over groups.
    ///
    /// Groups are advanced in bounded tick slices rather than strictly
    /// tick-by-tick: they are mutually independent (different
    /// simulations, different observers), so *any* interleaving produces
    /// bit-identical per-lane results, and a slice keeps one group's
    /// roads, lane columns and track stores hot in cache instead of
    /// cycling every group's working set through it on every tick.
    /// [`SeedBatchSim::step_all`] remains the strict lockstep step for
    /// callers that need tick-aligned control.
    pub fn finish_with_stats(mut self) -> (Vec<Vec<StepOutcome>>, BatchStats) {
        const TICK_SLICE: u32 = 64;
        loop {
            let mut any = false;
            for group in &mut self.groups {
                for _ in 0..TICK_SLICE {
                    if !group.step_all() {
                        break;
                    }
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        let mut stats = BatchStats::default();
        let outcomes = self
            .groups
            .into_iter()
            .map(|group| {
                let (outcomes, group_stats) = group.finish_with_stats();
                stats.merge(&group_stats);
                outcomes
            })
            .collect();
        (outcomes, stats)
    }
}

/// Runs one verdict-only lane per `specs[g]` entry for every simulation
/// `sims[g]`, all groups through one lockstep loop, and returns the
/// per-group outcomes plus summed cost accounting. The seed-axis
/// counterpart of [`Simulation::run_batched_verdicts_with_stats`]:
/// every lane runs under a [`NullObserver`] with safe-suffix
/// certificates enabled, and each verdict is bit-identical to the
/// lane's standalone run.
///
/// `sims` is any source of `&mut Simulation` — a slice iterator, or
/// borrows of simulations owned by larger per-seed contexts (the sweep
/// layer passes `SweepContext` internals this way).
///
/// # Panics
///
/// Panics when `sims` and `specs` disagree in length, or (per group)
/// under the [`Simulation::run_batched_verdicts`] conditions.
pub fn run_seed_batched_verdicts_with_stats<'s>(
    sims: impl IntoIterator<Item = &'s mut Simulation>,
    specs: Vec<Vec<LaneSpec>>,
) -> (Vec<Vec<StepOutcome>>, BatchStats) {
    let sims: Vec<&'s mut Simulation> = sims.into_iter().collect();
    assert_eq!(sims.len(), specs.len(), "one spec set per simulation");
    let mut nulls: Vec<Vec<NullObserver>> = specs
        .iter()
        .map(|group| vec![NullObserver; group.len()])
        .collect();
    let groups = sims
        .into_iter()
        .zip(specs)
        .zip(nulls.iter_mut())
        .map(|((sim, group_specs), group_nulls)| {
            let observers: Vec<&mut dyn SimObserver> = group_nulls
                .iter_mut()
                .map(|n| n as &mut dyn SimObserver)
                .collect();
            sim.batched_verdicts(group_specs, observers)
        })
        .collect();
    SeedBatchSim::new(groups).finish_with_stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimulationConfig;
    use crate::policy::{EgoVehicle, PolicyConfig};
    use crate::road::{LaneId, Road};
    use crate::script::{Action, ActorScript, Placement, Trigger};
    use av_core::prelude::*;
    use av_perception::rig::CameraRig;
    use av_perception::system::{PerceptionSystem, RatePlan};
    use av_perception::world_model::TrackerConfig;

    fn perception(fpr: f64) -> PerceptionSystem {
        PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(fpr)),
            TrackerConfig::default(),
        )
        .expect("valid plan")
    }

    fn ego(road: &Road, speed: f64) -> EgoVehicle {
        EgoVehicle::spawn(
            road,
            LaneId(1),
            Meters(50.0),
            PolicyConfig::cruise(MetersPerSecond(speed)),
        )
    }

    /// A jittered scenario family: per-"seed" variations of a cut-in
    /// ahead of a braking lead, with geometry that differs per group.
    fn sim_for_seed(seed: u64) -> Simulation {
        let j = seed as f64;
        let road = Road::straight_three_lane(Meters(3000.0 + 10.0 * j));
        let e = ego(&road, 24.0 + 0.5 * j);
        let scripts = vec![
            ActorScript::cruising(
                ActorId(1),
                Placement {
                    lane: LaneId(0),
                    s: Meters(120.0 + 5.0 * j),
                    speed: MetersPerSecond(18.0 + 0.3 * j),
                },
            )
            .with_maneuver(
                Trigger::GapAheadOfEgo(Meters(40.0)),
                Action::ChangeLane {
                    target: LaneId(1),
                    duration: Seconds(2.0),
                },
            ),
            ActorScript::cruising(
                ActorId(2),
                Placement {
                    lane: LaneId(1),
                    s: Meters(220.0 - 3.0 * j),
                    speed: MetersPerSecond(24.0),
                },
            )
            .with_maneuver(
                Trigger::AtTime(Seconds(4.0)),
                Action::HardBrake {
                    decel: MetersPerSecondSquared(5.0),
                },
            ),
            ActorScript::obstacle(ActorId(3), LaneId(1), Meters(700.0 + 20.0 * j)),
        ];
        Simulation::new(
            road,
            e,
            scripts,
            perception(30.0),
            SimulationConfig {
                duration: Seconds(8.0),
                ..Default::default()
            },
        )
    }

    const RATES: [f64; 3] = [1.0, 4.0, 30.0];
    const SEEDS: [u64; 3] = [0, 1, 2];

    #[test]
    fn seed_batched_verdicts_match_standalone_runs() {
        let mut sims: Vec<Simulation> = SEEDS.iter().map(|&s| sim_for_seed(s)).collect();
        let specs: Vec<Vec<LaneSpec>> = SEEDS
            .iter()
            .zip(&sims)
            .map(|(&s, sim)| {
                let road = sim.road().clone();
                RATES
                    .iter()
                    .map(|&fpr| LaneSpec {
                        ego: ego(&road, 24.0 + 0.5 * s as f64),
                        perception: perception(fpr),
                    })
                    .collect()
            })
            .collect();
        let (outcomes, stats) = run_seed_batched_verdicts_with_stats(&mut sims, specs);
        assert_eq!(outcomes.len(), SEEDS.len());
        assert!(stats.lane_ticks > 0);
        for (g, &seed) in SEEDS.iter().enumerate() {
            for (l, &fpr) in RATES.iter().enumerate() {
                let mut s = sim_for_seed(seed);
                let road = s.road().clone();
                s.reset(ego(&road, 24.0 + 0.5 * seed as f64), perception(fpr));
                let standalone = s.run_with(&mut NullObserver);
                assert_eq!(
                    outcomes[g][l], standalone,
                    "seed {seed} lane {fpr} FPR diverged"
                );
            }
        }
    }

    #[test]
    fn groups_retire_independently() {
        // Group durations differ (jittered road lengths don't matter for
        // ticks, but seed 0's obstacle sits closer); whole groups must be
        // able to finish while others keep ticking, and the lockstep tick
        // counter advances once per round.
        let mut sims: Vec<Simulation> = vec![sim_for_seed(0), sim_for_seed(4)];
        let specs: Vec<Vec<LaneSpec>> = [0u64, 4]
            .iter()
            .map(|&s| {
                let sim = sim_for_seed(s);
                let road = sim.road().clone();
                vec![LaneSpec {
                    ego: ego(&road, 24.0 + 0.5 * s as f64),
                    perception: perception(30.0),
                }]
            })
            .collect();
        let mut nulls: Vec<NullObserver> = vec![NullObserver; 2];
        let mut nulls_iter = nulls.iter_mut();
        let groups: Vec<BatchSim> = sims
            .iter_mut()
            .zip(specs)
            .map(|(sim, group_specs)| {
                let observers: Vec<&mut dyn SimObserver> = vec![nulls_iter
                    .next()
                    .map(|n| n as &mut dyn SimObserver)
                    .expect("one null per group")];
                sim.batched_verdicts(group_specs, observers)
            })
            .collect();
        let mut batch = SeedBatchSim::new(groups);
        assert_eq!(batch.groups(), 2);
        assert_eq!(batch.live_lanes(), 2);
        let mut steps = 0u64;
        while batch.step_all() {
            steps += 1;
        }
        assert_eq!(batch.tick(), steps + 1);
        assert_eq!(batch.live_lanes(), 0);
    }
}
