//! The closed-loop simulation engine.
//!
//! Each tick: snapshot the ground truth, detect collisions, feed perception
//! (frame sampling + confirmation), let the ego plan against the *perceived*
//! world, then integrate everyone forward. The loop is fully deterministic —
//! scenario randomization happens at construction time (seeded parameter
//! jitter in `av-scenarios`), mirroring the paper's repeated runs of
//! non-deterministic simulations.

use crate::policy::EgoVehicle;
use crate::road::Road;
use crate::script::{ActorScript, EgoObservation, ScriptedActor};
use crate::trace::{SimEvent, Trace};
use av_core::prelude::*;
use av_core::scene::Scene;
use av_perception::system::PerceptionSystem;
use serde::{Deserialize, Serialize};

/// Engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Tick length (the paper's traces use 10 ms).
    pub dt: Seconds,
    /// Scenario duration.
    pub duration: Seconds,
    /// Stop at the first collision (on), or keep simulating (off).
    pub stop_on_collision: bool,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            dt: Seconds(0.01),
            duration: Seconds(20.0),
            stop_on_collision: true,
        }
    }
}

/// Why [`Simulation::step`] ended the run, if it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepOutcome {
    /// The run continues.
    Running,
    /// A collision was detected (and `stop_on_collision` is set).
    Collided,
    /// The configured duration elapsed.
    Finished,
}

/// A running closed-loop scenario.
#[derive(Debug, Clone)]
pub struct Simulation {
    road: Road,
    ego: EgoVehicle,
    actors: Vec<ScriptedActor>,
    perception: PerceptionSystem,
    config: SimulationConfig,
    time: Seconds,
    trace: Trace,
    finished: bool,
}

impl Simulation {
    /// Builds a simulation from a road, a spawned ego, actor scripts and a
    /// configured perception system.
    ///
    /// # Panics
    ///
    /// Panics if any script is invalid for the road (wrong lane, ego id) —
    /// scenario definitions are programmer input, not runtime data.
    pub fn new(
        road: Road,
        ego: EgoVehicle,
        scripts: Vec<ActorScript>,
        perception: PerceptionSystem,
        config: SimulationConfig,
    ) -> Self {
        let actors = scripts
            .into_iter()
            .map(|s| ScriptedActor::spawn(s, &road))
            .collect();
        Self {
            road,
            ego,
            actors,
            perception,
            config,
            time: Seconds::ZERO,
            trace: Trace {
                scenes: Vec::new(),
                events: Vec::new(),
                dt: config.dt,
            },
            finished: false,
        }
    }

    /// Current scenario time.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// The road being driven.
    pub fn road(&self) -> &Road {
        &self.road
    }

    /// The ego vehicle.
    pub fn ego(&self) -> &EgoVehicle {
        &self.ego
    }

    /// The perception system (e.g. to inspect current rates).
    pub fn perception(&self) -> &PerceptionSystem {
        &self.perception
    }

    /// Mutable perception access — the hook the Zhuyi-based runtime uses
    /// to re-prioritize per-camera rates while the scenario runs (§3.2).
    pub fn perception_mut(&mut self) -> &mut PerceptionSystem {
        &mut self.perception
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The current ground-truth snapshot.
    pub fn snapshot(&self) -> Scene {
        Scene::new(
            self.time,
            self.ego.to_agent(&self.road),
            self.actors.iter().map(|a| a.to_agent(&self.road)).collect(),
        )
    }

    /// Advances one tick.
    pub fn step(&mut self) -> StepOutcome {
        if self.finished {
            return StepOutcome::Finished;
        }
        let scene = self.snapshot();
        self.trace.scenes.push(scene.clone());

        // Ground-truth collision check.
        let ego_fp = scene.ego.footprint();
        for actor in &scene.actors {
            if ego_fp.intersects(&actor.footprint()) {
                self.trace.events.push(SimEvent::Collision {
                    time: self.time,
                    actor: actor.id,
                });
                if self.config.stop_on_collision {
                    self.finished = true;
                    return StepOutcome::Collided;
                }
            }
        }

        // Perception sees the ground truth through sampled frames.
        self.perception.tick(&scene);
        let perceived = self.perception.world().coasted_agents(self.time);

        // Ego plans against the perceived world; actors follow scripts
        // against the ground truth.
        let command = self.ego.plan(&perceived, &self.road);
        let ego_obs = EgoObservation {
            s: self.ego.s(),
            speed: self.ego.speed(),
            half_length: self.ego.dims().length / 2.0,
        };
        self.ego.integrate(command, self.config.dt);
        for actor in &mut self.actors {
            if let Some(desc) = actor.step(self.time, self.config.dt, &ego_obs, &self.road) {
                self.trace.events.push(SimEvent::Maneuver {
                    time: self.time,
                    description: desc,
                });
            }
        }

        self.time += self.config.dt;
        if self.time.value() >= self.config.duration.value() - 1e-12 {
            self.finished = true;
            return StepOutcome::Finished;
        }
        StepOutcome::Running
    }

    /// Runs to completion and returns the trace.
    pub fn run(mut self) -> Trace {
        while self.step() == StepOutcome::Running {}
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyConfig;
    use crate::road::LaneId;
    use crate::script::Placement;
    use av_perception::rig::CameraRig;
    use av_perception::system::RatePlan;
    use av_perception::world_model::TrackerConfig;

    fn perception(fpr: f64) -> PerceptionSystem {
        PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(fpr)),
            TrackerConfig::default(),
        )
        .expect("valid plan")
    }

    fn base_sim(fpr: f64, ego_speed: f64, scripts: Vec<ActorScript>) -> Simulation {
        let road = Road::straight_three_lane(Meters(3000.0));
        let ego = EgoVehicle::spawn(
            &road,
            LaneId(1),
            Meters(50.0),
            PolicyConfig::cruise(MetersPerSecond(ego_speed)),
        );
        Simulation::new(
            road,
            ego,
            scripts,
            perception(fpr),
            SimulationConfig::default(),
        )
    }

    #[test]
    fn empty_road_run_is_uneventful() {
        let trace = base_sim(30.0, 25.0, vec![]).run();
        assert!(!trace.collided());
        assert!((trace.duration().value() - 20.0).abs() < 0.05);
        // Ego held its speed throughout.
        assert!(trace.min_ego_speed().expect("scenes recorded").value() > 24.5);
    }

    #[test]
    fn high_fpr_avoids_static_obstacle() {
        let obstacle = ActorScript::obstacle(ActorId(1), LaneId(1), Meters(400.0));
        let trace = base_sim(30.0, 25.0, vec![obstacle]).run();
        assert!(!trace.collided(), "30 FPR must stop in time");
        // IDM creeps asymptotically toward the standstill gap; near-zero
        // terminal speed is a successful stop.
        assert!(trace.min_ego_speed().expect("scenes recorded").value() < 2.0);
    }

    #[test]
    fn sub_1_fpr_hits_close_fast_obstacle() {
        // 31 m/s toward an obstacle 150 m ahead at 0.2 FPR: the world
        // refreshes every 5 s and takes K=5 frames (25 s) to confirm —
        // the ego never reacts.
        let obstacle = ActorScript::obstacle(ActorId(1), LaneId(1), Meters(200.0));
        let trace = base_sim(0.2, 31.0, vec![obstacle]).run();
        assert!(
            trace.collided(),
            "0.2 FPR cannot confirm the obstacle in time"
        );
    }

    #[test]
    fn trace_records_every_tick_until_stop() {
        let sim = base_sim(30.0, 20.0, vec![]);
        let trace = sim.run();
        let expected = (20.0 / 0.01) as usize;
        assert!((trace.scenes.len() as i64 - expected as i64).abs() <= 1);
        // Times strictly increase.
        for pair in trace.scenes.windows(2) {
            assert!(pair[1].time > pair[0].time);
        }
    }

    #[test]
    fn step_after_finish_is_idempotent() {
        let mut sim = base_sim(30.0, 20.0, vec![]);
        while sim.step() == StepOutcome::Running {}
        assert_eq!(sim.step(), StepOutcome::Finished);
        assert_eq!(sim.step(), StepOutcome::Finished);
    }

    #[test]
    fn collision_stops_run_and_is_logged() {
        let obstacle = ActorScript::obstacle(ActorId(1), LaneId(1), Meters(120.0));
        let trace = base_sim(0.2, 31.0, vec![obstacle]).run();
        let (t, actor) = trace.collision().expect("collision logged");
        assert_eq!(actor, ActorId(1));
        assert!(t.value() < 5.0);
        // Trace ends at the collision tick.
        assert!((trace.duration() - t).value().abs() < 0.02);
    }

    #[test]
    fn maneuver_events_are_logged() {
        let cutter = ActorScript::cruising(
            ActorId(2),
            Placement {
                lane: LaneId(0),
                s: Meters(100.0),
                speed: MetersPerSecond(20.0),
            },
        )
        .with_maneuver(
            crate::script::Trigger::AtTime(Seconds(1.0)),
            crate::script::Action::ChangeLane {
                target: LaneId(1),
                duration: Seconds(2.0),
            },
        );
        let trace = base_sim(30.0, 20.0, vec![cutter]).run();
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::Maneuver { .. })));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::policy::PolicyConfig;
    use crate::road::LaneId;
    use av_perception::rig::CameraRig;
    use av_perception::system::{PerceptionSystem, RatePlan};
    use av_perception::world_model::TrackerConfig;

    #[test]
    fn without_stop_on_collision_the_run_continues() {
        let road = Road::straight_three_lane(Meters(3000.0));
        let ego = EgoVehicle::spawn(
            &road,
            LaneId(1),
            Meters(50.0),
            PolicyConfig::cruise(MetersPerSecond(31.0)),
        );
        let obstacle = ActorScript::obstacle(ActorId(1), LaneId(1), Meters(150.0));
        // 0.2 FPR: guaranteed collision (see `sub_1_fpr_hits_close_fast_obstacle`).
        let perception = PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(0.2)),
            TrackerConfig::default(),
        )
        .expect("valid plan");
        let trace = Simulation::new(
            road,
            ego,
            vec![obstacle],
            perception,
            SimulationConfig {
                duration: Seconds(10.0),
                stop_on_collision: false,
                ..Default::default()
            },
        )
        .run();
        assert!(trace.collided());
        // The run covered the full duration despite the collision.
        assert!(
            trace.duration().value() > 9.9,
            "stopped early at {}",
            trace.duration()
        );
        // Collision events keep being recorded while overlapping.
        let collisions = trace
            .events
            .iter()
            .filter(|e| matches!(e, SimEvent::Collision { .. }))
            .count();
        assert!(collisions > 1, "only {collisions} collision events");
    }

    #[test]
    fn snapshot_reflects_live_state() {
        let road = Road::straight_three_lane(Meters(1000.0));
        let ego = EgoVehicle::spawn(
            &road,
            LaneId(0),
            Meters(10.0),
            PolicyConfig::cruise(MetersPerSecond(10.0)),
        );
        let perception = PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(30.0)),
            TrackerConfig::default(),
        )
        .expect("valid plan");
        let mut sim = Simulation::new(road, ego, vec![], perception, SimulationConfig::default());
        let before = sim.snapshot();
        for _ in 0..100 {
            sim.step();
        }
        let after = sim.snapshot();
        assert!(after.ego.state.position.x > before.ego.state.position.x + 9.0);
        assert_eq!(after.time, sim.time());
    }
}
