//! The closed-loop simulation engine.
//!
//! Each tick: snapshot the ground truth, detect collisions, feed perception
//! (frame sampling + confirmation), let the ego plan against the *perceived*
//! world, then integrate everyone forward. The loop is fully deterministic —
//! scenario randomization happens at construction time (seeded parameter
//! jitter in `av-scenarios`), mirroring the paper's repeated runs of
//! non-deterministic simulations.
//!
//! # Streaming core
//!
//! The engine is observer-driven: [`Simulation::step_with`] rebuilds one
//! persistent scratch [`Scene`] in place each tick and *lends* it (plus
//! every [`SimEvent`]) to a [`SimObserver`] by reference. Nothing is
//! allocated per tick on the engine side; what a run costs in memory is
//! decided entirely by the observer ([`crate::observer::TraceRecorder`]
//! keeps everything, [`crate::observer::MetricsObserver`] keeps scalars,
//! [`crate::observer::NullObserver`] keeps nothing). The classic
//! [`Simulation::step`]/[`Simulation::run`] API records a full trace and
//! is a thin wrapper over the same streaming loop.
//!
//! Run length is tick-counted: the engine executes exactly
//! `ceil(duration / dt)` ticks and derives `time = tick · dt`, so no
//! floating-point drift accumulates against the stop condition.

use crate::observer::{SimObserver, TraceRecorder};
use crate::policy::EgoVehicle;
use crate::road::Road;
use crate::script::{ActorScript, EgoObservation, ScriptedActor};
use crate::trace::{SimEvent, Trace};
use av_core::geometry::OrientedRect;
use av_core::prelude::*;
use av_core::scene::{Scene, SceneColumns};
use av_perception::system::PerceptionSystem;
use serde::{Deserialize, Serialize};

/// Engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Tick length (the paper's traces use 10 ms).
    pub dt: Seconds,
    /// Scenario duration.
    pub duration: Seconds,
    /// Stop at the first collision (on), or keep simulating (off).
    pub stop_on_collision: bool,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            dt: Seconds(0.01),
            duration: Seconds(20.0),
            stop_on_collision: true,
        }
    }
}

/// Why [`Simulation::step`] ended the run, if it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepOutcome {
    /// The run continues.
    Running,
    /// A collision was detected (and `stop_on_collision` is set).
    Collided,
    /// The configured duration elapsed.
    Finished,
}

/// A running closed-loop scenario.
#[derive(Debug, Clone)]
pub struct Simulation {
    pub(crate) road: Road,
    pub(crate) ego: EgoVehicle,
    pub(crate) actors: Vec<ScriptedActor>,
    pub(crate) perception: PerceptionSystem,
    pub(crate) config: SimulationConfig,
    /// Completed ticks; the current scenario time is `tick * dt`.
    pub(crate) tick: u64,
    /// Exact run length in ticks, fixed at construction.
    pub(crate) total_ticks: u64,
    /// Persistent struct-of-arrays scratch snapshot, rebuilt in place
    /// every tick; perception visibility, the collision prefilter and
    /// observer folds sweep its contiguous columns.
    pub(crate) scratch: SceneColumns,
    /// Persistent array-of-structs materialization of the scratch, filled
    /// only for observers that ask for whole scenes (see
    /// [`SimObserver::on_scene_columns`]).
    pub(crate) scratch_aos: Scene,
    /// Persistent perceived-world buffer, refilled every tick.
    pub(crate) perceived: Vec<Agent>,
    /// Per-perceived-slot Frenet projection hints (temporal coherence in
    /// the planner); stale hints are harmless — they never change results.
    pub(crate) hints: Vec<ProjectionHint>,
    /// Road-segment hint for the ego's per-tick pose lookup.
    pub(crate) ego_pose_hint: ProjectionHint,
    /// Road-segment hints for each actor's per-tick pose lookup.
    pub(crate) actor_pose_hints: Vec<ProjectionHint>,
    /// Footprint circumradius of the ego (fixed dimensions, computed once).
    pub(crate) ego_circumradius: f64,
    /// Footprint circumradii of the actors, in actor order.
    pub(crate) actor_circumradii: Vec<f64>,
    /// Trace recorded by the classic [`Simulation::step`] path only;
    /// observer-driven runs leave it empty.
    pub(crate) trace: Trace,
    pub(crate) finished: bool,
}

impl Simulation {
    /// Builds a simulation from a road, a spawned ego, actor scripts and a
    /// configured perception system.
    ///
    /// # Panics
    ///
    /// Panics if any script is invalid for the road (wrong lane, ego id) —
    /// scenario definitions are programmer input, not runtime data.
    pub fn new(
        road: Road,
        ego: EgoVehicle,
        scripts: Vec<ActorScript>,
        perception: PerceptionSystem,
        config: SimulationConfig,
    ) -> Self {
        let actors: Vec<ScriptedActor> = scripts
            .into_iter()
            .map(|s| ScriptedActor::spawn(s, &road))
            .collect();
        // Exact integer run length: the last tick is the largest k with
        // k * dt < duration. The 1e-9 slack only absorbs the rounding of
        // the division itself, not accumulated drift (there is none).
        let ratio = config.duration.value() / config.dt.value();
        let total_ticks = if ratio > 0.0 {
            (ratio - 1e-9).ceil().max(0.0) as u64
        } else {
            0
        };
        let ego_agent = ego.to_agent(&road);
        let actor_count = actors.len();
        let scratch = SceneColumns::new(Seconds::ZERO, ego_agent);
        let scratch_aos = Scene::new(Seconds::ZERO, ego_agent, Vec::with_capacity(actor_count));
        let ego_circumradius = ego.dims().circumradius();
        let actor_circumradii = actors
            .iter()
            .map(|a| a.script().dims.circumradius())
            .collect();
        Self {
            road,
            ego,
            actors,
            perception,
            config,
            tick: 0,
            total_ticks,
            scratch,
            scratch_aos,
            perceived: Vec::new(),
            hints: Vec::new(),
            ego_pose_hint: ProjectionHint::default(),
            actor_pose_hints: vec![ProjectionHint::default(); actor_count],
            ego_circumradius,
            actor_circumradii,
            trace: Trace {
                scenes: Vec::new(),
                events: Vec::new(),
                dt: config.dt,
            },
            finished: total_ticks == 0,
        }
    }

    /// Rewinds this simulation to tick zero with a fresh ego and a fresh
    /// perception system, keeping the road, the actor scripts, the engine
    /// configuration and — crucially — every scratch allocation (scene
    /// columns, perceived buffer, projection hints, actor vector).
    ///
    /// This is the engine half of sweep-level scene sharing: a
    /// minimum-safe-FPR search re-simulates the *same* scenario instance
    /// once per candidate rate, and resetting beats rebuilding (road
    /// clone, script clones, buffer growth) at every candidate. A reset
    /// simulation is observably identical to a freshly constructed one —
    /// pinned by the sweep-sharing determinism tests in `zhuyi-fleet`.
    pub fn reset(&mut self, ego: EgoVehicle, perception: PerceptionSystem) {
        self.ego_circumradius = ego.dims().circumradius();
        self.ego = ego;
        self.perception = perception;
        self.tick = 0;
        self.finished = self.total_ticks == 0;
        for actor in &mut self.actors {
            actor.reset(&self.road);
        }
        self.trace.scenes.clear();
        self.trace.events.clear();
        // Scratch buffers are rebuilt from scratch every tick; hints are
        // performance memos that never affect results. Nothing to clear.
    }

    /// Current scenario time (`tick * dt`, drift-free).
    pub fn time(&self) -> Seconds {
        Seconds(self.tick as f64 * self.config.dt.value())
    }

    /// Completed ticks.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The exact run length in ticks (`ceil(duration / dt)`).
    pub fn total_ticks(&self) -> u64 {
        self.total_ticks
    }

    /// The engine configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The road being driven.
    pub fn road(&self) -> &Road {
        &self.road
    }

    /// The ego vehicle.
    pub fn ego(&self) -> &EgoVehicle {
        &self.ego
    }

    /// The perception system (e.g. to inspect current rates).
    pub fn perception(&self) -> &PerceptionSystem {
        &self.perception
    }

    /// Mutable perception access — the hook the Zhuyi-based runtime uses
    /// to re-prioritize per-camera rates while the scenario runs (§3.2).
    pub fn perception_mut(&mut self) -> &mut PerceptionSystem {
        &mut self.perception
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The current ground-truth snapshot.
    pub fn snapshot(&self) -> Scene {
        Scene::new(
            self.time(),
            self.ego.to_agent(&self.road),
            self.actors.iter().map(|a| a.to_agent(&self.road)).collect(),
        )
    }

    /// Advances one tick, streaming the scene and events to `observer`.
    ///
    /// The engine rebuilds its persistent struct-of-arrays scratch
    /// snapshot in place and lends it by reference — after warm-up, a tick
    /// performs no allocation on the engine side (scripted-maneuver
    /// descriptions, which fire a handful of times per run, are the one
    /// exception; the zero-allocation claim is pinned by the
    /// counting-allocator test in `tests/alloc_free.rs`).
    pub fn step_with(&mut self, observer: &mut dyn SimObserver) -> StepOutcome {
        if self.finished {
            return StepOutcome::Finished;
        }
        let time = self.time();
        let dt = self.config.dt;
        // Tick-phase profiling: one thread-local lookup per tick; with
        // no registry installed every lap below is a branch on `None`
        // (no clock reads, no atomics — the zero-overhead-when-off
        // contract pinned by `tests/alloc_free.rs` either way).
        let mut phases = zhuyi_telemetry::PhaseTimer::start();

        // Rebuild the scratch snapshot in place, column by column; pose
        // hints carry each vehicle's road segment across ticks.
        self.scratch.time = time;
        self.scratch.ego = self
            .ego
            .to_agent_hinted(&self.road, &mut self.ego_pose_hint);
        self.scratch.clear_actors();
        for (actor, hint) in self.actors.iter().zip(&mut self.actor_pose_hints) {
            self.scratch
                .push_actor(actor.to_agent_hinted(&self.road, hint));
        }
        observer.on_scene_columns(&self.scratch, &mut self.scratch_aos);
        phases.skip(); // scratch rebuild + observer fold belong to no phase

        // Ground-truth collision check. A center-distance prefilter over
        // footprint circumcircles — a sweep of the contiguous position
        // column against the precomputed radii — skips the exact
        // (trig-heavy) SAT test for the overwhelmingly common far-apart
        // case; the outcome is identical because no rectangle escapes its
        // circumcircle. Only prefilter survivors reassemble a footprint.
        let ego = &self.scratch.ego;
        let positions = self.scratch.positions();
        let mut ego_fp = None;
        for (i, (&position, r_actor)) in positions.iter().zip(&self.actor_circumradii).enumerate() {
            let r_sum = self.ego_circumradius + r_actor;
            if (position - ego.state.position).norm_sq() > r_sum * r_sum {
                continue;
            }
            let ego_fp = ego_fp.get_or_insert_with(|| ego.footprint());
            let dims = self.scratch.dims()[i];
            let footprint = OrientedRect::new(
                position,
                self.scratch.headings()[i],
                dims.length,
                dims.width,
            );
            if ego_fp.intersects(&footprint) {
                observer.on_event(&SimEvent::Collision {
                    time,
                    actor: self.scratch.ids()[i],
                });
                if self.config.stop_on_collision {
                    self.finished = true;
                    return StepOutcome::Collided;
                }
            }
        }

        phases.lap(zhuyi_telemetry::Phase::Collision);

        // Perception sees the ground truth through sampled frames — the
        // visibility sweep reads the scratch columns directly; the
        // perceived world is coasted into a reused buffer.
        self.perception.tick_columns(&self.scratch);
        phases.lap(zhuyi_telemetry::Phase::Perception);
        self.perception
            .world()
            .coast_into(&mut self.perceived, time);
        phases.lap(zhuyi_telemetry::Phase::Prediction);

        // Ego plans against the perceived world (per-slot projection
        // hints carry last tick's winning Frenet segment); actors follow
        // scripts against the ground truth.
        self.hints
            .resize(self.perceived.len(), ProjectionHint::default());
        let command = self
            .ego
            .plan_with_hints(&self.perceived, &self.road, &mut self.hints);
        let ego_obs = EgoObservation {
            s: self.ego.s(),
            speed: self.ego.speed(),
            half_length: self.ego.dims().length / 2.0,
        };
        self.ego.integrate(command, dt);
        phases.lap(zhuyi_telemetry::Phase::Policy);
        for actor in &mut self.actors {
            if let Some(description) = actor.step(time, dt, &ego_obs, &self.road) {
                observer.on_event(&SimEvent::Maneuver { time, description });
            }
        }
        phases.lap(zhuyi_telemetry::Phase::Actors);
        if phases.active() {
            zhuyi_telemetry::with(|t| t.inc(zhuyi_telemetry::Counter::EngineTicks));
        }

        self.tick += 1;
        if self.tick >= self.total_ticks {
            self.finished = true;
            return StepOutcome::Finished;
        }
        StepOutcome::Running
    }

    /// Drives the simulation to completion under `observer` and returns
    /// how it ended.
    ///
    /// ```
    /// use av_core::prelude::*;
    /// use av_perception::prelude::*;
    /// use av_sim::prelude::*;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let road = Road::straight_three_lane(Meters(1000.0));
    /// let ego = EgoVehicle::spawn(&road, LaneId(1), Meters(0.0),
    ///                             PolicyConfig::cruise(MetersPerSecond(20.0)));
    /// let perception = PerceptionSystem::new(CameraRig::drive_av(),
    ///     RatePlan::Uniform(Fpr(30.0)), TrackerConfig::default())?;
    /// let mut sim = Simulation::new(road, ego, vec![], perception,
    ///     SimulationConfig { duration: Seconds(0.5), ..Default::default() });
    ///
    /// // Stream the run into a metrics fold: scalars only, no stored scenes.
    /// let mut metrics = MetricsObserver::new();
    /// let outcome = sim.run_with(&mut metrics);
    /// assert_eq!(outcome, StepOutcome::Finished);
    /// assert_eq!(metrics.summary().ticks, sim.total_ticks());
    /// assert!(!metrics.summary().collided());
    /// # Ok(())
    /// # }
    /// ```
    pub fn run_with(&mut self, observer: &mut dyn SimObserver) -> StepOutcome {
        loop {
            match self.step_with(observer) {
                StepOutcome::Running => {}
                outcome => return outcome,
            }
        }
    }

    /// Advances one tick, recording into the internal trace (the classic
    /// API; equivalent to [`Simulation::step_with`] on a
    /// [`TraceRecorder`]).
    pub fn step(&mut self) -> StepOutcome {
        let mut recorder = TraceRecorder::resume(std::mem::take(&mut self.trace));
        let outcome = self.step_with(&mut recorder);
        self.trace = recorder.into_trace();
        outcome
    }

    /// Runs to completion and returns the trace.
    pub fn run(mut self) -> Trace {
        while self.step() == StepOutcome::Running {}
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyConfig;
    use crate::road::LaneId;
    use crate::script::Placement;
    use av_perception::rig::CameraRig;
    use av_perception::system::RatePlan;
    use av_perception::world_model::TrackerConfig;

    fn perception(fpr: f64) -> PerceptionSystem {
        PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(fpr)),
            TrackerConfig::default(),
        )
        .expect("valid plan")
    }

    fn base_sim(fpr: f64, ego_speed: f64, scripts: Vec<ActorScript>) -> Simulation {
        let road = Road::straight_three_lane(Meters(3000.0));
        let ego = EgoVehicle::spawn(
            &road,
            LaneId(1),
            Meters(50.0),
            PolicyConfig::cruise(MetersPerSecond(ego_speed)),
        );
        Simulation::new(
            road,
            ego,
            scripts,
            perception(fpr),
            SimulationConfig::default(),
        )
    }

    #[test]
    fn empty_road_run_is_uneventful() {
        let trace = base_sim(30.0, 25.0, vec![]).run();
        assert!(!trace.collided());
        assert!((trace.duration().value() - 20.0).abs() < 0.05);
        // Ego held its speed throughout.
        assert!(trace.min_ego_speed().expect("scenes recorded").value() > 24.5);
    }

    #[test]
    fn high_fpr_avoids_static_obstacle() {
        let obstacle = ActorScript::obstacle(ActorId(1), LaneId(1), Meters(400.0));
        let trace = base_sim(30.0, 25.0, vec![obstacle]).run();
        assert!(!trace.collided(), "30 FPR must stop in time");
        // IDM creeps asymptotically toward the standstill gap; near-zero
        // terminal speed is a successful stop.
        assert!(trace.min_ego_speed().expect("scenes recorded").value() < 2.0);
    }

    #[test]
    fn sub_1_fpr_hits_close_fast_obstacle() {
        // 31 m/s toward an obstacle 150 m ahead at 0.2 FPR: the world
        // refreshes every 5 s and takes K=5 frames (25 s) to confirm —
        // the ego never reacts.
        let obstacle = ActorScript::obstacle(ActorId(1), LaneId(1), Meters(200.0));
        let trace = base_sim(0.2, 31.0, vec![obstacle]).run();
        assert!(
            trace.collided(),
            "0.2 FPR cannot confirm the obstacle in time"
        );
    }

    #[test]
    fn trace_records_every_tick_until_stop() {
        let sim = base_sim(30.0, 20.0, vec![]);
        let trace = sim.run();
        let expected = (20.0 / 0.01) as usize;
        assert!((trace.scenes.len() as i64 - expected as i64).abs() <= 1);
        // Times strictly increase.
        for pair in trace.scenes.windows(2) {
            assert!(pair[1].time > pair[0].time);
        }
    }

    #[test]
    fn step_after_finish_is_idempotent() {
        let mut sim = base_sim(30.0, 20.0, vec![]);
        while sim.step() == StepOutcome::Running {}
        assert_eq!(sim.step(), StepOutcome::Finished);
        assert_eq!(sim.step(), StepOutcome::Finished);
    }

    #[test]
    fn collision_stops_run_and_is_logged() {
        let obstacle = ActorScript::obstacle(ActorId(1), LaneId(1), Meters(120.0));
        let trace = base_sim(0.2, 31.0, vec![obstacle]).run();
        let (t, actor) = trace.collision().expect("collision logged");
        assert_eq!(actor, ActorId(1));
        assert!(t.value() < 5.0);
        // Trace ends at the collision tick.
        assert!((trace.duration() - t).value().abs() < 0.02);
    }

    #[test]
    fn maneuver_events_are_logged() {
        let cutter = ActorScript::cruising(
            ActorId(2),
            Placement {
                lane: LaneId(0),
                s: Meters(100.0),
                speed: MetersPerSecond(20.0),
            },
        )
        .with_maneuver(
            crate::script::Trigger::AtTime(Seconds(1.0)),
            crate::script::Action::ChangeLane {
                target: LaneId(1),
                duration: Seconds(2.0),
            },
        );
        let trace = base_sim(30.0, 20.0, vec![cutter]).run();
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::Maneuver { .. })));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::policy::PolicyConfig;
    use crate::road::LaneId;
    use av_perception::rig::CameraRig;
    use av_perception::system::{PerceptionSystem, RatePlan};
    use av_perception::world_model::TrackerConfig;

    #[test]
    fn without_stop_on_collision_the_run_continues() {
        let road = Road::straight_three_lane(Meters(3000.0));
        let ego = EgoVehicle::spawn(
            &road,
            LaneId(1),
            Meters(50.0),
            PolicyConfig::cruise(MetersPerSecond(31.0)),
        );
        let obstacle = ActorScript::obstacle(ActorId(1), LaneId(1), Meters(150.0));
        // 0.2 FPR: guaranteed collision (see `sub_1_fpr_hits_close_fast_obstacle`).
        let perception = PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(0.2)),
            TrackerConfig::default(),
        )
        .expect("valid plan");
        let trace = Simulation::new(
            road,
            ego,
            vec![obstacle],
            perception,
            SimulationConfig {
                duration: Seconds(10.0),
                stop_on_collision: false,
                ..Default::default()
            },
        )
        .run();
        assert!(trace.collided());
        // The run covered the full duration despite the collision.
        assert!(
            trace.duration().value() > 9.9,
            "stopped early at {}",
            trace.duration()
        );
        // Collision events keep being recorded while overlapping.
        let collisions = trace
            .events
            .iter()
            .filter(|e| matches!(e, SimEvent::Collision { .. }))
            .count();
        assert!(collisions > 1, "only {collisions} collision events");
    }

    #[test]
    fn run_length_is_exact_for_any_dt() {
        // 1.0 s at dt = 0.1: accumulating `time += dt` drifts below 1.0
        // after ten additions (0.1 is not exact in binary); the tick
        // counter must still stop at exactly 10 ticks.
        for (dt, duration, expected) in [
            (0.1, 1.0, 10u64),
            (0.01, 20.0, 2000),
            (0.02, 0.05, 3),   // non-multiple: ticks at 0.00, 0.02, 0.04
            (0.001, 0.007, 7), // another awkward binary ratio
        ] {
            let road = Road::straight_three_lane(Meters(3000.0));
            let ego = EgoVehicle::spawn(
                &road,
                LaneId(1),
                Meters(50.0),
                PolicyConfig::cruise(MetersPerSecond(20.0)),
            );
            let perception = PerceptionSystem::new(
                CameraRig::drive_av(),
                RatePlan::Uniform(Fpr(30.0)),
                TrackerConfig::default(),
            )
            .expect("valid plan");
            let sim = Simulation::new(
                road,
                ego,
                vec![],
                perception,
                SimulationConfig {
                    dt: Seconds(dt),
                    duration: Seconds(duration),
                    stop_on_collision: true,
                },
            );
            assert_eq!(sim.total_ticks(), expected, "dt {dt}, duration {duration}");
            let trace = sim.run();
            assert_eq!(trace.scenes.len(), expected as usize);
            // Times are derived as tick * dt, not accumulated.
            for (k, scene) in trace.scenes.iter().enumerate() {
                assert_eq!(scene.time, Seconds(k as f64 * dt));
            }
        }
    }

    #[test]
    fn streaming_recorder_matches_classic_run() {
        let road = Road::straight_three_lane(Meters(3000.0));
        let mk = || {
            let ego = EgoVehicle::spawn(
                &road,
                LaneId(1),
                Meters(50.0),
                PolicyConfig::cruise(MetersPerSecond(31.0)),
            );
            let perception = PerceptionSystem::new(
                CameraRig::drive_av(),
                RatePlan::Uniform(Fpr(0.2)),
                TrackerConfig::default(),
            )
            .expect("valid plan");
            Simulation::new(
                road.clone(),
                ego,
                vec![crate::script::ActorScript::obstacle(
                    ActorId(1),
                    LaneId(1),
                    Meters(200.0),
                )],
                perception,
                SimulationConfig {
                    duration: Seconds(10.0),
                    ..Default::default()
                },
            )
        };
        let classic = mk().run();
        let mut recorder = crate::observer::TraceRecorder::new(Seconds(0.01));
        let outcome = mk().run_with(&mut recorder);
        assert_eq!(outcome, StepOutcome::Collided);
        assert_eq!(
            recorder.into_trace(),
            classic,
            "observer path must be byte-identical"
        );
    }

    #[test]
    fn metrics_observer_matches_trace_statistics() {
        let road = Road::straight_three_lane(Meters(3000.0));
        let mk = || {
            let ego = EgoVehicle::spawn(
                &road,
                LaneId(1),
                Meters(50.0),
                PolicyConfig::cruise(MetersPerSecond(25.0)),
            );
            let perception = PerceptionSystem::new(
                CameraRig::drive_av(),
                RatePlan::Uniform(Fpr(30.0)),
                TrackerConfig::default(),
            )
            .expect("valid plan");
            Simulation::new(
                road.clone(),
                ego,
                vec![crate::script::ActorScript::obstacle(
                    ActorId(1),
                    LaneId(1),
                    Meters(400.0),
                )],
                perception,
                SimulationConfig {
                    duration: Seconds(10.0),
                    ..Default::default()
                },
            )
        };
        let trace = mk().run();
        let mut metrics = crate::observer::MetricsObserver::new();
        mk().run_with(&mut metrics);
        let summary = metrics.summary();
        assert_eq!(summary.ticks as usize, trace.scenes.len());
        assert_eq!(summary.duration, trace.duration());
        assert_eq!(summary.collision, trace.collision());
        assert_eq!(summary.min_ego_speed, trace.min_ego_speed());
        assert_eq!(summary.max_ego_decel, trace.max_ego_decel());
        assert_eq!(summary.min_clearance, trace.min_clearance());
        assert_eq!(summary.events, trace.events.len());
    }

    #[test]
    fn null_observer_runs_to_completion_without_recording() {
        let road = Road::straight_three_lane(Meters(3000.0));
        let ego = EgoVehicle::spawn(
            &road,
            LaneId(1),
            Meters(50.0),
            PolicyConfig::cruise(MetersPerSecond(20.0)),
        );
        let perception = PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(30.0)),
            TrackerConfig::default(),
        )
        .expect("valid plan");
        let mut sim = Simulation::new(
            road,
            ego,
            vec![],
            perception,
            SimulationConfig {
                duration: Seconds(5.0),
                ..Default::default()
            },
        );
        let outcome = sim.run_with(&mut crate::observer::NullObserver);
        assert_eq!(outcome, StepOutcome::Finished);
        assert_eq!(sim.tick(), sim.total_ticks());
        assert!(
            sim.trace().scenes.is_empty(),
            "observer runs leave the internal trace empty"
        );
        // A finished simulation stays finished under any observer.
        assert_eq!(
            sim.run_with(&mut crate::observer::NullObserver),
            StepOutcome::Finished
        );
    }

    #[test]
    fn snapshot_reflects_live_state() {
        let road = Road::straight_three_lane(Meters(1000.0));
        let ego = EgoVehicle::spawn(
            &road,
            LaneId(0),
            Meters(10.0),
            PolicyConfig::cruise(MetersPerSecond(10.0)),
        );
        let perception = PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(30.0)),
            TrackerConfig::default(),
        )
        .expect("valid plan");
        let mut sim = Simulation::new(road, ego, vec![], perception, SimulationConfig::default());
        let before = sim.snapshot();
        for _ in 0..100 {
            sim.step();
        }
        let after = sim.snapshot();
        assert!(after.ego.state.position.x > before.ego.state.position.x + 9.0);
        assert_eq!(after.time, sim.time());
    }
}
