//! Streaming simulation observers: consume each tick's scene by reference.
//!
//! The paper's workload is thousands of repeated closed-loop runs per
//! scenario, and most of them only ask scalar questions — did the ego
//! collide, when, how hard did it brake, how close did it get. Recording a
//! full [`Trace`] (one owned [`Scene`] per tick, ~2,000 per 20 s run) to
//! answer those questions wastes both allocation and memory bandwidth.
//!
//! [`SimObserver`] inverts the dependency: the engine *lends* each tick's
//! ground-truth scene (and every event) to an observer by reference, and
//! the observer decides what to keep.
//!
//! - [`TraceRecorder`] keeps everything — it reproduces the classic
//!   [`Trace`] byte-for-byte (one owned scene per tick, the only copy made);
//! - [`MetricsObserver`] folds the stream into a [`RunSummary`] of scalars
//!   with zero stored scenes and zero per-tick allocation;
//! - [`NullObserver`] keeps nothing (pure throughput measurement, or runs
//!   driven entirely through external state inspection).

use crate::trace::{min_clearance_columns, min_clearance_in, SimEvent, Trace};
use av_core::prelude::*;
use av_core::scene::{Scene, SceneColumns};
use serde::{Deserialize, Serialize};

/// A consumer of the simulation's per-tick stream.
///
/// [`crate::engine::Simulation::step_with`] streams each tick's snapshot
/// exactly once — *before* collision detection, matching the classic
/// trace order — and calls [`SimObserver::on_event`] for every event in
/// the order the engine emits them (collisions first, then maneuvers).
/// The lent scene is only valid for the duration of the call; observers
/// that need history must copy what they keep.
///
/// The engine's hot loop maintains the snapshot in struct-of-arrays form
/// ([`SceneColumns`]) and delivers it through
/// [`SimObserver::on_scene_columns`]. The default implementation
/// materializes the array-of-structs [`Scene`] into the engine-owned
/// scratch buffer (no allocation after warm-up) and forwards it to
/// [`SimObserver::on_scene`], so observers that want whole scenes — like
/// [`TraceRecorder`] — implement only `on_scene`. Observers that can fold
/// the columns directly ([`MetricsObserver`], [`NullObserver`]) override
/// `on_scene_columns` and skip the materialization entirely.
///
/// ```
/// use av_core::prelude::*;
/// use av_sim::observer::SimObserver;
/// use av_sim::trace::SimEvent;
///
/// /// Counts ticks and collisions; needs neither scenes nor columns.
/// #[derive(Default)]
/// struct Counter {
///     ticks: u64,
///     collisions: u64,
/// }
///
/// impl SimObserver for Counter {
///     fn on_scene(&mut self, _scene: &av_core::scene::Scene) {
///         self.ticks += 1;
///     }
///     fn on_event(&mut self, event: &SimEvent) {
///         if matches!(event, SimEvent::Collision { .. }) {
///             self.collisions += 1;
///         }
///     }
/// }
///
/// let mut counter = Counter::default();
/// counter.on_event(&SimEvent::Collision { time: Seconds(1.0), actor: ActorId(1) });
/// assert_eq!(counter.collisions, 1);
/// ```
pub trait SimObserver {
    /// One tick's ground-truth snapshot, lent by reference.
    fn on_scene(&mut self, scene: &Scene);
    /// A simulation event (collision, scripted maneuver), lent by reference.
    fn on_event(&mut self, event: &SimEvent);
    /// One tick's snapshot in the engine's struct-of-arrays form, plus the
    /// engine-owned scratch [`Scene`] for observers that need the
    /// array-of-structs view. The default materializes into `scratch`
    /// (reusing its buffers) and delegates to [`SimObserver::on_scene`];
    /// overriding it lets an observer consume the contiguous columns with
    /// no materialization at all.
    fn on_scene_columns(&mut self, columns: &SceneColumns, scratch: &mut Scene) {
        columns.write_scene(scratch);
        self.on_scene(scratch);
    }
}

impl<O: SimObserver + ?Sized> SimObserver for &mut O {
    fn on_scene(&mut self, scene: &Scene) {
        (**self).on_scene(scene);
    }
    fn on_event(&mut self, event: &SimEvent) {
        (**self).on_event(event);
    }
    fn on_scene_columns(&mut self, columns: &SceneColumns, scratch: &mut Scene) {
        (**self).on_scene_columns(columns, scratch);
    }
}

/// Observes nothing. Useful for pure-throughput benchmarks and for runs
/// whose outcome is read from the simulation state itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl SimObserver for NullObserver {
    fn on_scene(&mut self, _scene: &Scene) {}
    fn on_event(&mut self, _event: &SimEvent) {}
    fn on_scene_columns(&mut self, _columns: &SceneColumns, _scratch: &mut Scene) {}
}

/// Records the full classic [`Trace`]: every scene, every event.
///
/// This is the only observer that owns scenes — exactly one copy per tick,
/// cloned from the engine's lent snapshot. Its output is byte-identical to
/// the trace the engine historically recorded itself.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceRecorder {
    trace: Trace,
}

impl TraceRecorder {
    /// An empty recorder for a simulation ticking at `dt`.
    pub fn new(dt: Seconds) -> Self {
        Self {
            trace: Trace {
                scenes: Vec::new(),
                events: Vec::new(),
                dt,
            },
        }
    }

    /// Resumes recording onto an existing trace (the engine's legacy
    /// `step()` path threads its internal trace through here).
    pub fn resume(trace: Trace) -> Self {
        Self { trace }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the recorder, yielding the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl SimObserver for TraceRecorder {
    fn on_scene(&mut self, scene: &Scene) {
        self.trace.scenes.push(scene.clone());
    }
    fn on_event(&mut self, event: &SimEvent) {
        self.trace.events.push(event.clone());
    }
}

/// The scalar outcome of one run, as folded by [`MetricsObserver`].
///
/// Every field matches the corresponding [`Trace`] query bit-for-bit:
/// `collision` ≡ [`Trace::collision`], `duration` ≡ [`Trace::duration`],
/// `min_ego_speed` ≡ [`Trace::min_ego_speed`], `max_ego_decel` ≡
/// [`Trace::max_ego_decel`], `min_clearance` ≡ [`Trace::min_clearance`] —
/// the equivalence suite in `av-scenarios` pins this across the whole
/// scenario catalog.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunSummary {
    /// Ticks observed (scenes lent).
    pub ticks: u64,
    /// Scenario time of the last observed scene.
    pub duration: Seconds,
    /// First collision, if any: when and with whom.
    pub collision: Option<(Seconds, ActorId)>,
    /// The ego's minimum speed over the run.
    pub min_ego_speed: Option<MetersPerSecond>,
    /// The ego's strongest deceleration over the run (positive magnitude).
    pub max_ego_decel: Option<MetersPerSecondSquared>,
    /// Smallest bumper-to-bumper ego-to-actor clearance (circle
    /// approximation; negative means overlap).
    pub min_clearance: Option<Meters>,
    /// Total events observed (collisions and maneuvers).
    pub events: usize,
}

impl RunSummary {
    /// `true` when the run ended in (or recorded) a collision.
    pub fn collided(&self) -> bool {
        self.collision.is_some()
    }
}

/// Folds the scene stream into a [`RunSummary`] — no stored scenes, no
/// per-tick allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricsObserver {
    summary: RunSummary,
}

impl MetricsObserver {
    /// A fresh observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The summary folded so far.
    pub fn summary(&self) -> RunSummary {
        self.summary
    }

    /// One tick's fold, shared by the AoS and SoA entry points (the only
    /// part that differs between them is how the scene-wide minimum
    /// clearance is computed).
    fn fold(&mut self, time: Seconds, ego: &Agent, clearance: Option<Meters>) {
        let s = &mut self.summary;
        s.ticks += 1;
        s.duration = time;

        // Each fold keeps the *first* minimum on ties, matching the
        // `Iterator::min_by` semantics of the Trace queries (max_ego_decel
        // uses `max_by`, which keeps the last of equals — but equal f64
        // values are indistinguishable, so `>` is equivalent).
        let speed = ego.state.speed;
        if s.min_ego_speed.is_none_or(|cur| speed < cur) {
            s.min_ego_speed = Some(speed);
        }
        let decel = MetersPerSecondSquared((-ego.state.accel.value()).max(0.0));
        if s.max_ego_decel.is_none_or(|cur| decel > cur) {
            s.max_ego_decel = Some(decel);
        }
        if let Some(clearance) = clearance {
            if s.min_clearance.is_none_or(|cur| clearance < cur) {
                s.min_clearance = Some(clearance);
            }
        }
    }
}

impl SimObserver for MetricsObserver {
    fn on_scene(&mut self, scene: &Scene) {
        self.fold(scene.time, &scene.ego, min_clearance_in(scene));
    }

    fn on_scene_columns(&mut self, columns: &SceneColumns, _scratch: &mut Scene) {
        // Folds straight off the contiguous columns — no AoS scene is
        // materialized; `min_clearance_columns` is bit-identical to the
        // AoS fold on the equivalent scene.
        self.fold(columns.time, &columns.ego, min_clearance_columns(columns));
    }

    fn on_event(&mut self, event: &SimEvent) {
        self.summary.events += 1;
        if self.summary.collision.is_none() {
            if let SimEvent::Collision { time, actor } = event {
                self.summary.collision = Some((*time, *actor));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene(t: f64, ego_v: f64, ego_a: f64, actor_x: Option<f64>) -> Scene {
        let ego = Agent::new(
            ActorId::EGO,
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::new(
                Vec2::new(10.0 * t, 0.0),
                Radians(0.0),
                MetersPerSecond(ego_v),
                MetersPerSecondSquared(ego_a),
            ),
        );
        let actors = actor_x
            .map(|x| {
                vec![Agent::new(
                    ActorId(1),
                    ActorKind::Vehicle,
                    Dimensions::CAR,
                    VehicleState::at_rest(Vec2::new(x, 0.0), Radians(0.0)),
                )]
            })
            .unwrap_or_default();
        Scene::new(Seconds(t), ego, actors)
    }

    #[test]
    fn metrics_match_trace_queries_on_a_synthetic_stream() {
        let scenes = vec![
            scene(0.0, 20.0, 0.0, Some(100.0)),
            scene(0.5, 15.0, -6.0, Some(60.0)),
            scene(1.0, 12.0, -2.0, Some(80.0)),
        ];
        let events = vec![
            SimEvent::Maneuver {
                time: Seconds(0.5),
                description: "actor#1: brake".into(),
            },
            SimEvent::Collision {
                time: Seconds(1.0),
                actor: ActorId(1),
            },
        ];
        let mut metrics = MetricsObserver::new();
        let mut recorder = TraceRecorder::new(Seconds(0.5));
        for s in &scenes {
            metrics.on_scene(s);
            recorder.on_scene(s);
        }
        for e in &events {
            metrics.on_event(e);
            recorder.on_event(e);
        }
        let summary = metrics.summary();
        let trace = recorder.into_trace();
        assert_eq!(summary.ticks as usize, trace.scenes.len());
        assert_eq!(summary.duration, trace.duration());
        assert_eq!(summary.collision, trace.collision());
        assert_eq!(summary.collided(), trace.collided());
        assert_eq!(summary.min_ego_speed, trace.min_ego_speed());
        assert_eq!(summary.max_ego_decel, trace.max_ego_decel());
        assert_eq!(summary.min_clearance, trace.min_clearance());
        assert_eq!(summary.events, trace.events.len());
    }

    #[test]
    fn recorder_is_byte_identical_to_hand_built_trace() {
        let s = scene(0.0, 10.0, 0.0, None);
        let mut recorder = TraceRecorder::new(Seconds(0.01));
        recorder.on_scene(&s);
        let expected = Trace {
            scenes: vec![s],
            events: vec![],
            dt: Seconds(0.01),
        };
        assert_eq!(recorder.trace(), &expected);
        assert_eq!(recorder.into_trace(), expected);
    }

    #[test]
    fn first_collision_wins() {
        let mut metrics = MetricsObserver::new();
        metrics.on_event(&SimEvent::Collision {
            time: Seconds(1.0),
            actor: ActorId(3),
        });
        metrics.on_event(&SimEvent::Collision {
            time: Seconds(2.0),
            actor: ActorId(4),
        });
        assert_eq!(
            metrics.summary().collision,
            Some((Seconds(1.0), ActorId(3)))
        );
        assert_eq!(metrics.summary().events, 2);
    }

    #[test]
    fn null_observer_observes_nothing() {
        let mut null = NullObserver;
        null.on_scene(&scene(0.0, 1.0, 0.0, None));
        null.on_event(&SimEvent::Collision {
            time: Seconds(0.0),
            actor: ActorId(1),
        });
        assert_eq!(null, NullObserver);
    }

    #[test]
    fn empty_metrics_are_empty() {
        let summary = MetricsObserver::new().summary();
        assert!(!summary.collided());
        assert_eq!(summary.ticks, 0);
        assert_eq!(summary.min_ego_speed, None);
        assert_eq!(summary.min_clearance, None);
    }
}
