//! Safety metrics computed over recorded traces.
//!
//! Beyond the binary collided/safe outcome, scenario analysis (and our
//! EXPERIMENTS.md tables) benefit from standard surrogate safety metrics:
//! time-to-collision (TTC), time headway (THW), and their minima over a
//! run. These quantify *how close* a configuration came to failing —
//! useful when comparing FPR settings that all avoided collision.

use crate::trace::Trace;
use av_core::prelude::*;
use av_core::scene::Scene;
use serde::{Deserialize, Serialize};

/// Surrogate safety metrics at one instant, measured against the nearest
/// in-corridor frontal actor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstantMetrics {
    /// Scenario time.
    pub time: Seconds,
    /// Bumper-to-bumper gap to the lead (None when no frontal actor).
    pub gap: Option<Meters>,
    /// Time to collision at current closing speed (None when not
    /// closing or no lead).
    pub ttc: Option<Seconds>,
    /// Time headway: gap over ego speed (None when stopped or no lead).
    pub thw: Option<Seconds>,
}

/// Aggregated minima over a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct RunMetrics {
    /// Smallest bumper-to-bumper frontal gap.
    pub min_gap: Option<Meters>,
    /// Smallest time to collision.
    pub min_ttc: Option<Seconds>,
    /// Smallest time headway.
    pub min_thw: Option<Seconds>,
}

/// Lateral corridor slack used when deciding whether an actor is frontal.
const CORRIDOR_MARGIN: f64 = 0.3;

/// Metrics for one scene: nearest frontal in-corridor actor ahead of the
/// ego along its heading.
pub fn instant_metrics(scene: &Scene) -> InstantMetrics {
    let ego = &scene.ego;
    let forward = Vec2::from_heading(ego.state.heading);
    let mut best: Option<(Meters, MetersPerSecond)> = None;
    for actor in &scene.actors {
        let rel = actor.state.position - ego.state.position;
        let ahead = rel.dot(forward);
        if ahead <= 0.0 {
            continue;
        }
        let lateral = rel.cross(forward).abs();
        let corridor = (ego.dims.width.value() + actor.dims.width.value()) / 2.0 + CORRIDOR_MARGIN;
        if lateral > corridor {
            continue;
        }
        let gap = Meters(ahead - (ego.dims.length.value() + actor.dims.length.value()) / 2.0);
        let closing =
            MetersPerSecond(ego.state.speed.value() - actor.state.velocity().dot(forward));
        if best.is_none_or(|(g, _)| gap < g) {
            best = Some((gap, closing));
        }
    }
    let (gap, ttc, thw) = match best {
        None => (None, None, None),
        Some((gap, closing)) => {
            let ttc = (closing.value() > 1e-6 && gap.value() > 0.0).then(|| gap / closing);
            let thw = (ego.state.speed.value() > 1e-6).then(|| gap / ego.state.speed);
            (Some(gap), ttc, thw)
        }
    };
    InstantMetrics {
        time: scene.time,
        gap,
        ttc,
        thw,
    }
}

/// Minima over a full trace.
///
/// ```
/// use av_sim::metrics::run_metrics;
/// use av_sim::trace::Trace;
///
/// let metrics = run_metrics(&Trace::default());
/// assert!(metrics.min_ttc.is_none()); // empty trace: nothing measured
/// ```
pub fn run_metrics(trace: &Trace) -> RunMetrics {
    let mut out = RunMetrics::default();
    for scene in &trace.scenes {
        let m = instant_metrics(scene);
        if let Some(g) = m.gap {
            out.min_gap = Some(out.min_gap.map_or(g, |cur: Meters| cur.min(g)));
        }
        if let Some(t) = m.ttc {
            out.min_ttc = Some(out.min_ttc.map_or(t, |cur: Seconds| cur.min(t)));
        }
        if let Some(t) = m.thw {
            out.min_thw = Some(out.min_thw.map_or(t, |cur: Seconds| cur.min(t)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent(id: u32, x: f64, y: f64, v: f64) -> Agent {
        Agent::new(
            ActorId(id),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::new(
                Vec2::new(x, y),
                Radians(0.0),
                MetersPerSecond(v),
                MetersPerSecondSquared::ZERO,
            ),
        )
    }

    fn scene(actors: Vec<Agent>) -> Scene {
        Scene::new(Seconds(1.0), agent(0, 0.0, 0.0, 20.0), actors)
    }

    #[test]
    fn lead_metrics_are_computed() {
        // Lead 54.5 m ahead (50 m bumper gap) doing 10 m/s: closing at 10.
        let m = instant_metrics(&scene(vec![agent(1, 54.5, 0.0, 10.0)]));
        assert!((m.gap.expect("lead").value() - 50.0).abs() < 1e-9);
        assert!((m.ttc.expect("closing").value() - 5.0).abs() < 1e-9);
        assert!((m.thw.expect("moving").value() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn receding_lead_has_no_ttc() {
        let m = instant_metrics(&scene(vec![agent(1, 54.5, 0.0, 30.0)]));
        assert!(m.ttc.is_none());
        assert!(m.gap.is_some());
    }

    #[test]
    fn adjacent_lane_and_rear_actors_ignored() {
        let m = instant_metrics(&scene(vec![
            agent(1, 30.0, 3.7, 0.0),
            agent(2, -20.0, 0.0, 25.0),
        ]));
        assert!(m.gap.is_none());
        assert!(m.ttc.is_none());
    }

    #[test]
    fn nearest_lead_wins() {
        let m = instant_metrics(&scene(vec![
            agent(1, 80.0, 0.0, 10.0),
            agent(2, 40.0, 0.0, 15.0),
        ]));
        assert!((m.gap.expect("lead").value() - 35.5).abs() < 1e-9);
    }

    #[test]
    fn run_minima_accumulate() {
        let trace = Trace {
            scenes: vec![
                scene(vec![agent(1, 104.5, 0.0, 10.0)]), // gap 100, ttc 10
                scene(vec![agent(1, 54.5, 0.0, 10.0)]),  // gap 50, ttc 5
                scene(vec![agent(1, 84.5, 0.0, 10.0)]),  // gap 80, ttc 8
            ],
            events: vec![],
            dt: Seconds(0.01),
        };
        let m = run_metrics(&trace);
        assert_eq!(m.min_gap, Some(Meters(50.0)));
        assert_eq!(m.min_ttc, Some(Seconds(5.0)));
        assert!((m.min_thw.expect("moving").value() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_has_no_metrics() {
        let m = run_metrics(&Trace::default());
        assert_eq!(m, RunMetrics::default());
    }
}
