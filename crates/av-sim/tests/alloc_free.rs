//! Counting-allocator proof of the zero-allocation claim: once the
//! engine's scratch buffers are warm, a metrics-only streaming tick
//! allocates nothing — not in the engine, not in perception (the
//! [`av_perception::system::TickReport`] is lent from a reused buffer),
//! not in the observer fold.
//!
//! This lives in its own integration-test binary because the counting
//! allocator is process-global; the counter itself is thread-local, so
//! the two tests here (engine ticks, batched lockstep ticks) measure
//! only their own thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counts every allocation (alloc, alloc_zeroed, realloc) made through
/// the global allocator **on the calling thread**; frees are not counted
/// — the claim under test is "no allocation", which implies "no free"
/// for a leak-free program. Per-thread counting keeps the libtest
/// harness's own background threads out of the measurement.
struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn count_one() {
    // `try_with` so allocations during TLS teardown never panic.
    let _ = ALLOCATIONS.try_with(|n| n.set(n.get() + 1));
}

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn warm_metrics_only_ticks_are_allocation_free() {
    use av_core::prelude::*;
    use av_perception::rig::CameraRig;
    use av_perception::system::{PerceptionSystem, RatePlan};
    use av_perception::world_model::TrackerConfig;
    use av_sim::engine::{Simulation, SimulationConfig, StepOutcome};
    use av_sim::observer::{MetricsObserver, NullObserver};
    use av_sim::policy::{EgoVehicle, PolicyConfig};
    use av_sim::road::{LaneId, Road};
    use av_sim::script::ActorScript;

    // A scenario with perception, tracking, planning and an actor in view
    // — but no scripted maneuvers, whose event descriptions are the one
    // documented per-run allocation.
    let build = || {
        let road = Road::straight_three_lane(Meters(3000.0));
        let ego = EgoVehicle::spawn(
            &road,
            LaneId(1),
            Meters(50.0),
            PolicyConfig::cruise(MetersPerSecond(20.0)),
        );
        let perception = PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(30.0)),
            TrackerConfig::default(),
        )
        .expect("valid plan");
        Simulation::new(
            road,
            ego,
            vec![
                ActorScript::obstacle(ActorId(1), LaneId(1), Meters(2500.0)),
                ActorScript::cruising(
                    ActorId(2),
                    av_sim::script::Placement {
                        lane: LaneId(0),
                        s: Meters(80.0),
                        speed: MetersPerSecond(20.0),
                    },
                ),
            ],
            perception,
            SimulationConfig {
                duration: Seconds(20.0),
                ..Default::default()
            },
        )
    };

    for (name, observer) in [
        (
            "metrics",
            &mut MetricsObserver::new() as &mut dyn av_sim::observer::SimObserver,
        ),
        ("null", &mut NullObserver),
    ] {
        let mut sim = build();
        // Warm-up: grow every scratch buffer, confirm every track, let
        // the planner see a populated perceived world.
        for _ in 0..300 {
            assert_eq!(sim.step_with(observer), StepOutcome::Running);
        }
        let before = allocations();
        for _ in 0..1000 {
            assert_eq!(sim.step_with(observer), StepOutcome::Running);
        }
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "{name}: {} allocations across 1000 warm ticks",
            after - before
        );
    }
}

#[test]
fn warm_ticks_with_telemetry_enabled_stay_allocation_free() {
    use av_core::prelude::*;
    use av_perception::rig::CameraRig;
    use av_perception::system::{PerceptionSystem, RatePlan};
    use av_perception::world_model::TrackerConfig;
    use av_sim::engine::{Simulation, SimulationConfig, StepOutcome};
    use av_sim::observer::MetricsObserver;
    use av_sim::policy::{EgoVehicle, PolicyConfig};
    use av_sim::road::{LaneId, Road};
    use av_sim::script::ActorScript;
    use std::sync::Arc;

    // The telemetry contract is two-sided: disabled telemetry is a
    // branch (covered by the other tests — no registry is ever installed
    // there), and *enabled* telemetry is atomic counter adds only. The
    // phase timer resolves its registry once per tick and every lap is
    // a fetch_add — the hot loop must stay allocation-free even while
    // recording.
    let road = Road::straight_three_lane(Meters(3000.0));
    let ego = EgoVehicle::spawn(
        &road,
        LaneId(1),
        Meters(50.0),
        PolicyConfig::cruise(MetersPerSecond(20.0)),
    );
    let perception = PerceptionSystem::new(
        CameraRig::drive_av(),
        RatePlan::Uniform(Fpr(30.0)),
        TrackerConfig::default(),
    )
    .expect("valid plan");
    let mut sim = Simulation::new(
        road,
        ego,
        vec![
            ActorScript::obstacle(ActorId(1), LaneId(1), Meters(2500.0)),
            ActorScript::cruising(
                ActorId(2),
                av_sim::script::Placement {
                    lane: LaneId(0),
                    s: Meters(80.0),
                    speed: MetersPerSecond(20.0),
                },
            ),
        ],
        perception,
        SimulationConfig {
            duration: Seconds(20.0),
            ..Default::default()
        },
    );
    let registry = Arc::new(zhuyi_telemetry::Registry::new());
    let _guard = zhuyi_telemetry::install(&registry);
    let mut observer = MetricsObserver::new();
    for _ in 0..300 {
        assert_eq!(sim.step_with(&mut observer), StepOutcome::Running);
    }
    let before = allocations();
    for _ in 0..1000 {
        assert_eq!(sim.step_with(&mut observer), StepOutcome::Running);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "{} allocations across 1000 warm telemetry-enabled ticks",
        after - before
    );
    // And it actually recorded: the ticks above are in the registry.
    let snapshot = registry.snapshot();
    let ticks: u64 = snapshot.phase_ticks.iter().sum();
    assert!(
        ticks >= 1300,
        "telemetry was installed but recorded only {ticks} phase ticks"
    );
}

#[test]
fn warm_batched_lockstep_ticks_are_allocation_free() {
    use av_core::prelude::*;
    use av_perception::rig::CameraRig;
    use av_perception::system::{PerceptionSystem, RatePlan};
    use av_perception::world_model::TrackerConfig;
    use av_sim::batch::LaneSpec;
    use av_sim::engine::{Simulation, SimulationConfig};
    use av_sim::observer::{NullObserver, SimObserver};
    use av_sim::policy::{EgoVehicle, PolicyConfig};
    use av_sim::road::{LaneId, Road};
    use av_sim::script::ActorScript;

    // Same maneuver-less scenario as the engine test (scripted-maneuver
    // descriptions are the one documented per-run allocation), with the
    // far obstacle keeping every retirement certificate *declining* —
    // the decline path runs every backoff interval and must not allocate
    // either.
    let road = Road::straight_three_lane(Meters(3000.0));
    let ego = || {
        EgoVehicle::spawn(
            &road,
            LaneId(1),
            Meters(50.0),
            PolicyConfig::cruise(MetersPerSecond(20.0)),
        )
    };
    let perception = |fpr: f64| {
        PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(fpr)),
            TrackerConfig::default(),
        )
        .expect("valid plan")
    };
    let mut sim = Simulation::new(
        road.clone(),
        ego(),
        vec![
            ActorScript::obstacle(ActorId(1), LaneId(1), Meters(2500.0)),
            ActorScript::cruising(
                ActorId(2),
                av_sim::script::Placement {
                    lane: LaneId(0),
                    s: Meters(80.0),
                    speed: MetersPerSecond(20.0),
                },
            ),
        ],
        perception(30.0),
        SimulationConfig {
            duration: Seconds(20.0),
            ..Default::default()
        },
    );
    let specs: Vec<LaneSpec> = [2.0, 8.0, 30.0]
        .iter()
        .map(|&fpr| LaneSpec {
            ego: ego(),
            perception: perception(fpr),
        })
        .collect();
    let mut nulls = vec![NullObserver; specs.len()];
    let observers: Vec<&mut dyn SimObserver> = nulls
        .iter_mut()
        .map(|n| n as &mut dyn SimObserver)
        .collect();
    let mut batch = sim.batched_verdicts(specs, observers);
    for _ in 0..300 {
        assert!(batch.step_all(), "warm-up must not end the batch");
    }
    assert_eq!(batch.live_lanes(), 3, "no lane may retire in this setup");
    let before = allocations();
    for _ in 0..1000 {
        assert!(batch.step_all());
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "{} allocations across 1000 warm batched ticks x 3 lanes",
        after - before
    );
}

#[test]
fn warm_seed_batched_lockstep_ticks_are_allocation_free() {
    use av_core::prelude::*;
    use av_perception::rig::CameraRig;
    use av_perception::system::{PerceptionSystem, RatePlan};
    use av_perception::world_model::TrackerConfig;
    use av_sim::batch::LaneSpec;
    use av_sim::engine::{Simulation, SimulationConfig};
    use av_sim::observer::{NullObserver, SimObserver};
    use av_sim::policy::{EgoVehicle, PolicyConfig};
    use av_sim::road::{LaneId, Road};
    use av_sim::script::ActorScript;
    use av_sim::seed_batch::SeedBatchSim;

    // Two groups with *different* road geometry — one straight, one
    // curved — sharing a single lockstep loop, three rate lanes each.
    // The straight group exercises the Frenet-prefilter idle path, the
    // curved group the lean world-frame path; both must stay warm
    // allocation-free, declines and all, for the seed-batched sweep's
    // throughput claim to hold over mixed-geometry seed blocks.
    let roads = [
        Road::straight_three_lane(Meters(3000.0)),
        Road::curved_three_lane(Meters(400.0), Meters(3000.0)),
    ];
    let ego = |road: &Road| {
        EgoVehicle::spawn(
            road,
            LaneId(1),
            Meters(50.0),
            PolicyConfig::cruise(MetersPerSecond(20.0)),
        )
    };
    let perception = |fpr: f64| {
        PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(fpr)),
            TrackerConfig::default(),
        )
        .expect("valid plan")
    };
    let mut sims: Vec<Simulation> = roads
        .iter()
        .map(|road| {
            Simulation::new(
                road.clone(),
                ego(road),
                vec![
                    ActorScript::obstacle(ActorId(1), LaneId(1), Meters(2500.0)),
                    ActorScript::cruising(
                        ActorId(2),
                        av_sim::script::Placement {
                            lane: LaneId(0),
                            s: Meters(80.0),
                            speed: MetersPerSecond(20.0),
                        },
                    ),
                ],
                perception(30.0),
                SimulationConfig {
                    duration: Seconds(20.0),
                    ..Default::default()
                },
            )
        })
        .collect();
    let mut nulls = [NullObserver; 6];
    let mut null_slots = nulls.iter_mut();
    let groups: Vec<_> = sims
        .iter_mut()
        .map(|sim| {
            let road = sim.road().clone();
            let specs: Vec<LaneSpec> = [2.0, 8.0, 30.0]
                .iter()
                .map(|&fpr| LaneSpec {
                    ego: ego(&road),
                    perception: perception(fpr),
                })
                .collect();
            let observers: Vec<&mut dyn SimObserver> = null_slots
                .by_ref()
                .take(specs.len())
                .map(|n| n as &mut dyn SimObserver)
                .collect();
            sim.batched_verdicts(specs, observers)
        })
        .collect();
    let mut batch = SeedBatchSim::new(groups);
    for _ in 0..300 {
        assert!(batch.step_all(), "warm-up must not end the batch");
    }
    assert_eq!(batch.live_lanes(), 6, "no lane may retire in this setup");
    let before = allocations();
    for _ in 0..1000 {
        assert!(batch.step_all());
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "{} allocations across 1000 warm seed-batched ticks x 2 groups x 3 lanes",
        after - before
    );
}
