//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace builds in a hermetic environment with no access to
//! crates.io, so `#[derive(Serialize, Deserialize)]` is provided by this
//! shim instead of the real `serde_derive`. The derives intentionally
//! expand to **nothing**: the workspace never serializes through serde
//! (all I/O is hand-rolled CSV/JSON), the derives only document intent and
//! keep the source compatible with the real crate. Swapping the real
//! serde back in is a two-line `Cargo.toml` change per crate.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
