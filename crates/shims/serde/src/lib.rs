//! Offline marker-trait stand-in for `serde`.
//!
//! The workspace builds in a hermetic environment with no access to
//! crates.io. Nothing in the repo actually serializes through serde (all
//! persisted formats are hand-rolled CSV/JSON in `av-sim`, `bench` and
//! `zhuyi-fleet`), but the domain types carry
//! `#[derive(Serialize, Deserialize)]` to document intent and stay
//! source-compatible with the real crate. This shim supplies just enough
//! surface for those derives and imports to resolve:
//!
//! - [`Serialize`] / [`Deserialize`] marker traits (never implemented —
//!   the companion `serde_derive` shim expands the derives to nothing),
//! - the derive-macro re-exports under the same names.
//!
//! Swapping the real serde back in is a per-crate `Cargo.toml` change;
//! no source edits are required.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
