//! The deterministic per-test random stream behind [`crate::proptest!`].

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic random stream, seeded from the test's name so each
/// property explores a different — but forever stable — input sequence.
#[derive(Debug)]
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Builds the stream for the named test.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a keeps the seed independent of std's unstable hasher.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}
