//! Offline deterministic stand-in for the `proptest` crate.
//!
//! The workspace builds in a hermetic environment with no access to
//! crates.io, so this shim reimplements the slice of proptest the repo's
//! property tests use:
//!
//! - the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! - range strategies over `f64` and integer types,
//!   plus [`prop::collection::vec`],
//! - [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike the real proptest there is **no shrinking** and no persisted
//! failure regressions: each test runs a fixed number of cases drawn from
//! a deterministic per-test stream (seeded from the test's name), so
//! failures reproduce exactly on every run and machine. The assertion
//! macros print the failing inputs through ordinary `assert!` panics.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Run-shape configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each test body runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the hermetic suite
        // fast while still exercising each property broadly.
        Self { cases: 64 }
    }
}

/// Strategy constructors namespaced like the real crate (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        /// A strategy producing `Vec`s of `elem` samples with a length
        /// drawn uniformly from `size`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy::new(elem, size)
        }
    }
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Asserts a property holds for the current case; mirrors
/// `proptest::prop_assert!` but panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares a block of property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a regular
/// `#[test]` running the body over `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}
