//! Value-generation strategies: uniform ranges and vectors thereof.

use crate::test_runner::TestRng;
use rand::Rng as _;
use std::ops::{Range, RangeInclusive};

/// Something that can draw one value per test case.
///
/// The real proptest `Strategy` is a value *tree* supporting shrinking;
/// this shim only needs forward sampling.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng.gen_range(self.clone())
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(i32, i64, u32, u64, usize);

/// Strategy for `Vec`s; built by [`crate::prop::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

impl<S> VecStrategy<S> {
    pub(crate) fn new(elem: S, size: Range<usize>) -> Self {
        Self { elem, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng.gen_range(self.size.clone());
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}
