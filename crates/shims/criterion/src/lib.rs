//! Offline minimal stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds in a hermetic environment with no access to
//! crates.io, so the `crates/bench/benches/*` suites link against this
//! shim instead of the real criterion. It implements the API subset those
//! suites use — [`Criterion::benchmark_group`], [`BenchmarkGroup`]
//! configuration, [`Bencher::iter`] / [`Bencher::iter_batched`], the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! mean-over-N-samples timer instead of criterion's statistical engine.
//!
//! Numbers printed by this shim are honest wall-clock means but carry no
//! outlier rejection or confidence intervals; treat them as order-of-
//! magnitude guidance until the real criterion can be restored.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are grouped; mirrors `criterion::BatchSize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is cheap to hold; batch many per timing window.
    SmallInput,
    /// Setup output is large; batch few.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id for `function_id` parameterized by `parameter`.
    pub fn new<F: Display, P: Display>(function_id: F, parameter: P) -> Self {
        Self {
            label: format!("{function_id}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Drives the timed closure of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: u32,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn run(samples: u32) -> Self {
        Self {
            samples,
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up out of the measurement.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = u64::from(self.samples);
    }

    /// Times `routine` over fresh `setup` outputs, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = u64::from(self.samples);
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label:<60} (not driven)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / u128::from(self.iters);
        println!(
            "{label:<60} {per_iter:>12} ns/iter ({} samples)",
            self.iters
        );
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        let mut bencher = Bencher::run(self.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, label));
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(id.label, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        self.run(id.label, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The harness entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 50,
            _parent: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::run(50);
        f(&mut bencher);
        bencher.report(label);
        self
    }
}

/// Bundles benchmark functions into a runnable group, like
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a benchmark binary, like `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
