//! Offline deterministic stand-in for the `rand` crate.
//!
//! The workspace builds in a hermetic environment with no access to
//! crates.io, so the small slice of the `rand` API the repo uses
//! ([`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over float and
//! integer ranges) is provided by this shim. The generator is a
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream: tiny,
//! seedable, and plenty for scenario jitter.
//!
//! The stream does **not** match the real `rand::rngs::StdRng` bit for
//! bit; everything downstream only requires that a seed reproduces the
//! same perturbations run after run, which this guarantees.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to draw a uniform sample from itself.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * unit_f64(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize);

impl SampleRange<i64> for Range<i64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "gen_range over an empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleRange<i32> for Range<i32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "gen_range over an empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + (rng.next_u64() % span) as i64) as i32
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`. Same seed, same stream — forever.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.25..=0.25);
            assert!((-0.25..=0.25).contains(&x));
            let y = rng.gen_range(3.0..5.0);
            assert!((3.0..5.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let n: usize = rng.gen_range(2..50usize);
            assert!((2..50).contains(&n));
            let i: i32 = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&i));
        }
    }
}
