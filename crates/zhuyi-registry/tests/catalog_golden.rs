//! Golden equivalence: the committed `scenarios/*.scn` ports must be
//! indistinguishable from the hand-coded Table-1 builders.
//!
//! `Scenario` equality is structural over every field the simulator
//! consumes (road, ego config, actor scripts, duration), and the simulator
//! and estimator are deterministic functions of a `Scenario` — so equal
//! scenarios produce byte-identical traces, metrics, and sweep exports.
//! The suite still spot-checks traces at the FPR extremes directly, so a
//! future `Scenario` field that slips out of `PartialEq` cannot silently
//! void the guarantee.

use av_core::prelude::*;
use av_scenarios::catalog::{Scenario, ScenarioId};
use zhuyi_registry::Registry;

fn scenarios_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn committed_ports_match_hand_coded_builders_across_seeds() {
    let registry = Registry::load_dir(scenarios_dir()).expect("load scenarios/");
    assert_eq!(registry.len(), ScenarioId::ALL.len());
    for id in ScenarioId::ALL {
        let def = registry
            .get(id.name())
            .unwrap_or_else(|| panic!("no committed definition named {:?}", id.name()));
        for seed in 0..10 {
            let ported = def
                .instantiate(seed)
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", id.name()));
            let hand_coded = Scenario::build(id, seed);
            assert_eq!(
                ported,
                hand_coded,
                "{} diverges from its hand-coded builder at seed {seed}",
                id.name()
            );
        }
    }
}

#[test]
fn registry_order_is_table1_order() {
    let registry = Registry::load_dir(scenarios_dir()).expect("load scenarios/");
    let names: Vec<&str> = registry.defs().iter().map(|d| d.name.as_str()).collect();
    let expected: Vec<&str> = ScenarioId::ALL.iter().map(|id| id.name()).collect();
    assert_eq!(names, expected);
}

#[test]
fn traces_are_byte_identical_at_fpr_extremes() {
    let registry = Registry::load_dir(scenarios_dir()).expect("load scenarios/");
    // The grid extremes the paper sweeps: 1 FPR (most scenarios collide or
    // barely survive) and 30 FPR (everything survives).
    for id in [ScenarioId::CutOut, ScenarioId::ChallengingCutInCurved] {
        let def = registry.get(id.name()).expect("committed definition");
        for seed in [0, 3] {
            for fpr in [1.0, 30.0] {
                let ported = def.instantiate(seed).expect("instantiate").run_at(Fpr(fpr));
                let hand_coded = Scenario::build(id, seed).run_at(Fpr(fpr));
                let ported_csv = av_sim::io::trace_to_csv(&ported);
                let hand_csv = av_sim::io::trace_to_csv(&hand_coded);
                assert_eq!(
                    ported_csv,
                    hand_csv,
                    "{} trace diverges at seed {seed}, {fpr} FPR",
                    id.name()
                );
            }
        }
    }
}

#[test]
fn canonical_text_round_trips_for_every_port() {
    let registry = Registry::load_dir(scenarios_dir()).expect("load scenarios/");
    for def in registry.defs() {
        let text = def.to_text();
        let reparsed = zhuyi_registry::ScenarioDef::parse(&text)
            .unwrap_or_else(|e| panic!("{}: canonical text does not reparse: {e}", def.name));
        assert_eq!(&reparsed, def.as_ref(), "{} round-trip", def.name);
        assert_eq!(text, reparsed.to_text(), "{} fixed point", def.name);
    }
}
