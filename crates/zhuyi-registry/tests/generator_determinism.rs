//! Generator replay and registry/fleet export equivalence.
//!
//! A generated corpus is a pure function of its `(config, seed)` pair —
//! regenerating must reproduce every definition byte-for-byte, and
//! sweeping the regenerated corpus must export the very same CSV/JSON
//! bytes. Separately, a sweep planned from registry definitions must
//! export the same bytes as the identical sweep planned from catalog ids,
//! since the definitions are exact ports.

use av_scenarios::catalog::ScenarioId;
use zhuyi_fleet::{run_sweep, SweepPlan};
use zhuyi_registry::{FuzzConfig, GridConfig, Registry, ScenarioSource};

fn scenarios_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn fuzz(count: usize, seed: u64) -> Vec<zhuyi_registry::ScenarioDef> {
    FuzzConfig {
        prefix: "fuzz".to_string(),
        count,
        seed,
    }
    .generate()
}

#[test]
fn fuzzed_corpora_replay_byte_identically() {
    let first = fuzz(64, 7);
    let second = fuzz(64, 7);
    assert_eq!(first.len(), 64);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.to_text(), b.to_text(), "{} is not replayable", a.name);
    }
    // A different seed must actually move the corpus.
    let other = fuzz(64, 8);
    assert!(
        first
            .iter()
            .zip(&other)
            .any(|(a, b)| a.to_text() != b.to_text()),
        "seed 7 and seed 8 produced identical corpora"
    );
}

#[test]
fn sweeps_over_regenerated_corpora_export_identical_bytes() {
    let export = |defs: Vec<zhuyi_registry::ScenarioDef>| {
        let store = run_sweep(
            &SweepPlan::builder()
                .sources(defs.into_iter().map(ScenarioSource::from))
                .seeds([0, 1])
                .min_safe_fpr(vec![1, 4, 30])
                .build(),
            2,
        );
        (store.to_csv(), store.to_json())
    };
    assert_eq!(export(fuzz(12, 3)), export(fuzz(12, 3)));
}

#[test]
fn registry_sweep_exports_match_catalog_sweep_exports() {
    let registry = Registry::load_dir(scenarios_dir()).expect("load scenarios/");
    let ids = [
        ScenarioId::CutOut,
        ScenarioId::CutIn,
        ScenarioId::VehicleFollowing,
    ];
    let export = |sources: Vec<ScenarioSource>| {
        let store = run_sweep(
            &SweepPlan::builder()
                .sources(sources)
                .seeds([0, 2])
                .min_safe_fpr(vec![1, 2, 4, 30])
                .build(),
            2,
        );
        (store.to_csv(), store.to_json())
    };
    let from_catalog = export(ids.iter().map(|&id| id.into()).collect());
    let from_registry = export(
        ids.iter()
            .map(|id| {
                ScenarioSource::from(
                    registry
                        .get(id.name())
                        .expect("committed definition")
                        .clone(),
                )
            })
            .collect(),
    );
    assert_eq!(
        from_catalog, from_registry,
        "definition-sourced sweeps must export catalog bytes"
    );
}

#[test]
fn grid_expansion_is_row_major_and_replayable() {
    let registry = Registry::load_dir(scenarios_dir()).expect("load scenarios/");
    let base = registry.get("Vehicle following").expect("committed port");
    let config_text = "zhuyi-generator v1\n\
                       kind = grid\n\
                       prefix = grid\n\
                       base = unused.scn\n\
                       \n\
                       [axis v]\n\
                       values = mph(50.0), mph(60.0)\n\
                       \n\
                       [axis brake_at]\n\
                       values = 2.0, 3.0, 4.0\n";
    let parse = || match zhuyi_registry::GeneratorConfig::parse(config_text).expect("parse grid") {
        zhuyi_registry::GeneratorConfig::Grid(grid) => grid,
        other => panic!("expected a grid config, got {other:?}"),
    };
    let expand = |grid: GridConfig| {
        grid.expand(base)
            .expect("expand")
            .iter()
            .map(|d| d.to_text())
            .collect::<Vec<_>>()
    };
    let first = expand(parse());
    assert_eq!(first.len(), 6, "2 x 3 axis values");
    assert_eq!(first, expand(parse()), "grid expansion must be replayable");
    // Row-major: the last axis varies fastest.
    assert!(first[0].contains("mph(50.0)") && first[0].contains("value = 2.0"));
    assert!(first[1].contains("mph(50.0)") && first[1].contains("value = 3.0"));
    assert!(first[3].contains("mph(60.0)") && first[3].contains("value = 2.0"));
}
