//! Scenario corpus generators.
//!
//! Two generator kinds turn one definition (or nothing at all) into many,
//! both driven by a small `.gen` config file and both *replayable*: the
//! output is a pure function of `(config, seed)`, holding the fleet's
//! byte-identical-export invariant all the way down to generated corpora.
//!
//! ```text
//! zhuyi-generator v1
//! kind = grid                  # combinatorial axis expansion
//! prefix = grid
//! base = 2_cut_in.scn          # resolved relative to the config file
//!
//! [axis cutter_s]
//! values = 150.0, 160.0, 170.0
//! ```
//!
//! A **grid** takes a base definition and a list of parameter axes and
//! emits the row-major cross product, substituting each axis value into
//! the named `[param]`'s `value` expression. A **fuzz** generator
//! (`kind = fuzz`, `count = N`, `seed = S`) samples `N` scenarios from
//! four structural templates (cut-in, braking lead, side traffic, tailing
//! follower) with a seeded RNG; all sampled quantities land in the emitted
//! definitions as literals, so replay needs nothing but the same config.
//!
//! Generated definitions still draw per-seed jitter at instantiation time
//! like any other definition — the generator seed decides *which*
//! scenarios exist, the sweep seed decides each run's perturbation.

use std::fmt;
use std::fs;
use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::expr::{parse_expr, Expr};
use crate::format::{
    ActionDef, ActorDef, ActorKindDef, EgoDef, FormatError, JitterKind, ManeuverDef, ParamDef,
    RoadDef, RoadKind, ScenarioDef, TriggerDef,
};

const HEADER_PREFIX: &str = "zhuyi-generator";

/// The generator config format version this build reads.
pub const GENERATOR_VERSION: &str = "v1";

/// Largest corpus a single config may produce.
pub const MAX_GENERATED: usize = 10_000;

/// An error expanding a generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for GeneratorError {}

fn gen_err<T>(message: String) -> Result<T, GeneratorError> {
    Err(GeneratorError { message })
}

/// A parsed `.gen` config.
#[derive(Debug, Clone, PartialEq)]
pub enum GeneratorConfig {
    /// Combinatorial axis expansion over a base definition.
    Grid(GridConfig),
    /// Seeded random scenario fuzzer.
    Fuzz(FuzzConfig),
}

/// Config of a grid generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GridConfig {
    /// Name prefix of generated scenarios (`{prefix}-{index:04}`).
    pub prefix: String,
    /// Base definition file, relative to the config file's directory.
    pub base: String,
    /// Parameter axes, outermost first (row-major expansion).
    pub axes: Vec<AxisDef>,
}

/// One grid axis: the values substituted into a base `[param]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisDef {
    /// Name of the base definition's parameter to vary.
    pub param: String,
    /// Replacement `value` expressions, in expansion order.
    pub values: Vec<Expr>,
}

/// Config of a fuzz generator.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzConfig {
    /// Name prefix of generated scenarios (`{prefix}-{index:04}`).
    pub prefix: String,
    /// How many scenarios to sample.
    pub count: usize,
    /// RNG seed; `(config, seed)` fully determines the corpus.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Parses a `.gen` config from its textual form.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError`] (with line number) for version mismatches,
    /// unknown fields, missing required fields, and kind/field mismatches
    /// (e.g. axes on a fuzz config).
    pub fn parse(text: &str) -> Result<Self, FormatError> {
        parse_config(text)
    }

    /// Loads a config file and expands it, resolving a grid's `base`
    /// relative to the config's directory.
    ///
    /// # Errors
    ///
    /// Returns a [`GeneratorError`] for unreadable files, config parse
    /// errors, and expansion failures.
    pub fn expand_file(path: impl AsRef<Path>) -> Result<Vec<ScenarioDef>, GeneratorError> {
        let path = path.as_ref();
        let text = fs::read_to_string(path).map_err(|e| GeneratorError {
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        let config = Self::parse(&text).map_err(|e| GeneratorError {
            message: format!("{}: {e}", path.display()),
        })?;
        match &config {
            GeneratorConfig::Fuzz(fuzz) => Ok(fuzz.generate()),
            GeneratorConfig::Grid(grid) => {
                let base_path = path
                    .parent()
                    .unwrap_or_else(|| Path::new("."))
                    .join(&grid.base);
                let base_text = fs::read_to_string(&base_path).map_err(|e| GeneratorError {
                    message: format!("cannot read grid base {}: {e}", base_path.display()),
                })?;
                let base = ScenarioDef::parse(&base_text).map_err(|e| GeneratorError {
                    message: format!("{}: {e}", base_path.display()),
                })?;
                grid.expand(&base)
            }
        }
    }
}

impl GridConfig {
    /// Expands the row-major cross product of the axes over `base`.
    ///
    /// # Errors
    ///
    /// Returns a [`GeneratorError`] when an axis names a parameter the
    /// base does not declare, or the product exceeds [`MAX_GENERATED`].
    pub fn expand(&self, base: &ScenarioDef) -> Result<Vec<ScenarioDef>, GeneratorError> {
        for axis in &self.axes {
            if !base.params.iter().any(|p| p.name == axis.param) {
                return gen_err(format!(
                    "axis `{}` is not a [param] of base `{}`",
                    axis.param, base.name
                ));
            }
        }
        let total: usize = self.axes.iter().map(|a| a.values.len()).product();
        if total == 0 {
            return gen_err("grid axes must have at least one value each".to_string());
        }
        if total > MAX_GENERATED {
            return gen_err(format!(
                "grid would generate {total} scenarios (max {MAX_GENERATED})"
            ));
        }
        let mut out = Vec::with_capacity(total);
        for index in 0..total {
            let mut def = base.clone();
            def.name = format!("{}-{index:04}", self.prefix);
            add_tag(&mut def, "generated");
            add_tag(&mut def, "grid");
            // Row-major: the last axis varies fastest.
            let mut rem = index;
            for axis in self.axes.iter().rev() {
                let pick = rem % axis.values.len();
                rem /= axis.values.len();
                let param = def
                    .params
                    .iter_mut()
                    .find(|p| p.name == axis.param)
                    .expect("validated above");
                param.value = axis.values[pick].clone();
            }
            out.push(def);
        }
        Ok(out)
    }
}

fn add_tag(def: &mut ScenarioDef, tag: &str) {
    if !def.tags.iter().any(|t| t == tag) {
        def.tags.push(tag.to_string());
    }
}

impl FuzzConfig {
    /// Samples `count` scenarios from the template library. Deterministic:
    /// the same config yields the same definitions, byte for byte.
    pub fn generate(&self) -> Vec<ScenarioDef> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.count)
            .map(|index| fuzz_one(&mut rng, &format!("{}-{index:04}", self.prefix)))
            .collect()
    }
}

fn num(n: f64) -> Expr {
    Expr::Num(n)
}

fn param(name: &str, jitter: JitterKind, value: Expr, spread: Option<f64>) -> ParamDef {
    ParamDef {
        name: name.to_string(),
        jitter,
        value,
        spread,
    }
}

/// Samples one scenario. Ranges are chosen so every template passes
/// instantiation validation at every sweep seed (jitter moves positions by
/// at most `spread` meters and speeds by ±1%) and stays clear of
/// spawn-overlap with the ego at s = 50 m.
fn fuzz_one(rng: &mut StdRng, name: &str) -> ScenarioDef {
    let curved = rng.gen_range(0..4u32) == 0;
    let radius = if curved {
        Some(num(round2(rng.gen_range(300.0..800.0))))
    } else {
        None
    };
    let road = RoadDef {
        kind: if curved {
            RoadKind::Curved
        } else {
            RoadKind::Straight
        },
        length: num(3000.0),
        lanes: 3,
        lane_width: num(3.7),
        radius,
    };
    let ego_mph = round2(rng.gen_range(30.0..70.0));
    let duration = round2(rng.gen_range(12.0..20.0));
    let mut params = vec![param(
        "v",
        JitterKind::Speed,
        Expr::Mph(Box::new(num(ego_mph))),
        None,
    )];
    let mut tags = vec!["generated".to_string(), "fuzz".to_string()];
    let template = rng.gen_range(0..4u32);
    let actors = match template {
        0 => {
            // Cut-in: an adjacent-lane actor merges in front of the ego.
            tags.push("cut-in".to_string());
            let lane = if rng.gen_range(0..2u32) == 0 { 0 } else { 2 };
            let actor_mph = round2(rng.gen_range(20.0..50.0));
            params.push(param(
                "actor_v",
                JitterKind::Speed,
                Expr::Mph(Box::new(num(actor_mph))),
                None,
            ));
            params.push(param(
                "cutter_s",
                JitterKind::Position,
                num(round2(rng.gen_range(80.0..200.0))),
                Some(4.0),
            ));
            vec![ActorDef {
                label: "cutter".to_string(),
                id: 1,
                kind: ActorKindDef::Vehicle,
                lane,
                s: Expr::Ref("cutter_s".to_string()),
                speed: Some(Expr::Ref("actor_v".to_string())),
                maneuvers: vec![ManeuverDef {
                    trigger: TriggerDef::GapAhead(num(round2(rng.gen_range(15.0..45.0)))),
                    action: ActionDef::ChangeLane {
                        target: 1,
                        duration: num(round2(rng.gen_range(1.5..3.0))),
                    },
                }],
            }]
        }
        1 => {
            // Braking lead: a same-lane lead brakes hard shortly in.
            tags.push("braking-lead".to_string());
            params.push(param(
                "brake_at",
                JitterKind::Duration,
                num(round2(rng.gen_range(2.0..6.0))),
                None,
            ));
            let lead_gap = round2(rng.gen_range(40.0..120.0));
            vec![ActorDef {
                label: "lead".to_string(),
                id: 1,
                kind: ActorKindDef::Vehicle,
                lane: 1,
                s: Expr::Add(Box::new(num(50.0)), Box::new(num(lead_gap))),
                speed: Some(Expr::Ref("v".to_string())),
                maneuvers: vec![ManeuverDef {
                    trigger: TriggerDef::AtTime(Expr::Ref("brake_at".to_string())),
                    action: ActionDef::HardBrake {
                        decel: num(round2(rng.gen_range(4.0..7.0))),
                    },
                }],
            }]
        }
        2 => {
            // Side traffic: cruisers pin both adjacent lanes.
            tags.push("side-traffic".to_string());
            params.push(param(
                "left_s",
                JitterKind::Position,
                num(round2(rng.gen_range(10.0..130.0))),
                Some(3.0),
            ));
            params.push(param(
                "right_s",
                JitterKind::Position,
                num(round2(rng.gen_range(10.0..130.0))),
                Some(3.0),
            ));
            let pace = round2(rng.gen_range(0.9..1.1));
            vec![
                ActorDef {
                    label: "left".to_string(),
                    id: 1,
                    kind: ActorKindDef::Vehicle,
                    lane: 2,
                    s: Expr::Ref("left_s".to_string()),
                    speed: Some(Expr::Ref("v".to_string())),
                    maneuvers: Vec::new(),
                },
                ActorDef {
                    label: "right".to_string(),
                    id: 2,
                    kind: ActorKindDef::Vehicle,
                    lane: 0,
                    s: Expr::Ref("right_s".to_string()),
                    speed: Some(Expr::Mul(
                        Box::new(Expr::Ref("v".to_string())),
                        Box::new(num(pace)),
                    )),
                    maneuvers: Vec::new(),
                },
            ]
        }
        _ => {
            // Tailing follower: an actor behind the ego matches its speed.
            tags.push("follower".to_string());
            vec![ActorDef {
                label: "follower".to_string(),
                id: 1,
                kind: ActorKindDef::Vehicle,
                lane: 1,
                s: num(round2(rng.gen_range(10.0..32.0))),
                speed: Some(Expr::Ref("v".to_string())),
                maneuvers: vec![ManeuverDef {
                    trigger: TriggerDef::Immediately,
                    action: ActionDef::MatchEgoSpeed {
                        accel_limit: num(round2(rng.gen_range(1.5..3.0))),
                    },
                }],
            }]
        }
    };
    ScenarioDef {
        name: name.to_string(),
        tags,
        duration: num(duration),
        road,
        params,
        ego: EgoDef {
            lane: 1,
            s: num(50.0),
            speed: Expr::Ref("v".to_string()),
        },
        actors,
    }
}

/// Rounds a sampled value to 2 decimals — purely cosmetic (readable
/// generated files); determinism does not depend on it.
fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

// ---------------------------------------------------------------------------
// Config parsing
// ---------------------------------------------------------------------------

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, FormatError> {
    Err(FormatError {
        line,
        message: message.into(),
    })
}

#[allow(clippy::too_many_lines)]
fn parse_config(text: &str) -> Result<GeneratorConfig, FormatError> {
    let mut kind: Option<&str> = None;
    let mut prefix: Option<String> = None;
    let mut base: Option<String> = None;
    let mut count: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut axes: Vec<AxisDef> = Vec::new();
    let mut in_axis = false;
    let mut header_seen = false;

    for (index, raw) in text.lines().enumerate() {
        let lineno = index + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !header_seen {
            let Some(version) = line.strip_prefix(HEADER_PREFIX) else {
                return err(
                    lineno,
                    format!("missing `{HEADER_PREFIX} {GENERATOR_VERSION}` header (got {line:?})"),
                );
            };
            let version = version.trim();
            if version != GENERATOR_VERSION {
                return err(
                    lineno,
                    format!(
                        "unsupported generator config version `{version}` \
                         (this build supports {GENERATOR_VERSION})"
                    ),
                );
            }
            header_seen = true;
            continue;
        }
        if let Some(heading) = line.strip_prefix('[') {
            let Some(heading) = heading.strip_suffix(']') else {
                return err(lineno, format!("unterminated section heading {line:?}"));
            };
            let Some(pname) = heading.trim().strip_prefix("axis ") else {
                return err(
                    lineno,
                    format!(
                        "unknown section `[{}]` (known: axis <param>)",
                        heading.trim()
                    ),
                );
            };
            let pname = pname.trim();
            if axes.iter().any(|a| a.param == pname) {
                return err(lineno, format!("duplicate axis `{pname}`"));
            }
            axes.push(AxisDef {
                param: pname.to_string(),
                values: Vec::new(),
            });
            in_axis = true;
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return err(lineno, format!("expected `key = value`, got {line:?}"));
        };
        let key = key.trim();
        let value = value.trim();
        if in_axis {
            if key != "values" {
                return err(
                    lineno,
                    format!("unknown field `{key}` in [axis] (known: values)"),
                );
            }
            let axis = axes.last_mut().expect("in axis section");
            if !axis.values.is_empty() {
                return err(lineno, "duplicate `values`");
            }
            for piece in value.split(',') {
                let expr = parse_expr(piece).map_err(|e| FormatError {
                    line: lineno,
                    message: format!("bad axis value {piece:?}: {e}"),
                })?;
                axis.values.push(expr);
            }
            continue;
        }
        match key {
            "kind" => match value {
                "grid" => kind = Some("grid"),
                "fuzz" => kind = Some("fuzz"),
                other => {
                    return err(
                        lineno,
                        format!("unknown generator kind {other:?} (grid or fuzz)"),
                    )
                }
            },
            "prefix" => prefix = Some(value.to_string()),
            "base" => base = Some(value.to_string()),
            "count" => {
                count = Some(value.parse().map_err(|_| FormatError {
                    line: lineno,
                    message: format!("count must be an integer, got {value:?}"),
                })?);
            }
            "seed" => {
                seed = Some(value.parse().map_err(|_| FormatError {
                    line: lineno,
                    message: format!("seed must be an integer, got {value:?}"),
                })?);
            }
            other => {
                return err(
                    lineno,
                    format!("unknown field `{other}` (known: kind, prefix, base, count, seed)"),
                )
            }
        }
    }

    if !header_seen {
        return err(
            0,
            format!("missing `{HEADER_PREFIX} {GENERATOR_VERSION}` header"),
        );
    }
    let prefix = prefix.unwrap_or_else(|| "gen".to_string());
    match kind {
        Some("grid") => {
            if count.is_some() || seed.is_some() {
                return err(0, "`count`/`seed` only apply to fuzz generators");
            }
            let base = base.ok_or(FormatError {
                line: 0,
                message: "grid generators require `base`".to_string(),
            })?;
            if axes.is_empty() {
                return err(0, "grid generators require at least one [axis]");
            }
            Ok(GeneratorConfig::Grid(GridConfig { prefix, base, axes }))
        }
        Some("fuzz") => {
            if base.is_some() || !axes.is_empty() {
                return err(0, "`base`/[axis] only apply to grid generators");
            }
            let count = count.ok_or(FormatError {
                line: 0,
                message: "fuzz generators require `count`".to_string(),
            })?;
            if count == 0 || count > MAX_GENERATED {
                return err(0, format!("count must be in 1..={MAX_GENERATED}"));
            }
            let seed = seed.ok_or(FormatError {
                line: 0,
                message: "fuzz generators require `seed` (replay = (config, seed))".to_string(),
            })?;
            Ok(GeneratorConfig::Fuzz(FuzzConfig {
                prefix,
                count,
                seed,
            }))
        }
        Some(_) => unreachable!("kind is grid or fuzz"),
        None => err(0, "missing `kind` (grid or fuzz)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_is_deterministic_and_valid() {
        let config = FuzzConfig {
            prefix: "fz".to_string(),
            count: 40,
            seed: 9,
        };
        let a = config.generate();
        let b = config.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
        for def in &a {
            // Every generated definition round-trips and instantiates at
            // several sweep seeds.
            let text = def.to_text();
            assert_eq!(&ScenarioDef::parse(&text).expect("reparse"), def);
            for seed in [0, 1, 7] {
                def.instantiate(seed)
                    .unwrap_or_else(|e| panic!("{}: {e}", def.name));
            }
        }
        // Different generator seeds sample different corpora.
        let other = FuzzConfig { seed: 10, ..config }.generate();
        assert_ne!(a, other);
    }

    #[test]
    fn grid_expands_row_major() {
        let base = ScenarioDef::parse(
            "zhuyi-scenario v1\nname = Base\nduration = 10.0\n\n\
             [road]\nkind = straight\nlength = 500.0\n\n\
             [param x]\njitter = none\nvalue = 1.0\n\n\
             [param y]\njitter = none\nvalue = 2.0\n\n\
             [ego]\nlane = 1\ns = 50.0\nspeed = x + y\n",
        )
        .expect("base");
        let grid = GridConfig {
            prefix: "g".to_string(),
            base: "base.scn".to_string(),
            axes: vec![
                AxisDef {
                    param: "x".to_string(),
                    values: vec![Expr::Num(10.0), Expr::Num(20.0)],
                },
                AxisDef {
                    param: "y".to_string(),
                    values: vec![Expr::Num(1.0), Expr::Num(2.0), Expr::Num(3.0)],
                },
            ],
        };
        let defs = grid.expand(&base).expect("expand");
        assert_eq!(defs.len(), 6);
        assert_eq!(defs[0].name, "g-0000");
        // Last axis varies fastest: (10,1), (10,2), (10,3), (20,1), ...
        let speeds: Vec<f64> = defs
            .iter()
            .map(|d| d.instantiate(0).expect("ok").ego_speed.value())
            .collect();
        assert_eq!(speeds, vec![11.0, 12.0, 13.0, 21.0, 22.0, 23.0]);
        assert!(defs[0].tags.iter().any(|t| t == "generated"));

        let missing = GridConfig {
            axes: vec![AxisDef {
                param: "zzz".to_string(),
                values: vec![Expr::Num(1.0)],
            }],
            ..grid
        };
        let e = missing.expand(&base).unwrap_err();
        assert!(e.to_string().contains("not a [param]"), "{e}");
    }

    #[test]
    fn config_parse_and_validation() {
        let fuzz = GeneratorConfig::parse(
            "zhuyi-generator v1\nkind = fuzz\nprefix = fz\ncount = 5\nseed = 3\n",
        )
        .expect("fuzz config");
        assert_eq!(
            fuzz,
            GeneratorConfig::Fuzz(FuzzConfig {
                prefix: "fz".to_string(),
                count: 5,
                seed: 3
            })
        );
        let e = GeneratorConfig::parse("zhuyi-generator v9\nkind = fuzz\n").unwrap_err();
        assert!(
            e.to_string()
                .contains("unsupported generator config version"),
            "{e}"
        );
        let e = GeneratorConfig::parse("zhuyi-generator v1\nkind = fuzz\ncount = 5\n").unwrap_err();
        assert!(e.to_string().contains("require `seed`"), "{e}");
        let e =
            GeneratorConfig::parse("zhuyi-generator v1\nkind = grid\nbase = x.scn\n").unwrap_err();
        assert!(e.to_string().contains("at least one [axis]"), "{e}");
    }
}
