//! **zhuyi-registry** — declarative scenario definitions for the Zhuyi
//! (DAC 2022) reproduction.
//!
//! The paper's evaluation rests on nine hand-coded Table-1 scenarios;
//! every fleet-scale layer built on top (lane batching, certificates,
//! distribution) was therefore starved for load — scenario diversity was
//! capped by how much Rust someone writes. This crate makes scenarios
//! *data*:
//!
//! - [`mod@format`] — a versioned, line-oriented definition format (`.scn`)
//!   covering road geometry, jittered parameters, ego config, actor
//!   placements, and triggered maneuvers, instantiated through the same
//!   `av-scenarios` jitter/script machinery as the hand-coded catalog
//!   (the committed `scenarios/` ports are *bit-identical* to their
//!   builders — the golden-equivalence suite pins this);
//! - [`expr`] — the small arithmetic expression language definition files
//!   use for scalar quantities, with a canonical printer whose output
//!   re-parses to the identical AST;
//! - [`registry`] — ordered, name-indexed definition collections loaded
//!   from directories, with name/tag glob filtering;
//! - [`source`] — [`source::ScenarioSource`], the "catalog id or
//!   definition" abstraction `zhuyi-fleet` plans and the `zhuyi-distd`
//!   wire carry instead of bare `ScenarioId`s;
//! - [`generator`] — combinatorial grid expansion and a seeded scenario
//!   fuzzer, both replayable from `(config, seed)`.
//!
//! The `scenario_gen` binary expands a `.gen` config into a directory of
//! `.scn` files ready for `fleet_sweep --scenario-dir`.
//!
//! # Quickstart
//!
//! ```
//! use zhuyi_registry::{Registry, ScenarioDef};
//!
//! let def = ScenarioDef::parse(
//!     "zhuyi-scenario v1\n\
//!      name = Brake check\n\
//!      duration = 15.0\n\n\
//!      [road]\nkind = straight\nlength = 1000.0\n\n\
//!      [param v]\njitter = speed\nvalue = mph(45.0)\n\n\
//!      [ego]\nlane = 1\ns = 50.0\nspeed = v\n\n\
//!      [actor lead]\nid = 1\nlane = 1\ns = 120.0\nspeed = v\n\n\
//!      [maneuver]\ntrigger = at_time(3.0)\naction = hard_brake(6.0)\n",
//! )?;
//! let nominal = def.instantiate(0)?; // seed 0 = nominal, like the catalog
//! assert_eq!(nominal.name, "Brake check");
//! let registry = Registry::from_defs(vec![def])?;
//! assert_eq!(registry.filter("Brake*")?.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod expr;
pub mod format;
pub mod generator;
pub mod registry;
pub mod source;

pub use expr::{parse_expr, Expr};
pub use format::{FormatError, InstantiateError, ScenarioDef, FORMAT_VERSION};
pub use generator::{FuzzConfig, GeneratorConfig, GeneratorError, GridConfig};
pub use registry::{Registry, RegistryError};
pub use source::ScenarioSource;
