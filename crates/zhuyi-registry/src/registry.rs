//! Loading and filtering collections of scenario definitions.
//!
//! A [`Registry`] is an ordered set of parsed, pre-validated definitions —
//! the probe-rs "target registry" shape applied to driving scenarios: the
//! committed `scenarios/` directory is the built-in catalog, generated
//! corpora are additional directories, and callers select by name or tag
//! with glob filters.

use std::fmt;
use std::fs;
use std::path::Path;
use std::sync::Arc;

use crate::format::ScenarioDef;
use crate::source::ScenarioSource;

/// An error loading a registry or resolving a filter.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryError {
    /// Human-readable description (includes the file path where relevant).
    pub message: String,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for RegistryError {}

fn reg_err<T>(message: String) -> Result<T, RegistryError> {
    Err(RegistryError { message })
}

/// An ordered, name-indexed collection of scenario definitions.
///
/// Order is load order: for [`Registry::load_dir`] that is the sorted file
/// name order, which is what makes plan expansion over a directory
/// deterministic (and lets the committed catalog files reproduce the
/// Table-1 order with `0_...` ... `8_...` prefixes).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    defs: Vec<Arc<ScenarioDef>>,
}

impl Registry {
    /// Loads every `*.scn` file of a directory, sorted by file name.
    ///
    /// Each definition is parsed and instantiated once at seed 0, so a
    /// malformed or numerically degenerate file is rejected here — with
    /// its path — rather than mid-sweep.
    ///
    /// # Errors
    ///
    /// Returns a [`RegistryError`] for unreadable directories/files, parse
    /// or validation failures (with file path and line), duplicate names,
    /// and directories containing no `*.scn` files.
    pub fn load_dir(dir: impl AsRef<Path>) -> Result<Self, RegistryError> {
        let dir = dir.as_ref();
        let entries = fs::read_dir(dir).map_err(|e| RegistryError {
            message: format!("cannot read scenario dir {}: {e}", dir.display()),
        })?;
        let mut paths: Vec<_> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "scn"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return reg_err(format!(
                "scenario dir {} contains no .scn files",
                dir.display()
            ));
        }
        let mut defs = Vec::with_capacity(paths.len());
        for path in paths {
            let text = fs::read_to_string(&path).map_err(|e| RegistryError {
                message: format!("cannot read {}: {e}", path.display()),
            })?;
            let def = ScenarioDef::parse(&text).map_err(|e| RegistryError {
                message: format!("{}: {e}", path.display()),
            })?;
            def.instantiate(0).map_err(|e| RegistryError {
                message: format!("{}: {e}", path.display()),
            })?;
            defs.push(def);
        }
        Self::from_defs(defs)
    }

    /// Builds a registry from already-parsed definitions (e.g. generator
    /// output), preserving order.
    ///
    /// # Errors
    ///
    /// Returns a [`RegistryError`] for duplicate scenario names.
    pub fn from_defs(defs: Vec<ScenarioDef>) -> Result<Self, RegistryError> {
        let mut seen: Vec<&str> = Vec::with_capacity(defs.len());
        for def in &defs {
            if seen.contains(&def.name.as_str()) {
                return reg_err(format!("duplicate scenario name `{}`", def.name));
            }
            seen.push(&def.name);
        }
        Ok(Self {
            defs: defs.into_iter().map(Arc::new).collect(),
        })
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// All definitions, in registry order.
    pub fn defs(&self) -> &[Arc<ScenarioDef>] {
        &self.defs
    }

    /// Looks a definition up by exact name.
    pub fn get(&self, name: &str) -> Option<&Arc<ScenarioDef>> {
        self.defs.iter().find(|d| d.name == name)
    }

    /// Resolves a filter to sources, in registry order.
    ///
    /// `spec` is `all` or a comma-separated list of glob patterns (`*`
    /// wildcard); a pattern selects every definition whose *name or any
    /// tag* matches. The result is the deduplicated union.
    ///
    /// # Errors
    ///
    /// Returns a [`RegistryError`] listing the available names when the
    /// filter matches nothing.
    pub fn filter(&self, spec: &str) -> Result<Vec<ScenarioSource>, RegistryError> {
        let spec = spec.trim();
        if spec == "all" {
            return Ok(self.defs.iter().cloned().map(ScenarioSource::Def).collect());
        }
        let patterns: Vec<&str> = spec
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .collect();
        if patterns.is_empty() {
            return reg_err("empty scenario filter".to_string());
        }
        let selected: Vec<ScenarioSource> = self
            .defs
            .iter()
            .filter(|def| {
                patterns
                    .iter()
                    .any(|p| glob_match(p, &def.name) || def.tags.iter().any(|t| glob_match(p, t)))
            })
            .cloned()
            .map(ScenarioSource::Def)
            .collect();
        if selected.is_empty() {
            let names: Vec<&str> = self.defs.iter().map(|d| d.name.as_str()).collect();
            return reg_err(format!(
                "scenario filter {spec:?} matched nothing (available: {})",
                names.join(", ")
            ));
        }
        Ok(selected)
    }
}

/// Matches `text` against a pattern where `*` matches any (possibly empty)
/// substring; everything else is literal.
fn glob_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[u8], t: &[u8]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some((b'*', rest)) => (0..=t.len()).any(|skip| inner(rest, &t[skip..])),
            Some((c, rest)) => t
                .split_first()
                .is_some_and(|(tc, tr)| tc == c && inner(rest, tr)),
        }
    }
    inner(pattern.as_bytes(), text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn def(name: &str, tags: &[&str]) -> ScenarioDef {
        let tag_line = if tags.is_empty() {
            String::new()
        } else {
            format!("tags = {}\n", tags.join(", "))
        };
        ScenarioDef::parse(&format!(
            "zhuyi-scenario v1\nname = {name}\n{tag_line}duration = 10.0\n\n\
             [road]\nkind = straight\nlength = 500.0\n\n\
             [ego]\nlane = 1\ns = 50.0\nspeed = 20.0\n"
        ))
        .expect("valid def")
    }

    #[test]
    fn filters_by_name_tag_and_glob() {
        let registry = Registry::from_defs(vec![
            def("Cut-out", &["catalog", "cut"]),
            def("Cut-in", &["catalog", "cut"]),
            def("fuzz-0001", &["generated"]),
        ])
        .expect("registry");
        assert_eq!(registry.filter("all").expect("all").len(), 3);
        assert_eq!(registry.filter("Cut-out").expect("name").len(), 1);
        assert_eq!(registry.filter("cut").expect("tag").len(), 2);
        assert_eq!(registry.filter("Cut-*").expect("glob").len(), 2);
        assert_eq!(
            registry.filter("Cut-in, generated").expect("union").len(),
            2
        );
        let e = registry.filter("nope-*").unwrap_err();
        assert!(e.to_string().contains("matched nothing"), "{e}");
        assert!(e.to_string().contains("Cut-out"), "{e}");
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let e = Registry::from_defs(vec![def("Twin", &[]), def("Twin", &[])]).unwrap_err();
        assert!(e.to_string().contains("duplicate scenario name"), "{e}");
    }
}
