//! [`ScenarioSource`] — where a sweep's scenarios come from.
//!
//! Fleet plans used to be `ScenarioId`-only: every job named one of the
//! nine hand-coded Table-1 builders. A source generalizes that to "either a
//! catalog id or a parsed definition", so the same `SweepJob` machinery
//! (expansion, execution, exports, the distd wire) runs file-loaded and
//! generated scenarios without special cases.

use std::fmt;
use std::sync::Arc;

use av_scenarios::catalog::{Scenario, ScenarioId};

use crate::format::ScenarioDef;

/// A buildable scenario reference: a Table-1 catalog id, or a declarative
/// definition (file-loaded or generated).
///
/// Definitions are shared via [`Arc`] — a 500-job plan over one generated
/// corpus holds each definition once. Equality is structural, so two jobs
/// are equal exactly when they would simulate identically.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSource {
    /// One of the nine hand-coded Table-1 scenarios.
    Catalog(ScenarioId),
    /// A declarative scenario definition.
    Def(Arc<ScenarioDef>),
}

impl ScenarioSource {
    /// The scenario's export identity: the Table-1 name for catalog
    /// scenarios, the declared name for definitions. Catalog ports that
    /// declare the same name are therefore byte-identical in every export.
    pub fn name(&self) -> &str {
        match self {
            ScenarioSource::Catalog(id) => id.name(),
            ScenarioSource::Def(def) => &def.name,
        }
    }

    /// A filesystem-safe identifier, used in kept-trace filenames. Catalog
    /// sources keep the historical `{:?}` form (`CutOut`, `CutIn`, ...);
    /// definitions sanitize their name.
    pub fn slug(&self) -> String {
        match self {
            ScenarioSource::Catalog(id) => format!("{id:?}"),
            ScenarioSource::Def(def) => def
                .name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect(),
        }
    }

    /// The catalog id, when this source is one (e.g. to reuse
    /// [`av_scenarios::catalog::minimum_required_fpr`]'s id-based API).
    pub fn catalog_id(&self) -> Option<ScenarioId> {
        match self {
            ScenarioSource::Catalog(id) => Some(*id),
            ScenarioSource::Def(_) => None,
        }
    }

    /// Builds the scenario at a jitter seed.
    ///
    /// # Panics
    ///
    /// Panics when a definition fails numeric validation at this seed.
    /// Sources entering a sweep are expected to be pre-validated (the
    /// registry instantiates every definition it loads, and the CLI
    /// validates each requested seed) — this matches the fleet's
    /// validated-at-plan-build philosophy. Use
    /// [`ScenarioDef::instantiate`] directly for a checked build.
    pub fn build(&self, seed: u64) -> Scenario {
        match self {
            ScenarioSource::Catalog(id) => Scenario::build(*id, seed),
            ScenarioSource::Def(def) => def.instantiate(seed).unwrap_or_else(|e| {
                panic!(
                    "scenario definition `{}` failed to instantiate at seed {seed}: {e}",
                    def.name
                )
            }),
        }
    }
}

impl From<ScenarioId> for ScenarioSource {
    fn from(id: ScenarioId) -> Self {
        ScenarioSource::Catalog(id)
    }
}

impl From<Arc<ScenarioDef>> for ScenarioSource {
    fn from(def: Arc<ScenarioDef>) -> Self {
        ScenarioSource::Def(def)
    }
}

impl From<ScenarioDef> for ScenarioSource {
    fn from(def: ScenarioDef) -> Self {
        ScenarioSource::Def(Arc::new(def))
    }
}

impl fmt::Display for ScenarioSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_sources_mirror_the_catalog() {
        let source = ScenarioSource::from(ScenarioId::CutOut);
        assert_eq!(source.name(), "Cut-out");
        assert_eq!(source.slug(), "CutOut");
        assert_eq!(source.catalog_id(), Some(ScenarioId::CutOut));
        assert_eq!(source.build(3), Scenario::build(ScenarioId::CutOut, 3));
    }
}
