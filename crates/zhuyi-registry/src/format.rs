//! The versioned scenario definition file format (`.scn`).
//!
//! A definition file is a line-oriented, sectioned text format (the same
//! hand-rolled-parser discipline as the repo's CSV/JSON/wire codecs — the
//! workspace's serde is a no-op shim, so every persisted format owns its
//! bytes). The grammar:
//!
//! ```text
//! zhuyi-scenario v1            # required version header
//!
//! name = Cut-out               # must be unique within a registry
//! tags = catalog, table1       # optional, comma-separated
//! duration = 25.0              # seconds (expression)
//!
//! [road]
//! kind = straight              # or `curved` (requires `radius`)
//! length = 3000.0
//! lanes = 3
//! lane_width = 3.7
//!
//! [param v]                    # ordered: declaration order IS jitter order
//! jitter = speed               # none | speed | position | duration
//! value = mph(20.0)            # may reference earlier params
//!
//! [ego]
//! lane = 1
//! s = 50.0
//! speed = v
//!
//! [actor lead]
//! id = 1
//! kind = vehicle               # or `obstacle` (no speed, no maneuvers)
//! lane = 1
//! s = 50.0 + 30.0
//! speed = v
//!
//! [maneuver]                   # attaches to the most recent [actor]
//! trigger = ego_passes(trigger_s)
//! action = change_lane(2, 2.5)
//! ```
//!
//! Triggers: `immediately`, `at_time(t)`, `gap_ahead(m)`, `gap_behind(m)`,
//! `ego_passes(s)`. Actions: `change_lane(lane, duration)`,
//! `set_speed(target, accel_limit)`, `hard_brake(decel)`,
//! `match_ego_speed(accel_limit)`.
//!
//! # The jitter contract
//!
//! [`ScenarioDef::instantiate`] reproduces the hand-coded catalog builders
//! bit-exactly because `av-scenarios`' [`Jitter`] draws depend only on the
//! *ordered sequence* of (kind, spread) calls, never on nominal values.
//! `[param]` declarations are the only jitter draws in a definition, made
//! in file order through the very same `Jitter` methods; every other
//! expression is pure arithmetic over the drawn values. A port of a
//! hand-coded scenario therefore only has to declare its jittered
//! quantities in builder order to replay the identical RNG stream.
//!
//! # Validation
//!
//! Structural problems (unknown fields, bad version, duplicate names,
//! malformed expressions, obstacle constraints) are parse errors carrying a
//! line number. Numeric problems (non-finite geometry, placements off the
//! road, unsatisfiable triggers) are instantiation errors, checked per
//! seed, since jitter and parameter arithmetic decide the final values.

use std::collections::BTreeMap;
use std::fmt;

use av_core::prelude::*;
use av_scenarios::catalog::Scenario;
use av_scenarios::jitter::Jitter;
use av_sim::road::{LaneId, Road};
use av_sim::script::{Action, ActorScript, Placement, Trigger};

use crate::expr::{parse_expr, Expr};

/// The format version this build reads and writes.
pub const FORMAT_VERSION: &str = "v1";

const HEADER_PREFIX: &str = "zhuyi-scenario";

/// A parsed, structurally valid scenario definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDef {
    /// Unique scenario name (export identity, like the catalog's Table-1
    /// names).
    pub name: String,
    /// Free-form tags for registry filtering.
    pub tags: Vec<String>,
    /// Scenario duration in seconds.
    pub duration: Expr,
    /// Road geometry.
    pub road: RoadDef,
    /// Ordered parameter declarations — file order is jitter-draw order.
    pub params: Vec<ParamDef>,
    /// Ego configuration.
    pub ego: EgoDef,
    /// Scripted actors, in scene order.
    pub actors: Vec<ActorDef>,
}

/// Road geometry of a definition.
#[derive(Debug, Clone, PartialEq)]
pub struct RoadDef {
    /// Straight or arc centerline.
    pub kind: RoadKind,
    /// Road length in meters.
    pub length: Expr,
    /// Number of lanes (0 = rightmost).
    pub lanes: u32,
    /// Lane width in meters.
    pub lane_width: Expr,
    /// Signed arc radius in meters (curved roads only; positive = left).
    pub radius: Option<Expr>,
}

/// Road centerline shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoadKind {
    /// Straight centerline.
    Straight,
    /// Constant-curvature arc.
    Curved,
}

/// Which [`Jitter`] draw a parameter makes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JitterKind {
    /// No draw: the parameter is its nominal value at every seed.
    None,
    /// `Jitter::speed` (±1% multiplicative).
    Speed,
    /// `Jitter::position` (± `spread` meters additive).
    Position,
    /// `Jitter::duration` (±5% multiplicative).
    Duration,
}

/// One ordered parameter declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDef {
    /// Identifier later expressions reference.
    pub name: String,
    /// The jitter draw applied to the nominal value.
    pub jitter: JitterKind,
    /// Nominal value; may reference earlier parameters.
    pub value: Expr,
    /// Position jitter half-width in meters (position params only).
    pub spread: Option<f64>,
}

/// Ego configuration of a definition.
#[derive(Debug, Clone, PartialEq)]
pub struct EgoDef {
    /// Starting lane.
    pub lane: u32,
    /// Starting arc-length position in meters.
    pub s: Expr,
    /// Cruise speed in m/s.
    pub speed: Expr,
}

/// Actor kind of a definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorKindDef {
    /// A scripted vehicle.
    Vehicle,
    /// A static obstacle (no speed, no maneuvers).
    Obstacle,
}

/// One scripted actor.
#[derive(Debug, Clone, PartialEq)]
pub struct ActorDef {
    /// Label from the `[actor <label>]` heading (documentation and error
    /// messages only; `id` is the simulation identity).
    pub label: String,
    /// Simulation actor id (>= 1; 0 is reserved for the ego).
    pub id: u32,
    /// Vehicle or static obstacle.
    pub kind: ActorKindDef,
    /// Starting lane.
    pub lane: u32,
    /// Starting arc-length position in meters.
    pub s: Expr,
    /// Initial speed in m/s (vehicles only).
    pub speed: Option<Expr>,
    /// Triggered maneuvers, in declaration order.
    pub maneuvers: Vec<ManeuverDef>,
}

/// One triggered maneuver.
#[derive(Debug, Clone, PartialEq)]
pub struct ManeuverDef {
    /// When the action fires.
    pub trigger: TriggerDef,
    /// What the actor does.
    pub action: ActionDef,
}

/// Data-level mirror of [`av_sim::script::Trigger`].
#[derive(Debug, Clone, PartialEq)]
pub enum TriggerDef {
    /// Fires on the first tick.
    Immediately,
    /// Fires at an absolute time (seconds).
    AtTime(Expr),
    /// Fires when the actor's bumper gap ahead of the ego closes below a
    /// threshold (meters).
    GapAhead(Expr),
    /// Fires when the gap behind the ego closes below a threshold (meters).
    GapBehind(Expr),
    /// Fires when the ego passes an arc-length position (meters).
    EgoPasses(Expr),
}

/// Data-level mirror of [`av_sim::script::Action`].
#[derive(Debug, Clone, PartialEq)]
pub enum ActionDef {
    /// Lane change over a duration.
    ChangeLane {
        /// Target lane.
        target: u32,
        /// Maneuver duration in seconds.
        duration: Expr,
    },
    /// Accelerate or brake toward a target speed.
    SetSpeed {
        /// Target speed in m/s.
        target: Expr,
        /// Acceleration magnitude limit in m/s².
        accel_limit: Expr,
    },
    /// Emergency braking to a stop.
    HardBrake {
        /// Deceleration in m/s².
        decel: Expr,
    },
    /// Track the ego's current speed.
    MatchEgoSpeed {
        /// Acceleration magnitude limit in m/s².
        accel_limit: Expr,
    },
}

/// A structural error in a definition file, with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct FormatError {
    /// 1-based line the error was detected on (0 when the file ended too
    /// early).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            f.write_str(&self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for FormatError {}

/// A per-seed numeric error raised while instantiating a definition.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantiateError {
    /// Human-readable description, including the offending field.
    pub message: String,
}

impl fmt::Display for InstantiateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for InstantiateError {}

fn inst_err<T>(message: String) -> Result<T, InstantiateError> {
    Err(InstantiateError { message })
}

/// Strictly-positive check that a NaN fails (NaN loses every comparison,
/// so `!positive(NaN)` rejects it like any other bad value).
fn positive(x: f64) -> bool {
    x > 0.0
}

/// Non-negative check that a NaN fails, for the same reason.
fn non_negative(x: f64) -> bool {
    x >= 0.0
}

impl ScenarioDef {
    /// Parses a definition from its textual form.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError`] (with line number) for version mismatches,
    /// unknown sections/fields, duplicate or missing fields, malformed
    /// expressions, references to undeclared parameters, and obstacle
    /// constraint violations.
    pub fn parse(text: &str) -> Result<Self, FormatError> {
        parse_def(text)
    }

    /// Renders the canonical textual form.
    ///
    /// `ScenarioDef::parse(def.to_text()) == *def` for every parseable
    /// definition — this is what the distd wire format ships and what the
    /// generators write to disk.
    pub fn to_text(&self) -> String {
        write_def(self)
    }

    /// Instantiates the definition at a jitter seed, through the same
    /// [`Jitter`] machinery as the hand-coded catalog (seed 0 = nominal).
    ///
    /// # Errors
    ///
    /// Returns an [`InstantiateError`] when any evaluated quantity is
    /// non-finite, geometry is degenerate, a placement falls off the road,
    /// or a trigger can never fire.
    pub fn instantiate(&self, seed: u64) -> Result<Scenario, InstantiateError> {
        let mut jitter = Jitter::new(seed);
        let mut env: BTreeMap<String, f64> = BTreeMap::new();
        for param in &self.params {
            let ctx = format!("param `{}`", param.name);
            let nominal = eval(&param.value, &env, &ctx)?;
            let drawn = match param.jitter {
                JitterKind::None => nominal,
                JitterKind::Speed => jitter.speed(MetersPerSecond(nominal)).value(),
                JitterKind::Position => {
                    let spread = param.spread.expect("parser requires spread on position");
                    jitter.position(Meters(nominal), Meters(spread)).value()
                }
                JitterKind::Duration => jitter.duration(Seconds(nominal)).value(),
            };
            if !drawn.is_finite() {
                return inst_err(format!("{ctx} evaluates to a non-finite value ({drawn})"));
            }
            env.insert(param.name.clone(), drawn);
        }

        let road = self.build_road(&env)?;
        let length = road_length(&road);
        let lanes = road.lanes();

        let check_lane = |what: &str, lane: u32| {
            if lane >= lanes {
                inst_err(format!(
                    "{what} lane {lane} does not exist on a {lanes}-lane road"
                ))
            } else {
                Ok(())
            }
        };
        let check_on_road = |what: &str, s: f64| {
            if !(0.0..=length).contains(&s) {
                inst_err(format!(
                    "{what} s = {s} is outside the road [0, {length}] m"
                ))
            } else {
                Ok(())
            }
        };

        check_lane("ego", self.ego.lane)?;
        let ego_start = eval(&self.ego.s, &env, "ego.s")?;
        check_on_road("ego", ego_start)?;
        let ego_speed = eval(&self.ego.speed, &env, "ego.speed")?;
        if !non_negative(ego_speed) {
            return inst_err(format!("ego.speed must be non-negative (got {ego_speed})"));
        }

        let duration = eval(&self.duration, &env, "duration")?;
        if !(duration > 0.0 && duration <= 600.0) {
            return inst_err(format!(
                "duration must be in (0, 600] seconds (got {duration})"
            ));
        }

        let mut scripts = Vec::with_capacity(self.actors.len());
        for actor in &self.actors {
            let ctx = format!("actor `{}`", actor.label);
            check_lane(&ctx, actor.lane)?;
            let s = eval(&actor.s, &env, &format!("{ctx} s"))?;
            check_on_road(&ctx, s)?;
            let mut script = match actor.kind {
                ActorKindDef::Obstacle => {
                    ActorScript::obstacle(ActorId(actor.id), LaneId(actor.lane), Meters(s))
                }
                ActorKindDef::Vehicle => {
                    let speed_expr = actor
                        .speed
                        .as_ref()
                        .expect("parser requires speed on vehicles");
                    let speed = eval(speed_expr, &env, &format!("{ctx} speed"))?;
                    if !non_negative(speed) {
                        return inst_err(format!("{ctx} speed must be non-negative (got {speed})"));
                    }
                    ActorScript::cruising(
                        ActorId(actor.id),
                        Placement {
                            lane: LaneId(actor.lane),
                            s: Meters(s),
                            speed: MetersPerSecond(speed),
                        },
                    )
                }
            };
            for (index, m) in actor.maneuvers.iter().enumerate() {
                let mctx = format!("{ctx} maneuver {}", index + 1);
                let trigger = build_trigger(&m.trigger, &env, &mctx, duration, length)?;
                let action = build_action(&m.action, &env, &mctx, &check_lane)?;
                script = script.with_maneuver(trigger, action);
            }
            scripts.push(script);
        }

        Ok(Scenario {
            name: self.name.clone(),
            seed,
            road,
            ego_lane: LaneId(self.ego.lane),
            ego_start: Meters(ego_start),
            ego_speed: MetersPerSecond(ego_speed),
            scripts,
            duration: Seconds(duration),
        })
    }

    fn build_road(&self, env: &BTreeMap<String, f64>) -> Result<Road, InstantiateError> {
        let length = eval(&self.road.length, env, "road.length")?;
        if !positive(length) {
            return inst_err(format!("road.length must be positive (got {length})"));
        }
        let lane_width = eval(&self.road.lane_width, env, "road.lane_width")?;
        if !positive(lane_width) {
            return inst_err(format!(
                "road.lane_width must be positive (got {lane_width})"
            ));
        }
        let path = match self.road.kind {
            RoadKind::Straight => Path::straight(Vec2::ZERO, Radians(0.0), Meters(length)),
            RoadKind::Curved => {
                let radius_expr = self
                    .road
                    .radius
                    .as_ref()
                    .expect("parser requires radius on curved roads");
                let radius = eval(radius_expr, env, "road.radius")?;
                if radius.abs() < 2.0 * lane_width {
                    return inst_err(format!(
                        "road.radius {radius} is degenerate (|radius| must be at least \
                         two lane widths)"
                    ));
                }
                // Same arc construction (including the 2 m sampling step)
                // as Road::curved_three_lane.
                Path::arc(
                    Vec2::ZERO,
                    Radians(0.0),
                    Meters(radius),
                    Meters(length),
                    Meters(2.0),
                )
            }
        };
        Road::new(path, self.road.lanes, Meters(lane_width)).map_err(|e| InstantiateError {
            message: format!("road: {e}"),
        })
    }
}

fn road_length(road: &Road) -> f64 {
    road.path().length().value()
}

fn eval(expr: &Expr, env: &BTreeMap<String, f64>, ctx: &str) -> Result<f64, InstantiateError> {
    let value = expr.eval(env).map_err(|e| InstantiateError {
        message: format!("{ctx}: {e}"),
    })?;
    if !value.is_finite() {
        return inst_err(format!("{ctx} evaluates to a non-finite value ({value})"));
    }
    Ok(value)
}

fn build_trigger(
    def: &TriggerDef,
    env: &BTreeMap<String, f64>,
    ctx: &str,
    duration: f64,
    road_length: f64,
) -> Result<Trigger, InstantiateError> {
    Ok(match def {
        TriggerDef::Immediately => Trigger::Immediately,
        TriggerDef::AtTime(e) => {
            let t = eval(e, env, &format!("{ctx} at_time"))?;
            if t < 0.0 {
                return inst_err(format!("{ctx}: at_time({t}) is negative"));
            }
            if t > duration {
                return inst_err(format!(
                    "{ctx}: at_time({t}) never fires — the scenario ends at \
                     {duration} s (unsatisfiable trigger)"
                ));
            }
            Trigger::AtTime(Seconds(t))
        }
        TriggerDef::GapAhead(e) => {
            let g = eval(e, env, &format!("{ctx} gap_ahead"))?;
            if !positive(g) {
                return inst_err(format!("{ctx}: gap_ahead({g}) must be positive"));
            }
            Trigger::GapAheadOfEgo(Meters(g))
        }
        TriggerDef::GapBehind(e) => {
            let g = eval(e, env, &format!("{ctx} gap_behind"))?;
            if !positive(g) {
                return inst_err(format!("{ctx}: gap_behind({g}) must be positive"));
            }
            Trigger::GapBehindEgo(Meters(g))
        }
        TriggerDef::EgoPasses(e) => {
            let s = eval(e, env, &format!("{ctx} ego_passes"))?;
            if !(0.0..=road_length).contains(&s) {
                return inst_err(format!(
                    "{ctx}: ego_passes({s}) is outside the {road_length} m road \
                     (unsatisfiable trigger)"
                ));
            }
            Trigger::EgoPasses(Meters(s))
        }
    })
}

fn build_action(
    def: &ActionDef,
    env: &BTreeMap<String, f64>,
    ctx: &str,
    check_lane: &impl Fn(&str, u32) -> Result<(), InstantiateError>,
) -> Result<Action, InstantiateError> {
    Ok(match def {
        ActionDef::ChangeLane { target, duration } => {
            check_lane(&format!("{ctx} change_lane target"), *target)?;
            let d = eval(duration, env, &format!("{ctx} change_lane duration"))?;
            if !positive(d) {
                return inst_err(format!(
                    "{ctx}: change_lane duration must be positive (got {d})"
                ));
            }
            Action::ChangeLane {
                target: LaneId(*target),
                duration: Seconds(d),
            }
        }
        ActionDef::SetSpeed {
            target,
            accel_limit,
        } => {
            let t = eval(target, env, &format!("{ctx} set_speed target"))?;
            if !non_negative(t) {
                return inst_err(format!(
                    "{ctx}: set_speed target must be non-negative (got {t})"
                ));
            }
            let a = eval(accel_limit, env, &format!("{ctx} set_speed accel_limit"))?;
            if !positive(a) {
                return inst_err(format!(
                    "{ctx}: set_speed accel_limit must be positive (got {a})"
                ));
            }
            Action::SetSpeed {
                target: MetersPerSecond(t),
                accel_limit: MetersPerSecondSquared(a),
            }
        }
        ActionDef::HardBrake { decel } => {
            let d = eval(decel, env, &format!("{ctx} hard_brake decel"))?;
            if !positive(d) {
                return inst_err(format!(
                    "{ctx}: hard_brake decel must be positive (got {d})"
                ));
            }
            Action::HardBrake {
                decel: MetersPerSecondSquared(d),
            }
        }
        ActionDef::MatchEgoSpeed { accel_limit } => {
            let a = eval(
                accel_limit,
                env,
                &format!("{ctx} match_ego_speed accel_limit"),
            )?;
            if !positive(a) {
                return inst_err(format!(
                    "{ctx}: match_ego_speed accel_limit must be positive (got {a})"
                ));
            }
            Action::MatchEgoSpeed {
                accel_limit: MetersPerSecondSquared(a),
            }
        }
    })
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[derive(Debug)]
enum Section {
    Top,
    Road,
    Param(usize),
    Ego,
    Actor(usize),
    Maneuver(usize, usize),
}

#[derive(Debug, Default)]
struct RoadBuilder {
    kind: Option<RoadKind>,
    length: Option<Expr>,
    lanes: Option<u32>,
    lane_width: Option<Expr>,
    radius: Option<Expr>,
}

#[derive(Debug)]
struct ParamBuilder {
    name: String,
    jitter: Option<JitterKind>,
    value: Option<Expr>,
    spread: Option<f64>,
    line: usize,
}

#[derive(Debug, Default)]
struct EgoBuilder {
    lane: Option<u32>,
    s: Option<Expr>,
    speed: Option<Expr>,
}

#[derive(Debug)]
struct ActorBuilder {
    label: String,
    id: Option<u32>,
    kind: ActorKindDef,
    kind_set: bool,
    lane: Option<u32>,
    s: Option<Expr>,
    speed: Option<Expr>,
    maneuvers: Vec<ManeuverBuilder>,
    line: usize,
}

#[derive(Debug, Default)]
struct ManeuverBuilder {
    trigger: Option<TriggerDef>,
    action: Option<ActionDef>,
    line: usize,
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, FormatError> {
    Err(FormatError {
        line,
        message: message.into(),
    })
}

fn set_once<T>(slot: &mut Option<T>, value: T, line: usize, what: &str) -> Result<(), FormatError> {
    if slot.is_some() {
        return err(line, format!("duplicate `{what}`"));
    }
    *slot = Some(value);
    Ok(())
}

fn parse_expr_at(line: usize, what: &str, src: &str) -> Result<Expr, FormatError> {
    parse_expr(src).map_err(|e| FormatError {
        line,
        message: format!("bad expression for `{what}`: {e}"),
    })
}

/// Splits `name(arg1, arg2)` into the name and top-level comma-separated
/// argument list; `name` alone yields an empty list.
fn split_call(line: usize, src: &str) -> Result<(String, Vec<String>), FormatError> {
    let src = src.trim();
    let Some(open) = src.find('(') else {
        return Ok((src.to_string(), Vec::new()));
    };
    if !src.ends_with(')') {
        return err(line, format!("expected closing `)` in {src:?}"));
    }
    let name = src[..open].trim().to_string();
    let inner = &src[open + 1..src.len() - 1];
    let mut args = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth = depth.checked_sub(1).ok_or(FormatError {
                    line,
                    message: format!("unbalanced parentheses in {src:?}"),
                })?;
            }
            ',' if depth == 0 => {
                args.push(inner[start..i].trim().to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return err(line, format!("unbalanced parentheses in {src:?}"));
    }
    args.push(inner[start..].trim().to_string());
    Ok((name, args))
}

fn expect_args(line: usize, what: &str, args: &[String], count: usize) -> Result<(), FormatError> {
    if args.len() != count || args.iter().any(|a| a.is_empty()) {
        return err(
            line,
            format!("`{what}` takes {count} argument(s), got {args:?}"),
        );
    }
    Ok(())
}

fn parse_trigger(line: usize, src: &str) -> Result<TriggerDef, FormatError> {
    let (name, args) = split_call(line, src)?;
    match name.as_str() {
        "immediately" => {
            if !args.is_empty() {
                return err(line, "`immediately` takes no arguments");
            }
            Ok(TriggerDef::Immediately)
        }
        "at_time" => {
            expect_args(line, "at_time", &args, 1)?;
            Ok(TriggerDef::AtTime(parse_expr_at(
                line, "at_time", &args[0],
            )?))
        }
        "gap_ahead" => {
            expect_args(line, "gap_ahead", &args, 1)?;
            Ok(TriggerDef::GapAhead(parse_expr_at(
                line,
                "gap_ahead",
                &args[0],
            )?))
        }
        "gap_behind" => {
            expect_args(line, "gap_behind", &args, 1)?;
            Ok(TriggerDef::GapBehind(parse_expr_at(
                line,
                "gap_behind",
                &args[0],
            )?))
        }
        "ego_passes" => {
            expect_args(line, "ego_passes", &args, 1)?;
            Ok(TriggerDef::EgoPasses(parse_expr_at(
                line,
                "ego_passes",
                &args[0],
            )?))
        }
        other => err(
            line,
            format!(
                "unknown trigger `{other}` (known: immediately, at_time, gap_ahead, \
                 gap_behind, ego_passes)"
            ),
        ),
    }
}

fn parse_action(line: usize, src: &str) -> Result<ActionDef, FormatError> {
    let (name, args) = split_call(line, src)?;
    match name.as_str() {
        "change_lane" => {
            expect_args(line, "change_lane", &args, 2)?;
            let target: u32 = args[0].parse().map_err(|_| FormatError {
                line,
                message: format!(
                    "change_lane target lane must be an integer literal, got {:?}",
                    args[0]
                ),
            })?;
            Ok(ActionDef::ChangeLane {
                target,
                duration: parse_expr_at(line, "change_lane duration", &args[1])?,
            })
        }
        "set_speed" => {
            expect_args(line, "set_speed", &args, 2)?;
            Ok(ActionDef::SetSpeed {
                target: parse_expr_at(line, "set_speed target", &args[0])?,
                accel_limit: parse_expr_at(line, "set_speed accel_limit", &args[1])?,
            })
        }
        "hard_brake" => {
            expect_args(line, "hard_brake", &args, 1)?;
            Ok(ActionDef::HardBrake {
                decel: parse_expr_at(line, "hard_brake decel", &args[0])?,
            })
        }
        "match_ego_speed" => {
            expect_args(line, "match_ego_speed", &args, 1)?;
            Ok(ActionDef::MatchEgoSpeed {
                accel_limit: parse_expr_at(line, "match_ego_speed accel_limit", &args[0])?,
            })
        }
        other => err(
            line,
            format!(
                "unknown action `{other}` (known: change_lane, set_speed, hard_brake, \
                 match_ego_speed)"
            ),
        ),
    }
}

#[allow(clippy::too_many_lines)]
fn parse_def(text: &str) -> Result<ScenarioDef, FormatError> {
    let mut name: Option<String> = None;
    let mut tags: Option<Vec<String>> = None;
    let mut duration: Option<Expr> = None;
    let mut road: Option<RoadBuilder> = None;
    let mut params: Vec<ParamBuilder> = Vec::new();
    let mut ego: Option<EgoBuilder> = None;
    let mut actors: Vec<ActorBuilder> = Vec::new();

    let mut section = Section::Top;
    let mut header_seen = false;

    for (index, raw) in text.lines().enumerate() {
        let lineno = index + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }

        if !header_seen {
            let Some(version) = line.strip_prefix(HEADER_PREFIX) else {
                return err(
                    lineno,
                    format!(
                        "missing `{HEADER_PREFIX} {FORMAT_VERSION}` header \
                         (got {line:?})"
                    ),
                );
            };
            let version = version.trim();
            if version != FORMAT_VERSION {
                return err(
                    lineno,
                    format!(
                        "unsupported scenario format version `{version}` \
                         (this build supports {FORMAT_VERSION})"
                    ),
                );
            }
            header_seen = true;
            continue;
        }

        if let Some(heading) = line.strip_prefix('[') {
            let Some(heading) = heading.strip_suffix(']') else {
                return err(lineno, format!("unterminated section heading {line:?}"));
            };
            let heading = heading.trim();
            section = if heading == "road" {
                if road.is_some() {
                    return err(lineno, "duplicate `[road]` section");
                }
                road = Some(RoadBuilder::default());
                Section::Road
            } else if heading == "ego" {
                if ego.is_some() {
                    return err(lineno, "duplicate `[ego]` section");
                }
                ego = Some(EgoBuilder::default());
                Section::Ego
            } else if let Some(pname) = heading.strip_prefix("param ") {
                let pname = pname.trim();
                if !is_ident(pname) || pname == "mph" {
                    return err(lineno, format!("bad parameter name {pname:?}"));
                }
                if params.iter().any(|p| p.name == pname) {
                    return err(lineno, format!("duplicate parameter `{pname}`"));
                }
                params.push(ParamBuilder {
                    name: pname.to_string(),
                    jitter: None,
                    value: None,
                    spread: None,
                    line: lineno,
                });
                Section::Param(params.len() - 1)
            } else if let Some(label) = heading.strip_prefix("actor ") {
                let label = label.trim();
                if label.is_empty() {
                    return err(lineno, "actor label must not be empty");
                }
                if actors.iter().any(|a| a.label == label) {
                    return err(lineno, format!("duplicate actor label `{label}`"));
                }
                actors.push(ActorBuilder {
                    label: label.to_string(),
                    id: None,
                    kind: ActorKindDef::Vehicle,
                    kind_set: false,
                    lane: None,
                    s: None,
                    speed: None,
                    maneuvers: Vec::new(),
                    line: lineno,
                });
                Section::Actor(actors.len() - 1)
            } else if heading == "maneuver" {
                let Some(actor_index) = actors.len().checked_sub(1) else {
                    return err(lineno, "`[maneuver]` before any `[actor]`");
                };
                let actor = &mut actors[actor_index];
                if actor.kind_set && actor.kind == ActorKindDef::Obstacle {
                    return err(
                        lineno,
                        format!(
                            "actor `{}` is an obstacle and cannot have maneuvers",
                            actor.label
                        ),
                    );
                }
                actor.maneuvers.push(ManeuverBuilder {
                    line: lineno,
                    ..ManeuverBuilder::default()
                });
                Section::Maneuver(actor_index, actor.maneuvers.len() - 1)
            } else {
                return err(
                    lineno,
                    format!(
                        "unknown section `[{heading}]` (known: road, ego, \
                         param <name>, actor <label>, maneuver)"
                    ),
                );
            };
            continue;
        }

        let Some((key, value)) = line.split_once('=') else {
            return err(lineno, format!("expected `key = value`, got {line:?}"));
        };
        let key = key.trim();
        let value = value.trim();
        if value.is_empty() {
            return err(lineno, format!("empty value for `{key}`"));
        }

        match section {
            Section::Top => match key {
                "name" => set_once(&mut name, value.to_string(), lineno, "name")?,
                "tags" => {
                    let list: Vec<String> = value
                        .split(',')
                        .map(|t| t.trim().to_string())
                        .filter(|t| !t.is_empty())
                        .collect();
                    set_once(&mut tags, list, lineno, "tags")?;
                }
                "duration" => {
                    let e = parse_expr_at(lineno, "duration", value)?;
                    set_once(&mut duration, e, lineno, "duration")?;
                }
                other => {
                    return err(
                        lineno,
                        format!("unknown field `{other}` (top-level fields: name, tags, duration)"),
                    )
                }
            },
            Section::Road => {
                let r = road.as_mut().expect("in road section");
                match key {
                    "kind" => {
                        let kind = match value {
                            "straight" => RoadKind::Straight,
                            "curved" => RoadKind::Curved,
                            other => {
                                return err(
                                    lineno,
                                    format!("unknown road kind {other:?} (straight or curved)"),
                                )
                            }
                        };
                        set_once(&mut r.kind, kind, lineno, "kind")?;
                    }
                    "length" => {
                        let e = parse_expr_at(lineno, "length", value)?;
                        set_once(&mut r.length, e, lineno, "length")?;
                    }
                    "lanes" => {
                        let lanes: u32 = value.parse().map_err(|_| FormatError {
                            line: lineno,
                            message: format!("lanes must be an integer, got {value:?}"),
                        })?;
                        if lanes == 0 {
                            return err(lineno, "a road needs at least one lane");
                        }
                        set_once(&mut r.lanes, lanes, lineno, "lanes")?;
                    }
                    "lane_width" => {
                        let e = parse_expr_at(lineno, "lane_width", value)?;
                        set_once(&mut r.lane_width, e, lineno, "lane_width")?;
                    }
                    "radius" => {
                        let e = parse_expr_at(lineno, "radius", value)?;
                        set_once(&mut r.radius, e, lineno, "radius")?;
                    }
                    other => {
                        return err(
                            lineno,
                            format!(
                                "unknown field `{other}` in [road] (known: kind, length, \
                                 lanes, lane_width, radius)"
                            ),
                        )
                    }
                }
            }
            Section::Param(i) => {
                let p = &mut params[i];
                match key {
                    "jitter" => {
                        let kind = match value {
                            "none" => JitterKind::None,
                            "speed" => JitterKind::Speed,
                            "position" => JitterKind::Position,
                            "duration" => JitterKind::Duration,
                            other => {
                                return err(
                                    lineno,
                                    format!(
                                        "unknown jitter kind {other:?} (none, speed, \
                                         position, duration)"
                                    ),
                                )
                            }
                        };
                        set_once(&mut p.jitter, kind, lineno, "jitter")?;
                    }
                    "value" => {
                        let e = parse_expr_at(lineno, "value", value)?;
                        // A param's value may only reference params declared
                        // before it — file order is jitter-draw order, so
                        // forward references would be unresolvable.
                        for r in e.refs() {
                            if !params[..i].iter().any(|q| q.name == r) {
                                return err(
                                    lineno,
                                    format!(
                                        "param `{}` references `{r}`, which is not \
                                         declared before it",
                                        params[i].name
                                    ),
                                );
                            }
                        }
                        set_once(&mut params[i].value, e, lineno, "value")?;
                    }
                    "spread" => {
                        let spread: f64 = value.parse().map_err(|_| FormatError {
                            line: lineno,
                            message: format!("spread must be a number, got {value:?}"),
                        })?;
                        if !(spread.is_finite() && spread >= 0.0) {
                            return err(
                                lineno,
                                format!("spread must be finite and non-negative, got {value}"),
                            );
                        }
                        set_once(&mut p.spread, spread, lineno, "spread")?;
                    }
                    other => {
                        return err(
                            lineno,
                            format!(
                                "unknown field `{other}` in [param] (known: jitter, \
                                 value, spread)"
                            ),
                        )
                    }
                }
            }
            Section::Ego => {
                let e = ego.as_mut().expect("in ego section");
                match key {
                    "lane" => {
                        let lane: u32 = value.parse().map_err(|_| FormatError {
                            line: lineno,
                            message: format!("lane must be an integer, got {value:?}"),
                        })?;
                        set_once(&mut e.lane, lane, lineno, "lane")?;
                    }
                    "s" => {
                        let expr = parse_expr_at(lineno, "s", value)?;
                        set_once(&mut e.s, expr, lineno, "s")?;
                    }
                    "speed" => {
                        let expr = parse_expr_at(lineno, "speed", value)?;
                        set_once(&mut e.speed, expr, lineno, "speed")?;
                    }
                    other => {
                        return err(
                            lineno,
                            format!("unknown field `{other}` in [ego] (known: lane, s, speed)"),
                        )
                    }
                }
            }
            Section::Actor(i) => {
                let a = &mut actors[i];
                match key {
                    "id" => {
                        let id: u32 = value.parse().map_err(|_| FormatError {
                            line: lineno,
                            message: format!("id must be an integer, got {value:?}"),
                        })?;
                        if id == 0 {
                            return err(lineno, "actor id 0 is reserved for the ego");
                        }
                        set_once(&mut a.id, id, lineno, "id")?;
                    }
                    "kind" => {
                        if a.kind_set {
                            return err(lineno, "duplicate `kind`");
                        }
                        a.kind = match value {
                            "vehicle" => ActorKindDef::Vehicle,
                            "obstacle" => {
                                if a.speed.is_some() {
                                    return err(
                                        lineno,
                                        format!(
                                            "actor `{}` is an obstacle and cannot have a speed",
                                            a.label
                                        ),
                                    );
                                }
                                ActorKindDef::Obstacle
                            }
                            other => {
                                return err(
                                    lineno,
                                    format!("unknown actor kind {other:?} (vehicle or obstacle)"),
                                )
                            }
                        };
                        a.kind_set = true;
                    }
                    "lane" => {
                        let lane: u32 = value.parse().map_err(|_| FormatError {
                            line: lineno,
                            message: format!("lane must be an integer, got {value:?}"),
                        })?;
                        set_once(&mut a.lane, lane, lineno, "lane")?;
                    }
                    "s" => {
                        let expr = parse_expr_at(lineno, "s", value)?;
                        set_once(&mut a.s, expr, lineno, "s")?;
                    }
                    "speed" => {
                        if a.kind_set && a.kind == ActorKindDef::Obstacle {
                            return err(
                                lineno,
                                format!(
                                    "actor `{}` is an obstacle and cannot have a speed",
                                    a.label
                                ),
                            );
                        }
                        let expr = parse_expr_at(lineno, "speed", value)?;
                        set_once(&mut a.speed, expr, lineno, "speed")?;
                    }
                    other => {
                        return err(
                            lineno,
                            format!(
                                "unknown field `{other}` in [actor] (known: id, kind, \
                                 lane, s, speed)"
                            ),
                        )
                    }
                }
            }
            Section::Maneuver(ai, mi) => {
                let m = &mut actors[ai].maneuvers[mi];
                match key {
                    "trigger" => {
                        let t = parse_trigger(lineno, value)?;
                        set_once(&mut m.trigger, t, lineno, "trigger")?;
                    }
                    "action" => {
                        let a = parse_action(lineno, value)?;
                        set_once(&mut m.action, a, lineno, "action")?;
                    }
                    other => {
                        return err(
                            lineno,
                            format!(
                                "unknown field `{other}` in [maneuver] (known: trigger, action)"
                            ),
                        )
                    }
                }
            }
        }
    }

    if !header_seen {
        return err(
            0,
            format!("missing `{HEADER_PREFIX} {FORMAT_VERSION}` header"),
        );
    }

    // Completeness checks, with the section's opening line for context.
    let name = name.ok_or(FormatError {
        line: 0,
        message: "missing top-level `name`".to_string(),
    })?;
    let duration = duration.ok_or(FormatError {
        line: 0,
        message: "missing top-level `duration`".to_string(),
    })?;
    let road = road.ok_or(FormatError {
        line: 0,
        message: "missing `[road]` section".to_string(),
    })?;
    let ego = ego.ok_or(FormatError {
        line: 0,
        message: "missing `[ego]` section".to_string(),
    })?;

    let road_kind = road.kind.ok_or(FormatError {
        line: 0,
        message: "missing `kind` in [road]".to_string(),
    })?;
    let road = RoadDef {
        kind: road_kind,
        length: road.length.ok_or(FormatError {
            line: 0,
            message: "missing `length` in [road]".to_string(),
        })?,
        lanes: road.lanes.unwrap_or(3),
        lane_width: road
            .lane_width
            .unwrap_or(Expr::Num(Road::DEFAULT_LANE_WIDTH.value())),
        radius: road.radius,
    };
    match road_kind {
        RoadKind::Curved if road.radius.is_none() => {
            return err(0, "curved roads require `radius` in [road]");
        }
        RoadKind::Straight if road.radius.is_some() => {
            return err(0, "straight roads must not declare `radius`");
        }
        _ => {}
    }

    let params: Vec<ParamDef> = params
        .into_iter()
        .map(|p| {
            let jitter = p.jitter.unwrap_or(JitterKind::None);
            let value = p.value.ok_or(FormatError {
                line: p.line,
                message: format!("param `{}` is missing `value`", p.name),
            })?;
            match jitter {
                JitterKind::Position if p.spread.is_none() => {
                    return err(
                        p.line,
                        format!("position param `{}` requires `spread`", p.name),
                    );
                }
                JitterKind::Position => {}
                _ if p.spread.is_some() => {
                    return err(
                        p.line,
                        format!(
                            "param `{}`: `spread` only applies to position jitter",
                            p.name
                        ),
                    );
                }
                _ => {}
            }
            Ok(ParamDef {
                name: p.name,
                jitter,
                value,
                spread: p.spread,
            })
        })
        .collect::<Result<_, FormatError>>()?;

    let check_refs = |line: usize, what: &str, e: &Expr| -> Result<(), FormatError> {
        for r in e.refs() {
            if !params.iter().any(|p| p.name == r) {
                return err(
                    line,
                    format!("{what} references undeclared parameter `{r}`"),
                );
            }
        }
        Ok(())
    };
    check_refs(0, "duration", &duration)?;
    check_refs(0, "road.length", &road.length)?;
    check_refs(0, "road.lane_width", &road.lane_width)?;
    if let Some(radius) = &road.radius {
        check_refs(0, "road.radius", radius)?;
    }

    let ego = EgoDef {
        lane: ego.lane.ok_or(FormatError {
            line: 0,
            message: "missing `lane` in [ego]".to_string(),
        })?,
        s: ego.s.ok_or(FormatError {
            line: 0,
            message: "missing `s` in [ego]".to_string(),
        })?,
        speed: ego.speed.ok_or(FormatError {
            line: 0,
            message: "missing `speed` in [ego]".to_string(),
        })?,
    };
    check_refs(0, "ego.s", &ego.s)?;
    check_refs(0, "ego.speed", &ego.speed)?;

    let mut seen_ids = Vec::new();
    let actors: Vec<ActorDef> = actors
        .into_iter()
        .map(|a| {
            let id = a.id.ok_or(FormatError {
                line: a.line,
                message: format!("actor `{}` is missing `id`", a.label),
            })?;
            if seen_ids.contains(&id) {
                return err(a.line, format!("duplicate actor id {id}"));
            }
            seen_ids.push(id);
            let lane = a.lane.ok_or(FormatError {
                line: a.line,
                message: format!("actor `{}` is missing `lane`", a.label),
            })?;
            let s = a.s.ok_or(FormatError {
                line: a.line,
                message: format!("actor `{}` is missing `s`", a.label),
            })?;
            check_refs(a.line, &format!("actor `{}` s", a.label), &s)?;
            if a.kind == ActorKindDef::Vehicle && a.speed.is_none() {
                return err(
                    a.line,
                    format!("vehicle actor `{}` is missing `speed`", a.label),
                );
            }
            if a.kind == ActorKindDef::Obstacle && !a.maneuvers.is_empty() {
                return err(
                    a.line,
                    format!(
                        "actor `{}` is an obstacle and cannot have maneuvers",
                        a.label
                    ),
                );
            }
            if let Some(speed) = &a.speed {
                check_refs(a.line, &format!("actor `{}` speed", a.label), speed)?;
            }
            let maneuvers = a
                .maneuvers
                .into_iter()
                .map(|m| {
                    let trigger = m.trigger.ok_or(FormatError {
                        line: m.line,
                        message: format!("maneuver of actor `{}` is missing `trigger`", a.label),
                    })?;
                    let action = m.action.ok_or(FormatError {
                        line: m.line,
                        message: format!("maneuver of actor `{}` is missing `action`", a.label),
                    })?;
                    for e in trigger_exprs(&trigger)
                        .into_iter()
                        .chain(action_exprs(&action))
                    {
                        check_refs(m.line, &format!("maneuver of actor `{}`", a.label), e)?;
                    }
                    Ok(ManeuverDef { trigger, action })
                })
                .collect::<Result<Vec<_>, FormatError>>()?;
            Ok(ActorDef {
                label: a.label,
                id,
                kind: a.kind,
                lane,
                s,
                speed: a.speed,
                maneuvers,
            })
        })
        .collect::<Result<_, FormatError>>()?;

    Ok(ScenarioDef {
        name,
        tags: tags.unwrap_or_default(),
        duration,
        road,
        params,
        ego,
        actors,
    })
}

fn trigger_exprs(t: &TriggerDef) -> Vec<&Expr> {
    match t {
        TriggerDef::Immediately => Vec::new(),
        TriggerDef::AtTime(e)
        | TriggerDef::GapAhead(e)
        | TriggerDef::GapBehind(e)
        | TriggerDef::EgoPasses(e) => vec![e],
    }
}

fn action_exprs(a: &ActionDef) -> Vec<&Expr> {
    match a {
        ActionDef::ChangeLane { duration, .. } => vec![duration],
        ActionDef::SetSpeed {
            target,
            accel_limit,
        } => vec![target, accel_limit],
        ActionDef::HardBrake { decel } => vec![decel],
        ActionDef::MatchEgoSpeed { accel_limit } => vec![accel_limit],
    }
}

// ---------------------------------------------------------------------------
// Canonical writer
// ---------------------------------------------------------------------------

fn write_def(def: &ScenarioDef) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER_PREFIX} {FORMAT_VERSION}");
    out.push('\n');
    let _ = writeln!(out, "name = {}", def.name);
    if !def.tags.is_empty() {
        let _ = writeln!(out, "tags = {}", def.tags.join(", "));
    }
    let _ = writeln!(out, "duration = {}", def.duration);
    out.push('\n');
    let _ = writeln!(out, "[road]");
    let _ = writeln!(
        out,
        "kind = {}",
        match def.road.kind {
            RoadKind::Straight => "straight",
            RoadKind::Curved => "curved",
        }
    );
    let _ = writeln!(out, "length = {}", def.road.length);
    let _ = writeln!(out, "lanes = {}", def.road.lanes);
    let _ = writeln!(out, "lane_width = {}", def.road.lane_width);
    if let Some(radius) = &def.road.radius {
        let _ = writeln!(out, "radius = {radius}");
    }
    for p in &def.params {
        out.push('\n');
        let _ = writeln!(out, "[param {}]", p.name);
        let _ = writeln!(
            out,
            "jitter = {}",
            match p.jitter {
                JitterKind::None => "none",
                JitterKind::Speed => "speed",
                JitterKind::Position => "position",
                JitterKind::Duration => "duration",
            }
        );
        if let Some(spread) = p.spread {
            let _ = writeln!(out, "spread = {spread:?}");
        }
        let _ = writeln!(out, "value = {}", p.value);
    }
    out.push('\n');
    let _ = writeln!(out, "[ego]");
    let _ = writeln!(out, "lane = {}", def.ego.lane);
    let _ = writeln!(out, "s = {}", def.ego.s);
    let _ = writeln!(out, "speed = {}", def.ego.speed);
    for a in &def.actors {
        out.push('\n');
        let _ = writeln!(out, "[actor {}]", a.label);
        let _ = writeln!(out, "id = {}", a.id);
        let _ = writeln!(
            out,
            "kind = {}",
            match a.kind {
                ActorKindDef::Vehicle => "vehicle",
                ActorKindDef::Obstacle => "obstacle",
            }
        );
        let _ = writeln!(out, "lane = {}", a.lane);
        let _ = writeln!(out, "s = {}", a.s);
        if let Some(speed) = &a.speed {
            let _ = writeln!(out, "speed = {speed}");
        }
        for m in &a.maneuvers {
            out.push('\n');
            let _ = writeln!(out, "[maneuver]");
            let _ = writeln!(
                out,
                "trigger = {}",
                match &m.trigger {
                    TriggerDef::Immediately => "immediately".to_string(),
                    TriggerDef::AtTime(e) => format!("at_time({e})"),
                    TriggerDef::GapAhead(e) => format!("gap_ahead({e})"),
                    TriggerDef::GapBehind(e) => format!("gap_behind({e})"),
                    TriggerDef::EgoPasses(e) => format!("ego_passes({e})"),
                }
            );
            let _ = writeln!(
                out,
                "action = {}",
                match &m.action {
                    ActionDef::ChangeLane { target, duration } =>
                        format!("change_lane({target}, {duration})"),
                    ActionDef::SetSpeed {
                        target,
                        accel_limit,
                    } => format!("set_speed({target}, {accel_limit})"),
                    ActionDef::HardBrake { decel } => format!("hard_brake({decel})"),
                    ActionDef::MatchEgoSpeed { accel_limit } =>
                        format!("match_ego_speed({accel_limit})"),
                }
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "\
zhuyi-scenario v1
name = Minimal
duration = 10.0

[road]
kind = straight
length = 500.0

[param v]
jitter = speed
value = mph(30.0)

[ego]
lane = 1
s = 50.0
speed = v

[actor lead]
id = 1
lane = 1
s = 90.0
speed = v

[maneuver]
trigger = at_time(2.0)
action = hard_brake(6.0)
";

    #[test]
    fn parses_and_round_trips() {
        let def = ScenarioDef::parse(MINIMAL).expect("parse");
        assert_eq!(def.name, "Minimal");
        assert_eq!(def.road.lanes, 3);
        assert_eq!(def.actors.len(), 1);
        let text = def.to_text();
        let reparsed = ScenarioDef::parse(&text).expect("reparse");
        assert_eq!(def, reparsed);
        assert_eq!(text, reparsed.to_text());
    }

    #[test]
    fn instantiates_with_jitter_parity() {
        let def = ScenarioDef::parse(MINIMAL).expect("parse");
        let nominal = def.instantiate(0).expect("seed 0");
        assert_eq!(nominal.ego_speed, MetersPerSecond::from(Mph(30.0)));
        // Seed 7 draws through the same Jitter stream as a hand-coded
        // builder making one speed draw.
        let jittered = def.instantiate(7).expect("seed 7");
        let mut j = Jitter::new(7);
        assert_eq!(
            jittered.ego_speed,
            j.speed(MetersPerSecond::from(Mph(30.0)))
        );
        assert_ne!(nominal.ego_speed, jittered.ego_speed);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let text = MINIMAL.replace("zhuyi-scenario v1", "zhuyi-scenario v2");
        let e = ScenarioDef::parse(&text).unwrap_err();
        assert!(
            e.to_string()
                .contains("unsupported scenario format version"),
            "{e}"
        );
    }

    #[test]
    fn unknown_field_is_rejected_with_line_number() {
        let text = MINIMAL.replace("length = 500.0", "length = 500.0\nbanked = yes");
        let e = ScenarioDef::parse(&text).unwrap_err();
        assert!(e.to_string().contains("unknown field `banked`"), "{e}");
        assert!(e.line > 0, "{e}");
    }

    #[test]
    fn negative_geometry_is_rejected_at_instantiation() {
        let text = MINIMAL.replace("length = 500.0", "length = -500.0");
        let def = ScenarioDef::parse(&text).expect("structurally fine");
        let e = def.instantiate(0).unwrap_err();
        assert!(
            e.to_string().contains("road.length must be positive"),
            "{e}"
        );
    }

    #[test]
    fn nan_geometry_is_rejected_at_instantiation() {
        let text = MINIMAL.replace("length = 500.0", "length = 0.0 / 0.0");
        let def = ScenarioDef::parse(&text).expect("structurally fine");
        let e = def.instantiate(0).unwrap_err();
        assert!(e.to_string().contains("non-finite"), "{e}");
    }

    #[test]
    fn unsatisfiable_at_time_trigger_is_rejected() {
        let text = MINIMAL.replace("at_time(2.0)", "at_time(99.0)");
        let def = ScenarioDef::parse(&text).expect("structurally fine");
        let e = def.instantiate(0).unwrap_err();
        assert!(e.to_string().contains("unsatisfiable"), "{e}");
    }

    #[test]
    fn obstacles_cannot_move_or_maneuver() {
        let speedy = MINIMAL.replace("id = 1", "id = 1\nkind = obstacle");
        let e = ScenarioDef::parse(&speedy).unwrap_err();
        assert!(e.to_string().contains("obstacle"), "{e}");
    }

    #[test]
    fn undeclared_parameter_is_rejected() {
        let text = MINIMAL.replace("speed = v", "speed = w");
        let e = ScenarioDef::parse(&text).unwrap_err();
        assert!(
            e.to_string().contains("undeclared parameter `w`")
                || e.to_string().contains("references `w`"),
            "{e}"
        );
    }
}
