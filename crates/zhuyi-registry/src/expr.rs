//! Arithmetic expressions for scenario definition files.
//!
//! Definition files describe scalar quantities (positions, speeds, trigger
//! distances) as small arithmetic expressions over earlier-declared
//! parameters, e.g. `50.0 + (30.0 + 38.0 + 40.0)` or `v * (0.3 * 2.5)`.
//!
//! Bit-exactness is a hard requirement: the committed catalog ports must
//! instantiate to scenarios *equal* to the hand-coded builders, so the
//! evaluator must perform the same f64 operations in the same order as the
//! Rust expressions it replaces. Two properties guarantee this:
//!
//! - the grammar is left-associative with standard precedence, exactly like
//!   Rust's f64 arithmetic, and the AST preserves that grouping;
//! - evaluation is a plain post-order walk — each node is one f64 operation,
//!   with no reassociation, fusing, or constant folding (the only fold is
//!   unary minus on a literal, which is value-preserving).
//!
//! The canonical printer is the exact inverse of the parser:
//! `parse(expr.to_string()) == expr` for every representable expression,
//! which is what lets definitions round-trip through the distd wire format
//! and generated files byte-identically.

use std::collections::BTreeMap;
use std::fmt;

use av_core::prelude::{MetersPerSecond, Mph};

/// An arithmetic expression over named parameters.
///
/// `mph(x)` is the single built-in function: it converts miles per hour to
/// meters per second through the same `av-core` conversion the hand-coded
/// catalog uses, so `mph(70.0)` is bit-identical to `Mph(70.0).into()`.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Num(f64),
    /// A reference to an earlier-declared parameter.
    Ref(String),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Left + right.
    Add(Box<Expr>, Box<Expr>),
    /// Left - right.
    Sub(Box<Expr>, Box<Expr>),
    /// Left * right.
    Mul(Box<Expr>, Box<Expr>),
    /// Left / right.
    Div(Box<Expr>, Box<Expr>),
    /// `mph(inner)`: miles-per-hour literal converted to m/s.
    Mph(Box<Expr>),
}

impl Expr {
    /// Evaluates the expression against a parameter environment.
    ///
    /// # Errors
    ///
    /// Returns the name of the first parameter reference that is not in
    /// `env`. Non-finite results are *not* an error here — the instantiation
    /// layer validates finiteness with field-level context.
    pub fn eval(&self, env: &BTreeMap<String, f64>) -> Result<f64, String> {
        match self {
            Expr::Num(n) => Ok(*n),
            Expr::Ref(name) => env
                .get(name)
                .copied()
                .ok_or_else(|| format!("unknown parameter `{name}`")),
            Expr::Neg(e) => Ok(-e.eval(env)?),
            Expr::Add(a, b) => Ok(a.eval(env)? + b.eval(env)?),
            Expr::Sub(a, b) => Ok(a.eval(env)? - b.eval(env)?),
            Expr::Mul(a, b) => Ok(a.eval(env)? * b.eval(env)?),
            Expr::Div(a, b) => Ok(a.eval(env)? / b.eval(env)?),
            Expr::Mph(e) => Ok(MetersPerSecond::from(Mph(e.eval(env)?)).value()),
        }
    }

    /// Every parameter name referenced anywhere in the expression.
    pub fn refs(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Num(_) => {}
            Expr::Ref(name) => out.push(name),
            Expr::Neg(e) | Expr::Mph(e) => e.collect_refs(out),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
        }
    }

    /// Binding strength for the canonical printer: additive 1,
    /// multiplicative 2, unary minus 3, atoms 4.
    fn precedence(&self) -> u8 {
        match self {
            Expr::Add(..) | Expr::Sub(..) => 1,
            Expr::Mul(..) | Expr::Div(..) => 2,
            Expr::Neg(_) => 3,
            Expr::Num(_) | Expr::Ref(_) | Expr::Mph(_) => 4,
        }
    }
}

impl fmt::Display for Expr {
    /// Canonical form: minimal parentheses such that re-parsing yields a
    /// structurally identical AST. Floats print with `{:?}` (shortest
    /// round-tripping decimal), so evaluation of a re-parsed expression is
    /// bit-identical.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn child(f: &mut fmt::Formatter<'_>, e: &Expr, needs_parens: bool) -> fmt::Result {
            if needs_parens {
                write!(f, "({e})")
            } else {
                write!(f, "{e}")
            }
        }
        let p = self.precedence();
        match self {
            Expr::Num(n) => write!(f, "{n:?}"),
            Expr::Ref(name) => f.write_str(name),
            Expr::Neg(e) => {
                f.write_str("-")?;
                child(f, e, e.precedence() < p)
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                // Left-associative grammar: the left child may share this
                // node's precedence, the right child must bind tighter.
                child(f, a, a.precedence() < p)?;
                f.write_str(match self {
                    Expr::Add(..) => " + ",
                    Expr::Sub(..) => " - ",
                    Expr::Mul(..) => " * ",
                    _ => " / ",
                })?;
                child(f, b, b.precedence() <= p)
            }
            Expr::Mph(e) => write!(f, "mph({e})"),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Num(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Open,
    Close,
}

fn tokenize(src: &str) -> Result<Vec<Token>, String> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '(' => {
                tokens.push(Token::Open);
                i += 1;
            }
            ')' => {
                tokens.push(Token::Close);
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let value: f64 = text
                    .parse()
                    .map_err(|_| format!("bad number literal {text:?}"))?;
                tokens.push(Token::Num(value));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token::Ident(src[start..i].to_string()));
            }
            other => return Err(format!("unexpected character {other:?} in expression")),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_close(&mut self) -> Result<(), String> {
        match self.next() {
            Some(Token::Close) => Ok(()),
            _ => Err("expected `)`".to_string()),
        }
    }

    // expr := term (('+'|'-') term)*
    fn expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.pos += 1;
                    lhs = Expr::Add(Box::new(lhs), Box::new(self.term()?));
                }
                Some(Token::Minus) => {
                    self.pos += 1;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(self.term()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    // term := factor (('*'|'/') factor)*
    fn term(&mut self) -> Result<Expr, String> {
        let mut lhs = self.factor()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.pos += 1;
                    lhs = Expr::Mul(Box::new(lhs), Box::new(self.factor()?));
                }
                Some(Token::Slash) => {
                    self.pos += 1;
                    lhs = Expr::Div(Box::new(lhs), Box::new(self.factor()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    // factor := NUM | IDENT | IDENT '(' expr ')' | '-' factor | '(' expr ')'
    fn factor(&mut self) -> Result<Expr, String> {
        match self.next() {
            Some(Token::Num(n)) => Ok(Expr::Num(n)),
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::Open) {
                    self.pos += 1;
                    if name != "mph" {
                        return Err(format!(
                            "unknown function `{name}` (only mph(...) is supported)"
                        ));
                    }
                    let inner = self.expr()?;
                    self.expect_close()?;
                    Ok(Expr::Mph(Box::new(inner)))
                } else {
                    Ok(Expr::Ref(name))
                }
            }
            Some(Token::Minus) => match self.factor()? {
                // Fold `-LITERAL` into the literal so canonical printing of
                // negative numbers round-trips structurally.
                Expr::Num(n) => Ok(Expr::Num(-n)),
                e => Ok(Expr::Neg(Box::new(e))),
            },
            Some(Token::Open) => {
                let inner = self.expr()?;
                self.expect_close()?;
                Ok(inner)
            }
            Some(t) => Err(format!("unexpected token {t:?}")),
            None => Err("unexpected end of expression".to_string()),
        }
    }
}

/// Parses an expression from its textual form.
///
/// # Errors
///
/// Returns a human-readable message for lexical errors, unknown functions,
/// and malformed syntax. An empty string is an error.
pub fn parse_expr(src: &str) -> Result<Expr, String> {
    let src = src.trim();
    if src.is_empty() {
        return Err("empty expression".to_string());
    }
    let mut parser = Parser {
        tokens: tokenize(src)?,
        pos: 0,
    };
    let expr = parser.expr()?;
    if parser.pos != parser.tokens.len() {
        return Err(format!(
            "trailing input after expression: {:?}",
            parser.tokens[parser.pos]
        ));
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn precedence_and_associativity_match_rust() {
        let e = parse_expr("1.0 + 2.0 * 3.0 - 4.0").expect("parse");
        #[allow(clippy::precedence)]
        let expected = 1.0 + 2.0 * 3.0 - 4.0;
        assert_eq!(e.eval(&env(&[])).expect("eval"), expected);
        // Left-associative subtraction: (10 - 4) - 3, not 10 - (4 - 3).
        let e = parse_expr("10.0 - 4.0 - 3.0").expect("parse");
        assert_eq!(e.eval(&env(&[])).expect("eval"), 3.0);
    }

    #[test]
    fn mph_matches_av_core_conversion() {
        let e = parse_expr("mph(70.0)").expect("parse");
        assert_eq!(
            e.eval(&env(&[])).expect("eval"),
            MetersPerSecond::from(Mph(70.0)).value()
        );
    }

    #[test]
    fn refs_resolve_against_environment() {
        let e = parse_expr("v * (0.3 * 2.5) + 3.25").expect("parse");
        let v = 9.12345;
        assert_eq!(
            e.eval(&env(&[("v", v)])).expect("eval"),
            v * (0.3 * 2.5) + 3.25
        );
        assert!(e.eval(&env(&[])).unwrap_err().contains("unknown parameter"));
    }

    #[test]
    fn canonical_print_round_trips() {
        for src in [
            "50.0 + (30.0 + 38.0 + 40.0) - (38.0 + v * (0.3 * 2.5) + 3.25)",
            "mph(20.0)",
            "v * 1.05",
            "-(a + b) / (c - -2.5)",
            "1e-7 + 2.5e3",
            "-3.0",
        ] {
            let parsed = parse_expr(src).expect("parse");
            let printed = parsed.to_string();
            let reparsed = parse_expr(&printed).expect("reparse");
            assert_eq!(parsed, reparsed, "{src} -> {printed}");
            // And printing is a fixed point.
            assert_eq!(printed, reparsed.to_string());
        }
    }

    #[test]
    fn malformed_expressions_are_rejected() {
        for src in ["", "1.0 +", "foo(2.0)", "(1.0", "1.0 2.0", "a $ b"] {
            assert!(parse_expr(src).is_err(), "{src:?} should fail");
        }
    }
}
