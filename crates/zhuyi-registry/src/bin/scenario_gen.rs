//! `scenario_gen` — expand a generator config into `.scn` files.
//!
//! ```text
//! scenario_gen --config corpus.gen --out generated/
//! scenario_gen --config corpus.gen --list
//! ```
//!
//! Expansion is deterministic: the same config (and, for fuzz configs, the
//! seed inside it) always produces byte-identical files, so a generated
//! corpus is fully replayable — commit the config, not the output.

use std::path::PathBuf;
use std::process::ExitCode;

use zhuyi_registry::GeneratorConfig;

const USAGE: &str = "\
Usage: scenario_gen --config <file.gen> (--out <dir> | --list)

Options:
  --config <path>   Generator config (required)
  --out <dir>       Write one .scn file per generated scenario
  --list            Print generated scenario names without writing
";

#[derive(Debug, Default)]
struct Args {
    config: Option<PathBuf>,
    out: Option<PathBuf>,
    list: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut iter = argv.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--config" => args.config = Some(PathBuf::from(value("--config")?)),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--list" => args.list = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.config.is_none() {
        return Err("--config is required".to_string());
    }
    if args.out.is_none() && !args.list {
        return Err("one of --out or --list is required".to_string());
    }
    Ok(args)
}

fn file_name(name: &str) -> String {
    let safe: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}.scn")
}

fn run(args: &Args) -> Result<(), String> {
    let config = args.config.as_ref().expect("validated");
    let defs = GeneratorConfig::expand_file(config).map_err(|e| e.to_string())?;
    if args.list {
        for def in &defs {
            println!("{}", def.name);
        }
        return Ok(());
    }
    let out = args.out.as_ref().expect("validated");
    std::fs::create_dir_all(out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    for def in &defs {
        let path = out.join(file_name(&def.name));
        std::fs::write(&path, def.to_text())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    println!(
        "wrote {} scenario definition(s) to {}",
        defs.len(),
        out.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}
