//! Property-based tests of the Zhuyi model invariants: bounds,
//! monotonicity and conservatism of the tolerable-latency search, Eq.-4
//! aggregation, and naive/accelerated search agreement.

use av_core::prelude::*;
use proptest::prelude::*;
use zhuyi::aggregate::{aggregate_latencies, Aggregation};
use zhuyi::estimator::{EgoKinematics, SearchOutcome, TolerableLatencyEstimator};
use zhuyi::future::{ConstantAccelActor, FixedGapActor, StationaryActor};
use zhuyi::{SearchStrategy, ZhuyiConfig};

fn estimator() -> TolerableLatencyEstimator {
    TolerableLatencyEstimator::new(ZhuyiConfig::paper()).expect("paper config is valid")
}

const L0: Seconds = Seconds(1.0 / 30.0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The returned latency always lies on the configured grid within
    /// [min_latency, max_latency], whatever the situation.
    #[test]
    fn latency_is_always_within_bounds(
        v in 0.0..45.0f64, gap in 0.0..300.0f64, van in 0.0..45.0f64, a0 in -8.0..3.0f64,
    ) {
        let e = estimator();
        let est = e.tolerable_latency(
            EgoKinematics::new(MetersPerSecond(v), MetersPerSecondSquared(a0)),
            &FixedGapActor::new(Meters(gap), MetersPerSecond(van)),
            L0,
        );
        let cfg = e.config();
        prop_assert!(est.latency >= cfg.min_latency - Seconds(1e-9));
        prop_assert!(est.latency <= cfg.max_latency + Seconds(1e-9));
        if est.outcome == SearchOutcome::Infeasible {
            prop_assert_eq!(est.latency, cfg.min_latency);
        }
    }

    /// More room can never hurt: tolerable latency is non-decreasing in
    /// the available gap.
    #[test]
    fn latency_monotone_in_gap(
        v in 1.0..40.0f64, gap in 5.0..200.0f64, extra in 0.1..100.0f64,
    ) {
        let e = estimator();
        let ego = EgoKinematics::new(MetersPerSecond(v), MetersPerSecondSquared::ZERO);
        let near = e.tolerable_latency(ego, &StationaryActor::new(Meters(gap)), L0);
        let far = e.tolerable_latency(ego, &StationaryActor::new(Meters(gap + extra)), L0);
        prop_assert!(
            far.latency >= near.latency,
            "gap {} -> {}, latency {} -> {}",
            gap, gap + extra, near.latency, far.latency
        );
    }

    /// A faster ego can never tolerate more latency against the same
    /// stationary obstacle.
    #[test]
    fn latency_antitone_in_ego_speed(
        v in 1.0..35.0f64, dv in 0.1..10.0f64, gap in 10.0..250.0f64,
    ) {
        let e = estimator();
        let slow = e.tolerable_latency(
            EgoKinematics::new(MetersPerSecond(v), MetersPerSecondSquared::ZERO),
            &StationaryActor::new(Meters(gap)),
            L0,
        );
        let fast = e.tolerable_latency(
            EgoKinematics::new(MetersPerSecond(v + dv), MetersPerSecondSquared::ZERO),
            &StationaryActor::new(Meters(gap)),
            L0,
        );
        prop_assert!(fast.latency <= slow.latency);
    }

    /// A faster actor (same gap) can never demand a smaller latency...
    /// i.e. tolerable latency is non-decreasing in the actor's velocity.
    #[test]
    fn latency_monotone_in_actor_speed(
        v in 5.0..40.0f64, gap in 10.0..150.0f64, van in 0.0..30.0f64, dva in 0.1..10.0f64,
    ) {
        let e = estimator();
        let ego = EgoKinematics::new(MetersPerSecond(v), MetersPerSecondSquared::ZERO);
        let slow = e.tolerable_latency(ego, &FixedGapActor::new(Meters(gap), MetersPerSecond(van)), L0);
        let fast = e.tolerable_latency(
            ego,
            &FixedGapActor::new(Meters(gap), MetersPerSecond(van + dva)),
            L0,
        );
        prop_assert!(fast.latency >= slow.latency);
    }

    /// The Eq.-3 accelerated search is never more *tolerant* than the
    /// exhaustive naive scan (it may be more conservative: the paper caps
    /// it at M iterations, and chasing a decelerating actor's velocity
    /// target converges geometrically, so M can run out before the scan's
    /// answer is reached).
    #[test]
    fn accelerated_is_never_more_tolerant_than_naive(
        v in 1.0..40.0f64, gap in 5.0..200.0f64, van in 0.0..35.0f64, a in -6.0..0.0f64,
    ) {
        let accel = estimator();
        let mut cfg = ZhuyiConfig::paper();
        cfg.strategy = SearchStrategy::Naive;
        let naive = TolerableLatencyEstimator::new(cfg).expect("valid");
        let ego = EgoKinematics::new(MetersPerSecond(v), MetersPerSecondSquared::ZERO);
        let future = ConstantAccelActor::new(
            Meters(gap),
            MetersPerSecond(van),
            MetersPerSecondSquared(a),
        );
        let ln = naive.tolerable_latency(ego, &future, L0).latency;
        let la = accel.tolerable_latency(ego, &future, L0).latency;
        // Two grid steps of slack cover off-grid t_n values the exact
        // jumps can reach but the 10 ms scan cannot (both searches only
        // return latencies whose constraints they actually verified, so
        // this is approximation jitter, not a soundness issue).
        prop_assert!(
            la <= ln + Seconds(0.067),
            "accelerated {la} more tolerant than naive {ln}"
        );
    }

    /// The bounded-tolerance comparison also holds on constant-velocity
    /// actors (no moving target). Exact agreement is NOT guaranteed even
    /// there: the satisfiable t_n window can be narrower than the scan's
    /// 10 ms grid (the Eq.-3 jump lands inside it exactly), and the scan
    /// can out-wait the M-capped search where slow gap growth eventually
    /// satisfies Eq. 1.
    #[test]
    fn searches_agree_within_tolerance_for_cv_actors(
        v in 1.0..40.0f64, gap in 5.0..200.0f64, van in 0.0..35.0f64,
    ) {
        let accel = estimator();
        let mut cfg = ZhuyiConfig::paper();
        cfg.strategy = SearchStrategy::Naive;
        let naive = TolerableLatencyEstimator::new(cfg).expect("valid");
        let ego = EgoKinematics::new(MetersPerSecond(v), MetersPerSecondSquared::ZERO);
        let future = FixedGapActor::new(Meters(gap), MetersPerSecond(van));
        let n = naive.tolerable_latency(ego, &future, L0);
        let a = accel.tolerable_latency(ego, &future, L0);
        prop_assert!(
            a.latency <= n.latency + Seconds(0.067),
            "accelerated {} far more tolerant than naive {}",
            a.latency,
            n.latency
        );
        // Unconstrained classification (no frontal threat at all) does not
        // depend on the inner search, so it must agree exactly.
        prop_assert_eq!(
            n.outcome == SearchOutcome::Unconstrained,
            a.outcome == SearchOutcome::Unconstrained
        );
    }

    /// The confirmation-delay term only ever tightens the estimate
    /// relative to a zero-alpha run.
    #[test]
    fn alpha_only_tightens(
        v in 1.0..40.0f64, gap in 5.0..200.0f64,
    ) {
        let e = estimator();
        let ego = EgoKinematics::new(MetersPerSecond(v), MetersPerSecondSquared::ZERO);
        let future = StationaryActor::new(Meters(gap));
        // l0 = max latency disables alpha entirely.
        let no_alpha = e.tolerable_latency(ego, &future, Seconds(1.0));
        let with_alpha = e.tolerable_latency(ego, &future, L0);
        prop_assert!(with_alpha.latency <= no_alpha.latency);
    }

    // ---------------- Eq. 4 aggregation ----------------

    /// Any aggregation result lies within the sample hull, and WorstCase
    /// lower-bounds every other mode.
    #[test]
    fn aggregation_within_hull(
        latencies in prop::collection::vec(0.033..1.0f64, 1..20),
        seedp in 0.01..1.0f64,
    ) {
        let samples: Vec<(Seconds, f64)> = latencies
            .iter()
            .enumerate()
            .map(|(i, l)| (Seconds(*l), seedp * ((i % 7 + 1) as f64)))
            .collect();
        let lo = latencies.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = latencies.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let worst = aggregate_latencies(&samples, Aggregation::WorstCase).expect("nonempty");
        prop_assert!((worst.value() - lo).abs() < 1e-12);
        for mode in [Aggregation::Mean, Aggregation::P99, Aggregation::Percentile(50.0)] {
            let out = aggregate_latencies(&samples, mode).expect("nonempty");
            prop_assert!(out.value() >= lo - 1e-12, "{mode:?} below hull");
            prop_assert!(out.value() <= hi + 1e-12, "{mode:?} above hull");
            prop_assert!(
                out.value() + 1e-12 >= worst.value(),
                "{mode:?} less pessimistic than worst case"
            );
        }
    }

    /// Percentile coverage is monotone: covering more probability mass
    /// can only lower (tighten) the latency.
    #[test]
    fn percentile_monotone_in_coverage(
        latencies in prop::collection::vec(0.033..1.0f64, 2..20),
        n1 in 1.0..99.0f64, dn in 0.5..50.0f64,
    ) {
        let samples: Vec<(Seconds, f64)> =
            latencies.iter().map(|l| (Seconds(*l), 1.0)).collect();
        let n2 = (n1 + dn).min(100.0);
        let loose = aggregate_latencies(&samples, Aggregation::Percentile(n1)).expect("nonempty");
        let tight = aggregate_latencies(&samples, Aggregation::Percentile(n2)).expect("nonempty");
        prop_assert!(tight <= loose);
    }
}
