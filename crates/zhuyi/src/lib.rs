//! **Zhuyi** — perception processing rate estimation for safety in
//! autonomous vehicles (Hsiao et al., DAC 2022).
//!
//! Zhuyi answers, at every instant of a driving scenario: *how slowly may
//! each camera's frames be processed while the ego can still avoid every
//! possible collision?* It does so with a kinematics-based search:
//!
//! 1. [`estimator`] — per actor, find the maximum tolerable latency `l`
//!    such that reacting after t_r = l + α and hard-braking satisfies the
//!    paper's distance (Eq. 1) and velocity (Eq. 2) constraints at some
//!    future time, accelerating the inner search with Eq. 3;
//! 2. [`aggregate`] — combine latencies across an actor's predicted
//!    trajectories (Eq. 4: worst case / mean / percentile);
//! 3. [`camera_fpr`] — fold per-actor latencies into per-camera minimum
//!    frame processing rates over each camera's FOV (Eq. 5);
//! 4. [`pipeline`] — replay a recorded scenario trace pre-deployment
//!    (§3.1), producing the per-camera time series of Figs. 4–6;
//! 5. [`sensitivity`] — the Fig. 8 velocity sweep;
//! 6. [`ops`] — the §4.2 compute-demand accounting.
//!
//! Two of the paper's §5 future-work directions are implemented as
//! extensions: [`uncertainty`] (perception-error-aware estimation and the
//! "necessary accuracy" query) and [`phantom`] (floor requirements for
//! yet-to-be-detected objects).
//!
//! # Example
//!
//! ```
//! use av_core::prelude::*;
//! use zhuyi::{EgoKinematics, TolerableLatencyEstimator, ZhuyiConfig};
//! use zhuyi::future::ConstantAccelActor;
//!
//! # fn main() -> Result<(), zhuyi::config::ConfigError> {
//! let estimator = TolerableLatencyEstimator::new(ZhuyiConfig::paper())?;
//! // Vehicle following at 70 mph, 50 m behind a lead that brakes hard.
//! let ego = EgoKinematics::new(Mph(70.0).into(), MetersPerSecondSquared(0.0));
//! let lead = ConstantAccelActor::new(Meters(50.0), Mph(70.0).into(),
//!                                    MetersPerSecondSquared(-6.0));
//! let est = estimator.tolerable_latency(ego, &lead, Seconds(1.0 / 30.0));
//! println!("tolerable latency {} -> minimum {}", est.latency, est.fpr());
//! assert!(est.latency < Seconds(1.0));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregate;
pub mod camera_fpr;
pub mod config;
pub mod estimator;
pub mod explain;
pub mod future;
pub mod ops;
pub mod phantom;
pub mod pipeline;
pub mod sensitivity;
pub mod uncertainty;

pub use aggregate::Aggregation;
pub use camera_fpr::{
    per_camera_fpr, rank_by_importance, truncate_work, ActorEstimate, CameraEstimate,
};
pub use config::{AlphaModel, SearchStrategy, ZhuyiConfig};
pub use estimator::{
    EgoKinematics, InnerSolution, LatencyEstimate, SearchOutcome, SearchStats,
    TolerableLatencyEstimator,
};
pub use explain::Explanation;
pub use pipeline::{analyze_trace, PipelineConfig, StepAnalysis, TraceAnalysis};
pub use sensitivity::{sweep_fixed_gap, CellOutcome, SensitivityGrid};
