//! Actor futures: how the estimator sees one actor's predicted motion
//! relative to the ego's path.
//!
//! The tolerable-latency search (paper §2.1) only needs three things about
//! the actor at each candidate time t_n:
//!
//! 1. `s_n` — the distance available between the ego's position at t₀ and
//!    the actor's position at t_n (Eq. 1),
//! 2. `v_a_n` — the actor's velocity at t_n (Eq. 2),
//! 3. whether a collision is geometrically possible at t_n at all (the
//!    actor overlaps the ego's travel corridor).
//!
//! [`ActorFuture`] abstracts those three queries so the same search runs on
//! ground-truth traces (pre-deployment, §3.1), predicted trajectories
//! (post-deployment, §3.2) and the synthetic fixed-gap sweep of Fig. 8.

use av_core::prelude::*;

/// The actor's situation relative to the ego's path at one future instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeState {
    /// Bumper-to-bumper distance along the ego's path from the ego's t₀
    /// position to the actor: the paper's `s_n`. Negative when the actor is
    /// behind the ego.
    pub gap: Meters,
    /// The actor's velocity component along the ego's path at t_n: the
    /// paper's `v_a_n`.
    pub speed_along: MetersPerSecond,
    /// `true` when the actor laterally overlaps the ego's travel corridor
    /// at t_n, i.e. a collision is geometrically possible.
    pub in_corridor: bool,
}

/// One predicted future of one actor, as seen from the ego at t₀.
///
/// Times are relative: `at(Seconds(0.5))` is the state half a second after
/// the estimation instant.
pub trait ActorFuture {
    /// The actor's relative state at future offset `tn ≥ 0`.
    fn at(&self, tn: Seconds) -> RelativeState;

    /// How far this future extends. Queries beyond it are permitted and
    /// should extrapolate sensibly; the estimator will not look past the
    /// configured horizon anyway.
    fn horizon(&self) -> Seconds;

    /// Probability mass of this future within the actor's prediction set
    /// `T` (Eq. 4). Defaults to certainty.
    fn probability(&self) -> f64 {
        1.0
    }
}

/// A stationary obstacle at a fixed gap: the simplest threat (the revealed
/// obstacle of the Cut-out scenarios).
///
/// ```
/// use av_core::prelude::*;
/// use zhuyi::future::{ActorFuture, StationaryActor};
///
/// let obstacle = StationaryActor::new(Meters(60.0));
/// let s = obstacle.at(Seconds(3.0));
/// assert_eq!(s.gap, Meters(60.0));
/// assert_eq!(s.speed_along, MetersPerSecond(0.0));
/// assert!(s.in_corridor);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationaryActor {
    gap: Meters,
}

impl StationaryActor {
    /// A stopped actor `gap` meters (bumper-to-bumper) ahead of the ego, in
    /// the ego's lane.
    pub fn new(gap: Meters) -> Self {
        Self { gap }
    }
}

impl ActorFuture for StationaryActor {
    fn at(&self, _tn: Seconds) -> RelativeState {
        RelativeState {
            gap: self.gap,
            speed_along: MetersPerSecond::ZERO,
            in_corridor: true,
        }
    }

    fn horizon(&self) -> Seconds {
        Seconds(f64::INFINITY)
    }
}

/// The synthetic actor of the paper's Fig. 8 sensitivity sweep: the
/// distance `s_n` the ego may travel is *fixed* regardless of t_n, and the
/// actor's end velocity `v_a_n` is constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedGapActor {
    gap: Meters,
    speed: MetersPerSecond,
}

impl FixedGapActor {
    /// An in-lane actor with fixed available distance `gap` (the sweep's
    /// `s_n`) and constant end velocity `speed` (`v_a_n`).
    pub fn new(gap: Meters, speed: MetersPerSecond) -> Self {
        Self { gap, speed }
    }
}

impl ActorFuture for FixedGapActor {
    fn at(&self, _tn: Seconds) -> RelativeState {
        RelativeState {
            gap: self.gap,
            speed_along: self.speed,
            in_corridor: true,
        }
    }

    fn horizon(&self) -> Seconds {
        Seconds(f64::INFINITY)
    }
}

/// An in-lane actor moving under constant acceleration — the closed-form
/// future used by the vehicle-following style examples and the online
/// constant-velocity/constant-acceleration predictors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantAccelActor {
    gap0: Meters,
    speed0: MetersPerSecond,
    accel: MetersPerSecondSquared,
    in_corridor: bool,
}

impl ConstantAccelActor {
    /// An actor `gap0` ahead, moving along the ego's path at `speed0` with
    /// constant acceleration `accel` (speed clamps at zero — a braking lead
    /// vehicle stops and stays stopped).
    pub fn new(gap0: Meters, speed0: MetersPerSecond, accel: MetersPerSecondSquared) -> Self {
        Self {
            gap0,
            speed0,
            accel,
            in_corridor: true,
        }
    }

    /// Marks the actor as outside the ego's corridor (e.g. an adjacent-lane
    /// vehicle tracked by a side camera).
    pub fn outside_corridor(mut self) -> Self {
        self.in_corridor = false;
        self
    }
}

impl ActorFuture for ConstantAccelActor {
    fn at(&self, tn: Seconds) -> RelativeState {
        let (d, v) = distance_speed_after(self.speed0, self.accel, tn);
        RelativeState {
            gap: self.gap0 + d,
            speed_along: v,
            in_corridor: self.in_corridor,
        }
    }

    fn horizon(&self) -> Seconds {
        Seconds(f64::INFINITY)
    }
}

/// Geometry linking a recorded/predicted [`Trajectory`] to the ego's path:
/// the general-purpose future used by the offline pipeline and the online
/// system.
///
/// The actor's world positions are projected into the Frenet frame of the
/// ego's reference path. The available distance is measured bumper to
/// bumper; corridor membership compares lateral offsets against the
/// half-width sum plus a configurable margin.
#[derive(Debug, Clone)]
pub struct TrajectoryFuture {
    path: Path,
    trajectory: Trajectory,
    /// Absolute time corresponding to relative offset zero.
    t0: Seconds,
    /// Ego arc-length position at t₀.
    ego_s0: Meters,
    /// Ego lateral offset at t₀.
    ego_d0: Meters,
    /// Half the ego length plus half the actor length.
    length_allowance: Meters,
    /// Half-width sum plus margin: the corridor half-width.
    corridor_half_width: Meters,
}

impl TrajectoryFuture {
    /// Builds the future of `actor_dims`-sized actor following `trajectory`
    /// (absolute times), seen from an ego of `ego_dims` at `ego_state`, with
    /// `path` as the longitudinal reference.
    ///
    /// `corridor_margin` is added to the half-width sum when testing
    /// lateral overlap (paper's conservatism; see
    /// [`crate::ZhuyiConfig::corridor_margin`]).
    pub fn new(
        path: Path,
        ego_state: &VehicleState,
        ego_dims: Dimensions,
        actor_dims: Dimensions,
        trajectory: Trajectory,
        t0: Seconds,
        corridor_margin: Meters,
    ) -> Self {
        let ego_frenet = path.project(ego_state.position);
        Self {
            path,
            trajectory,
            t0,
            ego_s0: ego_frenet.s,
            ego_d0: ego_frenet.d,
            length_allowance: Meters((ego_dims.length.value() + actor_dims.length.value()) / 2.0),
            corridor_half_width: Meters(
                (ego_dims.width.value() + actor_dims.width.value()) / 2.0 + corridor_margin.value(),
            ),
        }
    }

    /// The probability carried by the underlying trajectory.
    pub fn trajectory_probability(&self) -> f64 {
        self.trajectory.probability()
    }
}

impl ActorFuture for TrajectoryFuture {
    fn at(&self, tn: Seconds) -> RelativeState {
        let sample = self.trajectory.sample(self.t0 + tn);
        let frenet = self.path.project(sample.position);
        let tangent = self.path.pose_at(frenet.s).heading;
        let along = sample.speed.value() * (sample.heading - tangent).normalized().cos();
        RelativeState {
            gap: frenet.s - self.ego_s0 - self.length_allowance,
            speed_along: MetersPerSecond(along),
            in_corridor: (frenet.d - self.ego_d0).abs() <= self.corridor_half_width,
        }
    }

    fn horizon(&self) -> Seconds {
        Seconds((self.trajectory.end_time() - self.t0).value().max(0.0))
    }

    fn probability(&self) -> f64 {
        self.trajectory.probability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_core::trajectory::TrajectoryPoint;

    fn straight_path() -> Path {
        Path::straight(Vec2::ZERO, Radians(0.0), Meters(2000.0))
    }

    fn ego_at(x: f64) -> VehicleState {
        VehicleState::new(
            Vec2::new(x, 0.0),
            Radians(0.0),
            MetersPerSecond(20.0),
            MetersPerSecondSquared::ZERO,
        )
    }

    /// Straight-line trajectory at constant speed, offset `y`.
    fn traj(x0: f64, y: f64, v: f64, n: usize) -> Trajectory {
        let points = (0..n)
            .map(|i| {
                let t = i as f64 * 0.1;
                TrajectoryPoint {
                    time: Seconds(t),
                    position: Vec2::new(x0 + v * t, y),
                    heading: Radians(0.0),
                    speed: MetersPerSecond(v),
                    accel: MetersPerSecondSquared::ZERO,
                }
            })
            .collect();
        Trajectory::new(points, 1.0).expect("valid trajectory")
    }

    fn future(t: Trajectory) -> TrajectoryFuture {
        TrajectoryFuture::new(
            straight_path(),
            &ego_at(0.0),
            Dimensions::CAR,
            Dimensions::CAR,
            t,
            Seconds(0.0),
            Meters(0.3),
        )
    }

    #[test]
    fn gap_is_bumper_to_bumper() {
        // Actor center 50m ahead: gap = 50 - (4.5+4.5)/2 = 45.5.
        let f = future(traj(50.0, 0.0, 0.0, 30));
        let s = f.at(Seconds(0.0));
        assert!((s.gap.value() - 45.5).abs() < 1e-9);
        assert!(s.in_corridor);
    }

    #[test]
    fn moving_actor_gap_grows() {
        let f = future(traj(50.0, 0.0, 10.0, 30));
        let s0 = f.at(Seconds(0.0));
        let s2 = f.at(Seconds(2.0));
        assert!((s2.gap.value() - s0.gap.value() - 20.0).abs() < 1e-9);
        assert!((s2.speed_along.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn adjacent_lane_actor_outside_corridor() {
        // 3.7m lateral: way beyond (1.8+1.8)/2 + 0.3 = 2.1.
        let f = future(traj(30.0, 3.7, 10.0, 30));
        assert!(!f.at(Seconds(0.0)).in_corridor);
        // 1.5m lateral: inside the corridor.
        let f2 = future(traj(30.0, 1.5, 10.0, 30));
        assert!(f2.at(Seconds(0.0)).in_corridor);
    }

    #[test]
    fn actor_behind_has_negative_gap() {
        let f = future(traj(-30.0, 0.0, 10.0, 30));
        assert!(f.at(Seconds(0.0)).gap < Meters::ZERO);
    }

    #[test]
    fn oncoming_actor_has_negative_along_speed() {
        let points = (0..30)
            .map(|i| {
                let t = i as f64 * 0.1;
                TrajectoryPoint {
                    time: Seconds(t),
                    position: Vec2::new(100.0 - 15.0 * t, 0.0),
                    heading: Radians(std::f64::consts::PI),
                    speed: MetersPerSecond(15.0),
                    accel: MetersPerSecondSquared::ZERO,
                }
            })
            .collect();
        let f = future(Trajectory::new(points, 1.0).expect("valid"));
        let s = f.at(Seconds(1.0));
        assert!((s.speed_along.value() + 15.0).abs() < 1e-6);
    }

    #[test]
    fn constant_accel_actor_clamps_at_stop() {
        let a = ConstantAccelActor::new(
            Meters(50.0),
            MetersPerSecond(10.0),
            MetersPerSecondSquared(-5.0),
        );
        // Stops after 2s having advanced 10m; stays there.
        let s = a.at(Seconds(5.0));
        assert!((s.gap.value() - 60.0).abs() < 1e-9);
        assert_eq!(s.speed_along, MetersPerSecond::ZERO);
        let out = a.outside_corridor();
        assert!(!out.at(Seconds(0.0)).in_corridor);
    }

    #[test]
    fn fixed_gap_actor_is_time_invariant() {
        let a = FixedGapActor::new(Meters(30.0), MetersPerSecond(5.0));
        for t in [0.0, 1.0, 7.5] {
            let s = a.at(Seconds(t));
            assert_eq!(s.gap, Meters(30.0));
            assert_eq!(s.speed_along, MetersPerSecond(5.0));
        }
        assert_eq!(a.probability(), 1.0);
    }

    #[test]
    fn trajectory_future_horizon_is_relative() {
        let f = TrajectoryFuture::new(
            straight_path(),
            &ego_at(0.0),
            Dimensions::CAR,
            Dimensions::CAR,
            traj(50.0, 0.0, 10.0, 30), // ends at t = 2.9s absolute
            Seconds(1.0),
            Meters(0.3),
        );
        assert!((f.horizon().value() - 1.9).abs() < 1e-9);
    }
}
