//! Yet-to-be-detected objects (paper §5, future work).
//!
//! The paper lists "incorporating yet-to-be-detected objects" as a future
//! direction: an empty field of view is only as reassuring as the sensing
//! horizon behind it. This module computes the **phantom floor** — the
//! processing rate a camera needs so the ego could still stop for a
//! worst-case stationary obstacle sitting *just beyond* what perception
//! has cleared (the camera's range, or the current occlusion boundary).
//!
//! The phantom requirement gives each camera a speed-dependent minimum
//! even when no actor is tracked, replacing the bare 1-FPR idle floor of
//! Eq. 5 with a physically grounded one.

use crate::estimator::{EgoKinematics, LatencyEstimate, TolerableLatencyEstimator};
use crate::future::StationaryActor;
use av_core::prelude::*;

/// Tolerable latency against a hypothetical stationary obstacle revealed
/// at `cleared_distance` ahead of the ego (bumper to bumper).
///
/// This is simply the standard search against a [`StationaryActor`] at
/// that distance; the value of the function is the framing: call it with
/// the camera's sensing range (or the distance to the nearest occluder)
/// to obtain the camera's floor requirement when its FOV looks empty.
///
/// ```
/// use av_core::prelude::*;
/// use zhuyi::estimator::EgoKinematics;
/// use zhuyi::phantom::phantom_requirement;
/// use zhuyi::{TolerableLatencyEstimator, ZhuyiConfig};
///
/// # fn main() -> Result<(), zhuyi::config::ConfigError> {
/// let estimator = TolerableLatencyEstimator::new(ZhuyiConfig::paper())?;
/// // 70 mph with 150 m of cleared road ahead: a modest floor.
/// let ego = EgoKinematics::new(Mph(70.0).into(), MetersPerSecondSquared(0.0));
/// let est = phantom_requirement(&estimator, ego, Meters(150.0), Seconds(1.0 / 30.0));
/// assert!(est.fpr().value() < 10.0);
/// # Ok(())
/// # }
/// ```
pub fn phantom_requirement(
    estimator: &TolerableLatencyEstimator,
    ego: EgoKinematics,
    cleared_distance: Meters,
    current_latency: Seconds,
) -> LatencyEstimate {
    estimator.tolerable_latency(
        ego,
        &StationaryActor::new(cleared_distance),
        current_latency,
    )
}

/// The cleared distance ahead of the ego along its corridor: the nearest
/// occluder/actor boundary if any is closer than the sensing range.
///
/// Feeds [`phantom_requirement`] from a perceived scene: phantom objects
/// can hide behind the nearest tracked vehicle or beyond sensor range,
/// whichever is closer.
pub fn cleared_distance(
    ego: &VehicleState,
    ego_dims: Dimensions,
    tracked: &[Agent],
    sensing_range: Meters,
    corridor_margin: Meters,
) -> Meters {
    let forward = Vec2::from_heading(ego.heading);
    let mut cleared = sensing_range;
    for agent in tracked {
        if agent.id.is_ego() {
            continue;
        }
        let rel = agent.state.position - ego.position;
        let ahead = rel.dot(forward);
        if ahead <= 0.0 {
            continue;
        }
        let lateral = rel.cross(forward).abs();
        let corridor =
            (ego_dims.width.value() + agent.dims.width.value()) / 2.0 + corridor_margin.value();
        if lateral > corridor {
            continue;
        }
        let boundary = Meters(ahead - (ego_dims.length.value() + agent.dims.length.value()) / 2.0);
        cleared = cleared.min(boundary.max(Meters::ZERO));
    }
    cleared
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::SearchOutcome;
    use crate::ZhuyiConfig;

    fn estimator() -> TolerableLatencyEstimator {
        TolerableLatencyEstimator::new(ZhuyiConfig::paper()).expect("valid")
    }

    fn ego_kin(v: f64) -> EgoKinematics {
        EgoKinematics::new(MetersPerSecond(v), MetersPerSecondSquared::ZERO)
    }

    const L0: Seconds = Seconds(1.0 / 30.0);

    #[test]
    fn faster_ego_needs_higher_phantom_floor() {
        let e = estimator();
        let slow = phantom_requirement(&e, ego_kin(10.0), Meters(80.0), L0);
        let fast = phantom_requirement(&e, ego_kin(30.0), Meters(80.0), L0);
        assert!(fast.latency < slow.latency);
    }

    #[test]
    fn outdriving_the_sensor_is_infeasible() {
        // 40 m/s with only 30 m of cleared road: no rate can save a
        // phantom there — the ego is overdriving its sensors.
        let e = estimator();
        let est = phantom_requirement(&e, ego_kin(40.0), Meters(30.0), L0);
        assert_eq!(est.outcome, SearchOutcome::Infeasible);
    }

    fn ego_state(v: f64) -> VehicleState {
        VehicleState::new(
            Vec2::ZERO,
            Radians(0.0),
            MetersPerSecond(v),
            MetersPerSecondSquared::ZERO,
        )
    }

    fn car_at(id: u32, x: f64, y: f64) -> Agent {
        Agent::new(
            ActorId(id),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::at_rest(Vec2::new(x, y), Radians(0.0)),
        )
    }

    #[test]
    fn cleared_distance_stops_at_nearest_corridor_actor() {
        let cleared = cleared_distance(
            &ego_state(20.0),
            Dimensions::CAR,
            &[car_at(1, 60.0, 0.0), car_at(2, 30.0, 0.0)],
            Meters(150.0),
            Meters(0.3),
        );
        // Nearest in-corridor actor at 30 m centers: 30 - 4.5 = 25.5.
        assert!((cleared.value() - 25.5).abs() < 1e-9);
    }

    #[test]
    fn cleared_distance_ignores_adjacent_lanes_and_rear() {
        let cleared = cleared_distance(
            &ego_state(20.0),
            Dimensions::CAR,
            &[car_at(1, 40.0, 3.7), car_at(2, -20.0, 0.0)],
            Meters(150.0),
            Meters(0.3),
        );
        assert_eq!(cleared, Meters(150.0));
    }

    #[test]
    fn overlapping_actor_clamps_to_zero() {
        let cleared = cleared_distance(
            &ego_state(20.0),
            Dimensions::CAR,
            &[car_at(1, 2.0, 0.0)],
            Meters(150.0),
            Meters(0.3),
        );
        assert_eq!(cleared, Meters::ZERO);
    }
}
