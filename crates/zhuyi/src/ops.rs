//! Compute-demand accounting for the Zhuyi model itself (paper §4.2).
//!
//! The paper bounds the model's work as |A|·|T|·M·L·C operations, with
//! |A| actors, |T| predicted trajectories per actor, M inner iterations,
//! L = max(l)/δl outer steps and C ≈ 100 ops per iteration, concluding the
//! model "should execute within 2 ms" on a 10+ GOPS processor. This module
//! reproduces that arithmetic and also converts *measured* search effort
//! (constraint evaluations actually performed) into the same unit.

use crate::config::ZhuyiConfig;
use crate::estimator::SearchStats;
use serde::{Deserialize, Serialize};

/// Ops performed per constraint-check iteration (paper's C ≈ 100).
pub const OPS_PER_ITERATION: u64 = 100;

/// The paper's analytic work bound and its derived execution-time estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpsBound {
    /// Number of actors |A|.
    pub actors: u64,
    /// Predicted trajectories per actor |T|.
    pub trajectories_per_actor: u64,
    /// Inner iteration budget M.
    pub inner_iterations: u64,
    /// Outer latency steps L.
    pub latency_steps: u64,
    /// Ops per iteration C.
    pub ops_per_iteration: u64,
}

impl OpsBound {
    /// Builds the bound from a model configuration plus scene size.
    pub fn for_config(config: &ZhuyiConfig, actors: u64, trajectories_per_actor: u64) -> Self {
        Self {
            actors,
            trajectories_per_actor,
            inner_iterations: config.max_inner_iterations as u64,
            latency_steps: config.latency_steps() as u64,
            ops_per_iteration: OPS_PER_ITERATION,
        }
    }

    /// Total operation bound |A|·|T|·M·L·C.
    pub fn total_ops(&self) -> u64 {
        self.actors
            * self.trajectories_per_actor
            * self.inner_iterations
            * self.latency_steps
            * self.ops_per_iteration
    }

    /// Estimated execution time on a processor sustaining `gops` (billions
    /// of ops per second).
    ///
    /// # Panics
    ///
    /// Panics if `gops` is not strictly positive.
    pub fn execution_time_secs(&self, gops: f64) -> f64 {
        assert!(
            gops > 0.0,
            "processor throughput must be positive, got {gops}"
        );
        self.total_ops() as f64 / (gops * 1e9)
    }
}

/// Converts measured search effort into estimated operations.
///
/// ```
/// use zhuyi::estimator::SearchStats;
/// use zhuyi::ops::{measured_ops, OPS_PER_ITERATION};
///
/// let stats = SearchStats { latency_steps: 10, constraint_evaluations: 250 };
/// assert_eq!(measured_ops(&stats), 250 * OPS_PER_ITERATION);
/// ```
pub fn measured_ops(stats: &SearchStats) -> u64 {
    stats.constraint_evaluations * OPS_PER_ITERATION
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_two_actor_bound_is_60_kops() {
        // §4.2: "For a scenario with 2 actors and a single future
        // prediction, the compute demand is capped at 60 kilo-ops."
        let bound = OpsBound::for_config(&ZhuyiConfig::paper(), 2, 1);
        assert_eq!(bound.total_ops(), 60_000);
    }

    #[test]
    fn executes_within_2ms_on_10_gops() {
        let bound = OpsBound::for_config(&ZhuyiConfig::paper(), 2, 1);
        assert!(bound.execution_time_secs(10.0) < 2e-3);
    }

    #[test]
    fn bound_scales_linearly_in_actors_and_trajectories() {
        let cfg = ZhuyiConfig::paper();
        let one = OpsBound::for_config(&cfg, 1, 1).total_ops();
        assert_eq!(OpsBound::for_config(&cfg, 4, 1).total_ops(), 4 * one);
        assert_eq!(OpsBound::for_config(&cfg, 1, 5).total_ops(), 5 * one);
    }

    #[test]
    fn measured_ops_uses_evaluation_count() {
        let stats = SearchStats {
            latency_steps: 3,
            constraint_evaluations: 42,
        };
        assert_eq!(measured_ops(&stats), 4200);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gops_rejected() {
        let _ = OpsBound::for_config(&ZhuyiConfig::paper(), 1, 1).execution_time_secs(0.0);
    }
}
