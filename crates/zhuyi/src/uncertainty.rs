//! Perception-uncertainty extension (paper §5, future work).
//!
//! The paper closes with: "When extended to account for perception
//! uncertainty, Zhuyi can be used to determine the necessary accuracy for
//! the perception stack. As DNN models naturally present accuracy versus
//! computation demand trade-offs (through quantization and pruning), Zhuyi
//! can inform when to trade-off accuracy for computation reduction."
//!
//! This module implements that extension conservatively: a perceived actor
//! with position error bound σ_pos and velocity error bound σ_vel is
//! replaced by its *worst plausible* twin — closer by σ_pos, slower (for a
//! frontal threat) by σ_vel, and laterally possibly in the corridor
//! whenever its lateral error allows. Running the standard search on the
//! worst twin yields a latency safe under the stated uncertainty, and
//! [`required_accuracy`] inverts the relation: the largest σ_pos a
//! perception stack may exhibit while a given processing rate stays
//! sufficient.

use crate::estimator::{EgoKinematics, LatencyEstimate, TolerableLatencyEstimator};
use crate::future::{ActorFuture, RelativeState};
use av_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Conservative error bounds on a perceived actor's state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PerceptionUncertainty {
    /// Longitudinal position error bound (the actor may be this much
    /// closer than perceived).
    pub position: Meters,
    /// Velocity error bound (a frontal actor may be this much slower
    /// than perceived).
    pub velocity: MetersPerSecond,
    /// Lateral error bound; an out-of-corridor actor whose lateral
    /// clearance is within this bound is treated as in-corridor.
    pub lateral: Meters,
}

impl PerceptionUncertainty {
    /// No uncertainty: the wrapper becomes the identity.
    pub const EXACT: Self = Self {
        position: Meters(0.0),
        velocity: MetersPerSecond(0.0),
        lateral: Meters(0.0),
    };

    /// Validates that all bounds are non-negative and finite.
    ///
    /// # Errors
    ///
    /// Returns the offending bound's name.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !(self.position.value() >= 0.0 && self.position.is_finite()) {
            return Err("position");
        }
        if !(self.velocity.value() >= 0.0 && self.velocity.is_finite()) {
            return Err("velocity");
        }
        if !(self.lateral.value() >= 0.0 && self.lateral.is_finite()) {
            return Err("lateral");
        }
        Ok(())
    }
}

/// An [`ActorFuture`] degraded to its worst plausible twin under the given
/// uncertainty bounds.
///
/// ```
/// use av_core::prelude::*;
/// use zhuyi::future::{ActorFuture, StationaryActor};
/// use zhuyi::uncertainty::{PerceptionUncertainty, UncertainFuture};
///
/// let perceived = StationaryActor::new(Meters(60.0));
/// let bounds = PerceptionUncertainty { position: Meters(5.0), ..Default::default() };
/// let worst = UncertainFuture::new(perceived, bounds);
/// assert_eq!(worst.at(Seconds(0.0)).gap, Meters(55.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UncertainFuture<F> {
    inner: F,
    bounds: PerceptionUncertainty,
}

impl<F: ActorFuture> UncertainFuture<F> {
    /// Wraps `inner` with `bounds`.
    pub fn new(inner: F, bounds: PerceptionUncertainty) -> Self {
        Self { inner, bounds }
    }

    /// The wrapped future.
    pub fn into_inner(self) -> F {
        self.inner
    }
}

impl<F: ActorFuture> ActorFuture for UncertainFuture<F> {
    fn at(&self, tn: Seconds) -> RelativeState {
        let s = self.inner.at(tn);
        RelativeState {
            gap: s.gap - self.bounds.position,
            speed_along: (s.speed_along - self.bounds.velocity).max(MetersPerSecond::ZERO),
            // A lateral error can only *add* corridor membership
            // (conservative); the wrapper cannot know the clearance, so a
            // nonzero lateral bound forces membership.
            in_corridor: s.in_corridor || self.bounds.lateral.value() > 0.0,
        }
    }

    fn horizon(&self) -> Seconds {
        self.inner.horizon()
    }

    fn probability(&self) -> f64 {
        self.inner.probability()
    }
}

/// The largest longitudinal position error bound (meters) under which
/// `target_rate` still satisfies the situation, found by bisection over
/// σ_pos ∈ [0, `max_sigma`].
///
/// Returns `None` when even exact perception needs more than
/// `target_rate` — the rate itself is insufficient regardless of
/// accuracy. This is the "necessary accuracy for the perception stack"
/// query of paper §5: quantize/prune the detector only while its position
/// error stays under the returned bound.
///
/// ```
/// use av_core::prelude::*;
/// use zhuyi::estimator::EgoKinematics;
/// use zhuyi::future::StationaryActor;
/// use zhuyi::uncertainty::required_accuracy;
/// use zhuyi::{TolerableLatencyEstimator, ZhuyiConfig};
///
/// # fn main() -> Result<(), zhuyi::config::ConfigError> {
/// let estimator = TolerableLatencyEstimator::new(ZhuyiConfig::paper())?;
/// let ego = EgoKinematics::new(MetersPerSecond(20.0), MetersPerSecondSquared(0.0));
/// let sigma = required_accuracy(
///     &estimator, ego, &StationaryActor::new(Meters(80.0)),
///     Fpr(10.0), Meters(40.0), Seconds(1.0 / 30.0),
/// );
/// // With 80 m of room and 10 FPR available, several meters of position
/// // error are tolerable.
/// assert!(sigma.expect("rate is sufficient").value() > 1.0);
/// # Ok(())
/// # }
/// ```
pub fn required_accuracy(
    estimator: &TolerableLatencyEstimator,
    ego: EgoKinematics,
    future: &dyn ActorFuture,
    target_rate: Fpr,
    max_sigma: Meters,
    current_latency: Seconds,
) -> Option<Meters> {
    // A position error larger than the current gap would push the worst
    // twin *behind* the ego and make it spuriously unconstraining; the
    // bisection domain must stay strictly inside the gap.
    let gap_now = future.at(Seconds::ZERO).gap.value();
    let max_sigma = Meters(max_sigma.value().min((gap_now - 0.5).max(0.0)));
    let satisfies = |sigma: f64| -> bool {
        let wrapped = UncertainFuture::new(
            ForwardFuture(future),
            PerceptionUncertainty {
                position: Meters(sigma),
                ..PerceptionUncertainty::EXACT
            },
        );
        let est: LatencyEstimate = estimator.tolerable_latency(ego, &wrapped, current_latency);
        est.fpr().value() <= target_rate.value() + 1e-9
    };
    if !satisfies(0.0) {
        return None;
    }
    if satisfies(max_sigma.value()) {
        return Some(max_sigma);
    }
    let (mut lo, mut hi) = (0.0, max_sigma.value());
    for _ in 0..40 {
        let mid = (lo + hi) / 2.0;
        if satisfies(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(Meters(lo))
}

/// Adapter so `&dyn ActorFuture` can be wrapped by the generic
/// [`UncertainFuture`].
struct ForwardFuture<'a>(&'a dyn ActorFuture);

impl ActorFuture for ForwardFuture<'_> {
    fn at(&self, tn: Seconds) -> RelativeState {
        self.0.at(tn)
    }
    fn horizon(&self) -> Seconds {
        self.0.horizon()
    }
    fn probability(&self) -> f64 {
        self.0.probability()
    }
}

impl std::fmt::Debug for ForwardFuture<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ForwardFuture(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::{ConstantAccelActor, StationaryActor};
    use crate::ZhuyiConfig;

    fn estimator() -> TolerableLatencyEstimator {
        TolerableLatencyEstimator::new(ZhuyiConfig::paper()).expect("valid")
    }

    fn ego(v: f64) -> EgoKinematics {
        EgoKinematics::new(MetersPerSecond(v), MetersPerSecondSquared::ZERO)
    }

    const L0: Seconds = Seconds(1.0 / 30.0);

    #[test]
    fn exact_bounds_are_identity() {
        let inner = StationaryActor::new(Meters(60.0));
        let wrapped = UncertainFuture::new(inner, PerceptionUncertainty::EXACT);
        let e = estimator();
        let a = e.tolerable_latency(ego(20.0), &inner, L0);
        let b = e.tolerable_latency(ego(20.0), &wrapped, L0);
        assert_eq!(a.latency, b.latency);
    }

    #[test]
    fn uncertainty_only_tightens() {
        let inner = ConstantAccelActor::new(
            Meters(70.0),
            MetersPerSecond(15.0),
            MetersPerSecondSquared(-3.0),
        );
        let e = estimator();
        let exact = e.tolerable_latency(ego(25.0), &inner, L0).latency;
        for (pos, vel) in [(2.0, 0.0), (0.0, 2.0), (5.0, 3.0)] {
            let wrapped = UncertainFuture::new(
                inner,
                PerceptionUncertainty {
                    position: Meters(pos),
                    velocity: MetersPerSecond(vel),
                    lateral: Meters(0.0),
                },
            );
            let noisy = e.tolerable_latency(ego(25.0), &wrapped, L0).latency;
            assert!(
                noisy <= exact,
                "σ=({pos},{vel}) relaxed the estimate: {noisy} > {exact}"
            );
        }
    }

    #[test]
    fn lateral_uncertainty_flips_corridor_membership() {
        let outside = ConstantAccelActor::new(
            Meters(40.0),
            MetersPerSecond(5.0),
            MetersPerSecondSquared::ZERO,
        )
        .outside_corridor();
        let bounds = PerceptionUncertainty {
            lateral: Meters(0.5),
            ..PerceptionUncertainty::EXACT
        };
        let wrapped = UncertainFuture::new(outside, bounds);
        assert!(wrapped.at(Seconds(0.0)).in_corridor);
        // And the estimator now treats it as a threat.
        let e = estimator();
        let est = e.tolerable_latency(ego(25.0), &wrapped, L0);
        assert!(est.latency < Seconds(1.0));
    }

    #[test]
    fn velocity_bound_clamps_at_zero() {
        let inner = StationaryActor::new(Meters(50.0));
        let wrapped = UncertainFuture::new(
            inner,
            PerceptionUncertainty {
                velocity: MetersPerSecond(3.0),
                ..PerceptionUncertainty::EXACT
            },
        );
        assert_eq!(wrapped.at(Seconds(1.0)).speed_along, MetersPerSecond::ZERO);
    }

    #[test]
    fn required_accuracy_decreases_with_rate() {
        let e = estimator();
        let future = StationaryActor::new(Meters(80.0));
        let tight = required_accuracy(&e, ego(20.0), &future, Fpr(30.0), Meters(40.0), L0)
            .expect("30 FPR suffices");
        let loose = required_accuracy(&e, ego(20.0), &future, Fpr(5.0), Meters(40.0), L0)
            .expect("5 FPR suffices with enough accuracy");
        assert!(
            tight >= loose,
            "a faster rate must tolerate no less error: {tight} vs {loose}"
        );
    }

    #[test]
    fn insufficient_rate_returns_none() {
        let e = estimator();
        // 25 m/s with 45 m of room needs far more than 1 FPR even with
        // perfect perception.
        let future = StationaryActor::new(Meters(45.0));
        assert_eq!(
            required_accuracy(&e, ego(25.0), &future, Fpr(1.0), Meters(40.0), L0),
            None
        );
    }

    #[test]
    fn bounds_validation() {
        assert!(PerceptionUncertainty::EXACT.validate().is_ok());
        let bad = PerceptionUncertainty {
            position: Meters(-1.0),
            ..PerceptionUncertainty::EXACT
        };
        assert_eq!(bad.validate(), Err("position"));
        let bad = PerceptionUncertainty {
            velocity: MetersPerSecond(f64::NAN),
            ..PerceptionUncertainty::EXACT
        };
        assert_eq!(bad.validate(), Err("velocity"));
    }

    #[test]
    fn into_inner_round_trips() {
        let inner = StationaryActor::new(Meters(10.0));
        let wrapped = UncertainFuture::new(inner, PerceptionUncertainty::EXACT);
        assert_eq!(wrapped.into_inner(), inner);
    }
}
