//! Offline (pre-deployment) analysis of a recorded scenario trace
//! (paper §3.1).
//!
//! After a scenario-based test, the trace contains the ground-truth states
//! of the ego and all actors at every timestep. The pipeline replays the
//! trace: at each analyzed step the future of each actor is taken *from the
//! trace itself* (the oracle predictor — the set `T` has size one, exactly
//! as §3.1 describes), the tolerable-latency search runs per actor, and
//! Eq. 5 folds the results into per-camera FPR requirements.

use crate::aggregate::{aggregate_latencies, Aggregation};
use crate::camera_fpr::{per_camera_fpr, ActorEstimate, CameraEstimate};
use crate::estimator::{EgoKinematics, TolerableLatencyEstimator};
use crate::future::TrajectoryFuture;
use av_core::prelude::*;
use av_core::scene::Scene;
use av_core::trajectory::TrajectoryPoint;
use av_perception::camera::CameraKind;
use av_perception::rig::CameraRig;
use serde::{Deserialize, Serialize};

/// Parameters of a trace analysis run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Eq. 4 aggregation across predicted futures (irrelevant for the
    /// oracle's single future, but kept for symmetry with the online mode).
    pub aggregation: Aggregation,
    /// The processing latency l₀ the traced system was running at
    /// (1 / FPR₀; the paper's tests default to FPR₀ = 30).
    pub current_latency: Seconds,
    /// Analyze every `stride`-th scene (1 = every step). The trace is
    /// recorded at simulation resolution; Zhuyi need not run that often.
    pub stride: usize,
    /// Subsample actor future trajectories to roughly this spacing to
    /// bound per-query cost; interpolation fills the gaps.
    pub future_sample_spacing: Seconds,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            aggregation: Aggregation::WorstCase,
            current_latency: Seconds(1.0 / 30.0),
            stride: 10,
            future_sample_spacing: Seconds(0.05),
        }
    }
}

/// Zhuyi's output at one analyzed timestep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepAnalysis {
    /// Scenario time of the analyzed scene.
    pub time: Seconds,
    /// Ego speed at that time (for the figures' acceleration panels).
    pub ego_speed: MetersPerSecond,
    /// Ego acceleration at that time.
    pub ego_accel: MetersPerSecondSquared,
    /// Per-actor tolerable latencies.
    pub actors: Vec<ActorEstimate>,
    /// Per-camera requirements (Eq. 5), indexed like the rig.
    pub cameras: Vec<CameraEstimate>,
}

/// The full per-timestep analysis of one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TraceAnalysis {
    /// One entry per analyzed step, in time order.
    pub steps: Vec<StepAnalysis>,
}

impl TraceAnalysis {
    /// The highest per-camera FPR estimate across all cameras and all
    /// times — Table 1's "maximum estimated FPR" for a run.
    pub fn max_camera_fpr(&self) -> Option<Fpr> {
        self.steps
            .iter()
            .flat_map(|s| s.cameras.iter())
            .map(|c| c.fpr())
            .max_by(|a, b| a.value().partial_cmp(&b.value()).expect("finite rates"))
    }

    /// The maximum over time of the *sum* of FPR estimates across the given
    /// camera kinds — Table 1's max(F_c1 + F_c2 + F_c3) column.
    pub fn max_total_fpr(&self, kinds: &[CameraKind]) -> Option<Fpr> {
        self.steps
            .iter()
            .map(|s| {
                s.cameras
                    .iter()
                    .filter(|c| kinds.contains(&c.kind))
                    .map(|c| c.fpr())
                    .sum::<Fpr>()
            })
            .max_by(|a, b| a.value().partial_cmp(&b.value()).expect("finite rates"))
    }

    /// Time series of one camera's tolerable latency (the per-camera panels
    /// of Figs. 4–6).
    pub fn camera_latency_series(&self, kind: CameraKind) -> Vec<(Seconds, Seconds)> {
        self.steps
            .iter()
            .filter_map(|s| {
                s.cameras
                    .iter()
                    .find(|c| c.kind == kind)
                    .map(|c| (s.time, c.latency))
            })
            .collect()
    }

    /// Time series of ego acceleration (the figures' panel (e)).
    pub fn accel_series(&self) -> Vec<(Seconds, MetersPerSecondSquared)> {
        self.steps.iter().map(|s| (s.time, s.ego_accel)).collect()
    }

    /// Total constraint evaluations spent across the whole analysis.
    pub fn total_constraint_evaluations(&self) -> u64 {
        self.steps
            .iter()
            .flat_map(|s| s.actors.iter())
            .map(|a| a.stats.constraint_evaluations)
            .sum()
    }
}

/// Runs the pre-deployment Zhuyi analysis over a recorded trace.
///
/// `path` is the road reference the scenario was driven on (longitudinal
/// distances are measured along it), `rig` the camera configuration for
/// Eq. 5.
///
/// Scenes must be in time order. Returns an empty analysis for an empty
/// trace.
///
/// ```no_run
/// use av_core::prelude::*;
/// use av_perception::rig::CameraRig;
/// use av_scenarios::prelude::*;
/// use zhuyi::pipeline::{analyze_trace, PipelineConfig};
/// use zhuyi::{TolerableLatencyEstimator, ZhuyiConfig};
///
/// # fn main() -> Result<(), zhuyi::config::ConfigError> {
/// let scenario = Scenario::build(ScenarioId::VehicleFollowing, 0);
/// let trace = scenario.run_at(Fpr(30.0));
/// let estimator = TolerableLatencyEstimator::new(ZhuyiConfig::paper())?;
/// let analysis = analyze_trace(&trace.scenes, scenario.road.path(),
///                              &CameraRig::drive_av(), &estimator,
///                              &PipelineConfig::default());
/// println!("peak requirement: {}", analysis.max_camera_fpr().expect("steps"));
/// # Ok(())
/// # }
/// ```
pub fn analyze_trace(
    scenes: &[Scene],
    path: &Path,
    rig: &CameraRig,
    estimator: &TolerableLatencyEstimator,
    config: &PipelineConfig,
) -> TraceAnalysis {
    let stride = config.stride.max(1);
    let mut steps = Vec::new();
    for i in (0..scenes.len()).step_by(stride) {
        steps.push(analyze_step(scenes, i, path, rig, estimator, config));
    }
    TraceAnalysis { steps }
}

/// Analyzes a single step `i` of the trace (exposed for incremental use).
///
/// # Panics
///
/// Panics if `i` is out of bounds for `scenes`.
pub fn analyze_step(
    scenes: &[Scene],
    i: usize,
    path: &Path,
    rig: &CameraRig,
    estimator: &TolerableLatencyEstimator,
    config: &PipelineConfig,
) -> StepAnalysis {
    let scene = &scenes[i];
    let ego = EgoKinematics::from_state(&scene.ego.state);
    let mut actor_estimates = Vec::with_capacity(scene.actors.len());
    for actor in &scene.actors {
        let Some(traj) = oracle_trajectory(scenes, i, actor.id, config, estimator) else {
            continue;
        };
        let future = TrajectoryFuture::new(
            path.clone(),
            &scene.ego.state,
            scene.ego.dims,
            actor.dims,
            traj,
            scene.time,
            estimator.config().corridor_margin,
        );
        let est = estimator.tolerable_latency(ego, &future, config.current_latency);
        // Single oracle future: Eq. 4 aggregation is the identity, but we
        // run it anyway so both modes share one code path.
        let latency =
            aggregate_latencies(&[(est.latency, 1.0)], config.aggregation).unwrap_or(est.latency);
        let mut wrapped = ActorEstimate::new(actor.id, est);
        wrapped.latency = latency;
        actor_estimates.push(wrapped);
    }
    let cameras = per_camera_fpr(rig, scene, &actor_estimates, estimator.config().max_latency);
    StepAnalysis {
        time: scene.time,
        ego_speed: scene.ego.state.speed,
        ego_accel: scene.ego.state.accel,
        actors: actor_estimates,
        cameras,
    }
}

/// Extracts the ground-truth future of `actor` starting at scene `i`: the
/// oracle predictor of §3.1 (|T| = 1).
fn oracle_trajectory(
    scenes: &[Scene],
    i: usize,
    actor: ActorId,
    config: &PipelineConfig,
    estimator: &TolerableLatencyEstimator,
) -> Option<Trajectory> {
    let t0 = scenes[i].time;
    let horizon = estimator.config().horizon;
    let spacing = config.future_sample_spacing.value().max(1e-6);
    let mut points: Vec<TrajectoryPoint> = Vec::new();
    let mut next_sample = t0.value();
    for scene in &scenes[i..] {
        if (scene.time - t0).value() > horizon.value() {
            break;
        }
        if scene.time.value() + 1e-12 < next_sample {
            continue;
        }
        let Some(agent) = scene.actor(actor) else {
            break; // actor despawned; its recorded future ends here
        };
        points.push(TrajectoryPoint {
            time: scene.time,
            position: agent.state.position,
            heading: agent.state.heading,
            speed: agent.state.speed,
            accel: agent.state.accel,
        });
        next_sample = scene.time.value() + spacing;
    }
    Trajectory::new(points, 1.0).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZhuyiConfig;

    fn car(id: u32, x: f64, v: f64, a: f64) -> Agent {
        Agent::new(
            ActorId(id),
            if v == 0.0 && a == 0.0 && id != 0 {
                ActorKind::StaticObstacle
            } else {
                ActorKind::Vehicle
            },
            Dimensions::CAR,
            VehicleState::new(
                Vec2::new(x, 0.0),
                Radians(0.0),
                MetersPerSecond(v),
                MetersPerSecondSquared(a),
            ),
        )
    }

    /// A trace of an ego cruising at 20 m/s toward a stopped obstacle
    /// ~100 m ahead (closing over time).
    fn closing_trace(steps: usize, dt: f64) -> Vec<Scene> {
        (0..steps)
            .map(|k| {
                let t = k as f64 * dt;
                Scene::new(
                    Seconds(t),
                    car(0, 20.0 * t, 20.0, 0.0),
                    vec![car(1, 100.0, 0.0, 0.0)],
                )
            })
            .collect()
    }

    fn setup() -> (Path, CameraRig, TolerableLatencyEstimator, PipelineConfig) {
        (
            Path::straight(Vec2::ZERO, Radians(0.0), Meters(2000.0)),
            CameraRig::drive_av(),
            TolerableLatencyEstimator::new(ZhuyiConfig::paper()).expect("valid"),
            PipelineConfig::default(),
        )
    }

    #[test]
    fn empty_trace_yields_empty_analysis() {
        let (path, rig, est, cfg) = setup();
        let analysis = analyze_trace(&[], &path, &rig, &est, &cfg);
        assert!(analysis.steps.is_empty());
        assert_eq!(analysis.max_camera_fpr(), None);
    }

    #[test]
    fn requirement_tightens_as_ego_closes() {
        let (path, rig, est, mut cfg) = setup();
        cfg.stride = 50; // analyze every 0.5 s
        let trace = closing_trace(400, 0.01); // 4 s, ends 20 m short
        let analysis = analyze_trace(&trace, &path, &rig, &est, &cfg);
        assert!(!analysis.steps.is_empty());
        let front: Vec<_> = analysis.camera_latency_series(CameraKind::FrontWide);
        let first = front.first().expect("nonempty").1;
        let last = front.last().expect("nonempty").1;
        assert!(
            last < first,
            "front-camera latency must tighten while closing: {first} -> {last}"
        );
    }

    #[test]
    fn side_cameras_stay_idle_without_side_actors() {
        let (path, rig, est, mut cfg) = setup();
        cfg.stride = 100;
        let trace = closing_trace(300, 0.01);
        let analysis = analyze_trace(&trace, &path, &rig, &est, &cfg);
        for (_, latency) in analysis.camera_latency_series(CameraKind::Left) {
            assert_eq!(
                latency,
                Seconds(1.0),
                "idle side camera must sit at max latency"
            );
        }
        // Max camera FPR is therefore set by the front camera.
        let max = analysis.max_camera_fpr().expect("nonempty");
        let front_max = analysis
            .camera_latency_series(CameraKind::FrontWide)
            .iter()
            .map(|(_, l)| Fpr::from_latency(*l).value())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((max.value() - front_max.max(1.0)).abs() < 1e-9);
    }

    #[test]
    fn total_fpr_sums_selected_cameras() {
        let (path, rig, est, mut cfg) = setup();
        cfg.stride = 100;
        let trace = closing_trace(300, 0.01);
        let analysis = analyze_trace(&trace, &path, &rig, &est, &cfg);
        let kinds = [CameraKind::FrontWide, CameraKind::Left, CameraKind::Right];
        let total = analysis.max_total_fpr(&kinds).expect("nonempty");
        let front_only = analysis
            .max_total_fpr(&[CameraKind::FrontWide])
            .expect("nonempty");
        // Idle sides contribute 1 FPR each.
        assert!((total.value() - front_only.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stride_reduces_step_count() {
        let (path, rig, est, mut cfg) = setup();
        let trace = closing_trace(200, 0.01);
        cfg.stride = 1;
        let dense = analyze_trace(&trace, &path, &rig, &est, &cfg);
        cfg.stride = 20;
        let sparse = analyze_trace(&trace, &path, &rig, &est, &cfg);
        assert_eq!(dense.steps.len(), 200);
        assert_eq!(sparse.steps.len(), 10);
        assert!(sparse.total_constraint_evaluations() < dense.total_constraint_evaluations());
    }

    #[test]
    fn despawned_actor_future_truncates() {
        let (path, rig, est, mut cfg) = setup();
        cfg.stride = 1;
        // Actor exists for the first 50 steps only.
        let mut trace = closing_trace(100, 0.01);
        for scene in trace.iter_mut().skip(50) {
            scene.actors.clear();
        }
        let analysis = analyze_trace(&trace, &path, &rig, &est, &cfg);
        // Steps after despawn have no actor estimates.
        assert!(analysis.steps[60].actors.is_empty());
        // Steps before still do.
        assert!(!analysis.steps[0].actors.is_empty());
    }

    #[test]
    fn accel_series_matches_trace() {
        let (path, rig, est, mut cfg) = setup();
        cfg.stride = 10;
        let trace = closing_trace(100, 0.01);
        let analysis = analyze_trace(&trace, &path, &rig, &est, &cfg);
        for (_, a) in analysis.accel_series() {
            assert_eq!(a, MetersPerSecondSquared(0.0));
        }
    }
}
