//! Per-camera FPR aggregation (paper Eq. 5).
//!
//! Having a tolerable latency per actor, each camera's required frame
//! processing rate is the reciprocal of the *smallest* tolerable latency
//! among the actors in that camera's field of view:
//!
//! FPR_sensor = 1 / min_{i ∈ A} l_actor_i.
//!
//! A camera with no FOV actors is assigned the model's maximum latency
//! (e.g. 1 s), matching the paper's Fig. 6 observation that "the tolerable
//! latency for side cameras is 1000 ms as there are no actors on the
//! sides" — i.e. an idle camera still requires FPR 1.

use crate::estimator::{LatencyEstimate, SearchOutcome};
use av_core::prelude::*;
use av_perception::camera::CameraKind;
use av_perception::rig::{CameraId, CameraRig};
use serde::{Deserialize, Serialize};

/// The final per-actor estimate: identity plus tolerable latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActorEstimate {
    /// Which actor.
    pub actor: ActorId,
    /// The aggregated tolerable latency (Eq. 4 output).
    pub latency: Seconds,
    /// How the search concluded.
    pub outcome: SearchOutcome,
    /// Search effort.
    pub stats: crate::estimator::SearchStats,
}

impl ActorEstimate {
    /// Wraps a per-future latency estimate with its actor id.
    pub fn new(actor: ActorId, estimate: LatencyEstimate) -> Self {
        Self {
            actor,
            latency: estimate.latency,
            outcome: estimate.outcome,
            stats: estimate.stats,
        }
    }

    /// The minimum FPR this actor demands (Eq. 5's per-actor term).
    pub fn fpr(&self) -> Fpr {
        Fpr::from_latency(self.latency)
    }

    /// Work-prioritization importance: the inverse of the tolerable
    /// latency (§3.2 — "the higher the latency estimate, the less
    /// important the object is").
    pub fn importance(&self) -> f64 {
        self.fpr().value()
    }
}

/// The per-camera requirement derived from Eq. 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraEstimate {
    /// Which camera in the rig.
    pub camera: CameraId,
    /// The camera's position/kind.
    pub kind: CameraKind,
    /// The smallest tolerable latency among FOV actors (or the model
    /// maximum for an empty FOV).
    pub latency: Seconds,
    /// The actor that set the requirement, if any.
    pub limiting_actor: Option<ActorId>,
}

impl CameraEstimate {
    /// Minimum required frame processing rate, FPR = 1/latency (Eq. 5).
    pub fn fpr(&self) -> Fpr {
        Fpr::from_latency(self.latency)
    }
}

/// Applies Eq. 5: per-camera minimum FPR over the actors in each camera's
/// FOV.
///
/// `scene` supplies the geometry (who is visible to which camera);
/// `estimates` supplies per-actor tolerable latencies (actors missing from
/// `estimates` are ignored); `idle_latency` is assigned to cameras with no
/// visible estimated actor (use the model's `max_latency`).
///
/// ```
/// use av_core::prelude::*;
/// use av_core::scene::Scene;
/// use av_perception::rig::CameraRig;
/// use zhuyi::camera_fpr::{per_camera_fpr, ActorEstimate};
/// use zhuyi::estimator::{LatencyEstimate, SearchOutcome, SearchStats};
///
/// let rig = CameraRig::drive_av();
/// let ego = Agent::new(ActorId::EGO, ActorKind::Vehicle, Dimensions::CAR,
///                      VehicleState::at_rest(Vec2::ZERO, Radians(0.0)));
/// let front = Agent::new(ActorId(1), ActorKind::Vehicle, Dimensions::CAR,
///                        VehicleState::at_rest(Vec2::new(40.0, 0.0), Radians(0.0)));
/// let scene = Scene::new(Seconds(0.0), ego, vec![front]);
/// let est = ActorEstimate {
///     actor: ActorId(1),
///     latency: Seconds(0.2),
///     outcome: SearchOutcome::Tolerable,
///     stats: SearchStats::default(),
/// };
/// let cams = per_camera_fpr(&rig, &scene, &[est], Seconds(1.0));
/// // The front cameras see the actor and require 5 FPR; sides stay at 1.
/// assert!(cams.iter().any(|c| (c.fpr().value() - 5.0).abs() < 1e-9));
/// ```
pub fn per_camera_fpr(
    rig: &CameraRig,
    scene: &av_core::scene::Scene,
    estimates: &[ActorEstimate],
    idle_latency: Seconds,
) -> Vec<CameraEstimate> {
    rig.iter()
        .map(|(id, cam)| {
            let mut latency = idle_latency;
            let mut limiting = None;
            for actor in &scene.actors {
                let Some(est) = estimates.iter().find(|e| e.actor == actor.id) else {
                    continue;
                };
                if cam.sees_agent(&scene.ego.state, actor) && est.latency < latency {
                    latency = est.latency;
                    limiting = Some(actor.id);
                }
            }
            CameraEstimate {
                camera: id,
                kind: cam.kind(),
                latency,
                limiting_actor: limiting,
            }
        })
        .collect()
}

/// Orders actors by decreasing importance (paper §3.2: "the inverse of
/// the per-actor tolerable latency estimate is proportional to the actor's
/// importance"), breaking ties by id for determinism.
///
/// Downstream per-actor work (trajectory refinement, intent classifiers)
/// can then be truncated from the back of the list when compute runs
/// short — see [`truncate_work`].
pub fn rank_by_importance(estimates: &[ActorEstimate]) -> Vec<ActorEstimate> {
    let mut ranked = estimates.to_vec();
    ranked.sort_by(|a, b| {
        b.importance()
            .partial_cmp(&a.importance())
            .expect("finite importances")
            .then_with(|| a.actor.cmp(&b.actor))
    });
    ranked
}

/// Selects the actors whose per-actor work fits a budget of `slots`
/// work units (one unit per actor), most important first — the paper's
/// "truncating work for less important objects".
///
/// ```
/// use av_core::prelude::*;
/// use zhuyi::camera_fpr::{truncate_work, ActorEstimate};
/// use zhuyi::estimator::{SearchOutcome, SearchStats};
///
/// let mk = |id: u32, latency: f64| ActorEstimate {
///     actor: ActorId(id), latency: Seconds(latency),
///     outcome: SearchOutcome::Tolerable, stats: SearchStats::default(),
/// };
/// let kept = truncate_work(&[mk(1, 1.0), mk(2, 0.1), mk(3, 0.4)], 2);
/// // The 100 ms actor and the 400 ms actor fit; the idle one is dropped.
/// assert_eq!(kept.iter().map(|e| e.actor.0).collect::<Vec<_>>(), vec![2, 3]);
/// ```
pub fn truncate_work(estimates: &[ActorEstimate], slots: usize) -> Vec<ActorEstimate> {
    rank_by_importance(estimates)
        .into_iter()
        .take(slots)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::SearchStats;
    use av_core::scene::Scene;

    fn agent(id: u32, x: f64, y: f64) -> Agent {
        Agent::new(
            ActorId(id),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::at_rest(Vec2::new(x, y), Radians(0.0)),
        )
    }

    fn estimate(id: u32, latency: f64) -> ActorEstimate {
        ActorEstimate {
            actor: ActorId(id),
            latency: Seconds(latency),
            outcome: SearchOutcome::Tolerable,
            stats: SearchStats::default(),
        }
    }

    fn scene(actors: Vec<Agent>) -> Scene {
        Scene::new(Seconds(0.0), agent(0, 0.0, 0.0), actors)
    }

    #[test]
    fn min_latency_wins_per_camera() {
        let rig = CameraRig::drive_av();
        let sc = scene(vec![agent(1, 40.0, 0.0), agent(2, 60.0, 0.0)]);
        let cams = per_camera_fpr(
            &rig,
            &sc,
            &[estimate(1, 0.5), estimate(2, 0.2)],
            Seconds(1.0),
        );
        let front = cams
            .iter()
            .find(|c| c.kind == CameraKind::FrontWide)
            .expect("front camera present");
        assert_eq!(front.latency, Seconds(0.2));
        assert_eq!(front.limiting_actor, Some(ActorId(2)));
        assert!((front.fpr().value() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_fov_gets_idle_latency() {
        let rig = CameraRig::drive_av();
        let sc = scene(vec![agent(1, 40.0, 0.0)]);
        let cams = per_camera_fpr(&rig, &sc, &[estimate(1, 0.1)], Seconds(1.0));
        let rear = cams
            .iter()
            .find(|c| c.kind == CameraKind::Rear)
            .expect("rear camera present");
        assert_eq!(rear.latency, Seconds(1.0));
        assert_eq!(rear.limiting_actor, None);
        assert!((rear.fpr().value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn side_actor_raises_side_camera_only() {
        let rig = CameraRig::drive_av();
        // Actor abreast of the ego on the left.
        let sc = scene(vec![agent(1, 1.0, 3.7)]);
        let cams = per_camera_fpr(&rig, &sc, &[estimate(1, 0.25)], Seconds(1.0));
        let left = cams
            .iter()
            .find(|c| c.kind == CameraKind::Left)
            .expect("left");
        let right = cams
            .iter()
            .find(|c| c.kind == CameraKind::Right)
            .expect("right");
        assert_eq!(left.latency, Seconds(0.25));
        assert_eq!(right.latency, Seconds(1.0));
    }

    #[test]
    fn actor_without_estimate_is_ignored() {
        let rig = CameraRig::drive_av();
        let sc = scene(vec![agent(1, 40.0, 0.0), agent(9, 50.0, 0.0)]);
        let cams = per_camera_fpr(&rig, &sc, &[estimate(1, 0.5)], Seconds(1.0));
        let front = cams
            .iter()
            .find(|c| c.kind == CameraKind::FrontWide)
            .expect("front");
        assert_eq!(front.limiting_actor, Some(ActorId(1)));
    }

    #[test]
    fn ranking_is_by_importance_then_id() {
        let ranked = rank_by_importance(&[estimate(3, 0.4), estimate(1, 0.1), estimate(2, 0.4)]);
        let ids: Vec<u32> = ranked.iter().map(|e| e.actor.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn truncation_keeps_most_important() {
        let kept = truncate_work(&[estimate(1, 1.0), estimate(2, 0.05), estimate(3, 0.5)], 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].actor, ActorId(2));
        // Zero slots: nothing kept; oversize budget: everything kept.
        assert!(truncate_work(&[estimate(1, 1.0)], 0).is_empty());
        assert_eq!(truncate_work(&[estimate(1, 1.0)], 5).len(), 1);
    }

    #[test]
    fn importance_is_inverse_latency() {
        let high = estimate(1, 0.1);
        let low = estimate(2, 1.0);
        assert!(high.importance() > low.importance());
        assert!((high.importance() - 10.0).abs() < 1e-9);
        assert!((high.fpr().value() - 10.0).abs() < 1e-9);
    }
}
