//! The Fig. 8 sensitivity sweep: minimum FPR over ego speed × actor end
//! velocity at a fixed tolerable distance s_n.
//!
//! The paper sweeps v_e0 and v_a_n while fixing s_n (the distance the ego
//! can travel between t₀ and t_n without colliding), for s_n = 30 m and
//! 100 m. Cells requiring more than 30 FPR are shown gray ("30+"); cells
//! where no processing rate avoids a collision are white ("unavoidable").

use crate::config::ZhuyiConfig;
use crate::estimator::{EgoKinematics, SearchOutcome, TolerableLatencyEstimator};
use crate::future::FixedGapActor;
use av_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Outcome of one sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CellOutcome {
    /// A finite requirement within the model's standard range.
    RequiredFpr(f64),
    /// Safe only at rates above the reference limit (Fig. 8's gray
    /// "30+" cells).
    AboveLimit,
    /// No processing rate avoids the collision (Fig. 8's white cells).
    Unavoidable,
}

impl CellOutcome {
    /// The numeric FPR if the cell has one.
    pub fn fpr(&self) -> Option<f64> {
        match self {
            CellOutcome::RequiredFpr(f) => Some(*f),
            _ => None,
        }
    }
}

/// The sweep result grid: `cells[i][j]` is the outcome for
/// `ego_speeds[i]` × `actor_speeds[j]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityGrid {
    /// Fixed tolerable distance s_n.
    pub gap: Meters,
    /// Swept ego speeds v_e0.
    pub ego_speeds: Vec<Mph>,
    /// Swept actor end velocities v_a_n.
    pub actor_speeds: Vec<Mph>,
    /// Row-major outcomes, `[ego][actor]`.
    pub cells: Vec<Vec<CellOutcome>>,
}

impl SensitivityGrid {
    /// Number of cells with each outcome: `(finite, above_limit,
    /// unavoidable)`.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for row in &self.cells {
            for cell in row {
                match cell {
                    CellOutcome::RequiredFpr(_) => counts.0 += 1,
                    CellOutcome::AboveLimit => counts.1 += 1,
                    CellOutcome::Unavoidable => counts.2 += 1,
                }
            }
        }
        counts
    }

    /// The largest finite FPR requirement in the grid, if any.
    pub fn max_finite_fpr(&self) -> Option<f64> {
        self.cells
            .iter()
            .flatten()
            .filter_map(|c| c.fpr())
            .max_by(|a, b| a.partial_cmp(b).expect("finite rates"))
    }
}

/// Runs the Fig. 8 sweep for a fixed tolerable distance `gap` (= s_n).
///
/// `current_fpr` supplies l₀ for the confirmation-delay model. To match
/// the paper's Fig. 8 (streets need at most 2 FPR), pass `Fpr(1.0)`: with
/// l₀ = max(l) the α = K·(l − l₀) term clamps to zero for every candidate,
/// i.e. the sensitivity study sweeps the pure kinematic requirement without
/// a confirmation delay. Passing the running system's true rate (e.g. 30)
/// yields the stricter online variant. Cells whose standard search is
/// infeasible are re-probed with a finer latency range down to 1 ms to
/// distinguish "needs more than the limit" from "unavoidable".
///
/// # Errors
///
/// Returns a [`crate::config::ConfigError`] if `config` is invalid.
///
/// ```
/// use av_core::prelude::*;
/// use zhuyi::sensitivity::{sweep_fixed_gap, CellOutcome};
/// use zhuyi::ZhuyiConfig;
///
/// # fn main() -> Result<(), zhuyi::config::ConfigError> {
/// let grid = sweep_fixed_gap(
///     ZhuyiConfig::paper(),
///     Meters(100.0),
///     &[Mph(10.0), Mph(25.0)],
///     &[Mph(0.0), Mph(25.0)],
///     Fpr(1.0),
/// )?;
/// // Street speeds with 100 m of room: a couple of FPR suffice.
/// assert!(matches!(grid.cells[0][0], CellOutcome::RequiredFpr(f) if f <= 2.0));
/// # Ok(())
/// # }
/// ```
pub fn sweep_fixed_gap(
    config: ZhuyiConfig,
    gap: Meters,
    ego_speeds: &[Mph],
    actor_speeds: &[Mph],
    current_fpr: Fpr,
) -> Result<SensitivityGrid, crate::config::ConfigError> {
    let estimator = TolerableLatencyEstimator::new(config)?;
    // Fine-grained probe used to separate "30+" from "unavoidable": search
    // the latencies below the standard floor, down to 1 ms (1000 FPR).
    let mut probe_cfg = config;
    probe_cfg.max_latency = config.min_latency;
    probe_cfg.latency_step = Seconds::from_millis(1.0);
    probe_cfg.min_latency = Seconds::from_millis(1.0);
    let probe = TolerableLatencyEstimator::new(probe_cfg)?;

    let l0 = current_fpr.latency();
    let mut cells = Vec::with_capacity(ego_speeds.len());
    for &ve in ego_speeds {
        let ego = EgoKinematics::new(ve.into(), MetersPerSecondSquared::ZERO);
        let mut row = Vec::with_capacity(actor_speeds.len());
        for &va in actor_speeds {
            let future = FixedGapActor::new(gap, va.into());
            let est = estimator.tolerable_latency(ego, &future, l0);
            let cell = match est.outcome {
                SearchOutcome::Unconstrained | SearchOutcome::Tolerable => {
                    CellOutcome::RequiredFpr(est.fpr().value())
                }
                SearchOutcome::Infeasible => {
                    let fine = probe.tolerable_latency(ego, &future, l0);
                    match fine.outcome {
                        SearchOutcome::Infeasible => CellOutcome::Unavoidable,
                        _ => CellOutcome::AboveLimit,
                    }
                }
            };
            row.push(cell);
        }
        cells.push(row);
    }
    Ok(SensitivityGrid {
        gap,
        ego_speeds: ego_speeds.to_vec(),
        actor_speeds: actor_speeds.to_vec(),
        cells,
    })
}

/// The paper's sweep axes: 0–70 mph in 5 mph increments.
pub fn paper_axis() -> Vec<Mph> {
    (0..=14).map(|i| Mph(i as f64 * 5.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 8 setting: no confirmation-delay term (see
    /// [`sweep_fixed_gap`]).
    fn grid(gap: f64) -> SensitivityGrid {
        sweep_fixed_gap(
            ZhuyiConfig::paper(),
            Meters(gap),
            &paper_axis(),
            &paper_axis(),
            Fpr(1.0),
        )
        .expect("paper config valid")
    }

    #[test]
    fn street_speeds_need_at_most_2_fpr() {
        // Paper: "For an ego operating on streets (0-25 mph), both
        // Figure 8a and Figure 8b show that FPR <= 2 is enough".
        for gap in [30.0, 100.0] {
            let g = grid(gap);
            for (i, &ve) in g.ego_speeds.iter().enumerate() {
                if ve.value() > 25.0 {
                    continue;
                }
                for (j, &va) in g.actor_speeds.iter().enumerate() {
                    match g.cells[i][j] {
                        CellOutcome::RequiredFpr(f) => {
                            assert!(f <= 2.0 + 1e-9, "sn={gap} ve={ve} va={va}: FPR {f} > 2")
                        }
                        other => panic!("sn={gap} ve={ve} va={va}: unexpected {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn highway_speeds_with_100m_need_few_fpr() {
        // Paper: "For the ego on expressways and highways (25+ mph), a
        // maximum of only 5 FPR is sufficient ... for sn = 100 m." Our
        // reconstruction lands a few boundary cells (a 65-70 mph ego vs a
        // slow actor, right at the edge of feasibility) above that, because
        // the 33 ms latency grid quantizes differently; the shape — almost
        // all feasible cells needing only a handful of FPR — holds.
        let g = grid(100.0);
        let max = g.max_finite_fpr().expect("some finite cells");
        assert!(max <= 10.0 + 1e-9, "max finite FPR {max} > 10");
        // The overwhelming majority of feasible cells sit at <= 5 FPR.
        let feasible: Vec<f64> = g.cells.iter().flatten().filter_map(|c| c.fpr()).collect();
        let low = feasible.iter().filter(|f| **f <= 5.0 + 1e-9).count();
        assert!(
            low * 10 >= feasible.len() * 9,
            "fewer than 90% of feasible cells at <= 5 FPR ({low}/{})",
            feasible.len()
        );
    }

    #[test]
    fn short_gap_high_speed_is_hard_or_unavoidable() {
        // Paper: for sn = 30 m and ego speed over 25 mph the requirement
        // "can be high, depending on the actor's end velocity", with many
        // high-ve/low-va combinations impossible.
        let g = grid(30.0);
        let (_, above, unavoidable) = g.census();
        assert!(
            above + unavoidable > 0,
            "sn=30m must contain hard/unavoidable cells"
        );
        // The very worst corner: 70 mph ego, stopped actor, 30 m of room.
        // Stopping needs ~100 m: unavoidable.
        let last = g.ego_speeds.len() - 1;
        assert_eq!(g.cells[last][0], CellOutcome::Unavoidable);
    }

    #[test]
    fn requirement_monotone_in_ego_speed() {
        let g = grid(30.0);
        // For a fixed actor speed, a faster ego never lowers the required
        // FPR (cells ordered: finite < above-limit < unavoidable).
        fn rank(c: &CellOutcome) -> (u8, f64) {
            match c {
                CellOutcome::RequiredFpr(f) => (0, *f),
                CellOutcome::AboveLimit => (1, 0.0),
                CellOutcome::Unavoidable => (2, 0.0),
            }
        }
        for j in 0..g.actor_speeds.len() {
            for i in 1..g.ego_speeds.len() {
                let (prev_class, prev_fpr) = rank(&g.cells[i - 1][j]);
                let (class, fpr) = rank(&g.cells[i][j]);
                assert!(
                    class > prev_class || (class == prev_class && fpr + 1e-9 >= prev_fpr),
                    "non-monotone at ego {} actor {}: {:?} -> {:?}",
                    g.ego_speeds[i],
                    g.actor_speeds[j],
                    g.cells[i - 1][j],
                    g.cells[i][j]
                );
            }
        }
    }

    #[test]
    fn faster_actor_never_raises_requirement() {
        let g = grid(30.0);
        fn rank(c: &CellOutcome) -> (u8, f64) {
            match c {
                CellOutcome::RequiredFpr(f) => (0, *f),
                CellOutcome::AboveLimit => (1, 0.0),
                CellOutcome::Unavoidable => (2, 0.0),
            }
        }
        for i in 0..g.ego_speeds.len() {
            for j in 1..g.actor_speeds.len() {
                let (prev_class, prev_fpr) = rank(&g.cells[i][j - 1]);
                let (class, fpr) = rank(&g.cells[i][j]);
                assert!(
                    class < prev_class || (class == prev_class && fpr <= prev_fpr + 1e-9),
                    "faster actor raised requirement at ego {} actor {}",
                    g.ego_speeds[i],
                    g.actor_speeds[j]
                );
            }
        }
    }

    #[test]
    fn census_counts_all_cells() {
        let g = grid(30.0);
        let (a, b, c) = g.census();
        assert_eq!(a + b + c, g.ego_speeds.len() * g.actor_speeds.len());
    }

    #[test]
    fn paper_axis_spans_0_to_70() {
        let axis = paper_axis();
        assert_eq!(axis.len(), 15);
        assert_eq!(axis[0], Mph(0.0));
        assert_eq!(axis[14], Mph(70.0));
    }
}
