//! The tolerable-latency search (paper §2.1, Eqs. 1–3).
//!
//! For one actor future, Zhuyi finds the **maximum** perception latency `l`
//! such that, if the ego reacts after t_r = l + α and then hard-brakes at
//! a_b = max(C3, C4·|a₀|), there exists a maneuver-completion time t_n with:
//!
//! - Eq. 1 (distance): d_e1 + d_e2 ≤ C1·s_n — the ego's travel during
//!   reaction plus braking fits inside the available distance, and
//! - Eq. 2 (velocity): 0 ≤ v_e_n ≤ C2·v_a_n — the ego ends no faster than
//!   (a conservative fraction of) the actor.
//!
//! The outer loop walks candidate latencies downward from `max_latency` in
//! `latency_step` decrements and returns the first (largest) safe one. The
//! inner loop searches t_n, either naively at a fixed timestep or with the
//! paper's Eq. 3 δt_n acceleration capped at M iterations.

use crate::config::{AlphaModel, ConfigError, SearchStrategy, ZhuyiConfig};
use crate::future::{ActorFuture, RelativeState};
use av_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Longitudinal kinematics of the ego at the estimation instant t₀.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EgoKinematics {
    /// Ego speed v_e0 (clamped at zero by the estimator; the ego does not
    /// reverse).
    pub speed: MetersPerSecond,
    /// Ego longitudinal acceleration a₀; negative is deceleration.
    pub accel: MetersPerSecondSquared,
}

impl EgoKinematics {
    /// Creates ego kinematics.
    pub fn new(speed: MetersPerSecond, accel: MetersPerSecondSquared) -> Self {
        Self { speed, accel }
    }

    /// Extracts the longitudinal kinematics from a full vehicle state.
    pub fn from_state(state: &VehicleState) -> Self {
        Self {
            speed: state.speed,
            accel: state.accel,
        }
    }
}

/// How the search concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchOutcome {
    /// The actor never threatens the ego's corridor within the horizon; the
    /// maximum latency is tolerable by construction.
    Unconstrained,
    /// A tolerable latency within `[min_latency, max_latency]` was found.
    Tolerable,
    /// Even `min_latency` fails: per the model no processing rate in range
    /// avoids a collision (Fig. 8's white cells).
    Infeasible,
}

/// Search-effort counters, the basis of the §4.2 compute-demand analysis.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Candidate latencies visited by the outer loop (≤ L).
    pub latency_steps: u32,
    /// Constraint evaluations performed (inner iterations across all
    /// candidate latencies, including threat scans).
    pub constraint_evaluations: u64,
}

impl SearchStats {
    /// Merges counters from another (sub-)search.
    pub fn absorb(&mut self, other: SearchStats) {
        self.latency_steps += other.latency_steps;
        self.constraint_evaluations += other.constraint_evaluations;
    }
}

/// The inner-loop solution backing a [`SearchOutcome::Tolerable`] result:
/// the maneuver-completion time t_n at which Eqs. 1 and 2 were verified,
/// and every quantity that entered the check. This is what makes an
/// estimate *explainable* — see
/// [`TolerableLatencyEstimator::explain`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InnerSolution {
    /// Reaction time t_r = l + α at the accepted latency.
    pub reaction_time: Seconds,
    /// Confirmation delay α.
    pub alpha: Seconds,
    /// Braking deceleration a_b = max(C3, C4·|a₀|) the model assumed.
    pub assumed_braking: MetersPerSecondSquared,
    /// Maneuver-completion time t_n where both constraints held.
    pub maneuver_complete_at: Seconds,
    /// Ego travel during reaction, d_e1.
    pub reaction_distance: Meters,
    /// Ego travel while braking, d_e2.
    pub braking_distance: Meters,
    /// Distance available at t_n *after* the C1 margin, C1·s_n.
    pub allowed_distance: Meters,
    /// Ego speed at t_n, v_e_n.
    pub ego_end_speed: MetersPerSecond,
    /// Actor speed bound at t_n, C2·v_a_n.
    pub actor_speed_allowance: MetersPerSecond,
}

/// Result of the tolerable-latency search for one future.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyEstimate {
    /// The tolerable latency. Equal to `max_latency` for
    /// [`SearchOutcome::Unconstrained`], and clamped to `min_latency` for
    /// [`SearchOutcome::Infeasible`].
    pub latency: Seconds,
    /// How the search concluded.
    pub outcome: SearchOutcome,
    /// Search effort.
    pub stats: SearchStats,
}

impl LatencyEstimate {
    /// The minimum frame processing rate implied by this latency
    /// (Eq. 5's per-actor term).
    pub fn fpr(&self) -> Fpr {
        Fpr::from_latency(self.latency)
    }
}

/// The per-actor tolerable-latency estimator.
///
/// ```
/// use av_core::prelude::*;
/// use zhuyi::{EgoKinematics, TolerableLatencyEstimator, ZhuyiConfig};
/// use zhuyi::future::StationaryActor;
///
/// # fn main() -> Result<(), zhuyi::config::ConfigError> {
/// let estimator = TolerableLatencyEstimator::new(ZhuyiConfig::paper())?;
/// let ego = EgoKinematics::new(MetersPerSecond(20.0), MetersPerSecondSquared(0.0));
/// // Stopped obstacle 200 m ahead: plenty of room, max latency tolerable.
/// let far = estimator.tolerable_latency(ego, &StationaryActor::new(Meters(200.0)),
///                                       Seconds::from_millis(33.0));
/// assert_eq!(far.latency, Seconds(1.0));
/// // Same obstacle 45 m ahead: the ego must perceive it faster.
/// let near = estimator.tolerable_latency(ego, &StationaryActor::new(Meters(45.0)),
///                                        Seconds::from_millis(33.0));
/// assert!(near.latency < Seconds(1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TolerableLatencyEstimator {
    config: ZhuyiConfig,
}

impl TolerableLatencyEstimator {
    /// Creates an estimator over a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated configuration invariant.
    pub fn new(config: ZhuyiConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration this estimator runs.
    pub fn config(&self) -> &ZhuyiConfig {
        &self.config
    }

    /// Finds the maximum tolerable latency for one actor future.
    ///
    /// `current_latency` is l₀, the processing latency the system runs at
    /// t₀, used by the confirmation-delay model α = K·(l − l₀).
    pub fn tolerable_latency(
        &self,
        ego: EgoKinematics,
        future: &dyn ActorFuture,
        current_latency: Seconds,
    ) -> LatencyEstimate {
        let cfg = &self.config;
        let mut stats = SearchStats::default();

        let intervals = self.frontal_intervals(ego, future, &mut stats);
        if intervals.is_empty() {
            return LatencyEstimate {
                latency: cfg.max_latency,
                outcome: SearchOutcome::Unconstrained,
                stats,
            };
        }

        let mut latency = cfg.max_latency;
        let eps = 1e-9;
        while latency.value() >= cfg.min_latency.value() - eps {
            stats.latency_steps += 1;
            if self
                .try_latency(
                    latency,
                    ego,
                    future,
                    current_latency,
                    &intervals,
                    &mut stats,
                )
                .is_some()
            {
                return LatencyEstimate {
                    latency,
                    outcome: SearchOutcome::Tolerable,
                    stats,
                };
            }
            latency -= cfg.latency_step;
        }

        LatencyEstimate {
            latency: cfg.min_latency,
            outcome: SearchOutcome::Infeasible,
            stats,
        }
    }

    /// Convenience wrapper: tolerable latency for a stationary in-lane
    /// actor, measuring the bumper-to-bumper gap from world positions.
    ///
    /// Useful for quick checks; the full pipeline builds
    /// [`crate::future::TrajectoryFuture`]s instead.
    pub fn estimate_stationary_actor(
        &self,
        ego: &VehicleState,
        actor: &Agent,
    ) -> crate::ActorEstimate {
        let center_gap = (actor.state.position - ego.position).dot(Vec2::from_heading(ego.heading));
        let gap =
            Meters(center_gap - (Dimensions::CAR.length.value() + actor.dims.length.value()) / 2.0);
        let est = self.tolerable_latency(
            EgoKinematics::from_state(ego),
            &crate::future::StationaryActor::new(gap),
            self.config.min_latency,
        );
        crate::ActorEstimate::new(actor.id, est)
    }

    /// Crate-internal re-entry points for [`crate::explain`].
    pub(crate) fn frontal_intervals_for_explain(
        &self,
        ego: EgoKinematics,
        future: &dyn ActorFuture,
        stats: &mut SearchStats,
    ) -> Vec<(f64, f64)> {
        self.frontal_intervals(ego, future, stats)
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn try_latency_for_explain(
        &self,
        l: Seconds,
        ego: EgoKinematics,
        future: &dyn ActorFuture,
        l0: Seconds,
        intervals: &[(f64, f64)],
        stats: &mut SearchStats,
    ) -> Option<InnerSolution> {
        self.try_latency(l, ego, future, l0, intervals, stats)
    }

    /// Scans the future for the maximal time intervals in which the actor
    /// is a *frontal threat*: inside the ego's corridor, ahead of the
    /// ego's t₀ position, and — at the instant the interval opens — still
    /// ahead of where the unreacting ego would be. The last condition
    /// excludes actors approaching from behind (the ego cannot resolve a
    /// rear approach by braking; the paper's model addresses frontal
    /// obstacles).
    fn frontal_intervals(
        &self,
        ego: EgoKinematics,
        future: &dyn ActorFuture,
        stats: &mut SearchStats,
    ) -> Vec<(f64, f64)> {
        let cfg = &self.config;
        let v_e0 = ego.speed.max(MetersPerSecond::ZERO);
        let dt = cfg.naive_timestep.value();
        let end = cfg.horizon.value();
        let mut intervals: Vec<(f64, f64)> = Vec::new();
        let mut open: Option<(f64, bool)> = None; // (start, frontal)
        let mut t = 0.0;
        while t <= end + 1e-12 {
            stats.constraint_evaluations += 1;
            let s = future.at(Seconds(t));
            let active = s.in_corridor && s.gap.value() >= 0.0;
            match (active, open) {
                (true, None) => {
                    let (d_unreacted, _) = distance_speed_after(v_e0, ego.accel, Seconds(t));
                    let frontal = s.gap.value() >= d_unreacted.value() - 1e-9;
                    open = Some((t, frontal));
                }
                (false, Some((start, frontal))) => {
                    if frontal {
                        intervals.push((start, t - dt));
                    }
                    open = None;
                }
                _ => {}
            }
            t += dt;
        }
        if let Some((start, true)) = open {
            intervals.push((start, end));
        }
        intervals
    }

    /// Checks whether candidate latency `l` is safe: there exists a
    /// maneuver-completion time satisfying Eqs. 1 and 2, and no collision
    /// occurs before the ego even reacts. Returns the verified inner
    /// solution on success.
    #[allow(clippy::too_many_arguments)]
    fn try_latency(
        &self,
        l: Seconds,
        ego: EgoKinematics,
        future: &dyn ActorFuture,
        l0: Seconds,
        intervals: &[(f64, f64)],
        stats: &mut SearchStats,
    ) -> Option<InnerSolution> {
        let cfg = &self.config;
        let v_e0 = ego.speed.max(MetersPerSecond::ZERO);
        let a0 = ego.accel;
        let alpha = match cfg.alpha {
            AlphaModel::ExcessOverCurrent => {
                Seconds((cfg.confirmation_frames as f64 * (l - l0).value()).max(0.0))
            }
            AlphaModel::FullLatency => Seconds(cfg.confirmation_frames as f64 * l.value()),
        };
        let t_r = l + alpha;

        // Pre-reaction guard: while the ego has not yet reacted it travels
        // at unchanged acceleration; it must not out-run the available
        // distance at any threatened instant t < t_r.
        let guard_end = t_r.value().min(cfg.horizon.value());
        let dt = cfg.naive_timestep.value();
        for &(start, stop) in intervals {
            let mut t = start;
            while t < guard_end.min(stop) - 1e-12 {
                stats.constraint_evaluations += 1;
                let s = future.at(Seconds(t));
                let (d, _) = distance_speed_after(v_e0, a0, Seconds(t));
                if d.value() > cfg.c1 * s.gap.value() {
                    return None;
                }
                t += dt;
            }
        }

        let a_b = cfg.braking_decel(a0);
        let (d_e1, v_reacted) = distance_speed_after(v_e0, a0, t_r.min(cfg.horizon));

        if t_r.value() >= cfg.horizon.value() {
            // The ego never reacts inside the analysis window, and the
            // guard found no pre-reaction collision.
            return Some(InnerSolution {
                reaction_time: t_r,
                alpha,
                assumed_braking: a_b,
                maneuver_complete_at: cfg.horizon,
                reaction_distance: d_e1,
                braking_distance: Meters::ZERO,
                allowed_distance: Meters(f64::INFINITY),
                ego_end_speed: v_reacted,
                actor_speed_allowance: MetersPerSecond(f64::INFINITY),
            });
        }

        let budget = match cfg.strategy {
            SearchStrategy::Accelerated => cfg.max_inner_iterations as u64,
            SearchStrategy::Naive => {
                ((cfg.horizon - t_r).value() / cfg.naive_timestep.value()).ceil() as u64 + 1
            }
        };

        let mut t_n = t_r;
        let mut clamped = false;
        for iter in 0..=budget {
            // A collision is only possible while the actor is a frontal
            // threat; skip to the next threatened time.
            let Some(t_eval) = next_threat_time(intervals, t_n.value()) else {
                // The actor stops being a frontal threat before the
                // maneuver needed to conclude: safe as-is.
                return Some(InnerSolution {
                    reaction_time: t_r,
                    alpha,
                    assumed_braking: a_b,
                    maneuver_complete_at: t_n,
                    reaction_distance: d_e1,
                    braking_distance: Meters::ZERO,
                    allowed_distance: Meters(f64::INFINITY),
                    ego_end_speed: v_reacted,
                    actor_speed_allowance: MetersPerSecond(f64::INFINITY),
                });
            };
            t_n = Seconds(t_eval);

            stats.constraint_evaluations += 1;
            let s = future.at(t_n);
            let t_b = Seconds((t_n - t_r).value().max(0.0));
            let (d_e2, v_e_n) = distance_speed_after(v_reacted, -a_b, t_b);
            let v_a_n = s.speed_along.max(MetersPerSecond::ZERO);

            let distance_ok = (d_e1 + d_e2).value() <= cfg.c1 * s.gap.value() + 1e-9;
            let velocity_ok = v_e_n.value() <= cfg.c2 * v_a_n.value() + 1e-9;
            if distance_ok && velocity_ok {
                return Some(InnerSolution {
                    reaction_time: t_r,
                    alpha,
                    assumed_braking: a_b,
                    maneuver_complete_at: t_n,
                    reaction_distance: d_e1,
                    braking_distance: d_e2,
                    allowed_distance: Meters(cfg.c1 * s.gap.value()),
                    ego_end_speed: v_e_n,
                    actor_speed_allowance: MetersPerSecond(cfg.c2 * v_a_n.value()),
                });
            }
            if iter == budget || clamped {
                break;
            }

            let step = match cfg.strategy {
                SearchStrategy::Naive => cfg.naive_timestep,
                SearchStrategy::Accelerated => self.eq3_step(s, d_e1, d_e2, v_e_n, v_a_n, a_b),
            };
            if !step.is_finite() {
                return None;
            }
            t_n += step;
            if t_n.value() >= cfg.horizon.value() {
                // Evaluate once at the horizon boundary, then give up.
                t_n = cfg.horizon;
                clamped = true;
            }
        }
        None
    }

    /// Eq. 3: the δt_n update that lets the accelerated search jump toward
    /// the next critical time instead of stepping naively. `δt_v` is the
    /// braking time needed to shed the velocity excess; `δt_d` the time
    /// scale over which the remaining distance discrepancy resolves.
    fn eq3_step(
        &self,
        s: RelativeState,
        d_e1: Meters,
        d_e2: Meters,
        v_e_n: MetersPerSecond,
        v_a_n: MetersPerSecond,
        a_b: MetersPerSecondSquared,
    ) -> Seconds {
        let cfg = &self.config;
        let gap_d = cfg.c1 * s.gap.value() - d_e1.value() - d_e2.value();
        let gap_v = v_e_n.value() - cfg.c2 * v_a_n.value();
        let ab = a_b.value();
        let dt_d = (v_e_n.value() + (v_e_n.value().powi(2) + 2.0 * ab * gap_d.abs()).sqrt()) / ab;
        let dt_v = gap_v / ab;
        let distance_ok = gap_d >= 0.0;
        let velocity_violated = gap_v >= 0.0;
        let raw = match (distance_ok, velocity_violated) {
            // Distance satisfied, velocity not: brake just long enough.
            (true, true) => dt_v,
            // Distance violated, velocity satisfied: wait for the actor to
            // open distance (re-checked against the actual future).
            (false, false) => dt_d,
            // Both violated: the earlier critical event decides.
            (false, true) => dt_d.min(dt_v),
            // Both satisfied is unreachable (the caller returned already),
            // but step minimally if it happens.
            (true, false) => 0.0,
        };
        // Guarantee forward progress: never step less than the naive
        // timestep.
        Seconds(raw.max(cfg.naive_timestep.value()))
    }
}

/// First time ≥ `from` that lies inside one of the (sorted, disjoint)
/// frontal-threat intervals.
fn next_threat_time(intervals: &[(f64, f64)], from: f64) -> Option<f64> {
    for &(start, stop) in intervals {
        if from <= stop + 1e-12 {
            return Some(from.max(start));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::{ConstantAccelActor, FixedGapActor, StationaryActor};

    fn estimator() -> TolerableLatencyEstimator {
        TolerableLatencyEstimator::new(ZhuyiConfig::paper()).expect("paper config valid")
    }

    fn ego(v: f64, a: f64) -> EgoKinematics {
        EgoKinematics::new(MetersPerSecond(v), MetersPerSecondSquared(a))
    }

    const L0: Seconds = Seconds(1.0 / 30.0);

    #[test]
    fn far_obstacle_tolerates_max_latency() {
        let est =
            estimator().tolerable_latency(ego(20.0, 0.0), &StationaryActor::new(Meters(200.0)), L0);
        assert_eq!(est.outcome, SearchOutcome::Tolerable);
        assert_eq!(est.latency, Seconds(1.0));
    }

    #[test]
    fn latency_decreases_as_gap_shrinks() {
        let e = estimator();
        let mut last = Seconds(f64::INFINITY);
        for gap in [150.0, 80.0, 60.0, 50.0, 45.0] {
            let est = e.tolerable_latency(ego(20.0, 0.0), &StationaryActor::new(Meters(gap)), L0);
            assert!(
                est.latency <= last,
                "gap {gap}: latency {} > previous {last}",
                est.latency
            );
            last = est.latency;
        }
    }

    #[test]
    fn too_close_obstacle_is_infeasible() {
        // 20 m/s with 10 m of room: stopping needs v^2/(2*4.9) ~ 41 m.
        let est =
            estimator().tolerable_latency(ego(20.0, 0.0), &StationaryActor::new(Meters(10.0)), L0);
        assert_eq!(est.outcome, SearchOutcome::Infeasible);
        assert_eq!(est.latency, estimator().config().min_latency);
    }

    #[test]
    fn stationary_obstacle_physics_sanity() {
        // v = 20 m/s, a_b = 4.9: braking distance = 40.8 m. With C1 = 0.9
        // and gap 60 m the allowance is 54 m, leaving ~13 m of reaction
        // travel -> t_r ~ 0.66 s. With K = 5 and l0 = 33 ms, t_r = l +
        // 5(l - l0) = 6l - 0.166, so l ~ 0.14 s. The search (33 ms grid)
        // should land within one step of that.
        let est =
            estimator().tolerable_latency(ego(20.0, 0.0), &StationaryActor::new(Meters(60.0)), L0);
        assert_eq!(est.outcome, SearchOutcome::Tolerable);
        let l = est.latency.value();
        assert!((0.066..=0.20).contains(&l), "latency {l}");
    }

    #[test]
    fn receding_actor_is_unconstraining() {
        // Actor ahead moving away much faster than the ego.
        let f = ConstantAccelActor::new(
            Meters(30.0),
            MetersPerSecond(40.0),
            MetersPerSecondSquared::ZERO,
        );
        let est = estimator().tolerable_latency(ego(20.0, 0.0), &f, L0);
        assert_eq!(est.outcome, SearchOutcome::Tolerable);
        assert_eq!(est.latency, Seconds(1.0));
    }

    #[test]
    fn actor_outside_corridor_is_unconstrained() {
        let f = ConstantAccelActor::new(
            Meters(30.0),
            MetersPerSecond(5.0),
            MetersPerSecondSquared::ZERO,
        )
        .outside_corridor();
        let est = estimator().tolerable_latency(ego(30.0, 0.0), &f, L0);
        assert_eq!(est.outcome, SearchOutcome::Unconstrained);
        assert_eq!(est.latency, Seconds(1.0));
    }

    #[test]
    fn actor_behind_is_unconstrained() {
        let f = ConstantAccelActor::new(
            Meters(-30.0),
            MetersPerSecond(10.0),
            MetersPerSecondSquared::ZERO,
        );
        let est = estimator().tolerable_latency(ego(20.0, 0.0), &f, L0);
        // Gap stays negative: the follower never becomes a frontal threat
        // within the horizon... unless it overtakes. At 10 m/s it never
        // catches a 20 m/s ego.
        assert_eq!(est.outcome, SearchOutcome::Unconstrained);
    }

    #[test]
    fn braking_lead_vehicle_constrains() {
        // Vehicle following (Table 1): lead at 50 m braking to zero.
        let lead = ConstantAccelActor::new(
            Meters(50.0),
            MetersPerSecond(31.3),
            MetersPerSecondSquared(-6.0),
        );
        let est = estimator().tolerable_latency(ego(31.3, 0.0), &lead, L0);
        assert_eq!(est.outcome, SearchOutcome::Tolerable);
        assert!(
            est.latency < Seconds(1.0),
            "a hard-braking lead must constrain latency, got {}",
            est.latency
        );
    }

    #[test]
    fn naive_and_accelerated_agree() {
        let mut naive_cfg = ZhuyiConfig::paper();
        naive_cfg.strategy = SearchStrategy::Naive;
        let naive = TolerableLatencyEstimator::new(naive_cfg).expect("valid");
        let accel = estimator();
        for (v, gap, van) in [
            (20.0, 60.0, 0.0),
            (31.3, 50.0, 10.0),
            (13.4, 30.0, 5.0),
            (26.8, 100.0, 20.0),
            (8.9, 25.0, 0.0),
        ] {
            let f = FixedGapActor::new(Meters(gap), MetersPerSecond(van));
            let ln = naive.tolerable_latency(ego(v, 0.0), &f, L0);
            let la = accel.tolerable_latency(ego(v, 0.0), &f, L0);
            // The accelerated search may be up to one δl more conservative
            // (it can miss a satisfiable t_n the naive scan finds).
            let diff = (ln.latency - la.latency).value();
            assert!(
                (0.0..=0.034).contains(&diff),
                "v={v} gap={gap} van={van}: naive {} vs accelerated {}",
                ln.latency,
                la.latency
            );
        }
    }

    #[test]
    fn accelerated_uses_fewer_evaluations() {
        let mut naive_cfg = ZhuyiConfig::paper();
        naive_cfg.strategy = SearchStrategy::Naive;
        let naive = TolerableLatencyEstimator::new(naive_cfg).expect("valid");
        let accel = estimator();
        let f = StationaryActor::new(Meters(45.0));
        let ln = naive.tolerable_latency(ego(20.0, 0.0), &f, L0);
        let la = accel.tolerable_latency(ego(20.0, 0.0), &f, L0);
        assert!(
            la.stats.constraint_evaluations < ln.stats.constraint_evaluations,
            "accelerated {} vs naive {}",
            la.stats.constraint_evaluations,
            ln.stats.constraint_evaluations
        );
    }

    #[test]
    fn ego_speed_raises_requirement() {
        let e = estimator();
        let f = StationaryActor::new(Meters(80.0));
        let slow = e.tolerable_latency(ego(10.0, 0.0), &f, L0);
        let fast = e.tolerable_latency(ego(25.0, 0.0), &f, L0);
        assert!(fast.latency < slow.latency);
    }

    #[test]
    fn accelerating_ego_needs_lower_latency_than_cruising() {
        let e = estimator();
        let f = StationaryActor::new(Meters(70.0));
        let cruise = e.tolerable_latency(ego(20.0, 0.0), &f, L0);
        let accel = e.tolerable_latency(ego(20.0, 2.5), &f, L0);
        assert!(
            accel.latency <= cruise.latency,
            "accelerating ego covers more d_e1, so tolerable latency must not grow"
        );
    }

    #[test]
    fn current_latency_feeds_alpha() {
        // With alpha = K (l - l0), running at a faster current rate (small
        // l0) makes confirmation of a *higher* candidate latency costlier,
        // so the tolerable latency cannot increase when l0 shrinks.
        let e = estimator();
        let f = StationaryActor::new(Meters(55.0));
        let at_30 = e.tolerable_latency(ego(20.0, 0.0), &f, Seconds(1.0 / 30.0));
        let at_5 = e.tolerable_latency(ego(20.0, 0.0), &f, Seconds(1.0 / 5.0));
        assert!(at_5.latency >= at_30.latency);
    }

    #[test]
    fn full_latency_alpha_is_more_conservative() {
        let mut cfg = ZhuyiConfig::paper();
        cfg.alpha = AlphaModel::FullLatency;
        let strict = TolerableLatencyEstimator::new(cfg).expect("valid");
        let base = estimator();
        let f = StationaryActor::new(Meters(60.0));
        let ls = strict.tolerable_latency(ego(20.0, 0.0), &f, L0);
        let lb = base.tolerable_latency(ego(20.0, 0.0), &f, L0);
        assert!(ls.latency <= lb.latency);
    }

    #[test]
    fn stats_are_populated() {
        let est =
            estimator().tolerable_latency(ego(20.0, 0.0), &StationaryActor::new(Meters(45.0)), L0);
        assert!(est.stats.latency_steps >= 1);
        assert!(est.stats.constraint_evaluations > 0);
        let mut merged = SearchStats::default();
        merged.absorb(est.stats);
        assert_eq!(merged, est.stats);
    }

    #[test]
    fn fpr_reciprocal_of_latency() {
        let est =
            estimator().tolerable_latency(ego(20.0, 0.0), &StationaryActor::new(Meters(45.0)), L0);
        assert!((est.fpr().value() - 1.0 / est.latency.value()).abs() < 1e-9);
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let mut cfg = ZhuyiConfig::paper();
        cfg.c1 = -1.0;
        assert!(TolerableLatencyEstimator::new(cfg).is_err());
    }

    #[test]
    fn negative_ego_speed_treated_as_stopped() {
        let est =
            estimator().tolerable_latency(ego(-5.0, 0.0), &StationaryActor::new(Meters(20.0)), L0);
        // A stopped ego is always safe against a stopped obstacle.
        assert_eq!(est.outcome, SearchOutcome::Tolerable);
        assert_eq!(est.latency, Seconds(1.0));
    }
}
