//! Aggregating per-trajectory latencies into a per-actor estimate
//! (paper Eq. 4).
//!
//! During operation the AV predicts multiple future trajectories per actor,
//! each with a probability. Zhuyi runs the tolerable-latency search per
//! trajectory and combines the results. The paper discusses three choices:
//! the most pessimistic (cover the worst trajectory), a probability-weighted
//! average, and an nth-percentile that "allows the ego to be cautious while
//! being not too pessimistic".
//!
//! Pessimism here means *demanding a smaller latency* (a higher FPR). The
//! percentile is therefore taken from the low end of the latency
//! distribution: covering n% of predicted futures means choosing a latency
//! small enough that at least n% of the probability mass tolerates it.

use av_core::units::Seconds;
use serde::{Deserialize, Serialize};

/// How per-trajectory latencies combine into one per-actor latency (Eq. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Aggregation {
    /// Cover every predicted future: the smallest tolerable latency
    /// (most pessimistic; equals the maximum per-trajectory FPR).
    #[default]
    WorstCase,
    /// Probability-weighted mean latency: "gives more weight to the most
    /// likely future trajectory".
    Mean,
    /// Cover `n` percent of the probability mass (`0 < n ≤ 100`): the
    /// latency tolerated by at least `n`% of futures. `Percentile(100.0)`
    /// equals [`Aggregation::WorstCase`]. The paper's example uses n = 99.
    Percentile(f64),
}

impl Aggregation {
    /// The paper's Eq. 4 example: the 99th percentile.
    pub const P99: Aggregation = Aggregation::Percentile(99.0);

    /// Validates the aggregation mode (percentile bounds).
    pub fn validate(self) -> Result<(), InvalidPercentile> {
        if let Aggregation::Percentile(n) = self {
            if !(n > 0.0 && n <= 100.0 && n.is_finite()) {
                return Err(InvalidPercentile(n));
            }
        }
        Ok(())
    }
}

/// Error: percentile outside `(0, 100]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidPercentile(pub f64);

impl std::fmt::Display for InvalidPercentile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "percentile {} outside (0, 100]", self.0)
    }
}

impl std::error::Error for InvalidPercentile {}

/// Combines `(latency, probability)` pairs per Eq. 4.
///
/// Probabilities are normalized internally; non-positive weights are
/// ignored. Returns `None` when no valid sample remains.
///
/// ```
/// use av_core::units::Seconds;
/// use zhuyi::aggregate::{aggregate_latencies, Aggregation};
///
/// let samples = [(Seconds(0.2), 0.5), (Seconds(1.0), 0.5)];
/// let worst = aggregate_latencies(&samples, Aggregation::WorstCase);
/// assert_eq!(worst, Some(Seconds(0.2)));
/// let mean = aggregate_latencies(&samples, Aggregation::Mean);
/// assert_eq!(mean, Some(Seconds(0.6)));
/// ```
pub fn aggregate_latencies(
    samples: &[(Seconds, f64)],
    aggregation: Aggregation,
) -> Option<Seconds> {
    let mut valid: Vec<(f64, f64)> = samples
        .iter()
        .filter(|(l, p)| l.is_finite() && *p > 0.0 && p.is_finite())
        .map(|(l, p)| (l.value(), *p))
        .collect();
    if valid.is_empty() {
        return None;
    }
    let total: f64 = valid.iter().map(|(_, p)| p).sum();
    match aggregation {
        Aggregation::WorstCase => valid
            .iter()
            .map(|(l, _)| *l)
            .min_by(|a, b| a.partial_cmp(b).expect("finite latencies"))
            .map(Seconds),
        Aggregation::Mean => {
            let mean = valid.iter().map(|(l, p)| l * p).sum::<f64>() / total;
            Some(Seconds(mean))
        }
        Aggregation::Percentile(n) => {
            // Smallest cumulative-probability prefix (from the largest
            // latencies down) that reaches n% of the mass: the returned
            // latency is tolerated by at least n% of futures.
            valid.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite latencies"));
            let target = (1.0 - n / 100.0) * total;
            let mut acc = 0.0;
            for (l, p) in &valid {
                acc += p;
                if acc >= target - 1e-12 {
                    return Some(Seconds(*l));
                }
            }
            // Numerical fallback: the largest latency.
            valid.last().map(|(l, _)| Seconds(*l))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(values: &[(f64, f64)]) -> Vec<(Seconds, f64)> {
        values.iter().map(|(l, p)| (Seconds(*l), *p)).collect()
    }

    #[test]
    fn worst_case_is_min_latency() {
        let samples = s(&[(0.5, 0.7), (0.1, 0.1), (1.0, 0.2)]);
        assert_eq!(
            aggregate_latencies(&samples, Aggregation::WorstCase),
            Some(Seconds(0.1))
        );
    }

    #[test]
    fn mean_weights_by_probability() {
        let samples = s(&[(0.2, 0.9), (1.0, 0.1)]);
        let mean = aggregate_latencies(&samples, Aggregation::Mean).expect("nonempty");
        assert!((mean.value() - 0.28).abs() < 1e-12);
    }

    #[test]
    fn mean_normalizes_unnormalized_weights() {
        let samples = s(&[(0.2, 9.0), (1.0, 1.0)]);
        let mean = aggregate_latencies(&samples, Aggregation::Mean).expect("nonempty");
        assert!((mean.value() - 0.28).abs() < 1e-12);
    }

    #[test]
    fn p100_equals_worst_case() {
        let samples = s(&[(0.5, 0.25), (0.1, 0.25), (0.9, 0.5)]);
        assert_eq!(
            aggregate_latencies(&samples, Aggregation::Percentile(100.0)),
            aggregate_latencies(&samples, Aggregation::WorstCase),
        );
    }

    #[test]
    fn p99_trims_rare_outlier() {
        // A 0.4%-probability catastrophic trajectory demanding 33 ms; the
        // other futures tolerate 0.5 s. Covering 99% ignores the outlier.
        let mut samples = s(&[(0.033, 0.004)]);
        samples.extend(s(&[(0.5, 0.996)]));
        let p99 = aggregate_latencies(&samples, Aggregation::P99).expect("nonempty");
        assert_eq!(p99, Seconds(0.5));
        // But worst-case still honors it.
        assert_eq!(
            aggregate_latencies(&samples, Aggregation::WorstCase),
            Some(Seconds(0.033))
        );
    }

    #[test]
    fn p99_keeps_significant_tail() {
        // 5% of futures demand 0.1 s: covering 99% must honor them.
        let samples = s(&[(0.1, 0.05), (0.5, 0.95)]);
        let p99 = aggregate_latencies(&samples, Aggregation::P99).expect("nonempty");
        assert_eq!(p99, Seconds(0.1));
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(aggregate_latencies(&[], Aggregation::WorstCase), None);
        let zero_mass = s(&[(0.5, 0.0)]);
        assert_eq!(aggregate_latencies(&zero_mass, Aggregation::Mean), None);
        let nan_latency = [(Seconds(f64::NAN), 1.0)];
        assert_eq!(
            aggregate_latencies(&nan_latency, Aggregation::WorstCase),
            None
        );
    }

    #[test]
    fn single_sample_is_identity_for_all_modes() {
        let samples = s(&[(0.33, 1.0)]);
        for agg in [
            Aggregation::WorstCase,
            Aggregation::Mean,
            Aggregation::P99,
            Aggregation::Percentile(50.0),
        ] {
            assert_eq!(aggregate_latencies(&samples, agg), Some(Seconds(0.33)));
        }
    }

    #[test]
    fn percentile_validation() {
        assert!(Aggregation::Percentile(0.0).validate().is_err());
        assert!(Aggregation::Percentile(101.0).validate().is_err());
        assert!(Aggregation::Percentile(f64::NAN).validate().is_err());
        assert!(Aggregation::P99.validate().is_ok());
        assert!(Aggregation::WorstCase.validate().is_ok());
        let msg = InvalidPercentile(0.0).to_string();
        assert!(msg.contains("(0, 100]"));
    }
}
