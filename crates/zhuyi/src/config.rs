//! Configuration of the Zhuyi model (paper §2 and §4.1).

use av_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the actor-confirmation delay α is modeled (paper §2.1).
///
/// The reaction time is t_r = l + α, where `l` is the candidate tolerable
/// latency. The paper models α = K·(l − l₀) with `l₀` the processing latency
/// the system is currently running at; "based on the smoothing/filtering
/// algorithm employed by the perception solution, a different model can be
/// used".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AlphaModel {
    /// α = K·(l − l₀), clamped at zero when `l < l₀` (a candidate rate
    /// faster than the current one adds no confirmation delay). The paper's
    /// model.
    #[default]
    ExcessOverCurrent,
    /// α = K·l: every confirmation frame costs a full candidate period.
    /// More conservative; used as an ablation.
    FullLatency,
}

/// Which inner-loop search the estimator runs over candidate collision
/// times t'_n (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SearchStrategy {
    /// Advance t'_n by the paper's Eq. 3 δt_n step, for at most `M`
    /// iterations per candidate latency. The paper's optimized algorithm.
    #[default]
    Accelerated,
    /// Advance t'_n by one fixed timestep at a time until the horizon.
    /// The paper's "naive approach"; used to validate the accelerated
    /// search and as the baseline in the ablation benchmark.
    Naive,
}

/// Error validating a [`ZhuyiConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A conservatism factor is outside its valid range.
    FactorOutOfRange {
        /// Which factor ("C1", "C2", "C4").
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A duration must be positive and finite.
    NonPositiveDuration {
        /// Which duration field.
        name: &'static str,
        /// The rejected value.
        value: Seconds,
    },
    /// The latency range is inverted (`min_latency > max_latency`).
    InvertedLatencyRange {
        /// Lower bound supplied.
        min: Seconds,
        /// Upper bound supplied.
        max: Seconds,
    },
    /// The braking deceleration must be positive and finite.
    NonPositiveBraking(MetersPerSecondSquared),
    /// The inner iteration budget must be nonzero.
    ZeroIterations,
    /// The lateral corridor margin must be non-negative and finite.
    NegativeCorridorMargin(Meters),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::FactorOutOfRange { name, value } => {
                write!(f, "factor {name} = {value} outside its valid range")
            }
            ConfigError::NonPositiveDuration { name, value } => {
                write!(f, "duration {name} = {value} must be positive and finite")
            }
            ConfigError::InvertedLatencyRange { min, max } => {
                write!(f, "latency range inverted: min {min} > max {max}")
            }
            ConfigError::NonPositiveBraking(a) => {
                write!(f, "braking deceleration {a} must be positive and finite")
            }
            ConfigError::ZeroIterations => write!(f, "inner iteration budget must be nonzero"),
            ConfigError::NegativeCorridorMargin(m) => {
                write!(f, "corridor margin {m} must be non-negative and finite")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// All knobs of the Zhuyi model.
///
/// [`ZhuyiConfig::paper`] reproduces §4.1 exactly: C1 = C2 = 0.9,
/// C3 = 4.9 m/s², C4 = 1.1, K = 5, M = 10, δl = 33 ms, l ∈ [33 ms, 1 s].
///
/// ```
/// use zhuyi::config::ZhuyiConfig;
/// let cfg = ZhuyiConfig::paper();
/// assert_eq!(cfg.latency_steps(), 30); // the paper's L = 1s / 33ms
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZhuyiConfig {
    /// Distance conservatism factor C1 ∈ (0, 1] (Eq. 1).
    pub c1: f64,
    /// Velocity conservatism factor C2 ∈ (0, 1] (Eq. 2).
    pub c2: f64,
    /// Minimum braking deceleration C3, as a positive magnitude (m/s²).
    pub min_brake_decel: MetersPerSecondSquared,
    /// Braking headroom factor C4 ≥ 1: a_b = max(C3, C4·|a₀|) when the ego
    /// is already decelerating at a₀.
    pub brake_headroom: f64,
    /// Frames needed to confirm an actor, K.
    pub confirmation_frames: u32,
    /// Inner-loop iteration budget M for the accelerated search.
    pub max_inner_iterations: u32,
    /// Largest candidate latency (the search starts here), max(l).
    pub max_latency: Seconds,
    /// Smallest candidate latency (the search stops here), min(l).
    pub min_latency: Seconds,
    /// Latency decrement δl between candidates.
    pub latency_step: Seconds,
    /// Fixed timestep of the naive search, and the granularity used to scan
    /// for threat intervals.
    pub naive_timestep: Seconds,
    /// How far into the future actor trajectories are examined.
    pub horizon: Seconds,
    /// Inner-loop search strategy.
    pub strategy: SearchStrategy,
    /// Confirmation-delay model.
    pub alpha: AlphaModel,
    /// Extra lateral slack added to the half-width sum when deciding whether
    /// an actor occupies the ego's corridor.
    pub corridor_margin: Meters,
}

impl ZhuyiConfig {
    /// The exact parameterization of the paper's §4.1.
    pub fn paper() -> Self {
        Self {
            c1: 0.9,
            c2: 0.9,
            min_brake_decel: MetersPerSecondSquared(4.9),
            brake_headroom: 1.1,
            confirmation_frames: 5,
            max_inner_iterations: 10,
            max_latency: Seconds(1.0),
            min_latency: Seconds::from_millis(33.0),
            latency_step: Seconds::from_millis(33.0),
            naive_timestep: Seconds::from_millis(10.0),
            horizon: Seconds(12.0),
            strategy: SearchStrategy::Accelerated,
            alpha: AlphaModel::ExcessOverCurrent,
            corridor_margin: Meters(0.3),
        }
    }

    /// Number of candidate latencies the outer loop visits,
    /// L = max(l)/δl (paper: 30).
    pub fn latency_steps(&self) -> u32 {
        (self.max_latency.value() / self.latency_step.value()).round() as u32
    }

    /// Checks every invariant; [`crate::TolerableLatencyEstimator::new`]
    /// calls this so an estimator can only exist over a valid config.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, value) in [("C1", self.c1), ("C2", self.c2)] {
            if !(value > 0.0 && value <= 1.0 && value.is_finite()) {
                return Err(ConfigError::FactorOutOfRange { name, value });
            }
        }
        if !(self.brake_headroom >= 1.0 && self.brake_headroom.is_finite()) {
            return Err(ConfigError::FactorOutOfRange {
                name: "C4",
                value: self.brake_headroom,
            });
        }
        if !(self.min_brake_decel.value() > 0.0 && self.min_brake_decel.is_finite()) {
            return Err(ConfigError::NonPositiveBraking(self.min_brake_decel));
        }
        for (name, value) in [
            ("max_latency", self.max_latency),
            ("min_latency", self.min_latency),
            ("latency_step", self.latency_step),
            ("naive_timestep", self.naive_timestep),
            ("horizon", self.horizon),
        ] {
            if !(value.value() > 0.0 && value.is_finite()) {
                return Err(ConfigError::NonPositiveDuration { name, value });
            }
        }
        if self.min_latency > self.max_latency {
            return Err(ConfigError::InvertedLatencyRange {
                min: self.min_latency,
                max: self.max_latency,
            });
        }
        if self.max_inner_iterations == 0 {
            return Err(ConfigError::ZeroIterations);
        }
        if !(self.corridor_margin.value() >= 0.0 && self.corridor_margin.is_finite()) {
            return Err(ConfigError::NegativeCorridorMargin(self.corridor_margin));
        }
        Ok(())
    }

    /// The braking deceleration magnitude a_b = max(C3, C4·|a₀|) the model
    /// assumes the ego can apply, given the ego's current acceleration
    /// (deceleration contributes; forward acceleration does not).
    pub fn braking_decel(&self, current_accel: MetersPerSecondSquared) -> MetersPerSecondSquared {
        let current_decel = (-current_accel.value()).max(0.0);
        MetersPerSecondSquared(
            self.min_brake_decel
                .value()
                .max(self.brake_headroom * current_decel),
        )
    }
}

impl Default for ZhuyiConfig {
    /// The paper's parameters.
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_section_4_1() {
        let c = ZhuyiConfig::paper();
        assert_eq!(c.c1, 0.9);
        assert_eq!(c.c2, 0.9);
        assert_eq!(c.min_brake_decel, MetersPerSecondSquared(4.9));
        assert_eq!(c.brake_headroom, 1.1);
        assert_eq!(c.confirmation_frames, 5);
        assert_eq!(c.max_inner_iterations, 10);
        assert_eq!(c.latency_steps(), 30);
        c.validate().expect("paper preset is valid");
    }

    #[test]
    fn braking_decel_uses_headroom_when_already_braking() {
        let c = ZhuyiConfig::paper();
        // Accelerating ego: the model can still brake at C3.
        assert_eq!(
            c.braking_decel(MetersPerSecondSquared(2.0)),
            MetersPerSecondSquared(4.9)
        );
        // Mild braking: C3 still dominates.
        assert_eq!(
            c.braking_decel(MetersPerSecondSquared(-2.0)),
            MetersPerSecondSquared(4.9)
        );
        // Hard braking at 6 m/s^2: C4 * 6 = 6.6 dominates.
        let hard = c.braking_decel(MetersPerSecondSquared(-6.0));
        assert!((hard.value() - 6.6).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_factors() {
        let mut c = ZhuyiConfig::paper();
        c.c1 = 0.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::FactorOutOfRange { name: "C1", .. })
        ));
        let mut c = ZhuyiConfig::paper();
        c.c2 = 1.5;
        assert!(c.validate().is_err());
        let mut c = ZhuyiConfig::paper();
        c.brake_headroom = 0.5;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::FactorOutOfRange { name: "C4", .. })
        ));
    }

    #[test]
    fn validation_rejects_bad_durations() {
        let mut c = ZhuyiConfig::paper();
        c.latency_step = Seconds(0.0);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositiveDuration {
                name: "latency_step",
                ..
            })
        ));
        let mut c = ZhuyiConfig::paper();
        c.min_latency = Seconds(2.0);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::InvertedLatencyRange { .. })
        ));
        let mut c = ZhuyiConfig::paper();
        c.max_inner_iterations = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroIterations));
        let mut c = ZhuyiConfig::paper();
        c.min_brake_decel = MetersPerSecondSquared(-1.0);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositiveBraking(_))
        ));
        let mut c = ZhuyiConfig::paper();
        c.corridor_margin = Meters(-0.1);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NegativeCorridorMargin(_))
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let msg = ConfigError::FactorOutOfRange {
            name: "C1",
            value: 2.0,
        }
        .to_string();
        assert!(msg.contains("C1") && msg.contains('2'));
        let msg = ConfigError::InvertedLatencyRange {
            min: Seconds(2.0),
            max: Seconds(1.0),
        }
        .to_string();
        assert!(msg.contains("inverted"));
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(ZhuyiConfig::default(), ZhuyiConfig::paper());
    }
}
