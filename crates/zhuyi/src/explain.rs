//! Explainable estimates: *why* a latency was granted or refused.
//!
//! A safety tool that emits a bare "167 ms" invites mistrust. An
//! [`Explanation`] carries the full arithmetic behind an estimate — the
//! reaction-time split l + α, the assumed braking, the maneuver-completion
//! time the search verified, and the distance/velocity budget at that
//! instant — so a reviewer can recompute Eqs. 1 and 2 by hand.

use crate::estimator::{
    EgoKinematics, InnerSolution, LatencyEstimate, SearchOutcome, SearchStats,
    TolerableLatencyEstimator,
};
use crate::future::ActorFuture;
use av_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A latency estimate together with the inner solution that justifies it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// The estimate being explained.
    pub estimate: LatencyEstimate,
    /// The verified inner solution, present for
    /// [`SearchOutcome::Tolerable`] results (absent for unconstrained
    /// actors, where no maneuver is needed, and infeasible ones, where
    /// none exists).
    pub solution: Option<InnerSolution>,
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.estimate.outcome {
            SearchOutcome::Unconstrained => write!(
                f,
                "unconstrained: the actor never becomes a frontal threat within the horizon \
                 -> {} ({})",
                self.estimate.latency,
                self.estimate.fpr()
            ),
            SearchOutcome::Infeasible => write!(
                f,
                "infeasible: no latency in range avoids the collision; even {} \
                 ({}) fails Eq. 1/2",
                self.estimate.latency,
                self.estimate.fpr()
            ),
            SearchOutcome::Tolerable => {
                write!(
                    f,
                    "tolerable latency {} ({})",
                    self.estimate.latency,
                    self.estimate.fpr()
                )?;
                if let Some(sol) = &self.solution {
                    write!(
                        f,
                        ": react within {} (latency + confirmation {}), then brake at {}; \
                         by t_n = {} the ego has used {} + {} of the allowed {} and runs {} \
                         against an allowance of {}",
                        sol.reaction_time,
                        sol.alpha,
                        sol.assumed_braking,
                        sol.maneuver_complete_at,
                        sol.reaction_distance,
                        sol.braking_distance,
                        sol.allowed_distance,
                        sol.ego_end_speed,
                        sol.actor_speed_allowance,
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl TolerableLatencyEstimator {
    /// Like [`TolerableLatencyEstimator::tolerable_latency`], but also
    /// returns the verified inner solution for tolerable outcomes.
    ///
    /// Costs one extra satisfiability check at the accepted latency.
    ///
    /// ```
    /// use av_core::prelude::*;
    /// use zhuyi::future::StationaryActor;
    /// use zhuyi::{EgoKinematics, TolerableLatencyEstimator, ZhuyiConfig};
    ///
    /// # fn main() -> Result<(), zhuyi::config::ConfigError> {
    /// let estimator = TolerableLatencyEstimator::new(ZhuyiConfig::paper())?;
    /// let ego = EgoKinematics::new(MetersPerSecond(20.0), MetersPerSecondSquared(0.0));
    /// let explanation = estimator.explain(ego, &StationaryActor::new(Meters(60.0)),
    ///                                     Seconds(1.0 / 30.0));
    /// let sol = explanation.solution.expect("tolerable outcome has a solution");
    /// // Eq. 1 holds at the verified maneuver point:
    /// assert!(sol.reaction_distance + sol.braking_distance <= sol.allowed_distance);
    /// println!("{explanation}");
    /// # Ok(())
    /// # }
    /// ```
    pub fn explain(
        &self,
        ego: EgoKinematics,
        future: &dyn ActorFuture,
        current_latency: Seconds,
    ) -> Explanation {
        let estimate = self.tolerable_latency(ego, future, current_latency);
        let solution = match estimate.outcome {
            SearchOutcome::Tolerable => {
                let mut scratch = SearchStats::default();
                let intervals = self.frontal_intervals_for_explain(ego, future, &mut scratch);
                self.try_latency_for_explain(
                    estimate.latency,
                    ego,
                    future,
                    current_latency,
                    &intervals,
                    &mut scratch,
                )
            }
            _ => None,
        };
        Explanation { estimate, solution }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::{ConstantAccelActor, StationaryActor};
    use crate::ZhuyiConfig;

    fn estimator() -> TolerableLatencyEstimator {
        TolerableLatencyEstimator::new(ZhuyiConfig::paper()).expect("valid")
    }

    fn ego(v: f64) -> EgoKinematics {
        EgoKinematics::new(MetersPerSecond(v), MetersPerSecondSquared::ZERO)
    }

    const L0: Seconds = Seconds(1.0 / 30.0);

    #[test]
    fn tolerable_explanation_satisfies_both_equations() {
        let e = estimator();
        let exp = e.explain(ego(20.0), &StationaryActor::new(Meters(60.0)), L0);
        assert_eq!(exp.estimate.outcome, SearchOutcome::Tolerable);
        let sol = exp.solution.expect("solution recorded");
        // Eq. 1.
        assert!(
            (sol.reaction_distance + sol.braking_distance).value()
                <= sol.allowed_distance.value() + 1e-6
        );
        // Eq. 2.
        assert!(sol.ego_end_speed.value() <= sol.actor_speed_allowance.value() + 1e-6);
        // Timeline sanity.
        assert!(sol.maneuver_complete_at >= sol.reaction_time);
        assert!(sol.reaction_time >= exp.estimate.latency);
        assert!(sol.alpha.value() >= 0.0);
        // Braking at least C3.
        assert!(sol.assumed_braking.value() >= 4.9 - 1e-9);
    }

    #[test]
    fn explanation_matches_plain_estimate() {
        let e = estimator();
        let future = ConstantAccelActor::new(
            Meters(50.0),
            MetersPerSecond(25.0),
            MetersPerSecondSquared(-5.0),
        );
        let plain = e.tolerable_latency(ego(28.0), &future, L0);
        let exp = e.explain(ego(28.0), &future, L0);
        assert_eq!(plain.latency, exp.estimate.latency);
        assert_eq!(plain.outcome, exp.estimate.outcome);
    }

    #[test]
    fn infeasible_and_unconstrained_have_no_solution() {
        let e = estimator();
        let too_close = e.explain(ego(30.0), &StationaryActor::new(Meters(5.0)), L0);
        assert_eq!(too_close.estimate.outcome, SearchOutcome::Infeasible);
        assert!(too_close.solution.is_none());
        assert!(too_close.to_string().contains("infeasible"));

        let behind = ConstantAccelActor::new(
            Meters(-30.0),
            MetersPerSecond(5.0),
            MetersPerSecondSquared::ZERO,
        );
        let un = e.explain(ego(20.0), &behind, L0);
        assert_eq!(un.estimate.outcome, SearchOutcome::Unconstrained);
        assert!(un.solution.is_none());
        assert!(un.to_string().contains("unconstrained"));
    }

    #[test]
    fn display_is_recomputable_prose() {
        let e = estimator();
        let exp = e.explain(ego(20.0), &StationaryActor::new(Meters(60.0)), L0);
        let text = exp.to_string();
        assert!(text.contains("react within"));
        assert!(text.contains("brake at"));
        assert!(text.contains("FPR"));
    }
}
