//! The multi-camera rig mounted on the ego.

use crate::camera::{Camera, CameraKind};
use av_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::f64::consts::{FRAC_PI_2, PI};

/// Index of a camera within a [`CameraRig`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct CameraId(pub usize);

impl std::fmt::Display for CameraId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cam{}", self.0)
    }
}

/// The set of cameras mounted on the ego vehicle.
///
/// ```
/// use av_perception::rig::CameraRig;
/// use av_perception::camera::CameraKind;
///
/// let rig = CameraRig::drive_av();
/// assert_eq!(rig.len(), 5);
/// assert!(rig.find(CameraKind::FrontWide).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CameraRig {
    cameras: Vec<Camera>,
}

impl CameraRig {
    /// Builds a rig from an explicit camera list.
    ///
    /// # Panics
    ///
    /// Panics if `cameras` is empty.
    pub fn new(cameras: Vec<Camera>) -> Self {
        assert!(
            !cameras.is_empty(),
            "a camera rig needs at least one camera"
        );
        Self { cameras }
    }

    /// The paper's five-camera configuration (§4.1): front 60°, front 120°,
    /// left, right, and rear.
    pub fn drive_av() -> Self {
        Self::new(vec![
            Camera::new(
                CameraKind::FrontNarrow,
                Radians(0.0),
                Radians::from_degrees(60.0),
                Meters(250.0),
            ),
            Camera::new(
                CameraKind::FrontWide,
                Radians(0.0),
                Radians::from_degrees(120.0),
                Meters(150.0),
            ),
            Camera::new(
                CameraKind::Left,
                Radians(FRAC_PI_2),
                Radians::from_degrees(120.0),
                Meters(80.0),
            ),
            Camera::new(
                CameraKind::Right,
                Radians(-FRAC_PI_2),
                Radians::from_degrees(120.0),
                Meters(80.0),
            ),
            Camera::new(
                CameraKind::Rear,
                Radians(PI),
                Radians::from_degrees(120.0),
                Meters(100.0),
            ),
        ])
    }

    /// A Hyperion-8-class 12-camera rig (the paper's §1 motivation speaks
    /// of "about a dozen high-resolution cameras"): the five-camera core
    /// plus near-field fisheyes on all four sides, two rear-quarter
    /// cameras and a long-range narrow front.
    ///
    /// Kinds repeat (e.g. several [`CameraKind::Left`]-mounted units);
    /// use indices ([`CameraId`]) to address specific cameras on this rig.
    pub fn hyperion_12() -> Self {
        let mut cameras = Self::drive_av().cameras.clone();
        let fisheye = Radians::from_degrees(190.0);
        cameras.extend([
            // Near-field fisheyes (parking / close-cut-in coverage).
            Camera::new(CameraKind::FrontWide, Radians(0.0), fisheye, Meters(25.0)),
            Camera::new(CameraKind::Left, Radians(FRAC_PI_2), fisheye, Meters(25.0)),
            Camera::new(
                CameraKind::Right,
                Radians(-FRAC_PI_2),
                fisheye,
                Meters(25.0),
            ),
            Camera::new(CameraKind::Rear, Radians(PI), fisheye, Meters(25.0)),
            // Rear-quarter cameras (overtaking traffic).
            Camera::new(
                CameraKind::Left,
                Radians(3.0 * FRAC_PI_2 / 2.0),
                Radians::from_degrees(100.0),
                Meters(100.0),
            ),
            Camera::new(
                CameraKind::Right,
                Radians(-3.0 * FRAC_PI_2 / 2.0),
                Radians::from_degrees(100.0),
                Meters(100.0),
            ),
            // Long-range narrow front (highway).
            Camera::new(
                CameraKind::FrontNarrow,
                Radians(0.0),
                Radians::from_degrees(30.0),
                Meters(400.0),
            ),
        ]);
        Self::new(cameras)
    }

    /// The three cameras the paper's Table 1 aggregates (front-120, left,
    /// right), in that order.
    pub fn table1_cameras(&self) -> Vec<CameraId> {
        [CameraKind::FrontWide, CameraKind::Left, CameraKind::Right]
            .into_iter()
            .filter_map(|k| self.find(k))
            .collect()
    }

    /// Number of cameras in the rig.
    #[inline]
    pub fn len(&self) -> usize {
        self.cameras.len()
    }

    /// `false`: rigs are never empty (enforced at construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cameras.is_empty()
    }

    /// The cameras in rig order.
    #[inline]
    pub fn cameras(&self) -> &[Camera] {
        &self.cameras
    }

    /// The camera with index `id`, or `None` if out of range.
    #[inline]
    pub fn camera(&self, id: CameraId) -> Option<&Camera> {
        self.cameras.get(id.0)
    }

    /// Finds the first camera of a given kind.
    pub fn find(&self, kind: CameraKind) -> Option<CameraId> {
        self.cameras
            .iter()
            .position(|c| c.kind() == kind)
            .map(CameraId)
    }

    /// Iterates `(id, camera)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CameraId, &Camera)> {
        self.cameras
            .iter()
            .enumerate()
            .map(|(i, c)| (CameraId(i), c))
    }

    /// For each camera, the ids of `actors` it currently sees given the
    /// ego's pose. The outer vector is indexed by [`CameraId`].
    pub fn visible_actors(&self, ego: &VehicleState, actors: &[Agent]) -> Vec<Vec<ActorId>> {
        self.cameras
            .iter()
            .map(|cam| {
                actors
                    .iter()
                    .filter(|a| cam.sees_agent(ego, a))
                    .map(|a| a.id)
                    .collect()
            })
            .collect()
    }

    /// Ids of actors visible to *any* camera.
    pub fn any_visible(&self, ego: &VehicleState, actors: &[Agent]) -> Vec<ActorId> {
        let mut seen: Vec<ActorId> = actors
            .iter()
            .filter(|a| self.cameras.iter().any(|c| c.sees_agent(ego, a)))
            .map(|a| a.id)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen
    }
}

impl Default for CameraRig {
    /// The paper's five-camera rig.
    fn default() -> Self {
        Self::drive_av()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent(id: u32, x: f64, y: f64) -> Agent {
        Agent::new(
            ActorId(id),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::at_rest(Vec2::new(x, y), Radians(0.0)),
        )
    }

    #[test]
    fn five_camera_preset() {
        let rig = CameraRig::drive_av();
        assert_eq!(rig.len(), 5);
        assert!(!rig.is_empty());
        for kind in CameraKind::ALL {
            assert!(rig.find(kind).is_some(), "missing {kind}");
        }
        assert_eq!(rig.table1_cameras().len(), 3);
    }

    #[test]
    fn front_actor_seen_by_front_cameras_only() {
        let rig = CameraRig::drive_av();
        let ego = VehicleState::at_rest(Vec2::ZERO, Radians(0.0));
        let actors = [agent(1, 60.0, 0.0)];
        let vis = rig.visible_actors(&ego, &actors);
        let front_narrow = rig.find(CameraKind::FrontNarrow).expect("present");
        let front_wide = rig.find(CameraKind::FrontWide).expect("present");
        let rear = rig.find(CameraKind::Rear).expect("present");
        assert!(vis[front_narrow.0].contains(&ActorId(1)));
        assert!(vis[front_wide.0].contains(&ActorId(1)));
        assert!(vis[rear.0].is_empty());
    }

    #[test]
    fn side_actor_seen_by_side_camera() {
        let rig = CameraRig::drive_av();
        let ego = VehicleState::at_rest(Vec2::ZERO, Radians(0.0));
        // Directly to the left, slightly ahead.
        let actors = [agent(1, 2.0, 15.0)];
        let vis = rig.visible_actors(&ego, &actors);
        let left = rig.find(CameraKind::Left).expect("present");
        let right = rig.find(CameraKind::Right).expect("present");
        assert!(vis[left.0].contains(&ActorId(1)));
        assert!(vis[right.0].is_empty());
    }

    #[test]
    fn any_visible_dedups_across_cameras() {
        let rig = CameraRig::drive_av();
        let ego = VehicleState::at_rest(Vec2::ZERO, Radians(0.0));
        // Front-left: seen by front-wide and left cameras.
        let actors = [agent(1, 20.0, 15.0), agent(2, -500.0, 0.0)];
        let seen = rig.any_visible(&ego, &actors);
        assert_eq!(seen, vec![ActorId(1)]);
    }

    #[test]
    fn hyperion_rig_has_twelve_cameras() {
        let rig = CameraRig::hyperion_12();
        assert_eq!(rig.len(), 12);
        // Full angular coverage: any bearing within 20 m is seen by some
        // camera.
        let ego = VehicleState::at_rest(Vec2::ZERO, Radians(0.0));
        for i in 0..36 {
            let angle = Radians(i as f64 * std::f64::consts::TAU / 36.0);
            let target = Vec2::from_heading(angle) * 20.0;
            assert!(
                rig.cameras().iter().any(|c| c.sees(&ego, target)),
                "blind spot at {angle}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_rig_rejected() {
        let _ = CameraRig::new(vec![]);
    }
}
