//! Line-of-sight occlusion between actors.
//!
//! A camera cannot see an actor hidden behind another vehicle. This is the
//! mechanism that makes the paper's Cut-out scenarios dangerous: the static
//! obstacle only becomes visible once the lead actor leaves the ego's lane.
//! (Note: the *Zhuyi model* itself does not reason about occlusion — the
//! paper lists that as future work — but the perception substrate must
//! model it for scenario realism.)

use av_core::prelude::*;
use av_core::scene::SceneColumns;

/// `true` when the line of sight from `viewpoint` to `target`'s center is
/// blocked by any of `others` (the target itself and the ego are skipped by
/// id).
///
/// The test is deliberately simple — center-to-center ray against slightly
/// shrunken footprints — erring toward visibility: partial occlusion does
/// not hide an actor, mirroring a perception stack that detects partially
/// visible vehicles.
///
/// ```
/// use av_core::prelude::*;
/// use av_perception::occlusion::occluded;
///
/// let viewpoint = Vec2::ZERO;
/// let hidden = Agent::new(ActorId(2), ActorKind::StaticObstacle, Dimensions::OBSTACLE,
///                         VehicleState::at_rest(Vec2::new(60.0, 0.0), Radians(0.0)));
/// let blocker = Agent::new(ActorId(1), ActorKind::Vehicle, Dimensions::CAR,
///                          VehicleState::at_rest(Vec2::new(30.0, 0.0), Radians(0.0)));
/// assert!(occluded(viewpoint, &hidden, &[blocker]));
/// ```
pub fn occluded(viewpoint: Vec2, target: &Agent, others: &[Agent]) -> bool {
    let end = target.state.position;
    others.iter().any(|other| {
        other.id != target.id
            && !other.id.is_ego()
            && shrunken(other.state.position, other.state.heading, other.dims)
                .intersects_segment(viewpoint, end)
    })
}

/// Fills `out` (cleared first) with every actor's 20%-shrunken blocker
/// footprint — prepared for repeated segment tests — in actor order.
/// This is the per-tick precomputation behind [`occluded_against`]: each
/// prepared rect costs one sin/cos pair, so building them once per tick
/// instead of once per target–blocker pair hoists the trig out of the
/// occlusion inner loop.
pub fn fill_shrunken_footprints(columns: &SceneColumns, out: &mut Vec<PreparedRect>) {
    out.clear();
    let (positions, headings, dims) = (columns.positions(), columns.headings(), columns.dims());
    out.extend((0..columns.len()).map(|j| shrunken(positions[j], headings[j], dims[j]).prepared()));
}

/// [`occluded`] for actor `target` of a struct-of-arrays snapshot,
/// against prebuilt shrunken footprints (from
/// [`fill_shrunken_footprints`] on the same snapshot) — the form the
/// perception hot loop uses. The test itself — center-to-center ray
/// against 20%-shrunken footprints, skipping the target and the ego by
/// id, in actor order — is arithmetic-identical to the AoS form.
///
/// # Panics
///
/// Panics if `target >= columns.len()` or `shrunken` is shorter than the
/// actor count.
pub fn occluded_against(
    viewpoint: Vec2,
    target: usize,
    columns: &SceneColumns,
    shrunken: &[PreparedRect],
) -> bool {
    let end = columns.positions()[target];
    let target_id = columns.ids()[target];
    let ids = columns.ids();
    (0..columns.len()).any(|j| {
        ids[j] != target_id && !ids[j].is_ego() && shrunken[j].intersects_segment(viewpoint, end)
    })
}

/// The fraction of a blocker's footprint that participates in the
/// line-of-sight test (each extent is scaled by this before the segment
/// intersection, so grazing sight lines count as visible — partial
/// occlusion errs toward visibility). Exported so conservative
/// visibility certificates (the lane-batch retirement logic in
/// `av-sim::batch`) can bound what a blocker could ever occlude without
/// duplicating the constant.
pub const BLOCKER_SHRINK: f64 = 0.8;

/// The blocker footprint scaled by [`BLOCKER_SHRINK`].
fn shrunken(position: Vec2, heading: Radians, dims: Dimensions) -> OrientedRect {
    OrientedRect::new(
        position,
        heading,
        dims.length * BLOCKER_SHRINK,
        dims.width * BLOCKER_SHRINK,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent(id: u32, x: f64, y: f64) -> Agent {
        Agent::new(
            ActorId(id),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::at_rest(Vec2::new(x, y), Radians(0.0)),
        )
    }

    #[test]
    fn blocker_directly_in_line_occludes() {
        let target = agent(2, 60.0, 0.0);
        let blocker = agent(1, 30.0, 0.0);
        assert!(occluded(Vec2::ZERO, &target, &[blocker, target]));
    }

    #[test]
    fn offset_blocker_does_not_occlude() {
        let target = agent(2, 60.0, 0.0);
        let blocker = agent(1, 30.0, 3.7); // adjacent lane
        assert!(!occluded(Vec2::ZERO, &target, &[blocker, target]));
    }

    #[test]
    fn target_never_occludes_itself() {
        let target = agent(2, 60.0, 0.0);
        assert!(!occluded(Vec2::ZERO, &target, &[target]));
    }

    #[test]
    fn reveal_when_blocker_moves_aside() {
        let target = agent(2, 60.0, 0.0);
        // Cut-out in progress: the lead is halfway into the next lane; its
        // shrunken footprint spans y in [-0.72, 0.72] around y=1.9 ->
        // [1.18, 2.62], clearing the y=0 sight line.
        let blocker = agent(1, 30.0, 1.9);
        assert!(!occluded(Vec2::ZERO, &target, &[blocker]));
        // Only slightly shifted: still blocking.
        let blocker_close = agent(1, 30.0, 0.5);
        assert!(occluded(Vec2::ZERO, &target, &[blocker_close]));
    }

    #[test]
    fn behind_viewpoint_blocker_is_irrelevant() {
        let target = agent(2, 60.0, 0.0);
        let behind = agent(1, -20.0, 0.0);
        assert!(!occluded(Vec2::ZERO, &target, &[behind]));
    }
}
