//! Perception pipeline model for the Zhuyi (DAC 2022) reproduction.
//!
//! This crate is the workspace's substitute for the paper's DNN perception
//! stack. It models exactly the properties the paper's experiments exercise:
//!
//! - a **camera rig** ([`rig::CameraRig`]) with per-camera field of view and
//!   range (§4.1's five-camera vehicle),
//! - **frame sampling** at a configurable per-camera FPR
//!   ([`sampler::FrameSampler`]) — the experiments' independent variable,
//! - **K-frame confirmation** and **stale tracks**
//!   ([`world_model::WorldModel`]) — the mechanism behind the paper's
//!   reaction-time term t_r = l + α with α = K·(l − l₀),
//! - the fused [`system::PerceptionSystem`] that the simulator's ego policy
//!   consumes.
//!
//! Object classification accuracy, occlusion and sensor noise are out of
//! scope, as they are in the paper's model (listed there as future work).
//!
//! # Example
//!
//! ```
//! use av_core::prelude::*;
//! use av_core::scene::Scene;
//! use av_perception::prelude::*;
//!
//! # fn main() -> Result<(), av_perception::system::PerceptionError> {
//! let mut perception = PerceptionSystem::new(
//!     CameraRig::drive_av(),
//!     RatePlan::Uniform(Fpr(30.0)),
//!     TrackerConfig::default(),
//! )?;
//! let ego = Agent::new(ActorId::EGO, ActorKind::Vehicle, Dimensions::CAR,
//!                      VehicleState::at_rest(Vec2::ZERO, Radians(0.0)));
//! let actor = Agent::new(ActorId(1), ActorKind::Vehicle, Dimensions::CAR,
//!                        VehicleState::at_rest(Vec2::new(40.0, 0.0), Radians(0.0)));
//! for i in 0..30 {
//!     let t = Seconds(i as f64 * 0.01);
//!     perception.tick(&Scene::new(t, ego, vec![actor]));
//! }
//! assert_eq!(perception.world().confirmed_agents(Seconds(0.3)).len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod camera;
pub mod dropout;
pub mod occlusion;
pub mod rig;
pub mod sampler;
pub mod system;
pub mod world_model;

/// Glob import of the crate's main types.
pub mod prelude {
    pub use crate::camera::{Camera, CameraKind};
    pub use crate::dropout::{DropPolicy, FrameDropper};
    pub use crate::rig::{CameraId, CameraRig};
    pub use crate::sampler::FrameSampler;
    pub use crate::system::{PerceptionError, PerceptionSystem, RatePlan, TickReport};
    pub use crate::world_model::{Track, TrackerConfig, WorldModel};
}
