//! Frame sampling: which simulation ticks process a camera frame.
//!
//! A camera configured at `F` frames per second processes one frame every
//! `1/F` seconds of scenario time. The sampler is the mechanism by which the
//! experiments throttle perception: at 2 FPR the world model refreshes every
//! 500 ms, which is what makes low rates unsafe.

use av_core::units::{Fpr, Seconds};
use serde::{Deserialize, Serialize};

/// Deterministic periodic frame sampler for one camera.
///
/// ```
/// use av_core::units::{Fpr, Seconds};
/// use av_perception::sampler::FrameSampler;
///
/// let mut s = FrameSampler::new(Fpr(10.0));
/// assert!(s.on_tick(Seconds(0.0)));   // first frame fires immediately
/// assert!(!s.on_tick(Seconds(0.05))); // mid-period
/// assert!(s.on_tick(Seconds(0.1)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameSampler {
    rate: Fpr,
    next_due: Seconds,
    frames_processed: u64,
}

impl FrameSampler {
    /// Creates a sampler at `rate`; the first frame fires at the first tick.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn new(rate: Fpr) -> Self {
        assert!(
            rate.value() > 0.0 && rate.is_finite(),
            "frame rate must be positive and finite, got {rate}"
        );
        Self {
            rate,
            next_due: Seconds(f64::NEG_INFINITY),
            frames_processed: 0,
        }
    }

    /// The configured rate.
    #[inline]
    pub fn rate(&self) -> Fpr {
        self.rate
    }

    /// Per-frame period, `1/rate`.
    #[inline]
    pub fn period(&self) -> Seconds {
        self.rate.latency()
    }

    /// Changes the sampling rate, taking effect from the next frame.
    ///
    /// Lowering the rate never retroactively delays an already-due frame:
    /// if a frame was due it stays due.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    pub fn set_rate(&mut self, rate: Fpr) {
        assert!(
            rate.value() > 0.0 && rate.is_finite(),
            "frame rate must be positive and finite, got {rate}"
        );
        self.rate = rate;
    }

    /// Advances the sampler to `now`; returns `true` when a frame is
    /// processed at this tick.
    ///
    /// Time must be non-decreasing across calls; calling with an earlier
    /// time than a previous tick simply processes no frame.
    pub fn on_tick(&mut self, now: Seconds) -> bool {
        if now.value() + 1e-12 >= self.next_due.value() {
            // Drift-free schedule: advance from the previous due time so a
            // coarse tick grid does not quantize the period upward. If the
            // sampler has fallen more than one period behind (sparse ticks),
            // re-anchor at `now` instead of bursting to catch up.
            let from_due = self.next_due.value() + self.period().value();
            let from_now = now.value() + self.period().value();
            self.next_due = Seconds(if from_due > now.value() + 1e-12 {
                from_due
            } else {
                from_now
            });
            self.frames_processed += 1;
            true
        } else {
            false
        }
    }

    /// Total frames processed so far.
    #[inline]
    pub fn frames_processed(&self) -> u64 {
        self.frames_processed
    }

    /// When the next frame is due ([`FrameSampler::on_tick`] fires at the
    /// first `now` with `now + 1e-12 >= next_due`). Lets a multi-camera
    /// rig cache the earliest due time and skip the per-sampler walk on
    /// ticks where no camera can fire.
    #[inline]
    pub fn next_due(&self) -> Seconds {
        self.next_due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ticks at `dt` for `total` seconds and counts processed frames.
    fn count_frames(rate: f64, dt: f64, total: f64) -> u64 {
        let mut s = FrameSampler::new(Fpr(rate));
        let steps = (total / dt).round() as usize;
        for i in 0..steps {
            s.on_tick(Seconds(i as f64 * dt));
        }
        s.frames_processed()
    }

    #[test]
    fn frame_count_matches_rate() {
        // 10 seconds at 30 FPR with 10ms ticks: 300 frames (+1 initial).
        let n = count_frames(30.0, 0.01, 10.0);
        assert!((n as i64 - 300).unsigned_abs() <= 1, "got {n}");
        let n2 = count_frames(2.0, 0.01, 10.0);
        assert!((n2 as i64 - 20).unsigned_abs() <= 1, "got {n2}");
    }

    #[test]
    fn coarse_ticks_still_sample() {
        // Tick period (100 ms) much longer than frame period (33 ms):
        // every tick processes (at most) one frame.
        let n = count_frames(30.0, 0.1, 1.0);
        assert_eq!(n, 10);
    }

    #[test]
    fn rate_change_takes_effect() {
        let mut s = FrameSampler::new(Fpr(1.0));
        assert!(s.on_tick(Seconds(0.0)));
        assert!(!s.on_tick(Seconds(0.5)));
        s.set_rate(Fpr(10.0));
        // Next frame still due at t=1.0 (already scheduled)...
        assert!(!s.on_tick(Seconds(0.9)));
        assert!(s.on_tick(Seconds(1.0)));
        // ...but the one after that arrives 0.1s later.
        assert!(s.on_tick(Seconds(1.1)));
    }

    #[test]
    fn period_is_reciprocal() {
        let s = FrameSampler::new(Fpr(30.0));
        assert!((s.period().value() - 1.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = FrameSampler::new(Fpr(0.0));
    }
}
