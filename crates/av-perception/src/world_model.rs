//! The perceived world model: confirmed actor tracks with stale state.
//!
//! The paper's perception system needs `K` processed frames to *confirm* an
//! actor before the planner reacts to it (§2.1: the confirmation delay term
//! α = K·(l − l₀)). Between processed frames a track holds the state from
//! the last frame — that staleness, plus the confirmation delay, is the
//! entire safety cost of a low frame processing rate.

use av_core::prelude::*;
use serde::{Deserialize, Serialize};

/// One tracked actor inside the world model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Track {
    /// The actor's last observed identity/footprint/state.
    pub agent: Agent,
    /// Scenario time of the last processed frame that contained the actor.
    pub last_seen: Seconds,
    /// Processed-frame sightings accumulated toward confirmation.
    pub sightings: u32,
    /// `true` once the actor has been seen in at least `K` processed frames.
    pub confirmed: bool,
}

impl Track {
    /// The track's state coasted forward to `now` under constant velocity.
    ///
    /// The perception stack only knows the state as of `last_seen`; the
    /// planner may optionally dead-reckon it forward. The paper's perceived
    /// current state is the raw (stale) track; coasting is provided for the
    /// planner's time-to-collision estimates.
    pub fn coasted(&self, now: Seconds) -> Agent {
        let dt = Seconds((now - self.last_seen).value().max(0.0));
        let mut agent = self.agent;
        agent.state = agent.state.predict_constant_accel(dt);
        agent
    }
}

/// A live track plus derived per-track state the hot coasting loop reuses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct TrackSlot {
    track: Track,
    /// `Vec2::from_heading(track.agent.state.heading)`, computed once per
    /// refresh so per-tick dead reckoning pays no sin/cos. Invariant:
    /// always consistent with the stored heading (both are written only
    /// by [`WorldModel::observe`]), so coasting through it is
    /// bit-identical to [`Track::coasted`].
    heading_unit: Vec2,
}

/// Configuration of the tracker / confirmation logic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Frames needed to confirm a new actor (paper `K`, default 5).
    pub confirmation_frames: u32,
    /// A track not refreshed for this long is dropped (and must re-confirm).
    pub drop_after: Seconds,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self {
            confirmation_frames: 5,
            drop_after: Seconds(1.0),
        }
    }
}

/// The set of tracks built from processed camera frames.
///
/// ```
/// use av_core::prelude::*;
/// use av_perception::world_model::{TrackerConfig, WorldModel};
///
/// let mut wm = WorldModel::new(TrackerConfig { confirmation_frames: 2, ..Default::default() });
/// let actor = Agent::new(ActorId(1), ActorKind::Vehicle, Dimensions::CAR,
///                        VehicleState::at_rest(Vec2::new(30.0, 0.0), Radians(0.0)));
/// wm.observe(Seconds(0.0), &[actor]);
/// assert!(wm.confirmed_agents(Seconds(0.0)).is_empty()); // 1 of 2 sightings
/// wm.observe(Seconds(0.1), &[actor]);
/// assert_eq!(wm.confirmed_agents(Seconds(0.1)).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct WorldModel {
    config: TrackerConfig,
    /// Live tracks, sorted by actor id. A handful of actors share a
    /// scenario, so a sorted vector beats a tree map on every per-tick
    /// walk (coasting, confirmation queries) and loses nothing on the
    /// per-frame id lookups; id order — and therefore every iteration
    /// order — matches the old `BTreeMap` exactly.
    tracks: Vec<TrackSlot>,
    /// Lower bound on the oldest `last_seen` among live tracks (`None`
    /// iff there are no tracks). Lets the per-tick [`WorldModel::prune`]
    /// skip walking the list when nothing can possibly have expired; it
    /// may understate after refreshes, which only costs an occasional
    /// extra walk, never a missed expiry.
    oldest_seen: Option<Seconds>,
}

impl WorldModel {
    /// Creates an empty world model.
    pub fn new(config: TrackerConfig) -> Self {
        Self {
            config,
            tracks: Vec::new(),
            oldest_seen: None,
        }
    }

    /// The tracker configuration.
    #[inline]
    pub fn config(&self) -> TrackerConfig {
        self.config
    }

    /// Ingests one processed frame: every observed agent refreshes (or
    /// starts) its track; tracks unseen for longer than
    /// [`TrackerConfig::drop_after`] are pruned.
    pub fn observe(&mut self, now: Seconds, observed: &[Agent]) {
        for agent in observed {
            let index = match self
                .tracks
                .binary_search_by_key(&agent.id, |slot| slot.track.agent.id)
            {
                Ok(index) => index,
                Err(index) => {
                    self.tracks.insert(
                        index,
                        TrackSlot {
                            track: Track {
                                agent: *agent,
                                last_seen: now,
                                sightings: 0,
                                confirmed: false,
                            },
                            heading_unit: Vec2::from_heading(agent.state.heading),
                        },
                    );
                    index
                }
            };
            let slot = &mut self.tracks[index];
            slot.heading_unit = Vec2::from_heading(agent.state.heading);
            let entry = &mut slot.track;
            entry.agent = *agent;
            entry.last_seen = now;
            entry.sightings = entry.sightings.saturating_add(1);
            if entry.sightings >= self.config.confirmation_frames {
                entry.confirmed = true;
            }
        }
        if self.oldest_seen.is_none() && !self.tracks.is_empty() {
            self.oldest_seen = Some(now);
        }
        self.prune(now);
    }

    /// Advances time without observations, pruning expired tracks.
    pub fn prune(&mut self, now: Seconds) {
        // Nothing can have expired while even a lower bound on the oldest
        // refresh is within the TTL — the hot-loop no-op path.
        let Some(oldest) = self.oldest_seen else {
            return;
        };
        let ttl = self.config.drop_after;
        if (now - oldest).value() <= ttl.value() + 1e-12 {
            return;
        }
        self.tracks
            .retain(|slot| (now - slot.track.last_seen).value() <= ttl.value() + 1e-12);
        self.oldest_seen = self
            .tracks
            .iter()
            .map(|slot| slot.track.last_seen)
            .min_by(|a, b| a.value().partial_cmp(&b.value()).expect("finite times"));
    }

    /// The track for `id`, if present (confirmed or not).
    pub fn track(&self, id: ActorId) -> Option<&Track> {
        self.tracks
            .binary_search_by_key(&id, |slot| slot.track.agent.id)
            .ok()
            .map(|index| &self.tracks[index].track)
    }

    /// All tracks in id order.
    pub fn tracks(&self) -> impl Iterator<Item = &Track> {
        self.tracks.iter().map(|slot| &slot.track)
    }

    /// Confirmed agents with their *stale* last-seen state — what the
    /// planner is allowed to react to.
    ///
    /// `now` is accepted for symmetry with [`WorldModel::coasted_agents`]
    /// and future filtering; the returned states are as-of each track's
    /// `last_seen`.
    pub fn confirmed_agents(&self, _now: Seconds) -> Vec<Agent> {
        self.tracks
            .iter()
            .filter(|slot| slot.track.confirmed)
            .map(|slot| slot.track.agent)
            .collect()
    }

    /// Confirmed agents dead-reckoned to `now`.
    pub fn coasted_agents(&self, now: Seconds) -> Vec<Agent> {
        let mut out = Vec::new();
        self.coast_into(&mut out, now);
        out
    }

    /// Confirmed agents dead-reckoned to `now`, written into a reused
    /// buffer (cleared first) — the allocation-free form of
    /// [`WorldModel::coasted_agents`] used by the simulation hot loop.
    pub fn coast_into(&self, out: &mut Vec<Agent>, now: Seconds) {
        out.clear();
        // Same arithmetic as [`Track::coasted`] (pinned by the unit tests)
        // with the heading's unit vector read from the per-refresh cache
        // instead of recomputed — dead reckoning pays no per-tick trig.
        out.extend(
            self.tracks
                .iter()
                .filter(|slot| slot.track.confirmed)
                .map(|slot| {
                    let track = &slot.track;
                    let dt = Seconds((now - track.last_seen).value().max(0.0));
                    let (d, v) = av_core::state::distance_speed_after(
                        track.agent.state.speed,
                        track.agent.state.accel,
                        dt,
                    );
                    let mut agent = track.agent;
                    agent.state.position += slot.heading_unit * d.value();
                    agent.state.speed = v;
                    agent
                }),
        );
    }

    /// Number of tracks (confirmed or not).
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// `true` when no actor is being tracked.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn actor(id: u32, x: f64, v: f64) -> Agent {
        Agent::new(
            ActorId(id),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::new(
                Vec2::new(x, 0.0),
                Radians(0.0),
                MetersPerSecond(v),
                MetersPerSecondSquared::ZERO,
            ),
        )
    }

    fn config(k: u32) -> TrackerConfig {
        TrackerConfig {
            confirmation_frames: k,
            drop_after: Seconds(0.5),
        }
    }

    #[test]
    fn confirmation_needs_k_frames() {
        let mut wm = WorldModel::new(config(5));
        for i in 0..4 {
            wm.observe(Seconds(i as f64 * 0.1), &[actor(1, 30.0, 0.0)]);
            assert!(
                wm.confirmed_agents(Seconds(i as f64 * 0.1)).is_empty(),
                "confirmed after only {} frames",
                i + 1
            );
        }
        wm.observe(Seconds(0.4), &[actor(1, 30.0, 0.0)]);
        assert_eq!(wm.confirmed_agents(Seconds(0.4)).len(), 1);
    }

    #[test]
    fn stale_state_is_last_seen() {
        let mut wm = WorldModel::new(config(1));
        wm.observe(Seconds(0.0), &[actor(1, 30.0, 10.0)]);
        wm.observe(Seconds(0.2), &[actor(1, 32.0, 10.0)]);
        // No frame since t=0.2; confirmed state stays at x=32.
        let agents = wm.confirmed_agents(Seconds(0.45));
        assert_eq!(agents[0].state.position.x, 32.0);
        // Coasting projects it to x = 32 + 10 * 0.25.
        let coasted = wm.coasted_agents(Seconds(0.45));
        assert!((coasted[0].state.position.x - 34.5).abs() < 1e-9);
        // The buffer-reuse form produces the same agents and clears any
        // stale contents first.
        let mut buffer = vec![actor(9, 0.0, 0.0)];
        wm.coast_into(&mut buffer, Seconds(0.45));
        assert_eq!(buffer, coasted);
    }

    #[test]
    fn track_dropped_after_ttl_and_reconfirms() {
        let mut wm = WorldModel::new(config(2));
        wm.observe(Seconds(0.0), &[actor(1, 30.0, 0.0)]);
        wm.observe(Seconds(0.1), &[actor(1, 30.0, 0.0)]);
        assert_eq!(wm.confirmed_agents(Seconds(0.1)).len(), 1);
        // Nothing seen past the 0.5s TTL: track dropped.
        wm.prune(Seconds(0.7));
        assert!(wm.is_empty());
        // Reappearance must re-confirm from scratch.
        wm.observe(Seconds(0.8), &[actor(1, 40.0, 0.0)]);
        assert!(wm.confirmed_agents(Seconds(0.8)).is_empty());
    }

    #[test]
    fn tracks_are_per_actor() {
        let mut wm = WorldModel::new(config(1));
        wm.observe(Seconds(0.0), &[actor(1, 30.0, 0.0), actor(2, 50.0, 0.0)]);
        assert_eq!(wm.len(), 2);
        assert!(wm.track(ActorId(1)).is_some());
        assert!(wm.track(ActorId(2)).expect("tracked").confirmed);
        assert!(wm.track(ActorId(3)).is_none());
    }

    #[test]
    fn coasted_track_does_not_rewind() {
        let mut wm = WorldModel::new(config(1));
        wm.observe(Seconds(1.0), &[actor(1, 30.0, 10.0)]);
        let t = *wm.track(ActorId(1)).expect("tracked");
        // Query earlier than last_seen: state unchanged, no reverse travel.
        let back = t.coasted(Seconds(0.5));
        assert_eq!(back.state.position.x, 30.0);
    }
}
