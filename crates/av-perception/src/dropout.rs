//! Frame-loss injection.
//!
//! Real perception pipelines lose frames: transient compute overload,
//! transfer faults, scheduler preemption. The paper's motivation — "the
//! dynamic FPR adjustment is especially critical when the hardware system
//! is constrained due to operating conditions or increased delays for
//! some tasks" (§1) — is exactly a frame-loss story. This module injects
//! deterministic loss patterns so experiments can measure how much margin
//! a rate setting has, and tests can verify the Zhuyi safety check reacts.

use serde::{Deserialize, Serialize};

/// A deterministic frame-loss pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DropPolicy {
    /// No loss.
    #[default]
    None,
    /// Every `n`-th frame is lost (n = 2 halves the effective rate).
    EveryNth(u32),
    /// Out of every `period` frames, the first `length` are lost — a
    /// periodic burst (e.g. a recurring compute stall).
    Burst {
        /// Cycle length in frames.
        period: u32,
        /// Lost frames at the start of each cycle.
        length: u32,
    },
}

impl DropPolicy {
    /// The long-run fraction of frames that survive this policy.
    pub fn survival_rate(self) -> f64 {
        match self {
            DropPolicy::None => 1.0,
            DropPolicy::EveryNth(n) if n > 0 => 1.0 - 1.0 / n as f64,
            DropPolicy::EveryNth(_) => 1.0,
            DropPolicy::Burst { period, length } if period > 0 => {
                1.0 - (length.min(period) as f64 / period as f64)
            }
            DropPolicy::Burst { .. } => 1.0,
        }
    }
}

/// Stateful applicator of a [`DropPolicy`] for one camera.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FrameDropper {
    policy: DropPolicy,
    counter: u64,
}

impl FrameDropper {
    /// Creates a dropper.
    pub fn new(policy: DropPolicy) -> Self {
        Self { policy, counter: 0 }
    }

    /// The configured policy.
    pub fn policy(&self) -> DropPolicy {
        self.policy
    }

    /// Advances one frame; returns `true` when the frame survives.
    pub fn survives(&mut self) -> bool {
        let i = self.counter;
        self.counter += 1;
        match self.policy {
            DropPolicy::None => true,
            DropPolicy::EveryNth(n) if n > 0 => !(i + 1).is_multiple_of(u64::from(n)),
            DropPolicy::EveryNth(_) => true,
            DropPolicy::Burst { period, length } if period > 0 => {
                (i % u64::from(period)) >= u64::from(length.min(period))
            }
            DropPolicy::Burst { .. } => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn survivors(policy: DropPolicy, n: usize) -> Vec<bool> {
        let mut d = FrameDropper::new(policy);
        (0..n).map(|_| d.survives()).collect()
    }

    #[test]
    fn none_passes_everything() {
        assert!(survivors(DropPolicy::None, 10).iter().all(|&s| s));
        assert_eq!(DropPolicy::None.survival_rate(), 1.0);
    }

    #[test]
    fn every_nth_drops_one_in_n() {
        let s = survivors(DropPolicy::EveryNth(3), 9);
        assert_eq!(
            s,
            vec![true, true, false, true, true, false, true, true, false]
        );
        assert!((DropPolicy::EveryNth(3).survival_rate() - 2.0 / 3.0).abs() < 1e-12);
        // n = 2 halves the rate.
        let s2 = survivors(DropPolicy::EveryNth(2), 4);
        assert_eq!(s2, vec![true, false, true, false]);
    }

    #[test]
    fn burst_drops_prefix_of_each_cycle() {
        let s = survivors(
            DropPolicy::Burst {
                period: 5,
                length: 2,
            },
            10,
        );
        assert_eq!(
            s,
            vec![false, false, true, true, true, false, false, true, true, true]
        );
        assert!(
            (DropPolicy::Burst {
                period: 5,
                length: 2
            }
            .survival_rate()
                - 0.6)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn degenerate_policies_pass() {
        assert!(survivors(DropPolicy::EveryNth(0), 5).iter().all(|&s| s));
        assert!(survivors(
            DropPolicy::Burst {
                period: 0,
                length: 3
            },
            5
        )
        .iter()
        .all(|&s| s));
        assert_eq!(DropPolicy::EveryNth(0).survival_rate(), 1.0);
    }

    #[test]
    fn full_burst_drops_everything() {
        let policy = DropPolicy::Burst {
            period: 4,
            length: 4,
        };
        assert!(survivors(policy, 8).iter().all(|&s| !s));
        assert_eq!(policy.survival_rate(), 0.0);
    }
}
