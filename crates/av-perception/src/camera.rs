//! Camera geometry: mount direction, field of view, range, and visibility.
//!
//! The paper's AV carries five cameras: two front (60° and 120° FOV), two
//! side, and one rear (§4.1); the evaluation analyzes the 120° front camera
//! and the two side cameras. An actor is in a camera's FOV when its bearing
//! relative to the camera's mount direction lies within half the FOV and it
//! is within sensing range.

use av_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five camera positions of the paper's vehicle (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CameraKind {
    /// Forward-facing, 60° FOV (long range).
    FrontNarrow,
    /// Forward-facing, 120° FOV — the front camera analyzed in the paper.
    FrontWide,
    /// Left-facing side camera.
    Left,
    /// Right-facing side camera.
    Right,
    /// Rear-facing camera.
    Rear,
}

impl CameraKind {
    /// All five kinds in rig order.
    pub const ALL: [CameraKind; 5] = [
        CameraKind::FrontNarrow,
        CameraKind::FrontWide,
        CameraKind::Left,
        CameraKind::Right,
        CameraKind::Rear,
    ];
}

impl fmt::Display for CameraKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CameraKind::FrontNarrow => "front-60",
            CameraKind::FrontWide => "front-120",
            CameraKind::Left => "left",
            CameraKind::Right => "right",
            CameraKind::Rear => "rear",
        };
        write!(f, "{name}")
    }
}

/// A single camera: mount direction (relative to the ego's heading), full
/// field-of-view angle, and sensing range.
///
/// ```
/// use av_core::prelude::*;
/// use av_perception::camera::{Camera, CameraKind};
///
/// let front = Camera::new(CameraKind::FrontWide, Radians(0.0),
///                         Radians::from_degrees(120.0), Meters(150.0));
/// let ego = VehicleState::at_rest(Vec2::ZERO, Radians(0.0));
/// assert!(front.sees(&ego, Vec2::new(50.0, 5.0)));
/// assert!(!front.sees(&ego, Vec2::new(-50.0, 0.0))); // behind
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    kind: CameraKind,
    mount: Radians,
    fov: Radians,
    range: Meters,
}

impl Camera {
    /// Creates a camera.
    ///
    /// # Panics
    ///
    /// Panics if `fov` is not in `(0, 2π]` or `range` is not positive and
    /// finite.
    pub fn new(kind: CameraKind, mount: Radians, fov: Radians, range: Meters) -> Self {
        assert!(
            fov.value() > 0.0 && fov.value() <= std::f64::consts::TAU,
            "camera FOV must be in (0, 2pi], got {fov}"
        );
        assert!(
            range.value() > 0.0 && range.is_finite(),
            "camera range must be positive and finite, got {range}"
        );
        Self {
            kind,
            mount,
            fov,
            range,
        }
    }

    /// Which of the five positions this camera occupies.
    #[inline]
    pub fn kind(&self) -> CameraKind {
        self.kind
    }

    /// Mount direction relative to the ego's heading.
    #[inline]
    pub fn mount(&self) -> Radians {
        self.mount
    }

    /// Full field-of-view angle.
    #[inline]
    pub fn fov(&self) -> Radians {
        self.fov
    }

    /// Sensing range.
    #[inline]
    pub fn range(&self) -> Meters {
        self.range
    }

    /// `true` when `target` (a world-frame point) is inside this camera's
    /// field of view given the ego's pose.
    pub fn sees(&self, ego: &VehicleState, target: Vec2) -> bool {
        let rel = target - ego.position;
        // Squared-distance range test: no square root on the reject path,
        // which is the common case across a five-camera rig.
        let d2 = rel.norm_sq();
        if !self.in_range_sq(d2) {
            return false;
        }
        if d2 < 1e-18 {
            return true;
        }
        self.sees_bearing(ego.heading, rel.heading())
    }

    /// The range half of [`Camera::sees`], given the precomputed squared
    /// center distance — identical arithmetic, hoisted so a rig sweep
    /// computes the distance once per target instead of once per camera.
    // The negated comparison deliberately preserves the original reject
    // test `d2 > range²` (including its NaN behavior) bit for bit.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline]
    pub fn in_range_sq(&self, d2: f64) -> bool {
        !(d2 > self.range.value() * self.range.value())
    }

    /// The bearing half of [`Camera::sees`], given the target's
    /// precomputed world bearing (`rel.heading()`) — identical
    /// arithmetic, hoisted so a rig sweep pays one `atan2` per target
    /// point instead of one per camera.
    #[inline]
    pub fn sees_bearing(&self, ego_heading: Radians, world_bearing: Radians) -> bool {
        let bearing = (world_bearing - ego_heading - self.mount).normalized();
        bearing.value().abs() <= self.fov.value() / 2.0 + 1e-12
    }

    /// The body-reach prefilter of [`Camera::sees_body`], given the
    /// squared center distance and the footprint circumradius — identical
    /// arithmetic, hoisted for rig sweeps.
    // See `in_range_sq` for why the comparison is negated.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    #[inline]
    pub fn reaches_body_sq(&self, d2: f64, circumradius: f64) -> bool {
        let reach = self.range.value() + circumradius;
        !(d2 > reach * reach)
    }

    /// `true` when any reference point of `agent` (center or footprint
    /// corners) is visible, which approximates seeing any part of the body.
    pub fn sees_agent(&self, ego: &VehicleState, agent: &Agent) -> bool {
        self.sees_body(ego, agent.state.position, agent.state.heading, agent.dims)
    }

    /// [`Camera::sees_agent`] over a body given by its pose fields — the
    /// form the perception hot loop uses against a struct-of-arrays
    /// [`av_core::scene::SceneColumns`] snapshot, where position, heading
    /// and dims arrive from separate columns instead of a whole [`Agent`].
    /// Identical arithmetic, identical answer.
    pub fn sees_body(
        &self,
        ego: &VehicleState,
        position: Vec2,
        heading: Radians,
        dims: Dimensions,
    ) -> bool {
        // If the center is out of range by more than the footprint's
        // circumradius, no corner can be in range either — skip the corner
        // expansion (and its trig) entirely.
        if !self.reaches_body_sq((position - ego.position).norm_sq(), dims.circumradius()) {
            return false;
        }
        if self.sees(ego, position) {
            return true;
        }
        OrientedRect::new(position, heading, dims.length, dims.width)
            .corners()
            .into_iter()
            .any(|c| self.sees(ego, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn ego_at_origin() -> VehicleState {
        VehicleState::at_rest(Vec2::ZERO, Radians(0.0))
    }

    fn front120() -> Camera {
        Camera::new(
            CameraKind::FrontWide,
            Radians(0.0),
            Radians::from_degrees(120.0),
            Meters(150.0),
        )
    }

    #[test]
    fn fov_boundary_inclusive() {
        let cam = front120();
        let ego = ego_at_origin();
        // Exactly 60 degrees off-axis: on the FOV edge.
        let target = Vec2::from_heading(Radians::from_degrees(60.0)) * 50.0;
        assert!(cam.sees(&ego, target));
        let outside = Vec2::from_heading(Radians::from_degrees(61.0)) * 50.0;
        assert!(!cam.sees(&ego, outside));
    }

    #[test]
    fn range_limits_visibility() {
        let cam = front120();
        let ego = ego_at_origin();
        assert!(cam.sees(&ego, Vec2::new(149.0, 0.0)));
        assert!(!cam.sees(&ego, Vec2::new(151.0, 0.0)));
    }

    #[test]
    fn mount_rotates_with_ego_heading() {
        let left = Camera::new(
            CameraKind::Left,
            Radians(FRAC_PI_2),
            Radians::from_degrees(120.0),
            Meters(80.0),
        );
        // Ego heading +Y; left camera then faces -X.
        let ego = VehicleState::at_rest(Vec2::ZERO, Radians(FRAC_PI_2));
        assert!(left.sees(&ego, Vec2::new(-20.0, 0.0)));
        assert!(!left.sees(&ego, Vec2::new(20.0, 0.0)));
    }

    #[test]
    fn sees_agent_catches_partial_overlap() {
        let cam = Camera::new(
            CameraKind::FrontWide,
            Radians(0.0),
            Radians::from_degrees(120.0),
            Meters(30.0),
        );
        let ego = ego_at_origin();
        // Center slightly out of range but the near bumper is inside.
        let agent = Agent::new(
            ActorId(1),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::at_rest(Vec2::new(31.0, 0.0), Radians(0.0)),
        );
        assert!(!cam.sees(&ego, agent.state.position));
        assert!(cam.sees_agent(&ego, &agent));
    }

    #[test]
    fn coincident_point_is_seen() {
        let cam = front120();
        let ego = ego_at_origin();
        assert!(cam.sees(&ego, Vec2::ZERO));
    }

    #[test]
    #[should_panic(expected = "FOV")]
    fn zero_fov_rejected() {
        let _ = Camera::new(CameraKind::Rear, Radians(0.0), Radians(0.0), Meters(10.0));
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(CameraKind::FrontWide.to_string(), "front-120");
        assert_eq!(CameraKind::Left.to_string(), "left");
        assert_eq!(CameraKind::ALL.len(), 5);
    }
}
