//! The end-to-end perception pipeline: per-camera sampling into a fused
//! world model.
//!
//! This is the substitute for the paper's DNN perception stack. Each camera
//! samples frames at its own configurable FPR; a processed frame observes
//! the ground-truth agents inside that camera's FOV; observations feed the
//! shared [`WorldModel`], which applies K-frame confirmation. The planner
//! then reacts only to confirmed (and stale) tracks — reproducing exactly
//! the latency-safety coupling the paper studies.

use crate::dropout::{DropPolicy, FrameDropper};
use crate::occlusion::occluded;
use crate::rig::{CameraId, CameraRig};
use crate::sampler::FrameSampler;
use crate::world_model::{TrackerConfig, WorldModel};
use av_core::prelude::*;
use av_core::scene::Scene;
use serde::{Deserialize, Serialize};

/// Per-camera rates used to construct a [`PerceptionSystem`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RatePlan {
    /// Every camera runs at the same rate (the paper's experimental
    /// framework "only allows the same FPR settings for all the cameras in
    /// one experiment", §4.2).
    Uniform(Fpr),
    /// Explicit per-camera rates, indexed like the rig.
    PerCamera(Vec<Fpr>),
}

/// Error constructing or reconfiguring a [`PerceptionSystem`].
#[derive(Debug, Clone, PartialEq)]
pub enum PerceptionError {
    /// The rate plan length does not match the rig.
    RatePlanMismatch {
        /// Cameras in the rig.
        cameras: usize,
        /// Rates supplied.
        rates: usize,
    },
    /// Camera id out of range.
    UnknownCamera(CameraId),
    /// Rates must be positive and finite.
    InvalidRate(Fpr),
}

impl std::fmt::Display for PerceptionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerceptionError::RatePlanMismatch { cameras, rates } => {
                write!(f, "rate plan has {rates} rates for {cameras} cameras")
            }
            PerceptionError::UnknownCamera(id) => write!(f, "unknown camera {id}"),
            PerceptionError::InvalidRate(r) => write!(f, "invalid frame rate {r}"),
        }
    }
}

impl std::error::Error for PerceptionError {}

/// What one tick of the perception system did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TickReport {
    /// Cameras that processed a frame at this tick.
    pub frames: Vec<CameraId>,
    /// Cameras whose frame was due this tick but lost to the injected
    /// drop policy.
    pub dropped: Vec<CameraId>,
    /// Actors observed at this tick (deduplicated across cameras).
    pub observed: Vec<ActorId>,
}

/// Camera rig + per-camera frame samplers + fused world model.
///
/// ```
/// use av_core::prelude::*;
/// use av_core::scene::Scene;
/// use av_perception::rig::CameraRig;
/// use av_perception::system::{PerceptionSystem, RatePlan};
/// use av_perception::world_model::TrackerConfig;
///
/// # fn main() -> Result<(), av_perception::system::PerceptionError> {
/// let mut sys = PerceptionSystem::new(
///     CameraRig::drive_av(),
///     RatePlan::Uniform(Fpr(30.0)),
///     TrackerConfig::default(),
/// )?;
/// let ego = Agent::new(ActorId::EGO, ActorKind::Vehicle, Dimensions::CAR,
///                      VehicleState::at_rest(Vec2::ZERO, Radians(0.0)));
/// let scene = Scene::new(Seconds(0.0), ego, vec![]);
/// let report = sys.tick(&scene);
/// assert_eq!(report.frames.len(), 5); // all cameras fire their first frame
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerceptionSystem {
    rig: CameraRig,
    samplers: Vec<FrameSampler>,
    droppers: Vec<FrameDropper>,
    world: WorldModel,
    model_occlusion: bool,
    /// Reused per-tick observation buffer; always empty between ticks so
    /// it never affects equality or serialization.
    observed_scratch: Vec<Agent>,
}

impl PerceptionSystem {
    /// Creates a perception system over `rig` with the given rate plan.
    ///
    /// # Errors
    ///
    /// Returns [`PerceptionError::RatePlanMismatch`] when a per-camera plan
    /// does not match the rig size, or [`PerceptionError::InvalidRate`] for
    /// non-positive rates.
    pub fn new(
        rig: CameraRig,
        rates: RatePlan,
        tracker: TrackerConfig,
    ) -> Result<Self, PerceptionError> {
        let rates = match rates {
            RatePlan::Uniform(r) => vec![r; rig.len()],
            RatePlan::PerCamera(v) => {
                if v.len() != rig.len() {
                    return Err(PerceptionError::RatePlanMismatch {
                        cameras: rig.len(),
                        rates: v.len(),
                    });
                }
                v
            }
        };
        if let Some(&bad) = rates.iter().find(|r| !(r.value() > 0.0 && r.is_finite())) {
            return Err(PerceptionError::InvalidRate(bad));
        }
        let samplers: Vec<FrameSampler> = rates.into_iter().map(FrameSampler::new).collect();
        let droppers = vec![FrameDropper::default(); samplers.len()];
        Ok(Self {
            rig,
            samplers,
            droppers,
            world: WorldModel::new(tracker),
            model_occlusion: true,
            observed_scratch: Vec::new(),
        })
    }

    /// Injects a frame-loss pattern on every camera (failure injection;
    /// see [`crate::dropout`]). Default: no loss.
    pub fn with_drop_policy(mut self, policy: DropPolicy) -> Self {
        self.droppers = vec![FrameDropper::new(policy); self.samplers.len()];
        self
    }

    /// Disables the line-of-sight occlusion model (every in-FOV actor is
    /// observed even behind other vehicles). Enabled by default.
    pub fn without_occlusion(mut self) -> Self {
        self.model_occlusion = false;
        self
    }

    /// The camera rig.
    #[inline]
    pub fn rig(&self) -> &CameraRig {
        &self.rig
    }

    /// The fused world model.
    #[inline]
    pub fn world(&self) -> &WorldModel {
        &self.world
    }

    /// Current rate of one camera.
    pub fn rate(&self, id: CameraId) -> Option<Fpr> {
        self.samplers.get(id.0).map(|s| s.rate())
    }

    /// Current rates of every camera, in rig order.
    pub fn rates(&self) -> Vec<Fpr> {
        self.samplers.iter().map(|s| s.rate()).collect()
    }

    /// Reconfigures one camera's rate (work prioritization, §3.2).
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown camera or a non-positive rate.
    pub fn set_rate(&mut self, id: CameraId, rate: Fpr) -> Result<(), PerceptionError> {
        if !(rate.value() > 0.0 && rate.is_finite()) {
            return Err(PerceptionError::InvalidRate(rate));
        }
        self.samplers
            .get_mut(id.0)
            .ok_or(PerceptionError::UnknownCamera(id))?
            .set_rate(rate);
        Ok(())
    }

    /// Advances perception by one simulation tick against the ground-truth
    /// `scene`. Cameras whose samplers fire observe the actors in their
    /// FOV; the world model ingests the union.
    pub fn tick(&mut self, scene: &Scene) -> TickReport {
        let now = scene.time;
        let mut report = TickReport::default();
        for (i, sampler) in self.samplers.iter_mut().enumerate() {
            if !sampler.on_tick(now) {
                continue;
            }
            let cam_id = CameraId(i);
            if self.droppers[i].survives() {
                report.frames.push(cam_id);
            } else {
                report.dropped.push(cam_id);
            }
        }
        if report.frames.is_empty() {
            self.world.prune(now);
            return report;
        }
        // An actor is observed this tick when any processed frame's camera
        // sees it and its sight line is clear. Visibility is per-camera but
        // occlusion is not, so actors iterate outermost and each pays the
        // occlusion test at most once per tick. (The per-camera loop this
        // replaces observed the same set, camera-major; the world model
        // ingests observations per-id, so order is immaterial.)
        let mut observed = std::mem::take(&mut self.observed_scratch);
        let cameras = self.rig.cameras();
        for actor in &scene.actors {
            let seen = report
                .frames
                .iter()
                .any(|cam_id| cameras[cam_id.0].sees_agent(&scene.ego.state, actor));
            if seen
                && !(self.model_occlusion
                    && occluded(scene.ego.state.position, actor, &scene.actors))
            {
                observed.push(*actor);
            }
        }
        self.world.observe(now, &observed);
        report.observed = observed.iter().map(|a| a.id).collect();
        observed.clear();
        self.observed_scratch = observed;
        report
    }

    /// Total frames processed across all cameras.
    pub fn total_frames(&self) -> u64 {
        self.samplers.iter().map(|s| s.frames_processed()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ego() -> Agent {
        Agent::new(
            ActorId::EGO,
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::at_rest(Vec2::ZERO, Radians(0.0)),
        )
    }

    fn front_actor(x: f64) -> Agent {
        Agent::new(
            ActorId(1),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::at_rest(Vec2::new(x, 0.0), Radians(0.0)),
        )
    }

    fn system(fpr: f64, k: u32) -> PerceptionSystem {
        PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(fpr)),
            TrackerConfig {
                confirmation_frames: k,
                drop_after: Seconds(1.0),
            },
        )
        .expect("valid uniform plan")
    }

    #[test]
    fn confirmation_latency_scales_with_rate() {
        // At 10 FPR with K = 5, a newly appearing actor confirms after
        // ~0.4-0.5 s (5 frames, 100 ms apart).
        let mut sys = system(10.0, 5);
        let mut confirmed_at = None;
        for i in 0..200 {
            let t = i as f64 * 0.01;
            let scene = Scene::new(Seconds(t), ego(), vec![front_actor(40.0)]);
            sys.tick(&scene);
            if confirmed_at.is_none() && !sys.world().confirmed_agents(Seconds(t)).is_empty() {
                confirmed_at = Some(t);
            }
        }
        let t = confirmed_at.expect("actor eventually confirmed");
        assert!((0.35..=0.55).contains(&t), "confirmed at {t}");
    }

    #[test]
    fn higher_rate_confirms_faster() {
        for (fpr, bound) in [(30.0, 0.20), (5.0, 1.1)] {
            let mut sys = system(fpr, 5);
            let mut confirmed_at = None;
            for i in 0..400 {
                let t = i as f64 * 0.01;
                let scene = Scene::new(Seconds(t), ego(), vec![front_actor(40.0)]);
                sys.tick(&scene);
                if confirmed_at.is_none() && !sys.world().confirmed_agents(Seconds(t)).is_empty() {
                    confirmed_at = Some(t);
                    break;
                }
            }
            let t = confirmed_at.expect("confirmed");
            assert!(
                t <= bound,
                "{fpr} FPR confirmed at {t}, expected <= {bound}"
            );
        }
    }

    #[test]
    fn per_camera_plan_validated() {
        let err = PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::PerCamera(vec![Fpr(30.0); 3]),
            TrackerConfig::default(),
        )
        .expect_err("3 rates for 5 cameras");
        assert!(matches!(
            err,
            PerceptionError::RatePlanMismatch {
                cameras: 5,
                rates: 3
            }
        ));
        let err2 = PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(0.0)),
            TrackerConfig::default(),
        )
        .expect_err("zero rate");
        assert!(matches!(err2, PerceptionError::InvalidRate(_)));
    }

    #[test]
    fn set_rate_round_trips() {
        let mut sys = system(30.0, 5);
        sys.set_rate(CameraId(2), Fpr(5.0)).expect("camera exists");
        assert_eq!(sys.rate(CameraId(2)), Some(Fpr(5.0)));
        assert!(sys.set_rate(CameraId(99), Fpr(5.0)).is_err());
        assert!(sys.set_rate(CameraId(0), Fpr(-1.0)).is_err());
        assert_eq!(sys.rates().len(), 5);
    }

    #[test]
    fn actor_behind_is_seen_by_rear_camera_only_tick() {
        let mut sys = system(30.0, 1);
        let rear_actor = Agent::new(
            ActorId(7),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::at_rest(Vec2::new(-30.0, 0.0), Radians(0.0)),
        );
        let scene = Scene::new(Seconds(0.0), ego(), vec![rear_actor]);
        let report = sys.tick(&scene);
        assert!(report.observed.contains(&ActorId(7)));
    }

    #[test]
    fn out_of_range_actor_never_tracked() {
        let mut sys = system(30.0, 1);
        for i in 0..50 {
            let t = i as f64 * 0.01;
            let scene = Scene::new(Seconds(t), ego(), vec![front_actor(400.0)]);
            sys.tick(&scene);
        }
        // 400 m ahead: beyond front-wide range (150 m) but within
        // front-narrow's 250 m? No: 400 > 250, invisible to all.
        assert!(sys.world().is_empty());
    }
}
