//! The end-to-end perception pipeline: per-camera sampling into a fused
//! world model.
//!
//! This is the substitute for the paper's DNN perception stack. Each camera
//! samples frames at its own configurable FPR; a processed frame observes
//! the ground-truth agents inside that camera's FOV; observations feed the
//! shared [`WorldModel`], which applies K-frame confirmation. The planner
//! then reacts only to confirmed (and stale) tracks — reproducing exactly
//! the latency-safety coupling the paper studies.

use crate::dropout::{DropPolicy, FrameDropper};
use crate::occlusion::{fill_shrunken_footprints, occluded, occluded_against};
use crate::rig::{CameraId, CameraRig};
use crate::sampler::FrameSampler;
use crate::world_model::{TrackerConfig, WorldModel};
use av_core::prelude::*;
use av_core::scene::{Scene, SceneColumns};
use serde::{Deserialize, Serialize};

/// Per-camera rates used to construct a [`PerceptionSystem`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RatePlan {
    /// Every camera runs at the same rate (the paper's experimental
    /// framework "only allows the same FPR settings for all the cameras in
    /// one experiment", §4.2).
    Uniform(Fpr),
    /// Explicit per-camera rates, indexed like the rig.
    PerCamera(Vec<Fpr>),
}

/// Error constructing or reconfiguring a [`PerceptionSystem`].
#[derive(Debug, Clone, PartialEq)]
pub enum PerceptionError {
    /// The rate plan length does not match the rig.
    RatePlanMismatch {
        /// Cameras in the rig.
        cameras: usize,
        /// Rates supplied.
        rates: usize,
    },
    /// Camera id out of range.
    UnknownCamera(CameraId),
    /// Rates must be positive and finite.
    InvalidRate(Fpr),
}

impl std::fmt::Display for PerceptionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerceptionError::RatePlanMismatch { cameras, rates } => {
                write!(f, "rate plan has {rates} rates for {cameras} cameras")
            }
            PerceptionError::UnknownCamera(id) => write!(f, "unknown camera {id}"),
            PerceptionError::InvalidRate(r) => write!(f, "invalid frame rate {r}"),
        }
    }
}

impl std::error::Error for PerceptionError {}

/// What one tick of the perception system did.
///
/// [`PerceptionSystem::tick`] lends its report by reference from a buffer
/// the system owns and reuses, so frame ticks cost no allocation; callers
/// that need to keep a report across ticks clone it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TickReport {
    /// Cameras that processed a frame at this tick.
    pub frames: Vec<CameraId>,
    /// Cameras whose frame was due this tick but lost to the injected
    /// drop policy.
    pub dropped: Vec<CameraId>,
    /// Actors observed at this tick (deduplicated across cameras).
    pub observed: Vec<ActorId>,
}

impl TickReport {
    fn clear(&mut self) {
        self.frames.clear();
        self.dropped.clear();
        self.observed.clear();
    }
}

/// Camera rig + per-camera frame samplers + fused world model.
///
/// ```
/// use av_core::prelude::*;
/// use av_core::scene::Scene;
/// use av_perception::rig::CameraRig;
/// use av_perception::system::{PerceptionSystem, RatePlan};
/// use av_perception::world_model::TrackerConfig;
///
/// # fn main() -> Result<(), av_perception::system::PerceptionError> {
/// let mut sys = PerceptionSystem::new(
///     CameraRig::drive_av(),
///     RatePlan::Uniform(Fpr(30.0)),
///     TrackerConfig::default(),
/// )?;
/// let ego = Agent::new(ActorId::EGO, ActorKind::Vehicle, Dimensions::CAR,
///                      VehicleState::at_rest(Vec2::ZERO, Radians(0.0)));
/// let scene = Scene::new(Seconds(0.0), ego, vec![]);
/// let report = sys.tick(&scene);
/// assert_eq!(report.frames.len(), 5); // all cameras fire their first frame
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerceptionSystem {
    rig: CameraRig,
    samplers: Vec<FrameSampler>,
    droppers: Vec<FrameDropper>,
    world: WorldModel,
    model_occlusion: bool,
    /// Reused per-tick observation buffer; always empty between ticks.
    observed_scratch: Vec<Agent>,
    /// Reused per-tick blocker-footprint buffer for the occlusion sweep.
    blocker_scratch: Vec<PreparedRect>,
    /// Cached earliest `next_due` across samplers: ticks before it skip
    /// the per-sampler walk entirely (most ticks, at low rates). Derived
    /// state — rebuilt after every frame tick, conservatively reset on
    /// rate changes.
    next_frame_due: Seconds,
    /// Reused per-tick report, lent by reference from
    /// [`PerceptionSystem::tick`]; holds the *last* tick's report between
    /// ticks, which is why it is excluded from [`PartialEq`].
    report: TickReport,
}

/// Equality compares configuration and accumulated perception state
/// (rig, samplers, droppers, world model, occlusion flag) and ignores the
/// reusable per-tick scratch buffers.
impl PartialEq for PerceptionSystem {
    fn eq(&self, other: &Self) -> bool {
        self.rig == other.rig
            && self.samplers == other.samplers
            && self.droppers == other.droppers
            && self.world == other.world
            && self.model_occlusion == other.model_occlusion
    }
}

impl PerceptionSystem {
    /// Creates a perception system over `rig` with the given rate plan.
    ///
    /// # Errors
    ///
    /// Returns [`PerceptionError::RatePlanMismatch`] when a per-camera plan
    /// does not match the rig size, or [`PerceptionError::InvalidRate`] for
    /// non-positive rates.
    pub fn new(
        rig: CameraRig,
        rates: RatePlan,
        tracker: TrackerConfig,
    ) -> Result<Self, PerceptionError> {
        let rates = match rates {
            RatePlan::Uniform(r) => vec![r; rig.len()],
            RatePlan::PerCamera(v) => {
                if v.len() != rig.len() {
                    return Err(PerceptionError::RatePlanMismatch {
                        cameras: rig.len(),
                        rates: v.len(),
                    });
                }
                v
            }
        };
        if let Some(&bad) = rates.iter().find(|r| !(r.value() > 0.0 && r.is_finite())) {
            return Err(PerceptionError::InvalidRate(bad));
        }
        let samplers: Vec<FrameSampler> = rates.into_iter().map(FrameSampler::new).collect();
        let droppers = vec![FrameDropper::default(); samplers.len()];
        Ok(Self {
            rig,
            samplers,
            droppers,
            world: WorldModel::new(tracker),
            model_occlusion: true,
            observed_scratch: Vec::new(),
            blocker_scratch: Vec::new(),
            next_frame_due: Seconds(f64::NEG_INFINITY),
            report: TickReport::default(),
        })
    }

    /// Injects a frame-loss pattern on every camera (failure injection;
    /// see [`crate::dropout`]). Default: no loss.
    pub fn with_drop_policy(mut self, policy: DropPolicy) -> Self {
        self.droppers = vec![FrameDropper::new(policy); self.samplers.len()];
        self
    }

    /// Disables the line-of-sight occlusion model (every in-FOV actor is
    /// observed even behind other vehicles). Enabled by default.
    pub fn without_occlusion(mut self) -> Self {
        self.model_occlusion = false;
        self
    }

    /// The camera rig.
    #[inline]
    pub fn rig(&self) -> &CameraRig {
        &self.rig
    }

    /// The fused world model.
    #[inline]
    pub fn world(&self) -> &WorldModel {
        &self.world
    }

    /// Current rate of one camera.
    pub fn rate(&self, id: CameraId) -> Option<Fpr> {
        self.samplers.get(id.0).map(|s| s.rate())
    }

    /// Current rates of every camera, in rig order.
    pub fn rates(&self) -> Vec<Fpr> {
        self.samplers.iter().map(|s| s.rate()).collect()
    }

    /// The slowest camera's rate — the longest frame period in the rig —
    /// without allocating (unlike [`PerceptionSystem::rates`]). Used by
    /// the lane-retirement certificates' staleness bounds.
    pub fn slowest_rate(&self) -> Fpr {
        Fpr(self
            .samplers
            .iter()
            .map(|s| s.rate().value())
            .fold(f64::INFINITY, f64::min))
    }

    /// `true` when any camera has a frame-loss policy other than
    /// [`DropPolicy::None`] injected. Retirement certificates refuse to
    /// reason about track liveness under injected loss, so they consult
    /// this before assuming a visible actor keeps refreshing its track.
    pub fn has_frame_loss(&self) -> bool {
        self.droppers.iter().any(|d| d.policy() != DropPolicy::None)
    }

    /// `true` when occlusion is modeled (the default; see
    /// [`PerceptionSystem::without_occlusion`]).
    pub fn models_occlusion(&self) -> bool {
        self.model_occlusion
    }

    /// Reconfigures one camera's rate (work prioritization, §3.2).
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown camera or a non-positive rate.
    pub fn set_rate(&mut self, id: CameraId, rate: Fpr) -> Result<(), PerceptionError> {
        if !(rate.value() > 0.0 && rate.is_finite()) {
            return Err(PerceptionError::InvalidRate(rate));
        }
        self.samplers
            .get_mut(id.0)
            .ok_or(PerceptionError::UnknownCamera(id))?
            .set_rate(rate);
        // Conservatively invalidate the earliest-due cache: the next tick
        // walks every sampler again. (Today's samplers keep their already
        // scheduled frame on a rate change, so this is belt-and-braces,
        // not a correctness requirement.)
        self.next_frame_due = Seconds(f64::NEG_INFINITY);
        Ok(())
    }

    /// Fires the per-camera samplers for the tick at `now`, filling the
    /// reusable report's `frames`/`dropped`. Returns `true` when at least
    /// one frame survives to be processed.
    fn sample_frames(&mut self, now: Seconds) -> bool {
        self.report.clear();
        // No sampler can fire before the cached earliest due time — the
        // common non-frame tick costs one comparison, not a rig walk.
        // (`on_tick` fires iff `now + 1e-12 >= next_due`, so skipping
        // while `now + 1e-12 < min(next_due)` is exact.)
        if now.value() + 1e-12 < self.next_frame_due.value() {
            return false;
        }
        for (i, sampler) in self.samplers.iter_mut().enumerate() {
            if !sampler.on_tick(now) {
                continue;
            }
            let cam_id = CameraId(i);
            if self.droppers[i].survives() {
                self.report.frames.push(cam_id);
            } else {
                self.report.dropped.push(cam_id);
            }
        }
        self.next_frame_due = Seconds(
            self.samplers
                .iter()
                .map(|s| s.next_due().value())
                .fold(f64::INFINITY, f64::min),
        );
        !self.report.frames.is_empty()
    }

    /// Advances perception by one simulation tick against the ground-truth
    /// `scene`. Cameras whose samplers fire observe the actors in their
    /// FOV; the world model ingests the union.
    ///
    /// The returned report is lent from a buffer the system reuses every
    /// tick (no per-tick allocation once the buffers are warm); clone it
    /// to keep it past the next call.
    pub fn tick(&mut self, scene: &Scene) -> &TickReport {
        let now = scene.time;
        if !self.sample_frames(now) {
            self.world.prune(now);
            return &self.report;
        }
        // An actor is observed this tick when any processed frame's camera
        // sees it and its sight line is clear. Visibility is per-camera but
        // occlusion is not, so actors iterate outermost and each pays the
        // occlusion test at most once per tick. (The per-camera loop this
        // replaces observed the same set, camera-major; the world model
        // ingests observations per-id, so order is immaterial.)
        let mut observed = std::mem::take(&mut self.observed_scratch);
        let cameras = self.rig.cameras();
        for actor in &scene.actors {
            let seen = self
                .report
                .frames
                .iter()
                .any(|cam_id| cameras[cam_id.0].sees_agent(&scene.ego.state, actor));
            if seen
                && !(self.model_occlusion
                    && occluded(scene.ego.state.position, actor, &scene.actors))
            {
                observed.push(*actor);
            }
        }
        self.world.observe(now, &observed);
        self.report.observed.extend(observed.iter().map(|a| a.id));
        observed.clear();
        self.observed_scratch = observed;
        &self.report
    }

    /// [`PerceptionSystem::tick`] over a struct-of-arrays snapshot — the
    /// form the simulation hot loop feeds. The visibility sweep reads the
    /// contiguous position/heading/dims columns directly and the
    /// occlusion sweep tests prebuilt blocker footprints
    /// ([`occluded_against`]); the observed set, the world-model
    /// ingestion and the report are arithmetic-identical to the AoS
    /// [`PerceptionSystem::tick`] on the equivalent [`Scene`].
    ///
    /// [`occluded_against`]: crate::occlusion::occluded_against
    pub fn tick_columns(&mut self, columns: &SceneColumns) -> &TickReport {
        let now = columns.time;
        if !self.sample_frames(now) {
            self.world.prune(now);
            return &self.report;
        }
        let mut observed = std::mem::take(&mut self.observed_scratch);
        let mut blockers = std::mem::take(&mut self.blocker_scratch);
        let mut blockers_ready = false;
        let cameras = self.rig.cameras();
        let ego = &columns.ego.state;
        let (positions, headings, dims) = (columns.positions(), columns.headings(), columns.dims());
        for i in 0..columns.len() {
            // Visibility is an `any` over (frame camera × reference point)
            // pairs of a pure predicate, so it can be evaluated
            // point-major: the center's distance and world bearing (the
            // `atan2`) are computed once and shared across the rig, and
            // the corner expansion runs at most once per actor instead of
            // once per camera. Same pairs, same per-pair arithmetic, same
            // answer as the camera-major `sees_body` sweep.
            let rel = positions[i] - ego.position;
            let d2 = rel.norm_sq();
            let circ = dims[i].circumradius();
            let mut world_bearing = None;
            let mut any_reach = false;
            let mut seen = false;
            for cam_id in &self.report.frames {
                let cam = &cameras[cam_id.0];
                if !cam.reaches_body_sq(d2, circ) {
                    continue;
                }
                any_reach = true;
                if cam.in_range_sq(d2) {
                    if d2 < 1e-18 {
                        seen = true;
                        break;
                    }
                    let bearing = *world_bearing.get_or_insert_with(|| rel.heading());
                    if cam.sees_bearing(ego.heading, bearing) {
                        seen = true;
                        break;
                    }
                }
            }
            if !seen && any_reach {
                let corners =
                    OrientedRect::new(positions[i], headings[i], dims[i].length, dims[i].width)
                        .corners();
                'corners: for corner in corners {
                    let crel = corner - ego.position;
                    let cd2 = crel.norm_sq();
                    let mut corner_bearing = None;
                    for cam_id in &self.report.frames {
                        let cam = &cameras[cam_id.0];
                        if !cam.reaches_body_sq(d2, circ) || !cam.in_range_sq(cd2) {
                            continue;
                        }
                        if cd2 < 1e-18 {
                            seen = true;
                            break 'corners;
                        }
                        let bearing = *corner_bearing.get_or_insert_with(|| crel.heading());
                        if cam.sees_bearing(ego.heading, bearing) {
                            seen = true;
                            break 'corners;
                        }
                    }
                }
            }
            if seen && self.model_occlusion {
                // The 20%-shrunken blocker rects are shared by every
                // target this tick; build them on the first test.
                if !blockers_ready {
                    fill_shrunken_footprints(columns, &mut blockers);
                    blockers_ready = true;
                }
                if occluded_against(ego.position, i, columns, &blockers) {
                    continue;
                }
            }
            if seen {
                observed.push(columns.actor(i));
            }
        }
        self.world.observe(now, &observed);
        self.report.observed.extend(observed.iter().map(|a| a.id));
        observed.clear();
        self.observed_scratch = observed;
        self.blocker_scratch = blockers;
        &self.report
    }

    /// Total frames processed across all cameras.
    pub fn total_frames(&self) -> u64 {
        self.samplers.iter().map(|s| s.frames_processed()).sum()
    }

    /// `true` when no sampler can fire at `now`: the tick is *idle* for
    /// this system — [`PerceptionSystem::tick_columns`] would touch
    /// neither samplers, droppers nor observations, only clear the
    /// report and prune the world model. Callers that build the
    /// ground-truth snapshot solely to feed perception may consult this
    /// first and call [`PerceptionSystem::idle_tick`] instead, skipping
    /// the snapshot entirely. (`sample_frames` fires iff
    /// `now + 1e-12 >= next_due`, so this predicate is exact, not a
    /// heuristic.)
    #[inline]
    pub fn frame_idle(&self, now: Seconds) -> bool {
        now.value() + 1e-12 < self.next_frame_due.value()
    }

    /// Advances one tick known to be idle ([`PerceptionSystem::frame_idle`]):
    /// bitwise identical to [`PerceptionSystem::tick_columns`] on such a
    /// tick — clear the report, prune the world model — without needing
    /// a snapshot to be built at all.
    ///
    /// # Panics
    ///
    /// Debug builds assert the tick really is idle; calling this on a
    /// frame tick would silently skip the samplers.
    pub fn idle_tick(&mut self, now: Seconds) -> &TickReport {
        debug_assert!(
            self.frame_idle(now),
            "idle_tick called on a frame tick at {now}"
        );
        self.report.clear();
        self.world.prune(now);
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ego() -> Agent {
        Agent::new(
            ActorId::EGO,
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::at_rest(Vec2::ZERO, Radians(0.0)),
        )
    }

    fn front_actor(x: f64) -> Agent {
        Agent::new(
            ActorId(1),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::at_rest(Vec2::new(x, 0.0), Radians(0.0)),
        )
    }

    fn system(fpr: f64, k: u32) -> PerceptionSystem {
        PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(fpr)),
            TrackerConfig {
                confirmation_frames: k,
                drop_after: Seconds(1.0),
            },
        )
        .expect("valid uniform plan")
    }

    #[test]
    fn confirmation_latency_scales_with_rate() {
        // At 10 FPR with K = 5, a newly appearing actor confirms after
        // ~0.4-0.5 s (5 frames, 100 ms apart).
        let mut sys = system(10.0, 5);
        let mut confirmed_at = None;
        for i in 0..200 {
            let t = i as f64 * 0.01;
            let scene = Scene::new(Seconds(t), ego(), vec![front_actor(40.0)]);
            sys.tick(&scene);
            if confirmed_at.is_none() && !sys.world().confirmed_agents(Seconds(t)).is_empty() {
                confirmed_at = Some(t);
            }
        }
        let t = confirmed_at.expect("actor eventually confirmed");
        assert!((0.35..=0.55).contains(&t), "confirmed at {t}");
    }

    #[test]
    fn higher_rate_confirms_faster() {
        for (fpr, bound) in [(30.0, 0.20), (5.0, 1.1)] {
            let mut sys = system(fpr, 5);
            let mut confirmed_at = None;
            for i in 0..400 {
                let t = i as f64 * 0.01;
                let scene = Scene::new(Seconds(t), ego(), vec![front_actor(40.0)]);
                sys.tick(&scene);
                if confirmed_at.is_none() && !sys.world().confirmed_agents(Seconds(t)).is_empty() {
                    confirmed_at = Some(t);
                    break;
                }
            }
            let t = confirmed_at.expect("confirmed");
            assert!(
                t <= bound,
                "{fpr} FPR confirmed at {t}, expected <= {bound}"
            );
        }
    }

    #[test]
    fn per_camera_plan_validated() {
        let err = PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::PerCamera(vec![Fpr(30.0); 3]),
            TrackerConfig::default(),
        )
        .expect_err("3 rates for 5 cameras");
        assert!(matches!(
            err,
            PerceptionError::RatePlanMismatch {
                cameras: 5,
                rates: 3
            }
        ));
        let err2 = PerceptionSystem::new(
            CameraRig::drive_av(),
            RatePlan::Uniform(Fpr(0.0)),
            TrackerConfig::default(),
        )
        .expect_err("zero rate");
        assert!(matches!(err2, PerceptionError::InvalidRate(_)));
    }

    #[test]
    fn set_rate_round_trips() {
        let mut sys = system(30.0, 5);
        sys.set_rate(CameraId(2), Fpr(5.0)).expect("camera exists");
        assert_eq!(sys.rate(CameraId(2)), Some(Fpr(5.0)));
        assert!(sys.set_rate(CameraId(99), Fpr(5.0)).is_err());
        assert!(sys.set_rate(CameraId(0), Fpr(-1.0)).is_err());
        assert_eq!(sys.rates().len(), 5);
    }

    #[test]
    fn actor_behind_is_seen_by_rear_camera_only_tick() {
        let mut sys = system(30.0, 1);
        let rear_actor = Agent::new(
            ActorId(7),
            ActorKind::Vehicle,
            Dimensions::CAR,
            VehicleState::at_rest(Vec2::new(-30.0, 0.0), Radians(0.0)),
        );
        let scene = Scene::new(Seconds(0.0), ego(), vec![rear_actor]);
        let report = sys.tick(&scene);
        assert!(report.observed.contains(&ActorId(7)));
    }

    #[test]
    fn columns_tick_matches_scene_tick() {
        // The SoA fast path must produce the identical report and the
        // identical world model as the AoS path, tick for tick — including
        // occlusion (the rear actor hides behind the front one until the
        // front one drifts aside).
        let mut aos = system(10.0, 3);
        let mut soa = aos.clone();
        for i in 0..150 {
            let t = i as f64 * 0.01;
            let drift = 0.03 * i as f64;
            let blocker = Agent::new(
                ActorId(1),
                ActorKind::Vehicle,
                Dimensions::CAR,
                VehicleState::at_rest(Vec2::new(30.0, drift), Radians(0.0)),
            );
            let hidden = Agent::new(
                ActorId(2),
                ActorKind::StaticObstacle,
                Dimensions::OBSTACLE,
                VehicleState::at_rest(Vec2::new(70.0, 0.0), Radians(0.0)),
            );
            let side = Agent::new(
                ActorId(3),
                ActorKind::Vehicle,
                Dimensions::CAR,
                VehicleState::at_rest(Vec2::new(10.0, 20.0), Radians(0.3)),
            );
            let scene = Scene::new(Seconds(t), ego(), vec![blocker, hidden, side]);
            let columns = SceneColumns::from_scene(&scene);
            let from_scene = aos.tick(&scene).clone();
            let from_columns = soa.tick_columns(&columns);
            assert_eq!(&from_scene, from_columns, "tick {i}: reports diverged");
            assert_eq!(aos, soa, "tick {i}: perception state diverged");
        }
        assert_eq!(aos.world().len(), soa.world().len());
        assert!(!aos.world().is_empty(), "nothing was ever tracked");
    }

    #[test]
    fn out_of_range_actor_never_tracked() {
        let mut sys = system(30.0, 1);
        for i in 0..50 {
            let t = i as f64 * 0.01;
            let scene = Scene::new(Seconds(t), ego(), vec![front_actor(400.0)]);
            sys.tick(&scene);
        }
        // 400 m ahead: beyond front-wide range (150 m) but within
        // front-narrow's 250 m? No: 400 > 250, invisible to all.
        assert!(sys.world().is_empty());
    }
}
